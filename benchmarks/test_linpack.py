"""Section 6.2: the massively-parallel Linpack headline number.

Paper: 10.14 GF sustained on 100 nodes — the first cluster on the
Top-500 list (#315, June 1997).
"""

from repro.apps.linpack import LinpackModel, linpack_gflops


def test_linpack_100_nodes(once, benchmark):
    gf = once(linpack_gflops, 100)
    benchmark.extra_info["gflops"] = gf
    assert 9.0 <= gf <= 11.5  # paper: 10.14


def test_linpack_communication_overhead_modest(once, benchmark):
    def measure():
        m = LinpackModel()
        from repro.cluster import ClusterConfig

        cfg = ClusterConfig()
        return m.comm_seconds(cfg) / m.compute_seconds()

    ratio = once(measure)
    benchmark.extra_info["comm_over_compute"] = ratio
    assert ratio < 0.25  # HPL at this scale is compute dominated
