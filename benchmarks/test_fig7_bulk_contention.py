"""Figure 7: 8 KB bulk-transfer throughput under contention.

Paper shapes asserted here:
  * OneVN reaches ~42.8 MB/s aggregate (the SBus-limited server ceiling);
  * per-client shares are proportional;
  * with 96 frames (one-to-one connections, no shared-endpoint overruns)
    ST matches or surpasses OneVN;
  * 8-frame configurations survive overcommitment (>8 clients) with
    re-mapping active, degrading gracefully rather than collapsing.
"""

import pytest

from repro.apps.clientserver import ContentionConfig, run_contention

PEAK_MB_S = 44.0  # the Figure 4 delivered ceiling


def run(nclients, mode, frames, **kw):
    return run_contention(
        ContentionConfig(
            nclients=nclients, msg_bytes=8192, mode=mode, frames=frames,
            duration_ms=kw.pop("duration_ms", 120.0),
            warmup_ms=kw.pop("warmup_ms", 80.0), **kw,
        )
    )


def test_fig7_onevn_aggregate_ceiling(once, benchmark):
    r = once(run, 4, "one_vn", 8)
    benchmark.extra_info["mb_s"] = r.aggregate_mb_s
    assert 36.0 <= r.aggregate_mb_s <= 47.0  # paper: ~42.8


def test_fig7_onevn_proportional(once, benchmark):
    r = once(run, 4, "one_vn", 8)
    mean = sum(r.per_client_msgs_s) / 4
    benchmark.extra_info["per_client"] = r.per_client_msgs_s
    # bulk shares are coarser than small-message shares (a single 8 KB
    # message is ~190 us of server SBus time), but every client gets a
    # substantial fraction and nobody is starved
    for per in r.per_client_msgs_s:
        assert 0.4 * mean <= per <= 2.2 * mean


def test_fig7_st96_matches_or_beats_onevn(once, benchmark):
    def pair():
        return run(4, "one_vn", 8), run(4, "st", 96)

    onevn, st96 = once(pair)
    benchmark.extra_info.update(onevn=onevn.aggregate_mb_s, st96=st96.aggregate_mb_s)
    # one-to-one connections avoid shared-endpoint overruns (§6.4)
    assert st96.aggregate_mb_s >= 0.95 * onevn.aggregate_mb_s


def test_fig7_st8_survives_overcommit(once, benchmark):
    r = once(run, 10, "st", 8, duration_ms=200.0)
    benchmark.extra_info.update(mb_s=r.aggregate_mb_s, remaps_s=r.remaps_per_s)
    assert r.remaps_per_s > 10           # re-mapping active
    assert r.aggregate_mb_s >= 0.3 * PEAK_MB_S  # degrades, does not collapse


def test_fig7_mt8_survives_overcommit(once, benchmark):
    r = once(run, 10, "mt", 8, duration_ms=200.0)
    benchmark.extra_info.update(mb_s=r.aggregate_mb_s, remaps_s=r.remaps_per_s)
    assert r.aggregate_mb_s >= 0.3 * PEAK_MB_S
