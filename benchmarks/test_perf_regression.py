"""Perf-regression harness checks (repro.bench.perf).

The hot-path overhaul (entry pool, timeout free-list, typed resume
dispatch, consumer batching) must be *invisible* except for speed: every
canonical scenario replayed on the pre-optimization reference kernel
must produce a bit-identical timeline digest and the same number of
dispatched kernel events.  These tests run the harness at quick scale on
both kernels and gate on:

* digest/end-state equality (the determinism contract), and
* the optimized kernel not being meaningfully slower than the reference
  one (the machine-independent form of the >20%-regression CI rule).
"""

import pytest

from repro.bench.perf import QUICK, SCENARIOS, TRACED, check_baseline, run_scenario
from repro.sim import ReferenceSimulator, Simulator


@pytest.fixture(scope="module")
def both_kernels():
    """Each scenario once per kernel, at quick scale, traced where possible."""
    out = {}
    for name in SCENARIOS:
        opt = run_scenario(name, Simulator, QUICK, traced=TRACED[name])
        ref = run_scenario(name, ReferenceSimulator, QUICK, traced=TRACED[name])
        out[name] = (opt, ref)
    return out


@pytest.mark.parametrize("name", SCENARIOS)
def test_digest_and_state_bit_identical(both_kernels, name, benchmark):
    """Optimized vs reference kernel: identical timelines and end state."""
    opt, ref = both_kernels[name]
    if TRACED[name]:
        assert opt["digest"] == ref["digest"], (
            f"{name}: timeline digest diverged between kernels")
    assert opt["checks"] == ref["checks"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(opt["checks"])


@pytest.mark.parametrize("name", SCENARIOS)
def test_event_counts_identical(both_kernels, name, benchmark):
    """Fast paths make events cheaper, never add or remove them."""
    opt, ref = both_kernels[name]
    assert opt["events"] == ref["events"], (
        f"{name}: {opt['events']} optimized vs {ref['events']} reference "
        "kernel events — a fast path changed the event structure")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(events=opt["events"])


def test_optimized_not_slower_than_reference(both_kernels, benchmark):
    """Aggregate events/s ratio across all scenarios must stay >= 0.8.

    Single quick-scale runs are noisy, so this gates on the aggregate
    (sum of events / sum of wall) rather than per-scenario ratios; the
    full per-scenario gate runs in CI via ``repro.bench.perf --check``.
    """
    opt_ev = sum(both_kernels[n][0]["events"] for n in SCENARIOS)
    opt_wall = sum(both_kernels[n][0]["wall_s"] for n in SCENARIOS)
    ref_ev = sum(both_kernels[n][1]["events"] for n in SCENARIOS)
    ref_wall = sum(both_kernels[n][1]["wall_s"] for n in SCENARIOS)
    ratio = (opt_ev / opt_wall) / (ref_ev / ref_wall)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(speedup_vs_reference=ratio)
    assert ratio >= 0.8, (
        f"optimized kernel is >20% slower than the reference kernel "
        f"({ratio:.2f}x)")


def test_check_baseline_flags_regressions():
    """The --check comparator itself: drops >20% fail, smaller ones pass."""
    baseline = {"scenarios": {"logp_pingpong": {"speedup_vs_reference": 1.5}}}
    ok = {"scenarios": {"logp_pingpong": {"speedup_vs_reference": 1.25}}}
    bad = {"scenarios": {"logp_pingpong": {"speedup_vs_reference": 1.1}}}
    missing = {"scenarios": {"logp_pingpong": {}}}
    assert check_baseline(ok, baseline) == []
    assert len(check_baseline(bad, baseline)) == 1
    assert len(check_baseline(missing, baseline)) == 1
