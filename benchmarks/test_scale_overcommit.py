"""Section 6.4 — endpoint overcommit: graceful degradation, never collapse.

Regenerates the scaling relationship behind the paper's central claim
("large numbers of endpoints can be multiplexed onto the limited NI
memory"): goodput per (policy, overcommit-ratio) cell as one server NI's
eight endpoint frames are oversubscribed up to 32:1, plus the
replacement-policy ordering EXPERIMENTS.md records.  The committed
BENCH_SCALE.json holds the full 1:1 → 64:1 sweep.
"""

from repro.scale import ScaleCellConfig, run_cell, run_sweep


def test_overcommit_degrades_gracefully(once, benchmark):
    """At 8 frames, goodput falls monotonically-ish with overcommit but
    never reaches zero — every endpoint keeps taking its turn."""

    def sweep():
        return run_sweep(
            ["random"], [1, 4, 8, 32],
            frames=8, duration_ms=40.0, warmup_ms=20.0, client_nodes=8,
        )

    report = once(sweep)
    cells = {c.ratio: c for c in report.cells}
    benchmark.extra_info.update(
        {f"x{r}_goodput": round(c.goodput_msgs_s) for r, c in cells.items()}
    )
    assert not report.collapsed_cells()
    # 1:1 fits in the frames: no evictions, full service
    assert cells[1].evictions == 0
    assert cells[1].goodput_msgs_s > 10 * cells[32].goodput_msgs_s
    # overcommitted cells still deliver and still remap continuously
    for ratio in (4, 8, 32):
        assert cells[ratio].completed > 0
        assert cells[ratio].remaps_per_s > 100


def test_remap_rate_in_paper_band(once, benchmark):
    """The paper reports 200-300 endpoint re-mappings per second under
    sustained overcommit; the harness runs in that regime (~333/s)."""

    def cell():
        return run_cell(ScaleCellConfig(policy="random", ratio=8,
                                        endpoint_frames=8, client_nodes=8,
                                        duration_ms=60.0, warmup_ms=30.0))

    r = once(cell)
    benchmark.extra_info.update(remaps_per_s=round(r.remaps_per_s, 1))
    assert 150 <= r.remaps_per_s <= 500


def test_policy_ordering_under_heavy_overcommit(once, benchmark):
    """active-preference must waste less re-mapping work than random
    (lower thrash score) at 16:1 — the EXPERIMENTS.md ordering."""

    def both():
        shape = dict(ratio=16, endpoint_frames=4, client_nodes=4,
                     duration_ms=60.0, warmup_ms=20.0)
        rnd = run_cell(ScaleCellConfig(policy="random", **shape))
        ap = run_cell(ScaleCellConfig(policy="active-preference", **shape))
        return rnd, ap

    rnd, ap = once(both)
    benchmark.extra_info.update(
        random_thrash=round(rnd.thrash_score, 3),
        active_pref_thrash=round(ap.thrash_score, 3),
    )
    assert ap.thrash_score < rnd.thrash_score
    assert rnd.completed > 0 and ap.completed > 0
