"""Figure 6: small-message throughput under contention.

Paper shapes asserted here:
  * the server's peak is ~78K msg/s (we measure ~74K);
  * every client obtains its proportional share (6a);
  * the credit mechanism prevents overruns for a single client, and
    overrun NACKing begins once multiple credit windows share the one
    endpoint (6b's degradation regime);
  * overcommitting an 8-frame interface (>8 clients) activates re-mapping
    at the paper's 200-300/s while the server keeps delivering a large
    fraction of peak;
  * the MT configuration is resilient to the number of frames.
"""

import pytest

from repro.apps.clientserver import ContentionConfig, run_contention

PEAK_MSGS_S = 78_000.0


def run(nclients, mode, frames, **kw):
    return run_contention(
        ContentionConfig(
            nclients=nclients, mode=mode, frames=frames,
            duration_ms=kw.pop("duration_ms", 80.0),
            warmup_ms=kw.pop("warmup_ms", 70.0), **kw,
        )
    )


def test_fig6_single_client_reaches_peak(once, benchmark):
    r = once(run, 1, "one_vn", 8)
    benchmark.extra_info["msgs_s"] = r.aggregate_msgs_s
    assert 0.85 * PEAK_MSGS_S <= r.aggregate_msgs_s <= PEAK_MSGS_S
    assert r.overrun_nacks == 0  # credits prevent overrun at one window


def test_fig6_proportional_share(once, benchmark):
    r = once(run, 4, "one_vn", 8)
    mean = r.aggregate_msgs_s / 4
    benchmark.extra_info["per_client"] = r.per_client_msgs_s
    for per in r.per_client_msgs_s:
        assert abs(per - mean) / mean < 0.15  # Figure 6a


def test_fig6_overruns_begin_past_one_window(once, benchmark):
    def pair():
        return run(1, "one_vn", 8), run(3, "one_vn", 8)

    one, three = once(pair)
    benchmark.extra_info.update(over1=one.overrun_nacks, over3=three.overrun_nacks)
    assert one.overrun_nacks == 0
    assert three.overrun_nacks > 100  # the lightweight mechanism no longer prevents them


def test_fig6_sustained_under_heavy_overrun(once, benchmark):
    """Past the credit window the link protocols retransmit (Figure 6b).

    The paper measures a 75K->60K aggregate drop at 3 clients; in our
    model the NI's receive staging absorbs most of the excess window, so
    overrun NACKing begins on schedule but the aggregate only flattens
    (documented deviation #1 in EXPERIMENTS.md).  Asserted here: overruns
    persist at many clients and the aggregate never *exceeds* the
    one-window peak nor collapses.
    """

    def pair():
        return run(2, "one_vn", 8), run(8, "one_vn", 8, duration_ms=100.0)

    light, heavy = once(pair)
    benchmark.extra_info.update(
        agg2=light.aggregate_msgs_s, agg8=heavy.aggregate_msgs_s,
        over8=heavy.overrun_nacks,
    )
    assert heavy.overrun_nacks > 300          # retransmission regime active
    assert heavy.aggregate_msgs_s <= light.aggregate_msgs_s * 1.02
    assert heavy.aggregate_msgs_s >= 0.55 * light.aggregate_msgs_s


def test_fig6_st8_remapping_regime(once, benchmark):
    """>8 clients on 8 frames: on-the-fly re-mapping at 200-300/s while a
    large fraction of peak is still delivered (Section 6.4.1)."""
    r = once(run, 10, "st", 8, duration_ms=150.0)
    benchmark.extra_info.update(
        msgs_s=r.aggregate_msgs_s, remaps_s=r.remaps_per_s
    )
    assert 100 <= r.remaps_per_s <= 500      # paper: 200-300
    assert r.aggregate_msgs_s >= 0.4 * PEAK_MSGS_S  # paper: 50-75%


def test_fig6_st96_no_remapping(once, benchmark):
    r = once(run, 10, "st", 96)
    benchmark.extra_info["msgs_s"] = r.aggregate_msgs_s
    assert r.remaps_per_s == 0               # 96 frames: no overcommit
    assert r.not_resident_nacks == 0
    assert r.aggregate_msgs_s >= 0.75 * PEAK_MSGS_S


def test_fig6_mt_resilient_to_frames(once, benchmark):
    """MT performance is resilient to the number of server frames (§6.4)."""

    def pair():
        return run(10, "mt", 8, duration_ms=100.0), run(10, "mt", 96, duration_ms=100.0)

    mt8, mt96 = once(pair)
    benchmark.extra_info.update(mt8=mt8.aggregate_msgs_s, mt96=mt96.aggregate_msgs_s)
    assert mt8.aggregate_msgs_s >= 0.4 * PEAK_MSGS_S
    assert mt8.aggregate_msgs_s >= 0.5 * mt96.aggregate_msgs_s
