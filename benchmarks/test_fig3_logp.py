"""Figure 3: LogP characterization, AM over virtual networks vs GAM.

Paper: virtualization raises the round-trip time by 23% and the gap by a
factor of 2.21 while total per-packet overhead stays the same; Os grows
and Or shrinks under AM; GAM's parameters are the 1st-generation baseline.
"""

from repro.bench.logp import PAPER_AM, PAPER_GAM, measure_am, measure_gam


def test_fig3_am_logp(once, benchmark):
    am = once(measure_am)
    benchmark.extra_info.update(
        os_us=am.os_us, or_us=am.or_us, l_us=am.l_us, g_us=am.g_us, rtt_us=am.rtt_us
    )
    assert abs(am.os_us - PAPER_AM["os_us"]) < 0.5
    assert abs(am.or_us - PAPER_AM["or_us"]) < 0.5
    assert abs(am.l_us - PAPER_AM["l_us"]) < 1.5
    assert abs(am.g_us - PAPER_AM["g_us"]) < 1.5


def test_fig3_gam_logp(once, benchmark):
    gam = once(measure_gam)
    benchmark.extra_info.update(
        os_us=gam.os_us, or_us=gam.or_us, l_us=gam.l_us, g_us=gam.g_us
    )
    assert abs(gam.os_us - PAPER_GAM["os_us"]) < 0.4
    assert abs(gam.or_us - PAPER_GAM["or_us"]) < 0.4
    assert abs(gam.l_us - PAPER_GAM["l_us"]) < 1.0
    assert abs(gam.g_us - PAPER_GAM["g_us"]) < 1.0


def test_fig3_virtualization_ratios(once, benchmark):
    """The paper's headline Figure 3 relationships."""

    def both():
        return measure_am(), measure_gam()

    am, gam = once(both)
    gap_ratio = am.g_us / gam.g_us
    rtt_ratio = am.rtt_us / gam.rtt_us
    overhead_ratio = am.total_overhead_us / gam.total_overhead_us
    benchmark.extra_info.update(
        gap_ratio=gap_ratio, rtt_ratio=rtt_ratio, overhead_ratio=overhead_ratio
    )
    assert 1.9 <= gap_ratio <= 2.6          # paper: 2.21
    assert 1.12 <= rtt_ratio <= 1.35        # paper: 1.23
    assert 0.9 <= overhead_ratio <= 1.1     # paper: 1.00 (Os+Or unchanged)
    assert am.os_us > gam.os_us             # bigger descriptors
    assert am.or_us < gam.or_us             # VIS block load
