"""Shared helpers for the figure/table benchmarks.

Each benchmark file regenerates one of the paper's tables or figures,
asserts the reproduction bands recorded in EXPERIMENTS.md, and times the
harness through pytest-benchmark (one round — these are simulations, not
microkernels; the interesting output is the simulated metrics, which each
test attaches to ``benchmark.extra_info``).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    result = {}

    def target():
        result["value"] = fn(*args, **kwargs)

    benchmark.pedantic(target, rounds=1, iterations=1)
    return result["value"]


@pytest.fixture
def once(benchmark):
    def _once(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _once
