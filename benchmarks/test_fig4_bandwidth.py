"""Figure 4: transfer bandwidths and bulk round-trip latency.

Paper: AM-II delivers 43.9 MB/s at 8 KB (93% of the 46.8 MB/s SBus write
limit, N1/2 ~ 540 B); the first-generation interface managed 38 MB/s; RTT
for n >= 128 fits 0.1112 n + 61.02 us.
"""

import numpy as np

from repro.bench.bandwidth import (
    half_power_point,
    measure_am_bandwidth,
    measure_am_rtt,
    measure_gam_bandwidth,
)
from repro.cluster import ClusterConfig


def test_fig4_am_bandwidth_curve(once, benchmark):
    result = once(measure_am_bandwidth, sizes=[512, 2048, 8192], count=80)
    peak = result.at(8192)
    cfg = ClusterConfig()
    benchmark.extra_info.update(mb_s_8k=peak, fraction=peak / cfg.sbus_write_mb_s)
    assert 41.0 <= peak <= 46.8             # paper: 43.9
    assert peak / cfg.sbus_write_mb_s >= 0.88  # paper: 93%
    # bandwidth increases with message size
    assert result.at(512) < result.at(2048) < peak


def test_fig4_gam_bandwidth(once, benchmark):
    result = once(measure_gam_bandwidth, sizes=[8192], count=80)
    peak = result.at(8192)
    benchmark.extra_info["mb_s_8k"] = peak
    assert 34.0 <= peak <= 41.0             # paper: 38


def test_fig4_am_beats_gam_at_8k(once, benchmark):
    def both():
        return (
            measure_am_bandwidth(sizes=[8192], count=60).at(8192),
            measure_gam_bandwidth(sizes=[8192], count=60).at(8192),
        )

    am, gam = once(both)
    benchmark.extra_info.update(am=am, gam=gam)
    assert am > gam  # pipelined descriptor processing wins (Section 6.1)


def test_fig4_half_power_point(once, benchmark):
    result = once(measure_am_bandwidth, count=80)
    n_half = half_power_point(result)
    benchmark.extra_info["n_half"] = n_half
    assert 250 <= n_half <= 800             # paper: ~540


def test_fig4_rtt_linear_fit(once, benchmark):
    rtt = once(measure_am_rtt, reps=8)
    xs = np.array([n for n, _ in rtt], dtype=float)
    ys = np.array([t for _, t in rtt], dtype=float)
    slope, intercept = np.polyfit(xs, ys, 1)
    benchmark.extra_info.update(slope_us_per_byte=slope, intercept_us=intercept)
    # paper: 0.1112n + 61.02; our per-byte path cost is slightly lower
    # because staging copies collapse in the model
    assert 0.08 <= slope <= 0.14
    assert intercept > 0
    # good linearity
    resid = ys - (slope * xs + intercept)
    assert np.max(np.abs(resid)) / np.max(ys) < 0.1
