"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables or varies one mechanism the paper argues for and
checks that the predicted degradation (or non-degradation) appears.
"""

import pytest

from repro.apps.clientserver import ContentionConfig, run_contention
from repro.cluster import Cluster, ClusterConfig
from repro.api import Session
from repro.sim import ms


# ------------------------------------------------- 1. on-host r/w (§6.4.1)
def test_ablation_onhost_rw_state(once, benchmark):
    """Without the asynchronous on-host r/w state, a single-threaded
    server collapses once re-mapping begins (Section 6.4.1: "only a few
    percent of the hardware performance was delivered")."""

    def both():
        base = ContentionConfig(nclients=10, mode="st", frames=8,
                                duration_ms=100, warmup_ms=80)
        with_state = run_contention(base)
        base_off = ContentionConfig(
            nclients=10, mode="st", frames=8, duration_ms=100, warmup_ms=80,
            base=ClusterConfig(enable_onhost_rw=False),
        )
        without = run_contention(base_off)
        return with_state, without

    with_state, without = once(both)
    benchmark.extra_info.update(
        with_state=with_state.aggregate_msgs_s, without=without.aggregate_msgs_s
    )
    # the fix delivers several times the throughput of the original design
    assert with_state.aggregate_msgs_s > 2.5 * max(1.0, without.aggregate_msgs_s)


# -------------------------------------- 2. WRR loiter budget (Section 5.2)
def test_ablation_service_discipline(once, benchmark):
    """Loitering (64 msgs) amortizes per-endpoint switching; a budget of 1
    (pure round-robin) costs throughput when several endpoints stream."""

    def run_with(wrr):
        cfg = ClusterConfig(num_hosts=4, wrr_max_msgs=wrr)
        cluster = Cluster(cfg)
        sim = cluster.sim
        session = Session(nodes=[0, 1], cluster=cluster, name="s")
        vnet = session.vnet
        # two endpoints on node 0 streaming to node 1
        from repro.am import new_endpoint

        ep0b = cluster.run_process(new_endpoint(cluster.node(0), rngs=cluster.rngs), "e")
        ep0b.map(1, vnet[1].name, vnet[1].tag)
        eps = [vnet[0], ep0b]
        done = [0]
        done_at = {}

        def handler(token):
            done[0] += 1
            if done[0] == 300:
                done_at["t"] = sim.now

        def sender(thr, ep):
            for _ in range(150):
                yield from ep.request(thr, 1, handler)
                yield from ep.poll(thr, limit=4)
            while ep.credits_available(1) < cfg.user_credits:
                yield from ep.poll(thr)
                yield from thr.compute(2_000)

        def receiver(thr):
            while done[0] < 300:
                yield from vnet[1].poll(thr, limit=16)

        cluster.node(1).start_process().spawn_thread(receiver)
        p0 = cluster.node(0).start_process()
        for ep in eps:
            p0.spawn_thread(lambda thr, ep=ep: sender(thr, ep))
        t0 = sim.now
        cluster.run(until=sim.now + ms(2_000))
        assert done[0] == 300
        return 300 / ((done_at["t"] - t0) / 1e9)

    def both():
        return run_with(64), run_with(1)

    loiter, pure_rr = once(both)
    benchmark.extra_info.update(loiter=loiter, pure_rr=pure_rr)
    # both must work; loitering should not be (meaningfully) slower
    assert loiter >= pure_rr * 0.9


# ------------------------------------ 3. multiple logical channels (§5.1)
def test_ablation_channel_count(once, benchmark):
    """Multiple stop-and-wait channels mask transmission and
    acknowledgment latencies (§5.1).  The effect is strongest for bulk
    packets, whose acknowledgment ("written into the destination
    endpoint") waits behind a ~176 us receive DMA: one channel serializes
    on that round trip, many channels keep the SBus pipeline full.
    """

    def run_with(channels):
        cfg = ClusterConfig(num_hosts=4, channels_per_pair=channels)
        cluster = Cluster(cfg)
        sim = cluster.sim
        session = Session(nodes=[0, 1], cluster=cluster, name="s")
        ep0, ep1 = session.endpoints
        done = [0]
        done_at = {}
        WARM, TOTAL = 10, 60
        NBYTES = 8192

        def handler(token):
            done[0] += 1
            if done[0] == WARM:
                done_at["t0"] = sim.now
            if done[0] == TOTAL:
                done_at["t"] = sim.now

        def sender(thr):
            for i in range(TOTAL):
                yield from ep0.request(thr, 1, handler, nbytes=NBYTES)
                yield from ep0.poll(thr, limit=8)
            while ep0.credits_available(1) < cfg.user_credits:
                yield from ep0.poll(thr)
                yield from thr.compute(2_000)

        def receiver(thr):
            while done[0] < TOTAL:
                yield from ep1.poll(thr, limit=16)

        cluster.node(1).start_process().spawn_thread(receiver)
        cluster.node(0).start_process().spawn_thread(sender)
        cluster.run(until=sim.now + ms(5_000))
        assert done[0] == TOTAL
        elapsed = (done_at["t"] - done_at["t0"]) / 1e9
        return (TOTAL - WARM) * NBYTES / elapsed / 1e6  # MB/s

    def both():
        return run_with(1), run_with(32)

    one, many = once(both)
    benchmark.extra_info.update(one_channel_mb_s=one, many_channels_mb_s=many)
    assert many > 1.5 * one  # latency masking pays


# ------------------------------ 4. random vs LRU replacement (Section 4.1)
def test_ablation_replacement_policy(once, benchmark):
    """Under the thrash workload, random replacement performs comparably
    to LRU (the paper chose random for its simplicity)."""

    def run_policy(policy):
        return run_contention(
            ContentionConfig(
                nclients=12, mode="st", frames=8, duration_ms=100, warmup_ms=80,
                base=ClusterConfig(replacement_policy=policy),
            )
        ).aggregate_msgs_s

    def both():
        return run_policy("random"), run_policy("lru")

    rand, lru = once(both)
    benchmark.extra_info.update(random=rand, lru=lru)
    assert rand > 0 and lru > 0
    # neither policy dominates by more than ~2.5x on this access pattern
    assert max(rand, lru) / max(1.0, min(rand, lru)) < 2.5


# -------------------------------------- 5. credit window sizing (§6.4)
def test_ablation_credit_window(once, benchmark):
    """A small credit window under-fills the pipeline; the full 32-credit
    window reaches the NI's message rate (Figure 6's peak)."""

    def run_window(credits, depth):
        return run_contention(
            ContentionConfig(
                nclients=1, mode="one_vn", duration_ms=80, warmup_ms=60,
                base=ClusterConfig(user_credits=credits, recv_queue_depth=depth),
            )
        ).aggregate_msgs_s

    def both():
        return run_window(2, 32), run_window(32, 32)

    small, full = once(both)
    benchmark.extra_info.update(window2=small, window32=full)
    assert full > 1.25 * small
