"""Figure 5: NAS Parallel Benchmark (Class A) speedups.

Paper: all but two benchmarks show linear speedups through 32 processors
on the NOW; FT and IS are limited by bisection bandwidth; the NOW scales
significantly better than the SP-2; Origin execution times are within 2x.
"""

import pytest

from repro.apps.npb import MACHINES, analytic_time, run_npb


def test_fig5_bt_near_linear(once, benchmark):
    def series():
        return [run_npb("bt", p).speedup for p in (1, 4, 16)]

    s1, s4, s16 = once(series)
    benchmark.extra_info.update(p4=s4, p16=s16)
    assert s1 == 1.0
    assert s4 >= 3.4
    assert s16 >= 13.0  # near-linear (Figure 5)


def test_fig5_lu_near_linear(once, benchmark):
    def series():
        return [run_npb("lu", p).speedup for p in (4, 16)]

    s4, s16 = once(series)
    benchmark.extra_info.update(p4=s4, p16=s16)
    assert s4 >= 3.2 and s16 >= 12.0


def test_fig5_cg_mg_scale(once, benchmark):
    def series():
        return run_npb("cg", 16).speedup, run_npb("mg", 16).speedup

    cg, mg = once(series)
    benchmark.extra_info.update(cg=cg, mg=mg)
    assert cg >= 12.0 and mg >= 10.0


def test_fig5_ft_is_bisection_limited(once, benchmark):
    """The all-to-all benchmarks fall clearly short of linear (Figure 5)."""

    def series():
        ft = run_npb("ft", 16)
        is_ = run_npb("is", 16)
        ep = run_npb("ep", 16)
        return ft, is_, ep

    ft, is_, ep = once(series)
    benchmark.extra_info.update(
        ft=ft.speedup, is_=is_.speedup, ep=ep.speedup,
        ft_comm=ft.comm_fraction, is_comm=is_.comm_fraction,
    )
    assert ft.speedup < 13.0
    assert is_.speedup < 12.0
    assert ep.speedup > 15.0           # the embarrassingly parallel control
    assert ft.comm_fraction > 0.2      # communication dominated
    assert is_.comm_fraction > 0.3
    assert ft.speedup < ep.speedup and is_.speedup < ep.speedup


def test_fig5_now_scales_better_than_sp2(once, benchmark):
    def measure():
        out = {}
        for name in ("bt", "cg"):
            now = run_npb(name, 16).speedup
            sp2 = analytic_time(name, 1, MACHINES["sp2"]) / analytic_time(name, 16, MACHINES["sp2"])
            out[name] = (now, sp2)
        return out

    result = once(measure)
    for name, (now, sp2) in result.items():
        benchmark.extra_info[name] = {"now": now, "sp2": sp2}
        assert now > sp2  # Figure 5's cross-machine comparison


def test_fig5_origin_times_within_2x(once, benchmark):
    """Origin-2000 execution times are at most ~2x faster (Section 6.2)."""

    def measure():
        out = {}
        for name in ("cg", "mg", "ep"):
            t_now = run_npb(name, 16).time_s
            t_org = analytic_time(name, 16, MACHINES["origin2000"])
            out[name] = t_now / t_org
        return out

    ratios = once(measure)
    benchmark.extra_info.update(ratios)
    for name, ratio in ratios.items():
        assert ratio <= 2.6, f"{name}: NOW/Origin time ratio {ratio:.2f}"
        assert ratio >= 0.9  # Origin nodes are faster, never slower
