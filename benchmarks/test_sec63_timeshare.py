"""Section 6.3: multiple time-shared parallel applications.

Paper: executing multiple Split-C applications time-shared is within 15%
of running them in sequence; communication time stays nearly constant;
with load imbalance, time-sharing improves throughput by up to 20%.
"""

from repro.apps.timeshare import TimeshareConfig, run_timeshare


def test_sec63_balanced_within_15_percent(once, benchmark):
    r = once(run_timeshare, TimeshareConfig(nnodes=8, napps=2, iterations=20))
    benchmark.extra_info.update(slowdown=r.slowdown, comm_ratio=r.comm_ratio)
    # paper: within 15% of sequential
    assert r.slowdown <= 1.2
    assert r.slowdown >= 0.85


def test_sec63_comm_time_nearly_constant(once, benchmark):
    r = once(run_timeshare, TimeshareConfig(nnodes=8, napps=2, iterations=20))
    benchmark.extra_info["comm_ratio"] = r.comm_ratio
    assert 0.6 <= r.comm_ratio <= 1.6  # paper: "nearly constant"


def test_sec63_imbalance_improves_throughput(once, benchmark):
    """Load imbalance lets time-sharing fill idle cycles (up to +20%)."""

    def both():
        bal = run_timeshare(TimeshareConfig(nnodes=8, napps=2, iterations=20))
        imb = run_timeshare(
            TimeshareConfig(nnodes=8, napps=2, iterations=20, imbalance=0.8)
        )
        return bal, imb

    bal, imb = once(both)
    benchmark.extra_info.update(balanced=bal.slowdown, imbalanced=imb.slowdown)
    # the imbalanced workload benefits more from sharing than the balanced
    assert imb.slowdown <= bal.slowdown + 0.05
    assert imb.slowdown < 1.05  # sharing recovers the idle cycles
