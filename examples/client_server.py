"""A multi-threaded server handling clients over dedicated virtual networks.

The Section 6.4 usage model in miniature: four clients each get their own
server endpoint (one virtual network per client); the server runs one
event-driven thread per endpoint (the MT configuration), sleeping on the
endpoint's event mask until requests arrive (§3.3).  An RPC layer runs on
the same machinery.

Run:  python examples/client_server.py
"""

from repro.api import Session
from repro.lib.rpc import RpcClient, RpcServer
from repro.sim import ms

NCLIENTS = 4
REQUESTS = 200


def main() -> None:
    session = Session(
        star=(0, list(range(1, NCLIENTS + 1))),
        shared_server_ep=False,
        num_hosts=NCLIENTS + 1,
    )
    cluster = session.cluster
    sim = session.sim
    servers, clients = session.servers, session.clients

    served = [0] * NCLIENTS
    stop = {"flag": False}

    def handler(token, client_id):
        served[client_id] += 1
        return 2_000  # 2 us of server work per request

    sproc = cluster.node(0).start_process("server")
    for k, sep in enumerate(servers):

        def mt_thread(thr, sep=sep):
            sep.set_event_mask({"recv"})
            while not stop["flag"]:
                yield from sep.wait(thr, timeout_ns=ms(5))
                while True:
                    n = yield from sep.poll(thr, limit=16)
                    if n == 0:
                        break

        sproc.spawn_thread(mt_thread, name=f"server{k}")

    client_threads = []
    for i, cep in enumerate(clients):
        proc = cluster.node(i + 1).start_process(f"client{i}")

        def client_body(thr, cep=cep, i=i):
            for _ in range(REQUESTS):
                yield from cep.request(thr, 0, handler, i)
                yield from cep.poll(thr, limit=4)
            while cep.credits_available(0) < cluster.cfg.user_credits:
                yield from cep.poll(thr)
                yield from thr.compute(2_000)

        client_threads.append(proc.spawn_thread(client_body, name=f"client{i}"))

    t0 = sim.now
    cluster.run(until=sim.now + ms(500))
    stop["flag"] = True
    elapsed_s = (sim.now - t0) / 1e9
    total = sum(served)
    print(f"served {total} requests from {NCLIENTS} clients: {served}")
    print(f"aggregate rate while running: ~{total / elapsed_s / 1000:.0f}K requests/s")
    print(f"server thread wakeups: {sum(s.stats.wakeups for s in servers)} (event-driven, §3.3)")

    # --- RPC on the same endpoints -------------------------------------
    rpc_server = RpcServer(servers[0])
    rpc_server.register("square", lambda x: x * x)
    rpc = RpcClient(clients[0], server_index=0)
    stop2 = {"flag": False}
    sproc.spawn_thread(lambda thr: rpc_server.serve_loop(thr, stop2), name="rpc-server")

    def rpc_client(thr):
        result = yield from rpc.call(thr, rpc_server, "square", 12)
        print(f"rpc square(12) = {result}")
        stop2["flag"] = True

    cluster.node(1).start_process("rpc").spawn_thread(rpc_client)
    cluster.run(until=sim.now + ms(100))
    session.close()


if __name__ == "__main__":
    main()
