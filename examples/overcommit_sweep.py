"""Overcommit demo: one NI's frames shared by 16x the endpoints.

The Section 6.4 claim in miniature: 64 client endpoints hammer one
server NI that has only 4 endpoint frames, once under the paper's
``random`` victim choice and once under ``active-preference`` (which
refuses to evict endpoints with queued work while an idle one exists).
Both stay serviceable — the virtual network degrades, it does not
collapse — but the smarter policy wastes less of the re-mapping
machinery: compare the thrash scores (bounced evictions per remap).

The run is deterministic: same seed, bit-identical cell digests.

Run:  PYTHONPATH=src python examples/overcommit_sweep.py [seed]
"""

import sys

from repro.scale import ScaleCellConfig, run_cell


def main(seed: int = 1999) -> None:
    shape = dict(ratio=16, endpoint_frames=4, client_nodes=4,
                 duration_ms=40.0, warmup_ms=20.0, seed=seed)
    results = {}
    for policy in ("random", "active-preference"):
        r = run_cell(ScaleCellConfig(policy=policy, **shape))
        results[policy] = r
        print(f"--- {policy}: {r.nclients} endpoints -> {r.frames} frames "
              f"({r.ratio}:1 overcommit)")
        print(f"    goodput      {r.goodput_msgs_s / 1e3:8.1f} K msg/s "
              f"(p50 {r.p50_us:.0f} us, p99 {r.p99_us:.0f} us)")
        print(f"    re-mapping   {r.remaps_per_s:8.1f} remaps/s, "
              f"{r.evictions} evictions, {r.bounced_evictions} bounced")
        print(f"    thrash score {r.thrash_score:8.2f}  "
              f"(evict/remap {r.eviction_remap_ratio:.2f})")
        print(f"    cell digest  {r.digest[:16]}")

    rnd, ap = results["random"], results["active-preference"]
    print(f"--- degradation is graceful: worst goodput "
          f"{min(rnd.goodput_msgs_s, ap.goodput_msgs_s) / 1e3:.1f} K msg/s "
          f"at {rnd.ratio}:1 (never zero)")
    if ap.thrash_score < rnd.thrash_score:
        print(f"--- active-preference wasted less re-mapping work: "
              f"thrash {ap.thrash_score:.2f} vs random's {rnd.thrash_score:.2f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1999)
