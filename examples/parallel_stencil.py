"""A parallel MPI application: 2-D Jacobi stencil with halo exchange.

The "traditional parallel library" path of Figure 1: an iterative solver
written against the mini-MPI layer (our MPICH-on-AM stand-in), run on 8
simulated nodes.  Prints per-iteration times and the communication
fraction, then the measured speedup against a 2-node run.

Run:  python examples/parallel_stencil.py
"""

from repro.cluster import Cluster, ClusterConfig
from repro.lib.mpi import build_world
from repro.sim import ms, us

ITERATIONS = 20
GRID = 1024           # global grid edge (conceptual)
COMPUTE_US_PER_ROW = 2.0


def run_stencil(nprocs: int) -> float:
    """Returns simulated seconds per iteration."""
    cluster = Cluster(ClusterConfig(num_hosts=max(2, nprocs)))
    sim = cluster.sim
    world = cluster.run_process(build_world(cluster, list(range(nprocs))), "mpi")
    iter_ns = []

    def main(thr, comm):
        rows = GRID // comm.size
        halo_bytes = GRID * 8  # one row of doubles each way
        yield from comm.barrier(thr)
        t0 = sim.now
        for it in range(ITERATIONS):
            yield from thr.compute(us(rows * COMPUTE_US_PER_ROW))
            up = (comm.rank - 1) % comm.size
            down = (comm.rank + 1) % comm.size
            yield from comm.sendrecv(thr, down, up, ("halo", it, 0), halo_bytes)
            yield from comm.sendrecv(thr, up, down, ("halo", it, 1), halo_bytes)
            # convergence check every few iterations
            if it % 5 == 4:
                yield from comm.allreduce(thr, 0.5, max, 8)
        if comm.rank == 0:
            iter_ns.append((sim.now - t0) / ITERATIONS)
        return comm.comm_ns

    threads = world.spawn(main)
    cluster.run(until=sim.now + ms(30_000))
    assert all(t.finished for t in threads)
    comm_total = sum(t.result for t in threads)
    frac = comm_total / (nprocs * iter_ns[0] * ITERATIONS)
    print(
        f"  p={nprocs:2d}: {iter_ns[0] / 1e6:7.3f} ms/iter,"
        f" communication {frac * 100:4.1f}% of rank-time"
    )
    return iter_ns[0] / 1e9


def main() -> None:
    print(f"2-D Jacobi, {GRID}x{GRID} grid, {ITERATIONS} iterations (simulated NOW):")
    t2 = run_stencil(2)
    t4 = run_stencil(4)
    t8 = run_stencil(8)
    print(f"speedup 2->4 procs: {t2 / t4:.2f}x (ideal 2.0)")
    print(f"speedup 2->8 procs: {t2 / t8:.2f}x (ideal 4.0)")
    print("(halo exchange is latency-bound at this grid size, so speedup"
          " flattens -- larger grids amortize the per-message gap)")


if __name__ == "__main__":
    main()
