"""Quickstart: two processes exchange Active Messages over a virtual network.

Builds a 4-node simulated cluster, creates one endpoint per node on nodes
0 and 1, wires them into a virtual network, and runs a request/reply
exchange plus a 64 KB bulk transfer — the core programming model of
Section 3.

Run:  python examples/quickstart.py
"""

from repro.api import Session
from repro.sim import ms


def main() -> None:
    # A session builds the cluster and a virtual network — endpoints that
    # refer to one another (§3.1) — and frees the endpoints on exit.
    session = Session(nodes=[0, 1], num_hosts=4)
    cluster = session.cluster
    sim = session.sim

    ep0, ep1 = session.endpoints
    print(f"endpoint names: {ep0.name} (key {ep0.tag:#x}), {ep1.name}")

    greetings = []
    bulk_done = []

    def greet_handler(token, text):
        greetings.append(text)
        token.reply(lambda t, r: print(f"[node0 t={sim.now/1e6:.3f}ms] reply: {r}"), f"re: {text}")

    def bulk_handler(token):
        bulk_done.append(token.nbytes)
        print(f"[node1 t={sim.now/1e6:.3f}ms] bulk transfer of {token.nbytes} bytes arrived")

    # Application threads: generators that consume simulated CPU.
    p0 = cluster.node(0).start_process("app0")
    p1 = cluster.node(1).start_process("app1")

    def client(thr):
        # small request: index 1 names node 1's endpoint (§3.1 translation)
        yield from ep0.request(thr, 1, greet_handler, "hello, virtual networks")
        # bulk: fragmented at the MTU, reassembled at the receiver
        yield from ep0.request(thr, 1, bulk_handler, nbytes=65536)
        # poll until both replies returned our credits
        while ep0.credits_available(1) < cluster.cfg.user_credits:
            yield from ep0.poll(thr)
            yield from thr.compute(2_000)

    def server(thr):
        # service until both the greeting and the bulk transfer arrived
        # (they ride different transport channels and may reorder)
        while not (bulk_done and greetings):
            yield from ep1.poll(thr)
            yield from thr.compute(2_000)

    p1.spawn_thread(server)
    p0.spawn_thread(client)
    cluster.run(until=sim.now + ms(200))

    print(f"greetings delivered: {greetings}")
    print(f"node0 endpoint is now {ep0.state.residency.value} "
          f"(paged onto the NI on first use, Figure 2)")
    print(f"re-mappings on node 0: {cluster.node(0).driver.stats.remaps}")
    session.close()  # AM_Terminate analog: frees both endpoints


if __name__ == "__main__":
    main()
