"""Parallel I/O and byte streams over virtual networks.

Two Figure-1 subsystems in one demo:
  * a striped parallel file (the River-style I/O subsystem): one client
    writes/reads a file striped across four storage servers, showing the
    aggregate-bandwidth benefit of parallel disks over one;
  * a sockets-style byte stream between two nodes, running over the same
    Active Message endpoints (the "standard sockets ... can leverage the
    performance of the network" path).

Run:  python examples/parallel_io.py
"""

from repro.am import NameService
from repro.apps.pario import DiskModel, build_pario
from repro.cluster import Cluster, ClusterConfig
from repro.lib.streams import stream_connect, stream_listen
from repro.sim import ms

FILE_BYTES = 8 * 65536  # 512 KB


def striped_io(cluster, nservers: int) -> float:
    """Write + read a 512 KB file over `nservers` disks; returns read MB/s."""
    sf, servers, stop = cluster.run_process(
        build_pario(cluster, 0, list(range(1, nservers + 1)),
                    disk=DiskModel(seek_us=4_000.0, transfer_mb_s=12.0)),
        "pario",
    )
    payload = bytes(i % 251 for i in range(FILE_BYTES))
    result = {}

    def client(thr):
        yield from sf.write(thr, "data", payload)
        t0 = cluster.sim.now
        data = yield from sf.read(thr, "data", FILE_BYTES)
        result["mb_s"] = FILE_BYTES * 1e3 / (cluster.sim.now - t0)
        assert data == payload
        stop["flag"] = True

    t = cluster.node(0).start_process().spawn_thread(client)
    cluster.run(until=cluster.sim.now + ms(30_000))
    assert t.finished
    return result["mb_s"]


def stream_demo(cluster) -> None:
    names = NameService()
    listener = cluster.run_process(stream_listen(cluster, 6, "echo", names), "listen")

    def server(thr):
        sock = yield from listener.accept(thr, cluster)
        while True:
            chunk = yield from sock.recv(thr, 65536)
            if not chunk:
                break
            yield from sock.send(thr, chunk[::-1])
        yield from sock.close(thr)

    def client(thr):
        sock = yield from stream_connect(thr, cluster, 7, "echo", names)
        yield from sock.send(thr, b"virtual networks")
        reply = yield from sock.recv_exact(thr, 16)
        print(f"stream echo: {reply.decode()!r}")
        yield from sock.close(thr)

    cluster.node(6).start_process().spawn_thread(server)
    ct = cluster.node(7).start_process().spawn_thread(client)
    cluster.run(until=cluster.sim.now + ms(2_000))
    assert ct.finished


def main() -> None:
    print(f"striping a {FILE_BYTES // 1024} KB file over simulated 12 MB/s disks:")
    one = striped_io(Cluster(ClusterConfig(num_hosts=8)), 1)
    four = striped_io(Cluster(ClusterConfig(num_hosts=8)), 4)
    print(f"  1 server : {one:6.1f} MB/s read")
    print(f"  4 servers: {four:6.1f} MB/s read  ({four / one:.1f}x — disks in parallel)")
    print()
    stream_demo(Cluster(ClusterConfig(num_hosts=8)))


if __name__ == "__main__":
    main()
