"""Chaos demo: a crash/reboot + kill storm audited by the invariant checker.

A client/server virtual network (the Section 6.4 star) runs under a
seeded storm: the transient faults — node crashes with reboots, a loss
ramp — must be *masked* by the transport protocol, while the permanent
fault (a client process killed mid-traffic) must surface as
return-to-sender (Section 3.2).  Afterwards the trace-driven checker
(:mod:`repro.chaos.invariants`) audits the whole timeline: every
accepted message delivered exactly once or returned with a reason, and
the cluster fully quiescent.

The run is deterministic: same seed, same storm, bit-identical timeline
(the digest printed at the end proves it — compare across runs).

Run:  PYTHONPATH=src python examples/chaos_storm.py [seed]
"""

import sys

from repro.chaos import ScheduleGenerator, run_chaos


def main(seed: int = 1999) -> None:
    gen = ScheduleGenerator(
        seed,
        num_hosts=8,
        num_spines=2,
        num_procs=4,   # 1 server + 3 clients
        num_eps=4,
        duration_ns=20_000_000,
        profile="brutal",
    )

    for name in ("crash_storm", "kill_storm"):
        scenario = gen.generate(name)
        print(f"--- {scenario.describe()}")
        for a in scenario.actions:
            print(f"    t={a.at_ns / 1e6:6.2f}ms  {a.kind}{a.params}")
        report = run_chaos(scenario, "client_server", num_hosts=8)
        print(f"    {report.summary()}")
        if report.goodput_outage_msg_s is not None:
            print(f"    goodput: {report.goodput_clear_msg_s / 1e3:.1f} K msg/s clear, "
                  f"{report.goodput_outage_msg_s / 1e3:.1f} K msg/s during outage")
        print(f"    timeline digest: {report.digest[:32]}…")
        if not report.ok:
            for v in report.violations:
                print(f"    VIOLATION: {v}")
            raise SystemExit(1)

    print("\nstorms weathered: transient faults masked, kills returned to "
          "sender, every run quiescent — the delivery contract held.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1999)
