"""Robustness demo: hot-swap and node-crash handling (Sections 3.2, 5.1).

Two scenarios on one cluster:

1. **Hot-swap**: a spine switch is pulled mid-stream; the static
   channel-to-route binding falls back to live spines and the transport
   protocol masks the reconfiguration — every message is still delivered
   exactly once.
2. **Node crash**: the destination node dies; after the dead-timeout the
   in-flight messages come back through the *undeliverable message
   handler*, so the (error-aware) application can re-issue them to a
   replica instead of hanging.

Run:  python examples/hotswap_failover.py
"""

from repro.api import Session
from repro.sim import ms


def main() -> None:
    session = Session(nodes=[0, 9, 10], num_hosts=12, dead_timeout_ms=20.0)
    cluster = session.cluster
    sim = session.sim
    ep0, ep_primary, ep_replica = session.endpoints

    received = {"primary": 0, "replica": 0}
    returned = []
    ep0.undeliverable_handler = lambda msg, reason: returned.append(reason)

    def primary_handler(token, i):
        received["primary"] += 1

    def replica_handler(token, i):
        received["replica"] += 1

    # --- scenario 1: hot-swap a spine mid-stream -----------------------
    def swapper():
        yield sim.timeout(ms(2))
        print(f"[t={sim.now/1e6:.1f}ms] hot-swap: spine 1 pulled")
        cluster.faults.set_spine(1, up=False)
        yield sim.timeout(ms(6))
        cluster.faults.set_spine(1, up=True)
        print(f"[t={sim.now/1e6:.1f}ms] hot-swap: spine 1 restored")

    def sender(thr):
        for i in range(300):
            yield from ep0.request(thr, 1, primary_handler, i)
            yield from ep0.poll(thr, limit=4)
        while ep0.credits_available(1) < cluster.cfg.user_credits:
            yield from ep0.poll(thr)
            yield from thr.compute(2_000)

    def receiver(thr, ep, count_key, expect):
        while received[count_key] < expect:
            yield from ep.poll(thr)
            yield from thr.compute(2_000)

    sim.spawn(swapper())
    cluster.node(9).start_process().spawn_thread(lambda thr: receiver(thr, ep_primary, "primary", 300))
    cluster.node(0).start_process().spawn_thread(sender)
    cluster.run(until=sim.now + ms(300))
    print(f"hot-swap: {received['primary']}/300 delivered exactly once "
          f"(retransmissions: {cluster.node(0).nic.stats.retransmissions})")

    # --- scenario 2: crash the primary, fail over to the replica --------
    print(f"\n[t={sim.now/1e6:.1f}ms] crashing node 9")
    cluster.crash_node(9)

    def failover_client(thr):
        for i in range(10):
            yield from ep0.request(thr, 1, primary_handler, i)  # doomed
        # poll: the transport returns them after the dead timeout (§3.2)
        while len(returned) < 10:
            yield from ep0.poll(thr)
            yield from thr.compute(5_000)
        print(f"{len(returned)} messages returned to sender ({returned[0]})")
        # error-aware recovery: re-issue to the replica (index 2)
        for i in range(10):
            yield from ep0.request(thr, 2, replica_handler, i)
        while received["replica"] < 10:
            yield from ep0.poll(thr)
            yield from thr.compute(5_000)

    cluster.node(10).start_process().spawn_thread(
        lambda thr: receiver(thr, ep_replica, "replica", 10)
    )
    cluster.node(0).start_process().spawn_thread(failover_client)
    cluster.run(until=sim.now + ms(500))
    print(f"failover complete: replica handled {received['replica']}/10 re-issued requests")
    session.close()  # frees live endpoints; the crashed node's are skipped


if __name__ == "__main__":
    main()
