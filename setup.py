"""Thin shim so legacy editable installs work offline (no `wheel` package).

All real metadata lives in pyproject.toml.  Use:
    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
