"""Plain-text table/series reporting for the benchmark harnesses.

Every harness prints the same rows/series the paper's figures show, plus a
"paper" column where the paper gives a number, so paper-vs-measured is
visible at a glance (and recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = ["format_table", "print_table", "format_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    def fmt(x: Any) -> str:
        if isinstance(x, float):
            return f"{x:.2f}"
        return str(x)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> None:
    print(format_table(headers, rows, title=title))
    print()


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any], unit: str = "") -> str:
    pts = ", ".join(f"{x}:{y:.1f}" if isinstance(y, float) else f"{x}:{y}" for x, y in zip(xs, ys))
    suffix = f" [{unit}]" if unit else ""
    return f"{name}{suffix}: {pts}"
