"""Figure 5: NAS Parallel Benchmark speedups (Class A) through 32/36 procs.

Runs each benchmark's communication skeleton on the simulated NOW and
prints speedup series alongside the analytic SP-2 and Origin-2000 machine
models.  Paper shapes: all but FT and IS show (near-)linear speedups on
the NOW; FT and IS are limited by bisection bandwidth; NOW scalability
beats the SP-2; Origin execution times are within 2x of the NOW's.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..apps.npb import MACHINES, NPB_SPECS, analytic_time, run_npb, valid_proc_counts
from ..cluster.config import ClusterConfig
from .reporting import format_series, format_table

__all__ = ["speedup_series", "main", "DEFAULT_BENCHMARKS"]

DEFAULT_BENCHMARKS = ["bt", "sp", "lu", "mg", "ft", "is", "cg", "ep"]


def speedup_series(
    name: str,
    proc_counts: Optional[Sequence[int]] = None,
    cfg: Optional[ClusterConfig] = None,
) -> list[tuple[int, float, float]]:
    """[(p, speedup, comm_fraction)] for one benchmark on the NOW."""
    counts = list(proc_counts or valid_proc_counts(name, 36))
    out = []
    for p in counts:
        r = run_npb(name, p, cfg=cfg)
        out.append((p, r.speedup, r.comm_fraction))
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description="Figure 5: NPB speedups")
    parser.add_argument("--benchmarks", nargs="*", default=DEFAULT_BENCHMARKS)
    parser.add_argument("--max-procs", type=int, default=36)
    args = parser.parse_args()

    for name in args.benchmarks:
        counts = valid_proc_counts(name, args.max_procs)
        series = speedup_series(name, counts)
        xs = [p for p, _, _ in series]
        now = [s for _, s, _ in series]
        commf = [f for _, _, f in series]
        sp2 = [analytic_time(name, 1, MACHINES["sp2"]) / analytic_time(name, p, MACHINES["sp2"]) for p in xs]
        origin = [
            analytic_time(name, 1, MACHINES["origin2000"]) / analytic_time(name, p, MACHINES["origin2000"])
            for p in xs
        ]
        rows = [
            [p, p * 1.0, s_now, s_sp2, s_org, f * 100]
            for p, s_now, s_sp2, s_org, f in zip(xs, now, sp2, origin, commf)
        ]
        print(
            format_table(
                ["procs", "ideal", "NOW (sim)", "SP-2 (model)", "Origin (model)", "comm %"],
                rows,
                title=f"NPB 2.2 {name.upper()} Class A speedups (Figure 5)",
            )
        )
        print()


if __name__ == "__main__":
    main()
