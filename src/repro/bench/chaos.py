"""Chaos matrix runner + availability benchmark.

Executes a seed × scenario × workload matrix of deterministic chaos runs
(:func:`repro.chaos.run_chaos`), audits every run against the delivery
contract, and reports the availability picture the paper's robustness
story implies (Section 3.2 / 5.1): how much goodput survives *during* a
crash outage, and how quickly traffic involving a rebooted node resumes.

Run as a module::

    PYTHONPATH=src python -m repro.bench.chaos --smoke
    PYTHONPATH=src python -m repro.bench.chaos --seeds 1 2 3 4 5 \\
        --profile brutal --trace-dir /tmp/chaos-traces

Exit status is non-zero if any run violated an invariant; with
``--trace-dir`` each failing run's full timeline is exported there as
Chrome ``trace_event`` JSON (load in ``chrome://tracing`` or Perfetto)
so the failure can be inspected event by event — and, runs being
bit-deterministic, replayed exactly.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from ..chaos import SCENARIO_FAMILIES, ChaosReport, ScheduleGenerator, run_chaos
from .reporting import print_table

__all__ = ["run_matrix", "main"]

#: (workload, kwargs) pairs exercised by the full matrix
_WORKLOADS = ("pairwise", "bulk", "client_server", "collective")


def run_matrix(
    seeds: Sequence[int],
    scenarios: Sequence[str] = SCENARIO_FAMILIES,
    workloads: Sequence[str] = _WORKLOADS,
    profile: str = "rough",
    num_hosts: int = 8,
    duration_ns: int = 20_000_000,
    trace_dir: Optional[str] = None,
) -> list[ChaosReport]:
    """Run the full matrix; returns one report per (seed, scenario, workload)."""
    reports: list[ChaosReport] = []
    for seed in seeds:
        gen = ScheduleGenerator(
            seed,
            num_hosts=num_hosts,
            num_spines=max(1, num_hosts // 4),
            num_procs=4,
            num_eps=4,
            duration_ns=duration_ns,
            profile=profile,
        )
        for name in scenarios:
            scenario = gen.generate(name)
            for wl in workloads:
                trace_path = None
                if trace_dir:
                    os.makedirs(trace_dir, exist_ok=True)
                    trace_path = os.path.join(
                        trace_dir, f"chaos-{name}-{wl}-s{seed}-{profile}.json")
                reports.append(run_chaos(scenario, wl, num_hosts=num_hosts,
                                         trace_path=trace_path))
    return reports


def _report_rows(reports: list[ChaosReport]) -> list[list]:
    rows = []
    for r in reports:
        rows.append([
            r.scenario, r.workload, r.seed,
            r.accepted, r.delivered, r.returned, r.faults_injected,
            f"{r.goodput_clear_msg_s / 1e3:.1f}",
            (f"{r.goodput_outage_msg_s / 1e3:.1f}"
             if r.goodput_outage_msg_s is not None else "-"),
            (f"{r.recovery_ns / 1e6:.2f}" if r.recovery_ns is not None else "-"),
            "ok" if r.ok else f"{len(r.violations)} VIOL",
        ])
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3, 4, 5],
                    help="schedule-generator seeds (one matrix slice per seed)")
    ap.add_argument("--profile", choices=("mild", "rough", "brutal"),
                    default="rough", help="fault intensity profile")
    ap.add_argument("--scenarios", nargs="+", default=list(SCENARIO_FAMILIES),
                    choices=SCENARIO_FAMILIES, metavar="SCENARIO",
                    help="scenario families to run")
    ap.add_argument("--workloads", nargs="+", default=list(_WORKLOADS),
                    choices=_WORKLOADS, metavar="WORKLOAD")
    ap.add_argument("--hosts", type=int, default=8)
    ap.add_argument("--duration-ms", type=float, default=20.0,
                    help="scenario length in simulated milliseconds")
    ap.add_argument("--trace-dir", default=None,
                    help="export Chrome trace JSON here for each failing run")
    ap.add_argument("--smoke", action="store_true",
                    help="small fixed matrix for CI: 2 seeds x 4 scenarios")
    args = ap.parse_args(argv)

    if args.smoke:
        args.seeds = [1, 2]
        args.scenarios = ["loss_ramp", "crash_storm", "kill_storm", "mixed",
                          "collective_storm"]

    reports = run_matrix(
        args.seeds,
        scenarios=args.scenarios,
        workloads=args.workloads,
        profile=args.profile,
        num_hosts=args.hosts,
        duration_ns=round(args.duration_ms * 1e6),
        trace_dir=args.trace_dir,
    )

    print_table(
        ["scenario", "workload", "seed", "accept", "deliver", "return",
         "faults", "clear K/s", "outage K/s", "recov ms", "status"],
        _report_rows(reports),
        title=f"chaos matrix: profile={args.profile}, "
              f"{len(reports)} runs, all invariants audited",
    )

    bad = [r for r in reports if not r.ok]
    if bad:
        print(f"{len(bad)} run(s) violated the delivery contract:", file=sys.stderr)
        for r in bad:
            print(f"  {r.summary()}", file=sys.stderr)
            for v in r.violations[:8]:
                print(f"    {v}", file=sys.stderr)
        if args.trace_dir:
            print(f"  Chrome traces exported under {args.trace_dir}", file=sys.stderr)
        return 1
    outages = [r for r in reports if r.goodput_outage_msg_s is not None]
    if outages:
        avg_out = sum(r.goodput_outage_msg_s for r in outages) / len(outages)
        avg_clear = sum(r.goodput_clear_msg_s for r in outages) / len(outages)
        recs = [r.recovery_ns for r in outages if r.recovery_ns is not None]
        rec = f", worst recovery {max(recs) / 1e6:.2f} ms" if recs else ""
        print(f"availability: goodput during outage {avg_out / 1e3:.1f} K msg/s "
              f"vs {avg_clear / 1e3:.1f} K msg/s clear{rec}")
    print(f"all {len(reports)} runs satisfied the delivery contract")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
