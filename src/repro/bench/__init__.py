"""Benchmark harnesses regenerating the paper's tables and figures."""

from .reporting import format_series, format_table, print_table

__all__ = ["format_series", "format_table", "print_table"]
