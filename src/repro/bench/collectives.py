"""Collective-strategy benchmark: host vs firmware vs express trees.

One cell per (cluster size, strategy): a full ``lib.mpi`` world runs
Barrier, Bcast (1 KiB from rank 0) and Reduce (integer sum) once each
after a warm-up barrier, on an otherwise idle fabric.  The figure of
merit is the **simulated makespan** of each operation — latest rank
completion minus earliest rank start — which is machine-independent, so
the strategy comparison is gateable in CI:

* ``host``     — the dissemination/binomial message patterns over AM;
* ``firmware`` — NI-forwarded k-ary spanning trees (one descriptor per
  host, all interior steps in LANai firmware);
* ``express``  — the same up tree, down phase posted as one fabric
  multicast over the precomputed spanning tree.

The committed gate: at 128 nodes the express tree must beat the host
tree by ``EXPRESS_GATE``x on every operation.  Results merge into
``BENCH_PERF.json`` under the ``collectives`` key (``--out`` elsewhere
for CI artifacts); ``--smoke`` shrinks the sizes and runs the whole
suite twice, asserting bit-identical digests.

Run as a module::

    PYTHONPATH=src python -m repro bench collectives --smoke
    PYTHONPATH=src python -m repro.bench.collectives --sizes 32 128 512
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time
from typing import Optional, Sequence

from ..cluster.config import ClusterConfig
from ..sim.core import SimError
from .reporting import print_table

__all__ = ["EXPRESS_GATE", "STRATEGIES", "run_cell", "run_collectives", "main"]

STRATEGIES = ("host", "firmware", "express")
OPS = ("barrier", "bcast", "reduce")
SIZES = (32, 128, 512)
SMOKE_SIZES = (8, 16)
#: required host/express makespan ratio at the gate size, every op
EXPRESS_GATE = 1.5
GATE_SIZE = 128
BCAST_BYTES = 1024


def run_cell(size: int, strategy: str, engine=None,
             cfg: Optional[ClusterConfig] = None) -> dict:
    """One (size, strategy) cell; returns op makespans + digest."""
    from ..api import Cluster
    from ..lib.mpi import build_world

    cfg = (cfg or ClusterConfig()).with_(
        num_hosts=size, collective_strategy=strategy)
    spans: dict[int, list] = {}
    t0 = time.perf_counter()
    with Cluster(cfg, engine=engine) as cl:
        world = cl.run_process(build_world(cl, list(range(size))), "coll")

        def main_body(thr, comm):
            out = []
            yield from comm.barrier(thr)  # align ranks before measuring
            for op in OPS:
                start = cl.sim.now
                if op == "barrier":
                    result = yield from comm.barrier(thr)
                elif op == "bcast":
                    result = yield from comm.bcast(
                        thr, 0, BCAST_BYTES,
                        payload=("blob", size) if comm.rank == 0 else None)
                else:
                    result = yield from comm.reduce(
                        thr, 0, comm.rank + 1, "sum", 8)
                out.append((op, start, cl.sim.now, result))
            spans[comm.rank] = out

        world.spawn(main_body)
        cl.run()
        events = cl.sim.events_dispatched
        sim_ns = cl.sim.now
    wall = time.perf_counter() - t0

    latency = {}
    for i, op in enumerate(OPS):
        starts = [spans[r][i][1] for r in range(size)]
        ends = [spans[r][i][2] for r in range(size)]
        latency[op] = max(ends) - min(starts)

    # Semantic conformance folded into every bench run: the broadcast
    # payload lands on every rank, the reduce sum lands only at root.
    ok = all(spans[r][1][3] == ("blob", size) for r in range(size))
    total = size * (size + 1) // 2
    ok = ok and spans[0][2][3] == total
    ok = ok and all(spans[r][2][3] is None for r in range(1, size))

    h = hashlib.sha256()
    for r in range(size):
        h.update(repr((r, spans[r])).encode())
    return {
        "size": size,
        "strategy": strategy,
        "latency_ns": latency,
        "semantics_ok": ok,
        "events": events,
        "sim_ns": sim_ns,
        "wall_s": round(wall, 4),
        "events_per_sec": round(events / wall) if wall > 0 else 0,
        "digest": h.hexdigest(),
    }


def run_collectives(sizes: Sequence[int] = SIZES,
                    strategies: Sequence[str] = STRATEGIES,
                    engine=None) -> dict:
    """The full size x strategy matrix plus the express-vs-host gate."""
    cells = {}
    for size in sizes:
        for strategy in strategies:
            cells[f"{strategy}@{size}"] = run_cell(size, strategy, engine)
    out: dict = {"sizes": list(sizes), "strategies": list(strategies),
                 "cells": cells}
    gate = GATE_SIZE if GATE_SIZE in sizes else max(sizes)
    host = cells.get(f"host@{gate}")
    express = cells.get(f"express@{gate}")
    if host is not None and express is not None:
        ratios = {op: round(host["latency_ns"][op] / express["latency_ns"][op], 2)
                  for op in OPS}
        out["gate"] = {
            "size": gate,
            "required_speedup": EXPRESS_GATE,
            "express_vs_host": ratios,
            "ok": min(ratios.values()) >= EXPRESS_GATE,
        }
    out["semantics_ok"] = all(c["semantics_ok"] for c in cells.values())
    h = hashlib.sha256()
    for key in sorted(cells):
        h.update(cells[key]["digest"].encode())
    out["digest"] = h.hexdigest()
    return out


def _print(result: dict) -> None:
    rows = []
    for key in sorted(result["cells"], key=lambda k: (int(k.split("@")[1]), k)):
        c = result["cells"][key]
        rows.append([
            c["size"], c["strategy"],
            *(f"{c['latency_ns'][op] / 1000:.1f}" for op in OPS),
            "ok" if c["semantics_ok"] else "FAIL",
            f"{c['events_per_sec']:,}/s",
        ])
    print_table(["nodes", "strategy", "barrier us", "bcast us", "reduce us",
                 "semantics", "throughput"], rows,
                title="collective strategies (simulated makespan)")
    gate = result.get("gate")
    if gate:
        status = "PASS" if gate["ok"] else "FAIL"
        print(f"express-vs-host gate at {gate['size']} nodes "
              f"(need >= {gate['required_speedup']}x): "
              f"{gate['express_vs_host']} -> {status}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--sizes", type=int, nargs="+", default=list(SIZES))
    ap.add_argument("--strategies", nargs="+", default=list(STRATEGIES),
                    choices=STRATEGIES, metavar="STRATEGY")
    ap.add_argument("--engine", default=None,
                    choices=("sequential", "reference", "sharded"))
    ap.add_argument("--smoke", action="store_true",
                    help="CI sizes plus a second full pass asserting "
                         "bit-identical digests (determinism gate)")
    ap.add_argument("--out", default="BENCH_PERF.json",
                    help="JSON to merge the 'collectives' section into "
                         "(created if missing; other keys preserved)")
    args = ap.parse_args(argv)

    sizes = list(SMOKE_SIZES) if args.smoke else args.sizes
    result = run_collectives(sizes, args.strategies, engine=args.engine)
    _print(result)
    if args.smoke:
        again = run_collectives(sizes, args.strategies, engine=args.engine)
        if again["digest"] != result["digest"]:
            raise SimError(
                f"collectives smoke is nondeterministic: "
                f"{result['digest'][:12]} != {again['digest'][:12]}")
        print(f"double-run digest match: {result['digest'][:16]}")

    try:
        with open(args.out) as f:
            doc = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        doc = {"schema": 1}
    doc["collectives"] = result
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")

    if not result["semantics_ok"]:
        print("SEMANTIC FAILURE: a collective returned wrong results")
        return 1
    gate = result.get("gate")
    if gate is not None and not gate["ok"]:
        print(f"GATE FAILURE: express tree under {EXPRESS_GATE}x vs host")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
