"""Perf-regression harness for the event-kernel hot path.

Runs three canonical scenarios —

* **logp_pingpong**  — the Figure 3 request/reply cycle, back to back;
* **fig6_contention** — the Section 6.4 client/server thrash (OneVN);
* **chaos_smoke**    — one deterministic chaos run (mixed faults,
  pairwise workload) with the delivery-contract audit on;

— and measures, for each, the kernel event throughput (events/s via
``Simulator.events_dispatched``), wall-clock time, and peak Python heap
(``tracemalloc``, on a reduced-scale pass so tracing overhead does not
pollute the throughput numbers).  Results land in ``BENCH_PERF.json``.

Correctness is checked against :class:`repro.sim.ReferenceSimulator`,
a kernel that keeps the pre-optimization generic scheduling paths (no
entry pool, no timeout free-list, no typed resume dispatch).  Both
kernels run the *same* library code, so under ``--reference`` each
scenario is replayed on both and must produce

* **bit-identical timeline digests** (SHA-256 over the normalized trace,
  for the traced scenarios) and identical end-state counters, and
* the **same number of dispatched kernel events** — the fast paths must
  not add or remove events, only make each one cheaper.

Because the event counts match, the optimized/reference events-per-sec
ratio is a machine-independent speedup figure; ``--check`` fails (exit
1) if that ratio has dropped more than 20% below the recorded baseline
(the committed ``BENCH_PERF.json``), which is how CI catches hot-path
regressions without trusting absolute wall-clock on shared runners.

Run as a module::

    PYTHONPATH=src python -m repro.bench.perf                 # measure
    PYTHONPATH=src python -m repro.bench.perf --reference     # + oracle
    PYTHONPATH=src python -m repro.bench.perf --check         # CI gate
"""

from __future__ import annotations

import argparse
import json
import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..am.vnet import parallel_vnet
from ..apps.clientserver import ContentionConfig, run_contention
from ..chaos import ScheduleGenerator, reset_global_ids, run_chaos, timeline_digest
from ..cluster.builder import Cluster
from ..cluster.config import ClusterConfig
from ..sim import ReferenceSimulator, Simulator, ms
from .reporting import print_table

__all__ = ["SCENARIOS", "Scale", "run_scenario", "run_suite", "check_baseline", "main"]

SCENARIOS = ("logp_pingpong", "fig6_contention", "chaos_smoke")

#: drop tolerated by --check before the gate fails (the >20% rule)
CHECK_TOLERANCE = 0.8


@dataclass(frozen=True)
class Scale:
    """Problem sizes for one harness pass."""

    pingpong_rounds: int = 600
    contention_warmup_ms: float = 40.0
    contention_duration_ms: float = 60.0
    chaos_duration_ns: int = 8_000_000

    def shrunk(self) -> "Scale":
        """A reduced-scale variant for the tracemalloc (peak-heap) pass."""
        return Scale(
            pingpong_rounds=max(50, self.pingpong_rounds // 5),
            contention_warmup_ms=self.contention_warmup_ms / 2,
            contention_duration_ms=max(10.0, self.contention_duration_ms / 3),
            chaos_duration_ns=max(2_000_000, self.chaos_duration_ns // 3),
        )


QUICK = Scale(pingpong_rounds=200, contention_warmup_ms=20.0,
              contention_duration_ms=25.0, chaos_duration_ns=4_000_000)


# --------------------------------------------------------------- scenarios
def _run_pingpong(sim_factory: Callable, scale: Scale, traced: bool) -> dict:
    """N request/reply round trips between two endpoints (Figure 3 cycle)."""
    reset_global_ids()
    rounds = scale.pingpong_rounds
    cluster = Cluster(ClusterConfig(num_hosts=4), sim_factory=sim_factory)
    bus = cluster.enable_tracing() if traced else None
    sim = cluster.sim
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    done: list[int] = []

    def handler(token):
        token.reply(None)

    def receiver(thr):
        while not done:
            yield from ep1.poll(thr, limit=8)

    def sender(thr):
        for _ in range(rounds):
            yield from ep0.request(thr, 1, handler, nbytes=16)
            while True:
                got = yield from ep0.poll(thr, limit=4)
                if got:
                    break
        done.append(1)

    cluster.node(1).start_process("r").spawn_thread(receiver)
    cluster.node(0).start_process("s").spawn_thread(sender)
    t0 = time.perf_counter()
    sim.run(until=sim.now + ms(30_000), stop=lambda: bool(done))
    wall = time.perf_counter() - t0
    if not done:
        raise RuntimeError("ping-pong did not complete inside the time budget")
    digest = timeline_digest(bus.events) if traced else None
    if bus is not None:
        bus.detach()
    return {
        "wall_s": wall,
        "events": sim.events_dispatched,
        "sim_ns": sim.now,
        "digest": digest,
        # end-state that must be identical across kernels
        "checks": {"rounds": rounds, "sim_ns": sim.now, "digest": digest},
    }


def _run_contention(sim_factory: Callable, scale: Scale, traced: bool) -> dict:
    """Figure 6 OneVN contention: 4 clients thrash one shared endpoint."""
    reset_global_ids()
    ccfg = ContentionConfig(
        nclients=4, mode="one_vn",
        warmup_ms=scale.contention_warmup_ms,
        duration_ms=scale.contention_duration_ms,
    )
    t0 = time.perf_counter()
    res = run_contention(ccfg, sim_factory=sim_factory)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "events": res.events_dispatched,
        "sim_ns": res.sim_ns,
        "digest": None,
        "checks": {
            "sim_ns": res.sim_ns,
            "aggregate_msgs_s": round(res.aggregate_msgs_s, 6),
            "per_client_msgs_s": [round(x, 6) for x in res.per_client_msgs_s],
            "remaps_per_s": round(res.remaps_per_s, 6),
        },
    }


def _run_chaos_smoke(sim_factory: Callable, scale: Scale, traced: bool) -> dict:
    """One audited chaos run (mixed faults, pairwise workload, 8 hosts)."""
    gen = ScheduleGenerator(
        1, num_hosts=8, num_spines=2, num_procs=4, num_eps=4,
        duration_ns=scale.chaos_duration_ns, profile="rough",
    )
    scenario = gen.generate("mixed")
    t0 = time.perf_counter()
    report = run_chaos(scenario, "pairwise", num_hosts=8, keep=True,
                       sim_factory=sim_factory)
    wall = time.perf_counter() - t0
    if not report.ok:
        raise RuntimeError(
            f"chaos smoke run violated the delivery contract: {report.violations}")
    sim = report.cluster.sim  # type: ignore[attr-defined]
    return {
        "wall_s": wall,
        "events": sim.events_dispatched,
        "sim_ns": report.sim_ns,
        "digest": report.digest,
        "checks": {
            "digest": report.digest,
            "sim_ns": report.sim_ns,
            "accepted": report.accepted,
            "delivered": report.delivered,
            "returned": report.returned,
        },
    }


_RUNNERS = {
    "logp_pingpong": _run_pingpong,
    "fig6_contention": _run_contention,
    "chaos_smoke": _run_chaos_smoke,
}

#: scenarios whose timeline digest is compared bit-for-bit across kernels
TRACED = {"logp_pingpong": True, "fig6_contention": False, "chaos_smoke": True}


def run_scenario(name: str, sim_factory: Callable = Simulator,
                 scale: Scale = Scale(), traced: Optional[bool] = None) -> dict:
    """Run one named scenario; returns wall/events/sim_ns/digest/checks."""
    if traced is None:
        traced = TRACED[name]
    return _RUNNERS[name](sim_factory, scale, traced)


# ------------------------------------------------------------------- suite
def run_suite(reference: bool = False, quick: bool = False,
              repeat: int = 1) -> dict:
    """Measure every scenario; with ``reference``, also replay each on the
    reference kernel and record digest equality + the speedup ratio."""
    scale = QUICK if quick else Scale()
    suite: dict = {"schema": 1, "quick": quick, "scenarios": {}}
    for name in SCENARIOS:
        if reference:
            # equivalence pass first: traced where the scenario supports
            # it, so the timeline digests can be compared bit for bit
            opt = run_scenario(name, Simulator, scale, traced=TRACED[name])
            ref = run_scenario(name, ReferenceSimulator, scale,
                               traced=TRACED[name])
            if opt["checks"] != ref["checks"]:
                raise RuntimeError(
                    f"{name}: optimized and reference kernels diverged:\n"
                    f"  optimized: {opt['checks']}\n  reference: {ref['checks']}")
            if opt["events"] != ref["events"]:
                raise RuntimeError(
                    f"{name}: kernels dispatched different event counts "
                    f"({opt['events']} vs {ref['events']}) — a fast path "
                    "added or removed events")

        # speed passes, untraced (chaos is traced by construction — the
        # audit is part of that scenario).  Optimized and reference runs
        # are interleaved back to back so transient machine load hits
        # both sides of the ratio equally; best wall per side is kept.
        best = ref_best = None
        for _ in range(max(1, repeat)):
            r = run_scenario(name, Simulator, scale, traced=False)
            if best is None or r["wall_s"] < best["wall_s"]:
                best = r
            if reference:
                r2 = run_scenario(name, ReferenceSimulator, scale,
                                  traced=False)
                if ref_best is None or r2["wall_s"] < ref_best["wall_s"]:
                    ref_best = r2
        entry = {
            "events": best["events"],
            "sim_ns": best["sim_ns"],
            "wall_s": round(best["wall_s"], 4),
            "events_per_sec": round(best["events"] / best["wall_s"]),
        }
        if best["digest"]:
            entry["digest"] = best["digest"]
        if reference:
            entry["digest_match"] = True
            if opt["digest"]:
                entry["digest"] = opt["digest"]
            entry["reference_events_per_sec"] = round(
                ref_best["events"] / ref_best["wall_s"])
            entry["speedup_vs_reference"] = round(
                entry["events_per_sec"] / entry["reference_events_per_sec"], 3)

        # peak-heap pass at reduced scale, under tracemalloc
        tracemalloc.start()
        run_scenario(name, Simulator, scale.shrunk(), traced=False
                     if name != "chaos_smoke" else True)
        entry["peak_heap_bytes"] = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        suite["scenarios"][name] = entry
    return suite


def check_baseline(suite: dict, baseline: dict) -> list[str]:
    """The >20%-regression rule: current speedup_vs_reference must stay
    within CHECK_TOLERANCE of the committed baseline's.  Returns failures."""
    failures = []
    for name, base in baseline.get("scenarios", {}).items():
        base_ratio = base.get("speedup_vs_reference")
        if base_ratio is None:
            continue
        cur = suite["scenarios"].get(name, {}).get("speedup_vs_reference")
        if cur is None:
            failures.append(f"{name}: no speedup_vs_reference measured")
        elif cur < CHECK_TOLERANCE * base_ratio:
            failures.append(
                f"{name}: speedup vs reference kernel fell to {cur:.2f}x "
                f"(baseline {base_ratio:.2f}x, floor "
                f"{CHECK_TOLERANCE * base_ratio:.2f}x)")
    return failures


# --------------------------------------------------------------------- CLI
def _print_suite(suite: dict) -> None:
    headers = ["scenario", "events", "events/s", "wall s", "peak heap",
               "vs ref", "digest"]
    rows = []
    for name, e in suite["scenarios"].items():
        rows.append([
            name, e["events"], f"{e['events_per_sec']:,}",
            f"{e['wall_s']:.3f}", f"{e['peak_heap_bytes'] / 1024:.0f} KiB",
            (f"{e['speedup_vs_reference']:.2f}x"
             if "speedup_vs_reference" in e else "-"),
            ("match" if e.get("digest_match")
             else (e.get("digest", "")[:12] or "-")),
        ])
    print_table(headers, rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--reference", action="store_true",
                    help="replay each scenario on the reference kernel: "
                         "assert identical digests/state, record speedup")
    ap.add_argument("--check", action="store_true",
                    help="fail if speedup_vs_reference regressed >20%% "
                         "below the baseline JSON (implies --reference)")
    ap.add_argument("--baseline", default="BENCH_PERF.json",
                    help="baseline JSON for --check (default: committed "
                         "BENCH_PERF.json)")
    ap.add_argument("--out", default="BENCH_PERF.json",
                    help="where to write results (default BENCH_PERF.json)")
    ap.add_argument("--quick", action="store_true",
                    help="smaller problem sizes (CI smoke)")
    ap.add_argument("--repeat", type=int, default=1,
                    help="throughput passes per scenario; best wall kept")
    args = ap.parse_args(argv)

    reference = args.reference or args.check
    suite = run_suite(reference=reference, quick=args.quick,
                      repeat=args.repeat)
    _print_suite(suite)

    with open(args.out, "w") as f:
        json.dump(suite, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except FileNotFoundError:
            print(f"no baseline at {args.baseline}; nothing to check against")
            return 0
        failures = check_baseline(suite, baseline)
        for msg in failures:
            print(f"PERF REGRESSION: {msg}")
        if failures:
            return 1
        print("perf check ok: all scenarios within 20% of baseline speedup")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
