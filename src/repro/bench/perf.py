"""Perf-regression harness for the event-kernel hot path.

Runs four canonical scenarios —

* **logp_pingpong**  — the Figure 3 request/reply cycle, back to back;
* **fig6_contention** — the Section 6.4 client/server thrash (OneVN);
* **chaos_smoke**    — one deterministic chaos run (mixed faults,
  pairwise workload) with the delivery-contract audit on;
* **net_burst**      — a network-heavy all-to-all burst on a 32-host
  fabric driving :class:`~repro.myrinet.network.Network` directly:
  staggered shift-permutation waves (mostly uncontended — express-path
  food) mixed with hotspot waves (everyone to host 0 — revocation and
  fallback pressure) and loopback self-sends;
* **calib_workloads** — the datacenter diversity shapes from
  :mod:`repro.calib.workloads` (incast, RPC fan-out, streaming
  pipeline) at reduced scale, digesting their express-invariant
  observables;

— and measures, for each, the kernel event throughput (events/s via
``Simulator.events_dispatched``), wall-clock time, and peak Python heap
(``tracemalloc``, on a reduced-scale pass so tracing overhead does not
pollute the throughput numbers).  Results land in ``BENCH_PERF.json``.

Correctness is checked against :class:`repro.sim.ReferenceSimulator`,
a kernel that keeps the pre-optimization generic scheduling paths (no
entry pool, no timeout free-list, no typed resume dispatch).  Both
kernels run the *same* library code, so under ``--reference`` each
scenario is replayed on both and must produce

* **bit-identical timeline digests** (SHA-256 over the normalized trace,
  for the traced scenarios) and identical end-state counters, and
* the **same number of dispatched kernel events** — the fast paths must
  not add or remove events, only make each one cheaper.

Because the event counts match, the optimized/reference events-per-sec
ratio is a machine-independent speedup figure; ``--check`` fails (exit
1) if that ratio has dropped more than 20% below the recorded baseline
(the committed ``BENCH_PERF.json``), which is how CI catches hot-path
regressions without trusting absolute wall-clock on shared runners.

The same oracle discipline covers the fabric's **express delivery
path** (``ClusterConfig.express_path``): every scenario is replayed
with the express path forced off and the mode-invariant end state
(delivery-timeline digests, ``NetworkStats``, simulated clock) must
match bit for bit — express elides kernel *events*, never observable
behaviour.  ``net_burst`` reports the express speedup as an
events-per-second figure (baseline event count over express wall), and
``--check`` applies the same >20%-regression rule to it.

Run as a module::

    PYTHONPATH=src python -m repro.bench.perf                 # measure
    PYTHONPATH=src python -m repro.bench.perf --reference     # + oracle
    PYTHONPATH=src python -m repro.bench.perf --check         # CI gate
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time
import tracemalloc
from dataclasses import asdict, dataclass
from typing import Callable, Optional, Sequence

from ..am.vnet import parallel_vnet
from ..apps.clientserver import ContentionConfig, run_contention
from ..chaos import (ScheduleGenerator, chaos_config, reset_global_ids,
                     run_chaos, timeline_digest)
from ..cluster.builder import Cluster
from ..cluster.config import ClusterConfig
from ..myrinet.network import Network
from ..myrinet.packet import Packet, PacketType
from ..sim import ReferenceSimulator, Simulator, ms
from .reporting import print_table

__all__ = ["SCENARIOS", "Scale", "run_scenario", "run_suite", "check_baseline", "main"]

SCENARIOS = ("logp_pingpong", "fig6_contention", "chaos_smoke", "net_burst",
             "calib_workloads")

#: drop tolerated by --check before the gate fails (the >20% rule)
CHECK_TOLERANCE = 0.8


@dataclass(frozen=True)
class Scale:
    """Problem sizes for one harness pass."""

    pingpong_rounds: int = 600
    contention_warmup_ms: float = 40.0
    contention_duration_ms: float = 60.0
    chaos_duration_ns: int = 8_000_000
    burst_hosts: int = 32
    burst_waves: int = 60
    calib_rounds: int = 6
    shard_hosts_per_shard: int = 8
    shard_waves: int = 40

    def shrunk(self) -> "Scale":
        """A reduced-scale variant for the tracemalloc (peak-heap) pass."""
        return Scale(
            pingpong_rounds=max(50, self.pingpong_rounds // 5),
            contention_warmup_ms=self.contention_warmup_ms / 2,
            contention_duration_ms=max(10.0, self.contention_duration_ms / 3),
            chaos_duration_ns=max(2_000_000, self.chaos_duration_ns // 3),
            burst_hosts=self.burst_hosts,
            burst_waves=max(8, self.burst_waves // 4),
            calib_rounds=max(2, self.calib_rounds // 2),
            shard_hosts_per_shard=self.shard_hosts_per_shard,
            shard_waves=max(6, self.shard_waves // 4),
        )


QUICK = Scale(pingpong_rounds=200, contention_warmup_ms=20.0,
              contention_duration_ms=25.0, chaos_duration_ns=4_000_000,
              burst_waves=20, calib_rounds=4, shard_waves=12)


# --------------------------------------------------------------- scenarios
def _run_pingpong(sim_factory: Callable, scale: Scale, traced: bool,
                  express: bool = True) -> dict:
    """N request/reply round trips between two endpoints (Figure 3 cycle)."""
    reset_global_ids()
    rounds = scale.pingpong_rounds
    cluster = Cluster(ClusterConfig(num_hosts=4, express_path=express),
                      sim_factory=sim_factory)
    bus = cluster.enable_tracing() if traced else None
    sim = cluster.sim
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    done: list[int] = []

    def handler(token):
        token.reply(None)

    def receiver(thr):
        while not done:
            yield from ep1.poll(thr, limit=8)

    def sender(thr):
        for _ in range(rounds):
            yield from ep0.request(thr, 1, handler, nbytes=16)
            while True:
                got = yield from ep0.poll(thr, limit=4)
                if got:
                    break
        done.append(1)

    cluster.node(1).start_process("r").spawn_thread(receiver)
    cluster.node(0).start_process("s").spawn_thread(sender)
    t0 = time.perf_counter()
    sim.run(until=sim.now + ms(30_000), stop=lambda: bool(done))
    wall = time.perf_counter() - t0
    if not done:
        raise RuntimeError("ping-pong did not complete inside the time budget")
    digest = timeline_digest(bus.events) if traced else None
    if bus is not None:
        bus.detach()
    return {
        "wall_s": wall,
        "events": sim.events_dispatched,
        "sim_ns": sim.now,
        "digest": digest,
        # end-state that must be identical across kernels
        "checks": {"rounds": rounds, "sim_ns": sim.now, "digest": digest},
    }


def _run_contention(sim_factory: Callable, scale: Scale, traced: bool,
                    express: bool = True) -> dict:
    """Figure 6 OneVN contention: 4 clients thrash one shared endpoint."""
    reset_global_ids()
    ccfg = ContentionConfig(
        nclients=4, mode="one_vn",
        warmup_ms=scale.contention_warmup_ms,
        duration_ms=scale.contention_duration_ms,
        base=ClusterConfig(express_path=express),
    )
    t0 = time.perf_counter()
    res = run_contention(ccfg, sim_factory=sim_factory)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "events": res.events_dispatched,
        "sim_ns": res.sim_ns,
        "digest": None,
        "checks": {
            "sim_ns": res.sim_ns,
            "aggregate_msgs_s": round(res.aggregate_msgs_s, 6),
            "per_client_msgs_s": [round(x, 6) for x in res.per_client_msgs_s],
            "remaps_per_s": round(res.remaps_per_s, 6),
        },
    }


def _run_chaos_smoke(sim_factory: Callable, scale: Scale, traced: bool,
                     express: bool = True) -> dict:
    """One audited chaos run (mixed faults, pairwise workload, 8 hosts)."""
    gen = ScheduleGenerator(
        1, num_hosts=8, num_spines=2, num_procs=4, num_eps=4,
        duration_ns=scale.chaos_duration_ns, profile="rough",
    )
    scenario = gen.generate("mixed")
    # Chaos always traces, so the express path never engages here; the
    # express knob is still honoured so the on/off oracle can pin that.
    cfg = chaos_config(scenario.seed, num_hosts=8, express_path=express)
    t0 = time.perf_counter()
    report = run_chaos(scenario, "pairwise", cfg=cfg, num_hosts=8, keep=True,
                       sim_factory=sim_factory)
    wall = time.perf_counter() - t0
    if not report.ok:
        raise RuntimeError(
            f"chaos smoke run violated the delivery contract: {report.violations}")
    sim = report.cluster.sim  # type: ignore[attr-defined]
    return {
        "wall_s": wall,
        "events": sim.events_dispatched,
        "sim_ns": report.sim_ns,
        "digest": report.digest,
        "checks": {
            "digest": report.digest,
            "sim_ns": report.sim_ns,
            "accepted": report.accepted,
            "delivered": report.delivered,
            "returned": report.returned,
        },
    }


def _run_net_burst(sim_factory: Callable, scale: Scale, traced: bool,
                   express: bool = True) -> dict:
    """Network-heavy all-to-all burst driving the fabric directly.

    Waves of shift-permutation traffic, staggered so most packets find
    an idle fabric (express commits), interleaved with hotspot waves
    (everyone to host 0 — queueing, revocations, fallbacks) and
    loopback self-send waves.  The delivery timeline is recorded by the
    rx handlers themselves — ``(t, src, dst, msg, bytes)`` tuples — so
    the digest is observable-behaviour-only and identical whether the
    kernel traced or the express path engaged.
    """
    reset_global_ids()
    n = scale.burst_hosts
    cfg = ClusterConfig(num_hosts=n, seed=11, express_path=express)
    sim = sim_factory()
    net = Network(sim, cfg)
    deliveries: list[tuple[int, int, int, int, int]] = []

    def rx(pkt: Packet) -> None:
        deliveries.append((sim.now, pkt.src_nic, pkt.dst_nic,
                           pkt.msg_id, pkt.payload_bytes))

    for i in range(n):
        net.attach(i, rx)

    msg_id = 0

    def inject(src: int, dst: int, nbytes: int, mid: int) -> None:
        net.send(Packet(src, dst, PacketType.DATA,
                        payload_bytes=nbytes, msg_id=mid))

    base = 0
    for w in range(scale.burst_waves):
        if w % 7 == 6:          # loopback wave: everyone to themselves
            targets = [(i, i) for i in range(n)]
            stagger, pad = 400, 5_000
        elif w % 13 == 4:       # hotspot wave: a dozen senders pile onto
            targets = [(i, 0) for i in range(1, 13)]  # host 0 at once —
            stagger, pad = 150, 60_000  # revocation + fallback pressure
        else:                   # shift permutation: each flight finishes
            shift = (w % (n - 1)) + 1  # before the next injection, so
            targets = [(i, (i + shift) % n) for i in range(n)]  # express
            stagger, pad = 6_000, 20_000  # commits and is never revoked
        for k, (src, dst) in enumerate(targets):
            msg_id += 1
            nbytes = 16 + ((w * 13 + k * 7) % 6) * 48
            sim.schedule(base + k * stagger, inject, src, dst, nbytes, msg_id)
        base += len(targets) * stagger + pad

    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    if len(deliveries) != msg_id:
        raise RuntimeError(
            f"net_burst lost packets: {msg_id} sent, {len(deliveries)} delivered")

    h = hashlib.sha256()
    for rec in sorted(deliveries):
        h.update(repr(rec).encode())
    h.update(repr(sorted(asdict(net.stats).items())).encode())
    digest = h.hexdigest()
    x = net.express
    return {
        "wall_s": wall,
        "events": sim.events_dispatched,
        "sim_ns": sim.now,
        "digest": digest,
        "checks": {"digest": digest, "sim_ns": sim.now,
                   "stats": sorted(asdict(net.stats).items())},
        "express_stats": {
            "hits": x.hits(), "commits": x.commits, "loopback": x.loopback,
            "delivered": x.delivered, "revoked": x.revoked,
            "fallback_busy": x.fallback_busy,
            "fallback_active": x.fallback_active,
        },
    }


def _run_calib_workloads(sim_factory: Callable, scale: Scale, traced: bool,
                         express: bool = True) -> dict:
    """The datacenter diversity shapes (incast / fan-out / streaming).

    Untraced; the per-workload digest covers only express-invariant
    observables (counts + simulated latencies), so the on/off oracle
    and the kernel oracle both apply to it.
    """
    from ..calib.workloads import run_workload_bench

    r = scale.calib_rounds
    shapes = [
        ("incast", {"senders": 4, "rounds": r, "burst": 3}),
        ("rpc_fanout", {"workers": 4, "rounds": r}),
        ("streaming", {"stages": 3, "messages": 3 * r}),
    ]
    wall = 0.0
    sim_ns = handled = 0
    digests: list[str] = []
    for name, kwargs in shapes:
        res = run_workload_bench(name, express=express,
                                 sim_factory=sim_factory, **kwargs)
        wall += res.wall_s
        sim_ns += res.sim_ns
        handled += res.handled
        digests.append(res.digest)
    h = hashlib.sha256()
    for d in digests:
        h.update(d.encode())
    digest = h.hexdigest()
    return {
        "wall_s": wall,
        # the workload runner doesn't expose the kernel's event counter
        # per shape; report total handled messages as the work metric
        "events": handled,
        "sim_ns": sim_ns,
        "digest": digest,
        "checks": {"digest": digest, "sim_ns": sim_ns, "handled": handled},
    }


_RUNNERS = {
    "logp_pingpong": _run_pingpong,
    "fig6_contention": _run_contention,
    "chaos_smoke": _run_chaos_smoke,
    "net_burst": _run_net_burst,
    "calib_workloads": _run_calib_workloads,
}

#: scenarios whose timeline digest is compared bit-for-bit across kernels
#: (net_burst's digest comes from its own delivery records, not the bus)
TRACED = {"logp_pingpong": True, "fig6_contention": False,
          "chaos_smoke": True, "net_burst": False, "calib_workloads": False}


def run_scenario(name: str, sim_factory: Callable = Simulator,
                 scale: Scale = Scale(), traced: Optional[bool] = None,
                 express: bool = True) -> dict:
    """Run one named scenario; returns wall/events/sim_ns/digest/checks."""
    if traced is None:
        traced = TRACED[name]
    return _RUNNERS[name](sim_factory, scale, traced, express)


# ----------------------------------------------------------- shard scaling
#: shard counts measured by the shard_scaling section
SHARD_COUNTS = (1, 2, 4, 8)
#: executors cross-validated bit-for-bit against the sequential kernel
SHARD_MP_COUNTS = (2, 4)


def run_shard_scaling(scale: Scale = None, shard_counts=SHARD_COUNTS,
                      scenario: str = "uniform", seed: int = 7,
                      mp_counts=SHARD_MP_COUNTS, quick: bool = False) -> dict:
    """Events/s scaling of the PDES kernel at 1/2/4/8 shards.

    For every shard count the same workload runs on the sequential
    kernel (one merged heap — the baseline) and the in-process windowed
    executor; their digests, delivery counts and dispatched-event
    totals must match bit for bit, and at the counts in ``mp_counts``
    the ``multiprocessing`` executor is held to the same oracle.

    The committed scaling figure is ``parallelism_events`` — the
    machine-independent critical-path ratio ``total_events /
    sum_over_windows(max_per_shard_events)``, i.e. the events/s
    multiple the windowed schedule itself exposes (barriers included),
    following the suite's convention of gating ratios rather than raw
    walls (shared runners lie about absolute time; a 1-core runner
    cannot show mp wall speedup at all).  Measured walls for all
    executors are reported alongside, unchecked.
    """
    from ..sim.sharded import ShardedSimulator

    if scale is None:
        scale = QUICK if quick else Scale()
    hps = scale.shard_hosts_per_shard
    params = {"waves": scale.shard_waves}
    out: dict = {"scenario": scenario, "hosts_per_shard": hps,
                 "waves": scale.shard_waves, "shards": {}}
    for n in shard_counts:
        cfg = ClusterConfig(num_hosts=n * hps, num_shards=n, seed=seed,
                            engine="sharded")
        sharded = ShardedSimulator(cfg, scenario=scenario, params=params)
        seq = sharded.run("sequential")
        inp = sharded.run("inprocess")
        if seq.checks != inp.checks:
            raise RuntimeError(
                f"shard_scaling[{scenario} x{n}]: sequential and windowed "
                f"runs diverged:\n  sequential: {seq.checks}\n"
                f"  inprocess:  {inp.checks}")
        entry = {
            "events": seq.events,
            "delivered": len(seq.deliveries),
            "digest": seq.checks["digest"],
            "digest_match": True,
            "sequential": {
                "wall_s": round(seq.wall_s, 4),
                "events_per_sec": round(seq.events / seq.wall_s),
            },
            "inprocess": {
                "wall_s": round(inp.wall_s, 4),
                "barriers": inp.barriers,
                "crit_events": inp.crit_events,
                "crit_wall_s": round(inp.crit_wall_s, 4),
            },
            "parallelism_events": round(inp.parallelism(), 3),
        }
        if n in mp_counts:
            mpr = sharded.run("mp")
            if seq.checks != mpr.checks:
                raise RuntimeError(
                    f"shard_scaling[{scenario} x{n}]: mp executor diverged:\n"
                    f"  sequential: {seq.checks}\n  mp:         {mpr.checks}")
            entry["mp"] = {"wall_s": round(mpr.wall_s, 4),
                           "digest_match": True}
        out["shards"][str(n)] = entry
    four = out["shards"].get("4")
    if four is not None:
        out["speedup_4shards"] = four["parallelism_events"]
    return out


# ------------------------------------------------------------------- suite
def check_express_equivalence(name: str, scale: Scale) -> tuple[dict, dict]:
    """Run ``name`` with the express path on and off; the mode-invariant
    end state (``checks``) must match bit for bit.  Returns both runs."""
    on = run_scenario(name, Simulator, scale, traced=False, express=True)
    off = run_scenario(name, Simulator, scale, traced=False, express=False)
    if on["checks"] != off["checks"]:
        raise RuntimeError(
            f"{name}: express and full-fidelity modes diverged:\n"
            f"  express: {on['checks']}\n  full:    {off['checks']}")
    return on, off


def run_suite(reference: bool = False, quick: bool = False,
              repeat: int = 1) -> dict:
    """Measure every scenario; with ``reference``, also replay each on the
    reference kernel and record digest equality + the speedup ratio."""
    scale = QUICK if quick else Scale()
    suite: dict = {"schema": 1, "quick": quick, "scenarios": {}}
    for name in SCENARIOS:
        if reference:
            # equivalence pass first: traced where the scenario supports
            # it, so the timeline digests can be compared bit for bit
            opt = run_scenario(name, Simulator, scale, traced=TRACED[name])
            ref = run_scenario(name, ReferenceSimulator, scale,
                               traced=TRACED[name])
            if opt["checks"] != ref["checks"]:
                raise RuntimeError(
                    f"{name}: optimized and reference kernels diverged:\n"
                    f"  optimized: {opt['checks']}\n  reference: {ref['checks']}")
            if opt["events"] != ref["events"]:
                raise RuntimeError(
                    f"{name}: kernels dispatched different event counts "
                    f"({opt['events']} vs {ref['events']}) — a fast path "
                    "added or removed events")
            # Express/full oracle: same observable end state.  (Event
            # counts are NOT compared here — eliding events is the
            # express path's whole point.)
            check_express_equivalence(name, scale)

        # speed passes, untraced (chaos is traced by construction — the
        # audit is part of that scenario).  Optimized and reference runs
        # are interleaved back to back so transient machine load hits
        # both sides of the ratio equally; best wall per side is kept.
        best = ref_best = None
        for _ in range(max(1, repeat)):
            r = run_scenario(name, Simulator, scale, traced=False)
            if best is None or r["wall_s"] < best["wall_s"]:
                best = r
            if reference:
                r2 = run_scenario(name, ReferenceSimulator, scale,
                                  traced=False)
                if ref_best is None or r2["wall_s"] < ref_best["wall_s"]:
                    ref_best = r2
        entry = {
            "events": best["events"],
            "sim_ns": best["sim_ns"],
            "wall_s": round(best["wall_s"], 4),
            "events_per_sec": round(best["events"] / best["wall_s"]),
        }
        if best["digest"]:
            entry["digest"] = best["digest"]
        if reference:
            entry["digest_match"] = True
            if opt["digest"]:
                entry["digest"] = opt["digest"]
            entry["reference_events_per_sec"] = round(
                ref_best["events"] / ref_best["wall_s"])
            entry["speedup_vs_reference"] = round(
                entry["events_per_sec"] / entry["reference_events_per_sec"], 3)

        if name == "net_burst":
            # Express speedup: replay with the express path off (full
            # wormhole fidelity), require an identical end state, and
            # express the win as effective events/s — the full-mode
            # event count (the work represented) over the express wall.
            full_best = None
            for _ in range(max(1, repeat)):
                r = run_scenario(name, Simulator, scale, traced=False,
                                 express=False)
                if full_best is None or r["wall_s"] < full_best["wall_s"]:
                    full_best = r
            if best["checks"] != full_best["checks"]:
                raise RuntimeError(
                    "net_burst: express and full-fidelity modes diverged:\n"
                    f"  express: {best['checks']}\n"
                    f"  full:    {full_best['checks']}")
            full_rate = full_best["events"] / full_best["wall_s"]
            effective = full_best["events"] / best["wall_s"]
            entry["express"] = {
                "full_events": full_best["events"],
                "full_wall_s": round(full_best["wall_s"], 4),
                "full_events_per_sec": round(full_rate),
                "events_per_sec_effective": round(effective),
                "speedup_express": round(effective / full_rate, 3),
                **best["express_stats"],
            }

        # peak-heap pass at reduced scale, under tracemalloc
        tracemalloc.start()
        run_scenario(name, Simulator, scale.shrunk(), traced=False
                     if name != "chaos_smoke" else True)
        entry["peak_heap_bytes"] = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        suite["scenarios"][name] = entry
    # PDES scaling: digest-gated against the sequential kernel at
    # every shard count, mp executor cross-validated where listed.
    suite["shard_scaling"] = run_shard_scaling(
        scale=scale, mp_counts=(2,) if quick else SHARD_MP_COUNTS)
    return suite


def check_baseline(suite: dict, baseline: dict) -> list[str]:
    """The >20%-regression rule: current speedup_vs_reference must stay
    within CHECK_TOLERANCE of the committed baseline's.  Returns failures."""
    failures = []
    for name, base in baseline.get("scenarios", {}).items():
        base_ratio = base.get("speedup_vs_reference")
        if base_ratio is not None:
            cur = suite["scenarios"].get(name, {}).get("speedup_vs_reference")
            if cur is None:
                failures.append(f"{name}: no speedup_vs_reference measured")
            elif cur < CHECK_TOLERANCE * base_ratio:
                failures.append(
                    f"{name}: speedup vs reference kernel fell to {cur:.2f}x "
                    f"(baseline {base_ratio:.2f}x, floor "
                    f"{CHECK_TOLERANCE * base_ratio:.2f}x)")
        base_express = base.get("express", {}).get("speedup_express")
        if base_express is not None:
            cur = (suite["scenarios"].get(name, {})
                   .get("express", {}).get("speedup_express"))
            if cur is None:
                failures.append(f"{name}: no speedup_express measured")
            elif cur < CHECK_TOLERANCE * base_express:
                failures.append(
                    f"{name}: express-path speedup fell to {cur:.2f}x "
                    f"(baseline {base_express:.2f}x, floor "
                    f"{CHECK_TOLERANCE * base_express:.2f}x)")
    base_shard = baseline.get("shard_scaling", {}).get("speedup_4shards")
    if base_shard is not None:
        cur = suite.get("shard_scaling", {}).get("speedup_4shards")
        if cur is None:
            failures.append("shard_scaling: no speedup_4shards measured")
        elif cur < CHECK_TOLERANCE * base_shard:
            failures.append(
                f"shard_scaling: 4-shard critical-path parallelism fell "
                f"to {cur:.2f}x (baseline {base_shard:.2f}x, floor "
                f"{CHECK_TOLERANCE * base_shard:.2f}x)")
    return failures


# --------------------------------------------------------------------- CLI
def _print_suite(suite: dict) -> None:
    headers = ["scenario", "events", "events/s", "wall s", "peak heap",
               "vs ref", "express", "digest"]
    rows = []
    for name, e in suite["scenarios"].items():
        rows.append([
            name, e["events"], f"{e['events_per_sec']:,}",
            f"{e['wall_s']:.3f}", f"{e['peak_heap_bytes'] / 1024:.0f} KiB",
            (f"{e['speedup_vs_reference']:.2f}x"
             if "speedup_vs_reference" in e else "-"),
            (f"{e['express']['speedup_express']:.2f}x"
             if "express" in e else "-"),
            ("match" if e.get("digest_match")
             else (e.get("digest", "")[:12] or "-")),
        ])
    print_table(headers, rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--reference", action="store_true",
                    help="replay each scenario on the reference kernel: "
                         "assert identical digests/state, record speedup")
    ap.add_argument("--check", action="store_true",
                    help="fail if speedup_vs_reference regressed >20%% "
                         "below the baseline JSON (implies --reference)")
    ap.add_argument("--baseline", default="BENCH_PERF.json",
                    help="baseline JSON for --check (default: committed "
                         "BENCH_PERF.json)")
    ap.add_argument("--out", default="BENCH_PERF.json",
                    help="where to write results (default BENCH_PERF.json)")
    ap.add_argument("--quick", action="store_true",
                    help="smaller problem sizes (CI smoke)")
    ap.add_argument("--repeat", type=int, default=1,
                    help="throughput passes per scenario; best wall kept")
    ap.add_argument("--shard-smoke", action="store_true",
                    help="run only the sharded-kernel digest-equivalence "
                         "gate (2 shards, all executors, every shard "
                         "scenario) and write the result to --out")
    args = ap.parse_args(argv)

    if args.shard_smoke:
        doc: dict = {"schema": 1, "shard_smoke": {}}
        for scen in ("uniform", "hotspot", "chaos_storm"):
            res = run_shard_scaling(scale=QUICK, shard_counts=(1, 2),
                                    mp_counts=(2,), scenario=scen)
            doc["shard_smoke"][scen] = res
            print(f"shard-smoke {scen}: digests match across "
                  f"sequential/inprocess/mp at 2 shards "
                  f"(parallelism {res['shards']['2']['parallelism_events']:.2f}x)")
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")
        return 0

    reference = args.reference or args.check
    suite = run_suite(reference=reference, quick=args.quick,
                      repeat=args.repeat)
    _print_suite(suite)

    with open(args.out, "w") as f:
        json.dump(suite, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except FileNotFoundError:
            print(f"no baseline at {args.baseline}; nothing to check against")
            return 0
        failures = check_baseline(suite, baseline)
        for msg in failures:
            print(f"PERF REGRESSION: {msg}")
        if failures:
            return 1
        print("perf check ok: all scenarios within 20% of baseline speedup")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
