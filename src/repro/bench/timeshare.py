"""Section 6.3: time-shared parallel applications.

Runs multiple Split-C applications on a 16-node partition concurrently
and in sequence, and reports the paper's three results: shared execution
within 15% of sequential, communication time nearly constant, and up to
+20% throughput under load imbalance.
"""

from __future__ import annotations

import argparse

from ..apps.timeshare import TimeshareConfig, run_timeshare
from .reporting import format_table

__all__ = ["main", "run_report"]


def run_report(nnodes: int = 16, napps: int = 2, iterations: int = 40) -> str:
    balanced = run_timeshare(TimeshareConfig(nnodes=nnodes, napps=napps, iterations=iterations))
    imbalanced = run_timeshare(
        TimeshareConfig(nnodes=nnodes, napps=napps, iterations=iterations, imbalance=0.8)
    )
    rows = [
        ["balanced", balanced.sequential_ns / 1e6, balanced.shared_ns / 1e6,
         balanced.slowdown, balanced.comm_ratio],
        ["imbalanced", imbalanced.sequential_ns / 1e6, imbalanced.shared_ns / 1e6,
         imbalanced.slowdown, imbalanced.comm_ratio],
    ]
    out = format_table(
        ["workload", "sequential (ms)", "time-shared (ms)", "shared/seq", "comm ratio"],
        rows,
        title=f"Section 6.3: {napps} time-shared Split-C apps on {nnodes} nodes",
    )
    out += (
        "\n paper: time-shared within 15% of sequential (shared/seq <= 1.15),"
        "\n        communication time nearly constant (comm ratio ~ 1),"
        "\n        load imbalance improves throughput up to 20% (shared/seq < 1)."
    )
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description="Section 6.3 time-sharing")
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--apps", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=40)
    args = parser.parse_args()
    print(run_report(args.nodes, args.apps, args.iterations))


if __name__ == "__main__":
    main()
