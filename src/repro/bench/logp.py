"""Figure 3: LogP characterization of AM over virtual networks vs GAM.

Measurements follow the methodology of Culler et al. [9] as used in
Section 6.1:

* **Os** — time the host spends in the send call (writing the descriptor);
* **Or** — time to consume one arrived message, beyond touching an empty
  endpoint;
* **RTT** — request/reply ping-pong cycle; one-way time is RTT/2 and
  **L** = RTT/2 − Os − Or;
* **g** — steady-state time per 16-byte request when flooding with the
  full credit window (each request is acknowledged by a reply, so both
  directions of NI occupancy are on the rate-limiting path).

Paper results to compare against: virtualization raises the round-trip
time by 23% and the gap by 2.21x while total per-packet overhead (Os+Or)
stays the same; Os grows (bigger descriptors) and Or shrinks (VIS block
load); defensive error checking adds ~1.1 us to L and g.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..am.gam import GamCluster
from ..am.vnet import parallel_vnet
from ..cluster.builder import Cluster
from ..cluster.config import ClusterConfig
from ..obs import PhaseStats, phase_breakdown
from ..sim.core import ms, us
from .reporting import format_table

__all__ = ["LogPResult", "measure_am", "measure_gam", "compare", "phase_table", "main"]

PAPER_AM = dict(os_us=2.4, or_us=2.4, l_us=7.25, g_us=12.8)
PAPER_GAM = dict(os_us=1.6, or_us=3.2, l_us=5.0, g_us=5.8)


@dataclass
class LogPResult:
    layer: str
    os_us: float
    or_us: float
    l_us: float
    g_us: float
    rtt_us: float
    #: per-phase span attribution (send/wire/recv/ack/total), filled in
    #: when the measurement ran with tracing enabled
    phases: Optional[dict[str, PhaseStats]] = None

    @property
    def total_overhead_us(self) -> float:
        return self.os_us + self.or_us


def _measure(layer: str, send_ep, recv_ep, spawn_sender, spawn_receiver, sim, pingpongs: int, flood_msgs: int) -> LogPResult:
    """Common measurement engine; endpoints wrapped by adapter closures."""
    results: dict[str, float] = {}

    def receiver(thr):
        # tight service loop for the duration of the experiment
        while "done" not in results:
            yield from recv_ep["poll"](thr, 8)

    def sender(thr):
        # warm up: absorb the first context switch and cold caches
        yield from send_ep["request"](thr, None, 16)
        for _ in range(10_000):
            got = yield from send_ep["poll"](thr, 4)
            if got:
                break
        # -- Os: time in the send call itself ---------------------------
        t0 = sim.now
        yield from send_ep["request"](thr, None, 16)
        results["os_ns"] = sim.now - t0
        # drain that message's reply
        for _ in range(10_000):
            got = yield from send_ep["poll"](thr, 4)
            if got:
                break
        # -- Or: poll with one pending reply vs empty poll ---------------
        t0 = sim.now
        yield from send_ep["poll"](thr, 4)  # empty
        empty_ns = sim.now - t0
        yield from send_ep["request"](thr, None, 16)
        # wait for the reply to be queued without consuming it
        while not send_ep["has_reply"]():
            yield from thr.compute(200)
        t0 = sim.now
        yield from send_ep["poll"](thr, 1)
        results["or_ns"] = (sim.now - t0) - empty_ns
        # -- RTT: ping-pong -----------------------------------------------
        t0 = sim.now
        for _ in range(pingpongs):
            yield from send_ep["request"](thr, None, 16)
            while True:
                got = yield from send_ep["poll"](thr, 4)
                if got:
                    break
        results["rtt_ns"] = (sim.now - t0) / pingpongs
        # -- g: saturation flood -------------------------------------------
        warm = flood_msgs // 4
        t_mark = None
        for i in range(flood_msgs):
            if i == warm:
                t_mark = sim.now
            yield from send_ep["request"](thr, None, 16)
            yield from send_ep["poll"](thr, 2)
        # drain remaining replies so the pipeline empties
        for _ in range(100_000):
            got = yield from send_ep["poll"](thr, 8)
            if not got and send_ep["idle"]():
                break
        results["g_ns"] = (sim.now - t_mark) / (flood_msgs - warm)
        results["done"] = 1.0

    spawn_receiver(receiver)
    spawn_sender(sender)
    sim.run(until=sim.now + ms(4_000))
    if "done" not in results:
        raise RuntimeError(f"LogP {layer} measurement did not converge")
    os_us_v = results["os_ns"] / 1e3
    or_us_v = results["or_ns"] / 1e3
    rtt = results["rtt_ns"] / 1e3
    return LogPResult(
        layer=layer,
        os_us=os_us_v,
        or_us=or_us_v,
        l_us=rtt / 2 - os_us_v - or_us_v,
        g_us=results["g_ns"] / 1e3,
        rtt_us=rtt,
    )


def measure_am(
    cfg: Optional[ClusterConfig] = None,
    pingpongs: int = 200,
    flood_msgs: int = 2000,
    trace: bool = False,
) -> LogPResult:
    """LogP parameters of AM over virtual networks (two dedicated nodes).

    With ``trace=True`` a :class:`~repro.obs.TraceBus` rides along
    (observer-only: the measured numbers are bit-identical either way)
    and the result's ``phases`` carries the span attribution of where
    each microsecond went (see :func:`phase_table`).
    """
    cluster = Cluster(cfg or ClusterConfig(num_hosts=4))
    sim = cluster.sim
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "setup")
    ep0, ep1 = vnet[0], vnet[1]

    # warm both endpoints onto their NIs so the measurement is steady-state
    cluster.run_process(cluster.node(0).driver.write_fault(ep0.state), "w0")
    cluster.run_process(cluster.node(1).driver.write_fault(ep1.state), "w1")
    cluster.run(until=sim.now + ms(30))
    # attach after warm-up so the spans reflect the steady state
    bus = cluster.enable_tracing() if trace else None

    def handler(token):
        token.reply(None)

    def reply_handler(token):
        pass

    send_ep = {
        "request": lambda thr, _dst, nbytes: ep0.request(thr, 1, handler, nbytes=nbytes),
        "poll": lambda thr, limit: ep0.poll(thr, limit=limit),
        "has_reply": lambda: bool(ep0.state.recv_replies),
        "idle": lambda: not ep0._outstanding,
    }
    recv_ep = {
        "poll": lambda thr, limit: ep1.poll(thr, limit=limit),
    }
    p0 = cluster.node(0).start_process("logp-send")
    p1 = cluster.node(1).start_process("logp-recv")
    result = _measure(
        "AM", send_ep, recv_ep,
        lambda body: p0.spawn_thread(body, "sender"),
        lambda body: p1.spawn_thread(body, "receiver"),
        sim, pingpongs, flood_msgs,
    )
    if bus is not None:
        result.phases = phase_breakdown(bus)
    return result


def measure_gam(cfg: Optional[ClusterConfig] = None, pingpongs: int = 200, flood_msgs: int = 2000) -> LogPResult:
    """LogP parameters of the first-generation single-endpoint layer."""
    cluster = GamCluster(cfg or ClusterConfig(num_hosts=4))
    sim = cluster.sim
    ge0, ge1 = cluster.node(0).endpoint, cluster.node(1).endpoint

    def handler(token):
        token.reply(None)

    send_ep = {
        "request": lambda thr, _dst, nbytes: ge0.request(thr, 1, handler, nbytes=nbytes),
        "poll": lambda thr, limit: ge0.poll(thr, limit=limit),
        "has_reply": lambda: bool(ge0.nic.recv_q),
        "idle": lambda: ge0._window.get(1, 0) == 0,
    }
    recv_ep = {"poll": lambda thr, limit: ge1.poll(thr, limit=limit)}
    return _measure(
        "GAM", send_ep, recv_ep,
        lambda body: cluster.node(0).spawn_thread(body, "sender"),
        lambda body: cluster.node(1).spawn_thread(body, "receiver"),
        sim, pingpongs, flood_msgs,
    )


def phase_table(result: LogPResult) -> str:
    """Per-phase cost table from the trace spans (Figure 3 companion)."""
    if not result.phases:
        return ""
    legend = {
        "send": "host enqueue -> wire (Os + NI send svc)",
        "wire": "fabric transit (cut-through + stalls)",
        "recv": "NI receive -> endpoint (incl. errcheck)",
        "ack": "delivery -> sender retires channel",
        "total": "enqueue -> positively acknowledged",
    }
    rows = [
        [phase, legend[phase], st.count, st.mean_us, st.max_us]
        for phase, st in result.phases.items()
    ]
    return format_table(
        ["phase", "what", "msgs", "mean us", "max us"],
        rows,
        title=f"LogP span breakdown ({result.layer}): where the microseconds go",
    )


def compare(cfg: Optional[ClusterConfig] = None) -> tuple[LogPResult, LogPResult, str]:
    """Run both layers and format the Figure 3 table.

    The AM run carries a trace bus (observer-only), so the report ends
    with the per-phase cost table attributing Os/L/gap time to spans.
    """
    am = measure_am(cfg, trace=True)
    gam = measure_gam(cfg)
    rows = [
        ["Os (us)", gam.os_us, am.os_us, PAPER_GAM["os_us"], PAPER_AM["os_us"]],
        ["Or (us)", gam.or_us, am.or_us, PAPER_GAM["or_us"], PAPER_AM["or_us"]],
        ["L  (us)", gam.l_us, am.l_us, PAPER_GAM["l_us"], PAPER_AM["l_us"]],
        ["g  (us)", gam.g_us, am.g_us, PAPER_GAM["g_us"], PAPER_AM["g_us"]],
        ["RTT(us)", gam.rtt_us, am.rtt_us, 19.6, 24.1],
        ["Os+Or", gam.total_overhead_us, am.total_overhead_us, 4.8, 4.8],
    ]
    table = format_table(
        ["LogP param", "GAM meas", "AM meas", "GAM paper", "AM paper"],
        rows,
        title="Figure 3: LogP performance characterization",
    )
    derived = (
        f"\n gap ratio AM/GAM      = {am.g_us / gam.g_us:.2f}  (paper: 2.21)"
        f"\n RTT ratio AM/GAM      = {am.rtt_us / gam.rtt_us:.2f}  (paper: 1.23)"
        f"\n overhead ratio AM/GAM = {am.total_overhead_us / gam.total_overhead_us:.2f}  (paper: 1.00)"
    )
    report = table + derived
    spans = phase_table(am)
    if spans:
        report += "\n\n" + spans
    return am, gam, report


def main() -> None:
    _, _, report = compare()
    print(report)


if __name__ == "__main__":
    main()
