"""Figures 6 and 7: client/server throughput under contention.

Sweeps client counts across the five configurations of Section 6.4
(OneVN, ST-8, ST-96, MT-8, MT-96) for small messages (Figure 6) or 8 KB
bulk transfers (Figure 7), printing per-client and aggregate series plus
the robustness counters (overrun NACKs, re-mappings/s).

Paper shapes to compare against:
  * Figure 6: server peak ~78K msg/s; OneVN gives proportional shares and
    drops once the credit mechanism stops preventing overruns (75K->60K
    between 2 and 3 clients); ST-8 dips when re-mapping begins past 8
    clients; MT is resilient; 200-300 remaps/s sustain 50-75% of peak.
  * Figure 7: OneVN ~42.8 MB/s aggregate; with 96 frames ST/MT surpass
    OneVN (one-to-one connections avoid overruns); 8-frame configs drop
    at 9 clients then degrade slowly.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..apps.clientserver import ContentionConfig, ContentionResult, run_contention
from ..cluster.config import ClusterConfig
from .reporting import format_table

__all__ = ["sweep", "SweepResult", "FIG6_CONFIGS", "FIG7_CONFIGS", "main"]

#: (label, mode, frames)
FIG6_CONFIGS = [
    ("OneVN", "one_vn", 8),
    ("ST-8", "st", 8),
    ("ST-96", "st", 96),
    ("MT-8", "mt", 8),
    ("MT-96", "mt", 96),
]
FIG7_CONFIGS = FIG6_CONFIGS

DEFAULT_CLIENTS = [1, 2, 3, 4, 8, 12, 16]
FULL_CLIENTS = [1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32]


@dataclass
class SweepResult:
    msg_bytes: int
    clients: list[int]
    #: label -> list of ContentionResult (parallel to `clients`)
    series: dict = field(default_factory=dict)

    def aggregate_series(self, label: str) -> list[float]:
        if self.msg_bytes:
            return [r.aggregate_mb_s for r in self.series[label]]
        return [r.aggregate_msgs_s for r in self.series[label]]

    def per_client_series(self, label: str) -> list[float]:
        out = []
        for r in self.series[label]:
            per = r.per_client_msgs_s
            mean = sum(per) / len(per) if per else 0.0
            out.append(mean * self.msg_bytes / 1e6 if self.msg_bytes else mean)
        return out


def sweep(
    msg_bytes: int,
    clients: Optional[Sequence[int]] = None,
    configs=None,
    duration_ms: float = 150.0,
    warmup_ms: float = 100.0,
    base: Optional[ClusterConfig] = None,
    verbose: bool = False,
) -> SweepResult:
    clients = list(clients or DEFAULT_CLIENTS)
    configs = configs or (FIG7_CONFIGS if msg_bytes else FIG6_CONFIGS)
    result = SweepResult(msg_bytes=msg_bytes, clients=clients)
    for label, mode, frames in configs:
        runs = []
        for n in clients:
            r = run_contention(
                ContentionConfig(
                    nclients=n,
                    msg_bytes=msg_bytes,
                    mode=mode,
                    frames=frames,
                    duration_ms=duration_ms,
                    warmup_ms=warmup_ms,
                    base=base,
                )
            )
            runs.append(r)
            if verbose:
                unit = "MB/s" if msg_bytes else "msg/s"
                agg = r.aggregate_mb_s if msg_bytes else r.aggregate_msgs_s
                print(
                    f"  {label} x{n}: {agg:,.1f} {unit}"
                    f"  overruns={r.overrun_nacks} remaps/s={r.remaps_per_s:.0f}"
                )
        result.series[label] = runs
    return result


def report(result: SweepResult) -> str:
    unit = "MB/s" if result.msg_bytes else "msg/s"
    fig = "Figure 7 (8KB bulk)" if result.msg_bytes else "Figure 6 (small messages)"
    headers = ["clients"] + [label for label, _, _ in FIG6_CONFIGS if label in result.series]
    rows = []
    for i, n in enumerate(result.clients):
        row = [n]
        for label in headers[1:]:
            row.append(result.aggregate_series(label)[i])
        rows.append(row)
    out = format_table(headers, rows, title=f"{fig}: aggregate server throughput [{unit}]")
    # robustness line: remap rates for the 8-frame overcommitted points
    for label in ("ST-8", "MT-8"):
        if label in result.series:
            rates = [f"{n}:{r.remaps_per_s:.0f}" for n, r in zip(result.clients, result.series[label]) if n > 8]
            if rates:
                out += f"\n {label} remaps/s past 8 clients: {', '.join(rates)} (paper: 200-300)"
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description="Figures 6/7 contention sweep")
    parser.add_argument("--msg", choices=["small", "bulk"], default="small")
    parser.add_argument("--full", action="store_true", help="full client counts (slow)")
    parser.add_argument("--duration-ms", type=float, default=150.0)
    args = parser.parse_args()
    msg_bytes = 8192 if args.msg == "bulk" else 0
    clients = FULL_CLIENTS if args.full else DEFAULT_CLIENTS
    result = sweep(msg_bytes, clients, duration_ms=args.duration_ms, verbose=True)
    print()
    print(report(result))


if __name__ == "__main__":
    main()
