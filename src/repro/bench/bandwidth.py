"""Figure 4: bulk-transfer bandwidth vs message size, plus RTT(n).

Paper results to compare against: AM-II delivers 43.9 MB/s at 8 KB —
93% of the 46.8 MB/s SBus write-DMA hardware limit — with a half-power
point N1/2 of ~540 bytes; the first-generation interface managed only
38 MB/s at the same size; round-trip latencies for n >= 128 fit
0.1112*n + 61.02 us.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..am.gam import GamCluster
from ..am.vnet import parallel_vnet
from ..cluster.builder import Cluster
from ..cluster.config import ClusterConfig
from ..sim.core import ms
from .reporting import format_table

__all__ = ["BandwidthPoint", "BandwidthResult", "measure_am_bandwidth",
           "measure_gam_bandwidth", "measure_am_rtt", "half_power_point", "main"]

SIZES = [128, 256, 512, 1024, 2048, 4096, 8192]
PAPER_AM_8K = 43.9
PAPER_GAM_8K = 38.0
PAPER_SBUS_WRITE = 46.8


@dataclass
class BandwidthPoint:
    nbytes: int
    mb_s: float


@dataclass
class BandwidthResult:
    layer: str
    points: list[BandwidthPoint] = field(default_factory=list)

    def at(self, nbytes: int) -> float:
        for p in self.points:
            if p.nbytes == nbytes:
                return p.mb_s
        raise KeyError(nbytes)


def _stream(cluster_like, send_ep, recv_ep, spawn_sender, spawn_receiver, sim, nbytes: int, count: int) -> float:
    """One-way stream of `count` transfers of `nbytes`; returns MB/s."""
    state = {"received": 0, "t_start": None, "t_end": None, "done": False}
    warm = max(2, count // 5)

    def handler(token):
        state["received"] += 1
        if state["received"] == warm:
            state["t_start"] = sim.now
        if state["received"] == count:
            state["t_end"] = sim.now

    def receiver(thr):
        while state["received"] < count:
            yield from recv_ep["poll"](thr, 8)
        state["done"] = True

    def sender(thr):
        for _ in range(count):
            yield from send_ep["request"](thr, handler, nbytes)
            yield from send_ep["poll"](thr, 4)
        while not state["done"]:
            yield from send_ep["poll"](thr, 8)
            yield from thr.compute(1_000)

    spawn_receiver(receiver)
    spawn_sender(sender)
    sim.run(until=sim.now + ms(30_000))
    if state["t_end"] is None:
        raise RuntimeError(f"bandwidth stream ({nbytes}B) did not complete")
    elapsed = state["t_end"] - state["t_start"]
    delivered = (count - warm) * nbytes
    return delivered * 1e3 / elapsed  # bytes/ns -> MB/s


def measure_am_bandwidth(cfg: Optional[ClusterConfig] = None, sizes=None, count: int = 120) -> BandwidthResult:
    sizes = sizes or SIZES
    result = BandwidthResult("AM")
    for nbytes in sizes:
        cluster = Cluster(cfg or ClusterConfig(num_hosts=4))
        sim = cluster.sim
        vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "setup")
        ep0, ep1 = vnet[0], vnet[1]
        cluster.run_process(cluster.node(0).driver.write_fault(ep0.state), "w0")
        cluster.run_process(cluster.node(1).driver.write_fault(ep1.state), "w1")
        cluster.run(until=sim.now + ms(30))
        send_ep = {
            "request": lambda thr, h, n: ep0.request(thr, 1, h, nbytes=n),
            "poll": lambda thr, limit: ep0.poll(thr, limit=limit),
        }
        recv_ep = {"poll": lambda thr, limit: ep1.poll(thr, limit=limit)}
        p0 = cluster.node(0).start_process()
        p1 = cluster.node(1).start_process()
        mb_s = _stream(cluster, send_ep, recv_ep,
                       lambda b: p0.spawn_thread(b), lambda b: p1.spawn_thread(b),
                       sim, nbytes, count)
        result.points.append(BandwidthPoint(nbytes, mb_s))
    return result


def measure_gam_bandwidth(cfg: Optional[ClusterConfig] = None, sizes=None, count: int = 120) -> BandwidthResult:
    sizes = sizes or SIZES
    result = BandwidthResult("GAM")
    for nbytes in sizes:
        cluster = GamCluster(cfg or ClusterConfig(num_hosts=4))
        sim = cluster.sim
        ge0, ge1 = cluster.node(0).endpoint, cluster.node(1).endpoint
        send_ep = {
            "request": lambda thr, h, n: ge0.request(thr, 1, h, nbytes=n),
            "poll": lambda thr, limit: ge0.poll(thr, limit=limit),
        }
        recv_ep = {"poll": lambda thr, limit: ge1.poll(thr, limit=limit)}
        mb_s = _stream(cluster, send_ep, recv_ep,
                       lambda b: cluster.node(0).spawn_thread(b),
                       lambda b: cluster.node(1).spawn_thread(b),
                       sim, nbytes, count)
        result.points.append(BandwidthPoint(nbytes, mb_s))
    return result


def measure_am_rtt(cfg: Optional[ClusterConfig] = None, sizes=None, reps: int = 30) -> list[tuple[int, float]]:
    """Round-trip time for n-byte bulk messages (paper: 0.1112n + 61.02 us)."""
    sizes = sizes or [128, 512, 1024, 2048, 4096, 8192]
    out = []
    cluster = Cluster(cfg or ClusterConfig(num_hosts=4))
    sim = cluster.sim
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    cluster.run_process(cluster.node(0).driver.write_fault(ep0.state), "w0")
    cluster.run_process(cluster.node(1).driver.write_fault(ep1.state), "w1")
    cluster.run(until=sim.now + ms(30))
    state = {"stop": False}

    def echo_handler(token):
        # echo the same number of bytes back
        token.reply(lambda t: None, nbytes=token.nbytes)

    def receiver(thr):
        while not state["stop"]:
            yield from ep1.poll(thr, limit=8)

    p1 = cluster.node(1).start_process()
    p1.spawn_thread(receiver)

    for nbytes in sizes:
        got = {"n": 0}

        def client(thr, n=nbytes):
            # warmup
            start_replies = ep0.stats.replies_handled
            yield from ep0.request(thr, 1, echo_handler, nbytes=n)
            while ep0.stats.replies_handled == start_replies:
                yield from ep0.poll(thr, limit=4)
            t0 = sim.now
            for _ in range(reps):
                yield from ep0.request(thr, 1, echo_handler, nbytes=n)
                start_replies = ep0.stats.replies_handled
                while ep0.stats.replies_handled == start_replies:
                    yield from ep0.poll(thr, limit=4)
            return (sim.now - t0) / reps

        p0 = cluster.node(0).start_process()
        t = p0.spawn_thread(client)
        cluster.run(until=sim.now + ms(5_000))
        out.append((nbytes, t.result / 1e3))
    state["stop"] = True
    return out


def half_power_point(result: BandwidthResult) -> float:
    """Interpolated N1/2: size where bandwidth reaches half its 8 KB peak."""
    peak = result.at(8192)
    target = peak / 2
    prev = None
    for p in result.points:
        if p.mb_s >= target and prev is not None:
            x0, y0 = prev.nbytes, prev.mb_s
            x1, y1 = p.nbytes, p.mb_s
            return x0 + (target - y0) * (x1 - x0) / (y1 - y0)
        prev = p
    return float(result.points[0].nbytes)


def main(fast: bool = False) -> None:
    count = 60 if fast else 120
    am = measure_am_bandwidth(count=count)
    gam = measure_gam_bandwidth(count=count)
    cfg = ClusterConfig()
    rows = []
    for p_am, p_gam in zip(am.points, gam.points):
        rows.append([p_am.nbytes, p_am.mb_s, p_gam.mb_s])
    print(format_table(["size (B)", "AM MB/s", "GAM MB/s"], rows,
                       title="Figure 4: delivered bandwidth"))
    print(f"\n AM @8KB   = {am.at(8192):.1f} MB/s (paper: {PAPER_AM_8K})")
    print(f" GAM @8KB  = {gam.at(8192):.1f} MB/s (paper: {PAPER_GAM_8K})")
    print(f" SBus write ceiling = {cfg.sbus_write_mb_s} MB/s; delivered fraction "
          f"{am.at(8192) / cfg.sbus_write_mb_s * 100:.0f}% (paper: 93%)")
    print(f" N1/2      = {half_power_point(am):.0f} B (paper: ~540)")
    rtt = measure_am_rtt(reps=10 if fast else 30)
    print("\n RTT(n):", ", ".join(f"{n}B:{t:.1f}us" for n, t in rtt))
    # linear fit
    import numpy as np

    xs = np.array([n for n, _ in rtt], dtype=float)
    ys = np.array([t for _, t in rtt], dtype=float)
    slope, intercept = np.polyfit(xs, ys, 1)
    print(f" RTT fit: {slope:.4f}*n + {intercept:.2f} us  (paper: 0.1112*n + 61.02 us)")


if __name__ == "__main__":
    main()
