"""The network interface firmware (Section 5).

One :class:`Nic` models a LANai 4.3 board: a single slow embedded core
running a dispatch loop, a set of endpoint frames in on-board SRAM, a
shared SBus DMA engine, and the transport protocol of Section 5.1.  The
dispatch loop is the serial resource everything contends for; every action
it takes is charged an instruction budget from the configuration, which is
how virtualization's gap and latency costs (Figure 3) arise.

Responsibilities (Section 5):
  * packet transmission mechanics and the stop-and-wait multi-channel
    transport with positive/negative acknowledgment, randomized
    exponential backoff, channel unbind/rebind, and return-to-sender;
  * fair service of multiple resident endpoints: weighted round-robin
    across endpoints, FCFS within one, loitering at most ``wrr_max_msgs``
    messages / ``wrr_max_ns`` on one endpoint (Section 5.2);
  * overlapping driver operations (load/unload/quiesce) with ongoing
    communication: a lockup-free cache of the most active endpoints
    (Section 5.3).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from ..cluster.config import ClusterConfig
from ..hw.lanai import LanaiMeter
from ..hw.sbus import SbusDma
from ..myrinet.network import Network
from ..myrinet.packet import NackReason, Packet, PacketType
from ..sim.core import Simulator
from ..sim.resources import Gate, GateTimeout, Store
from ..sim.rng import RngStreams
from .channels import RxPeerState, TxChannel, backoff_ns
from .collective import CollectiveEngine
from .driver_port import DriverOp, LamportClock, NicNotify
from .endpoint_state import EndpointState, EndpointTable, Residency
from .message import Message, MessageState, MsgKind

__all__ = ["Nic", "NicStats"]


@dataclass
class NicStats:
    data_sent: int = 0
    data_recv: int = 0
    bytes_sent: int = 0
    bytes_recv: int = 0
    acks_sent: int = 0
    acks_recv: int = 0
    nacks_sent: dict = field(default_factory=dict)
    nacks_recv: int = 0
    retransmissions: int = 0
    unbinds: int = 0
    rebinds: int = 0
    returns: int = 0
    deliveries: int = 0
    dup_reacks: int = 0
    crc_drops: int = 0
    driver_ops: int = 0
    make_resident_notifies: int = 0
    stale_acks: int = 0

    def count_nack(self, reason: NackReason) -> None:
        self.nacks_sent[reason] = self.nacks_sent.get(reason, 0) + 1


class Nic:
    """One network interface board and its firmware."""

    def __init__(
        self,
        sim: Simulator,
        cfg: ClusterConfig,
        nic_id: int,
        network: Network,
        rngs: Optional[RngStreams] = None,
    ):
        self.sim = sim
        self.cfg = cfg
        self.nic_id = nic_id
        self.network = network
        network.attach(nic_id, self._on_wire_rx)
        self.sbus = SbusDma(sim, cfg, name=f"nic{nic_id}.sbus")
        self.meter = LanaiMeter(cfg)
        self.rng = (rngs or RngStreams(cfg.seed)).stream(f"nic{nic_id}")
        self.clock = LamportClock()
        self.stats = NicStats()

        #: all endpoints the driver has registered on this node
        self.endpoints: dict[int, EndpointState] = {}
        #: struct-of-arrays backing store for this NIC's endpoint state;
        #: registered endpoints are adopted into it so policies and
        #: gauges index columns instead of walking objects (DESIGN.md §15)
        self.table = EndpointTable(node=nic_id, frames=cfg.endpoint_frames)
        #: the scarce resource: endpoint frames in NI SRAM (Section 4.1)
        self.frames: list[Optional[EndpointState]] = [None] * cfg.endpoint_frames

        #: receive staging FIFO: bounded; a full FIFO backpressures the
        #: wire (the delivering packet holds its last link until a slot
        #: frees), which is how overload is pushed back into the network
        self._rx_store = Store(sim, capacity=cfg.ni_rx_fifo_packets, name=f"nic{nic_id}.rx")
        #: protocol packets (ACK/NACK) dispatch ahead of queued data --
        #: they are header-only and the firmware keys its dispatch on the
        #: packet type, so a data backlog never delays acknowledgments
        self._rx_proto_q: Deque[Packet] = deque()
        self._driver_q: Deque[DriverOp] = deque()
        #: completion work (bulk DMA done, ...) serialized through the
        #: dispatch loop like the real firmware's interrupt handling
        self._internal_q: Deque = deque()
        #: msg_ids of bulk deliveries whose DMA is still in progress;
        #: retransmitted copies that arrive meanwhile are dropped silently
        self._rx_inflight: set[int] = set()
        #: NI -> driver notifications, consumed by the driver proxy thread
        self.to_driver = Store(sim, name=f"nic{nic_id}.notify")
        self._work = Gate(sim, name=f"nic{nic_id}.work")

        self._tx_channels: dict[int, list[TxChannel]] = {}
        self._rx_peers: dict[int, RxPeerState] = {}
        #: endpoints whose ring head is blocked waiting for a channel to a peer
        self._blocked_on_peer: dict[int, Deque[EndpointState]] = {}

        #: WRR service rotation of endpoints with sendable work
        self._rotation: Deque[EndpointState] = deque()
        self._cur: Optional[EndpointState] = None
        self._cur_count = 0
        self._cur_since = 0
        #: endpoints deferred because their tenant's token bucket was
        #: empty: (ready_ns, tiebreak, ep) heap, re-admitted to the
        #: rotation once the bucket has refilled
        self._throttled: list = []

        #: retransmission timers: (deadline, tiebreak, channel, gen)
        self._timers: list = []
        #: unbound messages awaiting channel reacquisition
        self._unbound: list = []
        self._tie = itertools.count()
        #: messages unbound from channels, by id (for stale-ACK matching)
        self._unbound_by_id: dict[int, Message] = {}

        #: adaptive RTT state per peer: [srtt_ns, rttvar_ns] (extension)
        self._rtt: dict[int, list] = {}
        #: pending acknowledgments awaiting a piggyback ride, per peer:
        #: deque of pre-built explicit-ACK shells from the packet pool —
        #: recycled if the ack rides, sent as-is if flushed (extension)
        self._pending_acks: dict[int, Deque[Packet]] = {}
        self._pending_unloads: list[tuple[EndpointState, DriverOp]] = []
        #: alternates receive/transmit service so neither starves under
        #: overload (the real board's send and receive paths are separate
        #: DMA engines the firmware interleaves)
        self._rx_turn = True
        self.epoch = 1
        self.alive = True
        #: firmware collective operations (barrier/broadcast/reduce)
        self.coll = CollectiveEngine(self)
        self._proc = sim.spawn(self._main_loop(), name=f"nic{nic_id}.fw")

    # ====================================================== host-facing API
    def host_enqueue_send(self, ep: EndpointState, msg: Message) -> bool:
        """Append a message descriptor to an endpoint's send ring.

        Returns False when the ring is full (the caller spins/blocks).
        Host-side time is charged by the caller; this only mutates state.
        """
        if ep.send_ring_free() <= 0:
            ep.stats.send_ring_full += 1
            return False
        msg.enqueued_ns = self.sim.now
        msg.state = MessageState.PENDING
        ep.send_ring.append(msg)
        ep.stats.enqueued += 1
        if ep.resident and not ep.quiescing:
            self._enqueue_rotation(ep)
            self._work.set()
        return True

    def host_poll_recv(self, ep: EndpointState, replies: bool = False) -> Optional[Message]:
        """Pop one arrived message (host cost charged by the caller)."""
        q = ep.recv_replies if replies else ep.recv_requests
        if q:
            ep.stats.consumed += 1
            return q.popleft()
        return None

    def host_poll_returned(self, ep: EndpointState) -> Optional[Message]:
        """Pop one returned-to-sender message (Section 3.2)."""
        if ep.returned:
            return ep.returned.popleft()
        return None

    # ===================================================== driver-facing API
    def driver_request(self, op: DriverOp):
        """Queue a driver->NI operation; completion triggers ``op.done``."""
        op.clock = self.clock.tick()
        self._driver_q.append(op)
        self._work.set()
        return op.done

    def free_frame_index(self) -> Optional[int]:
        for i, occupant in enumerate(self.frames):
            if occupant is None:
                return i
        return None

    def resident_endpoints(self) -> list[EndpointState]:
        return [ep for ep in self.frames if ep is not None]

    def resize_frames(self, n: int) -> None:
        """Grow the SRAM frame set (harness hook; never shrinks)."""
        while len(self.frames) < n:
            self.frames.append(None)
        self.table.ensure_frames(n)

    # ========================================================== fault hooks
    def crash(self) -> None:
        """Node failure: the NI stops processing and loses its state."""
        self.alive = False
        self.network.set_nic_dead(self.nic_id, True)
        # Fully unplug from the fabric so crash/reboot cycles never leak
        # rx handlers (reboot re-attaches).
        if self.network.attached(self.nic_id):
            self.network.detach(self.nic_id)
        while True:
            ok, _ = self._rx_store.try_get()
            if not ok:
                break
        # Collective tree state lives in NI SRAM: it is gone with the
        # crash, and pending host handles must fail promptly.
        self.coll.reset()

    def reboot(self) -> None:
        """Restart with a new channel epoch; peers resynchronize (§5.1)."""
        if not self.network.attached(self.nic_id):
            self.network.attach(self.nic_id, self._on_wire_rx)
        self.alive = True
        self.epoch += 1
        for chans in self._tx_channels.values():
            for ch in chans:
                for orphan in ch.reset(self.epoch):
                    self._resolve_returned(orphan, "reboot")
        self._rx_peers.clear()
        # Re-attach must not resurrect pre-crash collective trees: a
        # rebooted NI forwarding stale (root, vnet) edges is the same
        # leak class as the rx-handler leak the detach above prevents.
        self.coll.reset()
        self.network.set_nic_dead(self.nic_id, False)
        self._work.set()

    # ========================================================== wire receive
    def _on_wire_rx(self, pkt: Packet):
        """Wire delivery: returns a waitable while the rx FIFO is full."""
        if not self.alive:
            return None
        if pkt.kind in (PacketType.ACK, PacketType.NACK, PacketType.COLL):
            self._rx_proto_q.append(pkt)
            self._work.set()
            return None
        ev = self._rx_store.offer(pkt)
        self._work.set()
        return ev

    # ============================================================ main loop
    def _main_loop(self):
        # Parking yields the Gate itself (and GateTimeout when a timer is
        # pending) rather than gate.wait()/AnyOf: same wakeup order, no
        # per-iteration Event/Timeout/closure allocations.
        sim = self.sim
        work = self._work
        while True:
            work.clear()
            if not self.alive:
                yield work
                continue
            progress = yield from self._step()
            self._check_unloads()
            if not progress:
                deadline = self._next_deadline()
                if deadline is None:
                    yield work
                else:
                    yield GateTimeout(work, max(0, deadline - sim.now))

    def _step(self):
        """One dispatch-loop iteration; True if any work was done.

        Priority: completion work first, then driver requests (the
        driver endpoint is interleaved, §5.3), then receive traffic, then
        due retransmissions, then unbound-message rebinds, then WRR send
        service.
        """
        if self._internal_q:
            thunk = self._internal_q.popleft()
            yield from thunk()
            return True
        if self._driver_q:
            # The NI interleaves servicing of the driver endpoint among
            # all others (Section 5.3): driver operations must not starve
            # behind a receive flood.
            op = self._driver_q.popleft()
            yield from self._handle_driver_op(op)
            return True
        # Alternate receive and transmit service so a receive flood
        # cannot starve the send path (nor vice versa).
        self._rx_turn = not self._rx_turn
        first, second = (self._rx_phase, self._tx_phase) if self._rx_turn else (self._tx_phase, self._rx_phase)
        done = yield from first()
        if done:
            return True
        done = yield from second()
        return done

    def _rx_phase(self):
        if self._rx_proto_q:
            pkt = self._rx_proto_q.popleft()
            yield from self._handle_rx(pkt)
            return True
        ok, pkt = self._rx_store.try_get()
        if ok:
            yield from self._handle_rx(pkt)
            return True
        return False

    def _tx_phase(self):
        ch = self._pop_due_timer()
        if ch is not None:
            yield from self._handle_timer(ch)
            return True
        msg = self._pop_due_unbound()
        if msg is not None:
            yield from self._try_rebind(msg)
            return True
        ep = self._next_service_ep()
        if ep is not None:
            yield from self._service_send(ep)
            return True
        return False

    # ===================================================== WRR send service
    def _enqueue_rotation(self, ep: EndpointState) -> None:
        if not ep.in_rotation:
            ep.in_rotation = True
            self._rotation.append(ep)

    def _park_throttled(self, ep: EndpointState, ready_ns: int) -> None:
        heapq.heappush(self._throttled, (ready_ns, next(self._tie), ep))

    def _readmit_throttled(self, now: int) -> None:
        while self._throttled and self._throttled[0][0] <= now:
            _, _, ep = heapq.heappop(self._throttled)
            if ep.has_sendable():
                self._enqueue_rotation(ep)

    def _next_service_ep(self) -> Optional[EndpointState]:
        """Weighted deficit rotation across endpoints (tenant-aware §5.2).

        Untenanted endpoints keep the plain WRR loiter budget.  A tenant
        endpoint's visit quantum scales with its tenant's service weight
        (``weight × wrr_max_msgs`` messages / ``weight × wrr_max_ns``),
        and a visit cut short because the tenant's token bucket ran dry
        carries the unused quantum — bounded to one full quantum — as a
        deficit for the endpoint's next visit.
        """
        cfg = self.cfg
        now = self.sim.now
        if self._throttled:
            self._readmit_throttled(now)
        # Loiter on the current endpoint within its weighted budget.
        if self._cur is not None:
            ep = self._cur
            tenant = ep.tenant
            w = tenant.spec.weight if tenant is not None else 1
            budget = cfg.wrr_max_msgs * w + ep.service_deficit
            within = (
                self._cur_count < budget
                and now - self._cur_since < cfg.wrr_max_ns * w
            )
            if within and ep.has_sendable() and self._idle_channel(ep.send_ring[0].dst_node):
                if tenant is None or tenant.bucket is None \
                        or tenant.bucket.try_take(now):
                    return ep
                # Rate limited mid-visit: defer to the bucket's refill,
                # carrying the unserved quantum as (bounded) deficit.
                tenant.stats.throttled += 1
                ep.service_deficit = min(budget - self._cur_count,
                                         cfg.wrr_max_msgs * w)
                self._cur = None
                ep.in_rotation = False
                self._park_throttled(ep, tenant.bucket.ready_at(now))
            else:
                self._cur = None
                ep.service_deficit = 0  # quantum consumed or ring drained
                if ep.has_sendable():
                    if self._idle_channel(ep.send_ring[0].dst_node):
                        self._rotation.append(ep)  # budget spent: to the back
                    else:
                        # Just-served endpoint yields to waiters that never ran.
                        ep.in_rotation = False
                        self._block_on_peer(ep, ep.send_ring[0].dst_node, front=False)
                else:
                    ep.in_rotation = False
        scanned = 0
        while self._rotation:
            ep = self._rotation.popleft()
            scanned += 1
            if not ep.has_sendable():
                ep.in_rotation = False
                continue
            if self._idle_channel(ep.send_ring[0].dst_node) is None:
                # Blocked before being served this round: keep its place at
                # the head of the waiter queue (WRR fairness, §5.2).
                ep.in_rotation = False
                self._block_on_peer(ep, ep.send_ring[0].dst_node, front=True)
                continue
            tenant = ep.tenant
            if tenant is not None and tenant.bucket is not None \
                    and not tenant.bucket.try_take(now):
                tenant.stats.throttled += 1
                ep.in_rotation = False
                self._park_throttled(ep, tenant.bucket.ready_at(now))
                continue
            self._cur = ep
            self._cur_count = 0
            self._cur_since = now
            if scanned > 1:
                self.meter.cost_ns("poll_scan", (scanned - 1) * self.cfg.ni_poll_ep_instr)
            return ep
        return None

    def _block_on_peer(self, ep: EndpointState, peer: int, front: bool = False) -> None:
        lst = self._blocked_on_peer.setdefault(peer, deque())
        if ep not in lst:
            if self.sim.trace.enabled:
                self.sim.trace.emit("chan.stall", self.nic_id, ep=ep.ep_id, peer=peer)
            if front:
                lst.appendleft(ep)
            else:
                lst.append(ep)

    def _unblock_peer_waiters(self, peer: int) -> None:
        lst = self._blocked_on_peer.pop(peer, None)
        if not lst:
            return
        for ep in lst:
            if ep.has_sendable():
                self._enqueue_rotation(ep)
        self._work.set()

    def _service_send(self, ep: EndpointState):
        """Process one send descriptor from ``ep``'s ring head (FCFS)."""
        cfg = self.cfg
        msg = ep.send_ring[0]
        ch = self._idle_channel(msg.dst_node)
        if ch is None:  # raced away; revisit later
            self._cur = None
            ep.in_rotation = False
            self._block_on_peer(ep, msg.dst_node)
            return
        ep.send_ring.popleft()
        ep.last_active_ns = self.sim.now
        ep.referenced = True
        self._cur_count += 1
        if ep.tenant is not None:
            ep.tenant.stats.msgs_serviced += 1
        msg.state = MessageState.BOUND
        ep.inflight += 1
        yield self.sim.timeout(self.meter.cost_ns("send", cfg.ni_send_instr))
        self._transmit(ch, msg)
        # post-send bookkeeping happens off the latency path but still
        # occupies the firmware (it contributes to the gap, §6.1)
        yield self.sim.timeout(self.meter.cost_ns("send_post", cfg.ni_send_post_instr))

    # ========================================================== transmission
    def _tx_channel_set(self, peer: int) -> list[TxChannel]:
        chans = self._tx_channels.get(peer)
        if chans is None:
            chans = [TxChannel(peer, i, epoch=self.epoch) for i in range(self.cfg.channels_per_pair)]
            self._tx_channels[peer] = chans
        return chans

    def _idle_channel(self, peer: int) -> Optional[TxChannel]:
        for ch in self._tx_channel_set(peer):
            if ch.idle:
                return ch
        return None

    def _transmit(self, ch: TxChannel, msg: Message, retrans: bool = False):
        """Put ``msg`` on the wire over ``ch`` and arm its timer."""
        cfg = self.cfg
        ch.outstanding = msg
        msg.transmissions += 1
        if msg.first_tx_ns is None:
            msg.first_tx_ns = self.sim.now
        if retrans:
            self.stats.retransmissions += 1
        tr = self.sim.trace
        if tr.enabled:
            tr.emit(
                "pkt.retransmit" if retrans else "pkt.tx",
                self.nic_id,
                msg=msg.msg_id,
                peer=msg.dst_node,
                ch=ch.index,
                nbytes=msg.payload_bytes,
                enq=msg.enqueued_ns if msg.enqueued_ns is not None else self.sim.now,
            )
        piggyback = None
        if self.cfg.enable_piggyback_acks:
            rides = self._pending_acks.get(msg.dst_node)
            if rides:
                # The deferred ack caught its ride: copy the shell's
                # protocol fields into the data packet and recycle it.
                ride = rides.popleft()
                piggyback = (ride.channel, ride.seq, ride.epoch,
                             ride.msg_id, ride.timestamp)
                ride.recycle()
        pkt = Packet(
            src_nic=self.nic_id,
            dst_nic=msg.dst_node,
            kind=PacketType.DATA,
            channel=ch.index,
            seq=ch.seq,
            epoch=self.epoch,
            timestamp=self.sim.now & 0xFFFFFFFF,
            payload_bytes=msg.payload_bytes,
            dst_endpoint=msg.dst_ep,
            src_endpoint=msg.src_ep,
            is_reply=(msg.kind is MsgKind.REPLY),
            is_bulk=msg.is_bulk,
            key=msg.key,
            msg_id=msg.msg_id,
            body=msg.body,
            piggyback_ack=piggyback,
        )
        self.stats.data_sent += 1
        self.stats.bytes_sent += msg.payload_bytes
        if msg.is_bulk and msg.payload_bytes > 0:
            # Stage payload from host memory through NI SRAM: the firmware
            # starts the DMA and moves on; a helper completes the send.
            self.sim.spawn(self._bulk_send(ch, msg, pkt), name=f"nic{self.nic_id}.btx")
        else:
            self.network.send(pkt)
            self._arm_timer(ch)

    def _bulk_send(self, ch: TxChannel, msg: Message, pkt: Packet):
        yield from self.sbus.transfer(msg.payload_bytes, SbusDma.READ)
        if not self.alive or ch.outstanding is not msg:
            return  # endpoint freed / channel reset while we staged
        self.network.send(pkt)
        self._arm_timer(ch)

    def _rtt_sample(self, peer: int, sent_timestamp: int) -> None:
        """Jacobson/Karels estimator over the reflected 32-bit timestamps."""
        sample = (self.sim.now - sent_timestamp) & 0xFFFFFFFF
        state = self._rtt.get(peer)
        if state is None:
            self._rtt[peer] = [sample, sample // 2]
            return
        srtt, rttvar = state
        err = sample - srtt
        state[0] = srtt + (err >> 3)
        state[1] = rttvar + ((abs(err) - rttvar) >> 2)

    def _adaptive_timeout_ns(self, peer: int) -> Optional[int]:
        state = self._rtt.get(peer)
        if state is None:
            return None
        rto = state[0] + 4 * state[1]
        # self-clocking floor: our own in-flight window queues ahead of a
        # new packet at the receiver, so the timeout must cover it even
        # before the estimator has caught up with a load ramp
        outstanding = sum(1 for ch in self._tx_channel_set(peer) if not ch.idle)
        rto = max(rto, outstanding * 15_000)
        lo = round(self.cfg.rtt_min_timeout_us * 1_000)
        hi = round(self.cfg.retrans_timeout_us * 1_000) * 2
        return max(lo, min(rto, hi))

    def _arm_timer(self, ch: TxChannel) -> None:
        msg = ch.outstanding
        timeout = None
        if self.cfg.enable_rtt_estimation and (msg is None or msg.consecutive_retrans == 0):
            timeout = self._adaptive_timeout_ns(ch.peer)
        if timeout is None:
            timeout = backoff_ns(self.cfg, msg.consecutive_retrans if msg else 0, self.rng)
        if msg is not None and msg.payload_bytes:
            # Bulk packets spend real time in staging DMAs on both ends;
            # stretch the timeout so healthy transfers are not duplicated.
            timeout += round(msg.payload_bytes * self.cfg.bulk_timeout_ns_per_byte)
        deadline = ch.arm(self.sim.now, timeout)
        heapq.heappush(self._timers, (deadline, next(self._tie), ch, ch.timer_gen))
        if self.sim.trace.enabled:
            self.sim.trace.emit("timer.arm", self.nic_id, peer=ch.peer, ch=ch.index,
                                deadline=deadline)
        self._work.set()

    def _arm_timer_backoff(self, ch: TxChannel, consecutive: int) -> None:
        deadline = ch.arm(self.sim.now, backoff_ns(self.cfg, consecutive, self.rng))
        heapq.heappush(self._timers, (deadline, next(self._tie), ch, ch.timer_gen))
        if self.sim.trace.enabled:
            self.sim.trace.emit("timer.arm", self.nic_id, peer=ch.peer, ch=ch.index,
                                deadline=deadline, backoff=consecutive)
        self._work.set()

    # ================================================================ timers
    def _pop_due_timer(self) -> Optional[TxChannel]:
        now = self.sim.now
        while self._timers:
            deadline, _, ch, gen = self._timers[0]
            if gen != ch.timer_gen or ch.deadline_ns != deadline:
                heapq.heappop(self._timers)  # stale
                continue
            if deadline > now:
                return None
            heapq.heappop(self._timers)
            return ch
        return None

    def _pop_due_unbound(self) -> Optional[Message]:
        now = self.sim.now
        while self._unbound:
            deadline, _, msg = self._unbound[0]
            if msg.state is not MessageState.UNBOUND:
                heapq.heappop(self._unbound)
                continue
            if deadline > now:
                return None
            heapq.heappop(self._unbound)
            return msg
        return None

    def _next_deadline(self) -> Optional[int]:
        best: Optional[int] = None
        while self._timers:
            deadline, _, ch, gen = self._timers[0]
            if gen != ch.timer_gen or ch.deadline_ns != deadline:
                heapq.heappop(self._timers)
                continue
            best = deadline
            break
        while self._unbound:
            deadline, _, msg = self._unbound[0]
            if msg.state is not MessageState.UNBOUND:
                heapq.heappop(self._unbound)
                continue
            if best is None or deadline < best:
                best = deadline
            break
        if self._throttled:
            # Wake when the earliest rate-limited endpoint's tenant
            # bucket has refilled (spurious wakes are harmless).
            ready = self._throttled[0][0]
            if best is None or ready < best:
                best = ready
        return best

    def _handle_timer(self, ch: TxChannel):
        """Retransmission deadline expired on a channel."""
        msg = ch.outstanding
        ch.disarm()
        if self.sim.trace.enabled:
            self.sim.trace.emit("timer.fire", self.nic_id, peer=ch.peer, ch=ch.index,
                                msg=msg.msg_id if msg else None)
        if msg is None:
            return
        if self.sim.now - (msg.first_tx_ns or self.sim.now) >= self.cfg.dead_timeout_ns:
            # Prolonged absence of acknowledgments: unrecoverable transport
            # condition; return the message to its sender (§3.2, §5.1).
            ch.outstanding = None
            self._resolve_returned(msg, "timeout")
            self._feed_channel(ch)
            return
        msg.consecutive_retrans += 1
        if msg.consecutive_retrans > self.cfg.max_consecutive_retrans:
            yield from self._unbind(ch, msg)
            return
        yield self.sim.timeout(self.meter.cost_ns("retrans", self.cfg.ni_send_instr))
        self._transmit(ch, msg, retrans=True)

    def _unbind(self, ch: TxChannel, msg: Message):
        """Free the channel after bounded consecutive retransmissions."""
        ch.outstanding = None
        msg.state = MessageState.UNBOUND
        msg.consecutive_retrans = 0
        self.stats.unbinds += 1
        if self.sim.trace.enabled:
            self.sim.trace.emit("chan.unbind", self.nic_id, msg=msg.msg_id,
                                peer=ch.peer, ch=ch.index)
        self._unbound_by_id[msg.msg_id] = msg
        jitter = 0.5 + self.rng.random()
        deadline = self.sim.now + max(1_000, round(self.cfg.rebind_delay_us * 1_000 * jitter))
        heapq.heappush(self._unbound, (deadline, next(self._tie), msg))
        yield self.sim.timeout(self.meter.cost_ns("unbind", self.cfg.ni_poll_ep_instr * 4))
        self._feed_channel(ch)
        self._work.set()

    def _try_rebind(self, msg: Message):
        """An unbound message's retry deadline arrived: reacquire a channel."""
        if msg.state is not MessageState.UNBOUND:
            return
        if self.sim.now - (msg.first_tx_ns or 0) >= self.cfg.dead_timeout_ns:
            self._unbound_by_id.pop(msg.msg_id, None)
            self._resolve_returned(msg, "timeout")
            return
        ch = self._idle_channel(msg.dst_node)
        if ch is None:
            jitter = 0.5 + self.rng.random()
            deadline = self.sim.now + max(1_000, round(self.cfg.rebind_delay_us * 1_000 * jitter))
            heapq.heappush(self._unbound, (deadline, next(self._tie), msg))
            return
        self._unbound_by_id.pop(msg.msg_id, None)
        msg.state = MessageState.BOUND
        self.stats.rebinds += 1
        if self.sim.trace.enabled:
            self.sim.trace.emit("chan.rebind", self.nic_id, msg=msg.msg_id,
                                peer=msg.dst_node, ch=ch.index)
        yield self.sim.timeout(self.meter.cost_ns("rebind", self.cfg.ni_send_instr))
        self._transmit(ch, msg, retrans=True)

    def _feed_channel(self, ch: TxChannel) -> None:
        """A channel went idle: wake ring-blocked endpoints for its peer."""
        self._unblock_peer_waiters(ch.peer)

    # ================================================================ receive
    def _handle_rx(self, pkt: Packet):
        cfg = self.cfg
        if pkt.corrupted:
            # CRC check fails; drop silently, sender's timer recovers it.
            self.stats.crc_drops += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("pkt.crc_drop", self.nic_id, msg=pkt.msg_id, peer=pkt.src_nic)
            yield self.sim.timeout(self.meter.cost_ns("crc_drop", cfg.ni_poll_ep_instr))
            if pkt.kind is not PacketType.DATA:
                pkt.recycle()
            return
        if pkt.kind is PacketType.DATA:
            yield from self._handle_data(pkt)
        elif pkt.kind is PacketType.ACK:
            yield from self._handle_ack(pkt)
            pkt.recycle()
        elif pkt.kind is PacketType.NACK:
            yield from self._handle_nack(pkt)
            pkt.recycle()
        elif pkt.kind is PacketType.COLL:
            yield from self.coll.handle_rx(pkt)
            pkt.recycle()

    def _handle_data(self, pkt: Packet):
        cfg = self.cfg
        if pkt.piggyback_ack is not None:
            channel, seq, epoch, msg_id, timestamp = pkt.piggyback_ack
            yield self.sim.timeout(self.meter.cost_ns("ack_proc", cfg.ni_ack_proc_instr // 2))
            self._resolve_ack_fields(pkt.src_nic, channel, epoch, msg_id, timestamp)
        # Receive processing plus the defensive error checking added by
        # virtualization (§6.1): metered separately, slept as one event —
        # nothing observes the boundary between the two costs.
        yield self.sim.timeout(
            self.meter.cost_ns("recv", cfg.ni_recv_instr)
            + self.meter.cost_ns("errcheck", cfg.ni_errcheck_instr)
        )
        self.stats.data_recv += 1
        self.stats.bytes_recv += pkt.payload_bytes
        if self.sim.trace.enabled:
            self.sim.trace.emit("pkt.rx", self.nic_id, msg=pkt.msg_id, peer=pkt.src_nic,
                                ch=pkt.channel, nbytes=pkt.payload_bytes)

        peer = self._rx_peers.get(pkt.src_nic)
        if peer is None:
            peer = self._rx_peers[pkt.src_nic] = RxPeerState(
                pkt.src_nic, window=cfg.dup_window
            )
        peer.observe_epoch(pkt.epoch)

        ep = self.endpoints.get(pkt.dst_endpoint)
        if ep is None or ep.residency is Residency.FREED:
            yield from self._send_nack(pkt, NackReason.NO_ENDPOINT)
            return
        if pkt.key != ep.tag:
            # The receiving interface verifies the key (§3.1).
            yield from self._send_nack(pkt, NackReason.BAD_KEY)
            return
        if not ep.resident:
            yield from self._send_nack(pkt, NackReason.NOT_RESIDENT)
            self._request_make_resident(ep)
            return
        if peer.is_duplicate(pkt.msg_id):
            # Copy of something already delivered (retransmission across an
            # unbind/rebind): re-acknowledge, do not redeliver.
            self.stats.dup_reacks += 1
            yield from self._send_ack(pkt)
            return
        if pkt.msg_id in self._rx_inflight:
            # A copy whose first arrival is still staging through the SBus:
            # drop silently; the in-progress delivery will be acknowledged.
            self.stats.dup_reacks += 1
            return
        if not ep.recv_room(pkt.is_reply):
            ep.stats.recv_drops += 1
            yield from self._send_nack(pkt, NackReason.RECV_OVERRUN)
            return
        if pkt.is_bulk and pkt.payload_bytes > 0:
            # Move the payload to the host memory region behind the
            # endpoint; the ACK means "written into the destination
            # endpoint" (§5.1) so it waits for the DMA.  The queue slot is
            # reserved now so concurrent arrivals respect the bound.
            self._rx_inflight.add(pkt.msg_id)
            if pkt.is_reply:
                ep.bulk_reserved_rep += 1
            else:
                ep.bulk_reserved_req += 1
            self.sim.spawn(self._bulk_recv(ep, peer, pkt), name=f"nic{self.nic_id}.brx")
        else:
            yield from self._finish_delivery(ep, peer, pkt)

    def _bulk_recv(self, ep: EndpointState, peer: RxPeerState, pkt: Packet):
        """Stage a bulk payload NI->host, then complete in the dispatch loop.

        The engine is held until the firmware has processed the completion
        (the real LANai programs the next transfer only after handling the
        previous one's completion) — this is the ~12 us per-packet overhead
        behind Figure 4's 43.9-of-46.8 MB/s delivered bandwidth.
        """
        yield self.sbus.acquire()
        yield from self.sbus.hold(pkt.payload_bytes, SbusDma.WRITE)

        def completion():
            if pkt.is_reply:
                ep.bulk_reserved_rep = max(0, ep.bulk_reserved_rep - 1)
            else:
                ep.bulk_reserved_req = max(0, ep.bulk_reserved_req - 1)
            self._rx_inflight.discard(pkt.msg_id)
            yield self.sim.timeout(
                self.meter.cost_ns("bulk_complete", self.cfg.ni_bulk_complete_instr)
            )
            if self.alive and ep.resident:
                yield from self._finish_delivery(ep, peer, pkt)
            self.sbus.release()

        self._internal_q.append(completion)
        self._work.set()

    def _finish_delivery(self, ep: EndpointState, peer: RxPeerState, pkt: Packet):
        arrived = Message(
            src_node=pkt.src_nic,
            src_ep=pkt.src_endpoint,
            dst_node=self.nic_id,
            dst_ep=ep.ep_id,
            key=pkt.key,
            kind=MsgKind.REPLY if pkt.is_reply else MsgKind.REQUEST,
            payload_bytes=pkt.payload_bytes,
            is_bulk=pkt.is_bulk,
            body=pkt.body,
            msg_id=pkt.msg_id,
        )
        arrived.state = MessageState.DELIVERED
        arrived.delivered_ns = self.sim.now
        q = ep.recv_replies if pkt.is_reply else ep.recv_requests
        was_empty = not q
        q.append(arrived)
        peer.record_delivery(pkt.msg_id)
        ep.referenced = True  # receive activity counts for clock replacement
        ep.stats.delivered_in += 1
        self.stats.deliveries += 1
        tr = self.sim.trace
        if tr.enabled:
            tr.emit("msg.deliver", self.nic_id, msg=pkt.msg_id, peer=pkt.src_nic,
                    ep=ep.ep_id, nbytes=pkt.payload_bytes)
        yield from self._send_ack(pkt)
        if was_empty and "recv" in ep.event_mask:
            self._notify_driver("event", ep, detail="recv")

    def _send_ack(self, pkt: Packet):
        yield self.sim.timeout(self.meter.cost_ns("ack_gen", self.cfg.ni_ack_gen_instr))
        if self.cfg.enable_piggyback_acks:
            # Hold the acknowledgment briefly, hoping for a data packet
            # heading back (an extension the paper's conclusions propose
            # to reduce network occupancy).  The explicit-ACK shell is
            # allocated from the pool *now*, while the deferral is
            # queued: if it rides, _transmit recycles it; if the
            # deadline expires, _flush_ack sends it as built — either
            # way the flush path never constructs at fire time.
            entry = Packet.alloc(
                self.nic_id,
                pkt.src_nic,
                PacketType.ACK,
                channel=pkt.channel,
                seq=pkt.seq,
                epoch=pkt.epoch,
                timestamp=pkt.timestamp,  # reflected (§5.1)
                msg_id=pkt.msg_id,
            )
            rides = self._pending_acks.setdefault(pkt.src_nic, deque())
            rides.append(entry)
            self.sim.schedule(
                round(self.cfg.piggyback_delay_us * 1_000),
                self._flush_ack, pkt.src_nic, entry,
            )
            return
        self.stats.acks_sent += 1
        if self.sim.trace.enabled:
            self.sim.trace.emit("ack.tx", self.nic_id, msg=pkt.msg_id, peer=pkt.src_nic)
        self.network.send(
            Packet.alloc(
                self.nic_id,
                pkt.src_nic,
                PacketType.ACK,
                channel=pkt.channel,
                seq=pkt.seq,
                epoch=pkt.epoch,
                timestamp=pkt.timestamp,  # reflected (§5.1)
                msg_id=pkt.msg_id,
            )
        )

    def _flush_ack(self, peer: int, entry: Packet) -> None:
        """Piggyback deadline expired: send the acknowledgment explicitly."""
        rides = self._pending_acks.get(peer)
        if not rides or entry not in rides:
            return  # it caught a ride (and the shell was recycled)
        rides.remove(entry)
        self.stats.acks_sent += 1
        if self.sim.trace.enabled:
            self.sim.trace.emit("ack.tx", self.nic_id, msg=entry.msg_id,
                                peer=peer, flushed=True)
        self.network.send(entry)

    def _send_nack(self, pkt: Packet, reason: NackReason):
        yield self.sim.timeout(self.meter.cost_ns("nack_gen", self.cfg.ni_ack_gen_instr))
        self.stats.count_nack(reason)
        if self.sim.trace.enabled:
            self.sim.trace.emit("nack.tx", self.nic_id, msg=pkt.msg_id,
                                peer=pkt.src_nic, reason=reason.name)
        self.network.send(
            Packet.alloc(
                self.nic_id,
                pkt.src_nic,
                PacketType.NACK,
                channel=pkt.channel,
                seq=pkt.seq,
                epoch=pkt.epoch,
                timestamp=pkt.timestamp,
                msg_id=pkt.msg_id,
                nack_reason=reason,
            )
        )

    # -------------------------------------------------- ACK/NACK processing
    def _match_channel(self, pkt: Packet) -> Optional[TxChannel]:
        return self._match_channel_fields(pkt.src_nic, pkt.channel, pkt.epoch, pkt.msg_id)

    def _match_channel_fields(self, peer: int, channel: int, epoch: int,
                              msg_id: int) -> Optional[TxChannel]:
        chans = self._tx_channels.get(peer)
        if chans is None or channel >= len(chans):
            return None
        ch = chans[channel]
        if epoch != self.epoch:
            return None  # ack for a pre-reboot transmission
        if ch.outstanding is None or ch.outstanding.msg_id != msg_id:
            return None
        return ch

    def _handle_ack(self, pkt: Packet):
        yield self.sim.timeout(self.meter.cost_ns("ack_proc", self.cfg.ni_ack_proc_instr))
        self._resolve_ack_fields(pkt.src_nic, pkt.channel, pkt.epoch, pkt.msg_id, pkt.timestamp)

    def _resolve_ack_fields(self, peer: int, channel: int, epoch: int, msg_id: int, timestamp: int) -> None:
        self.stats.acks_recv += 1
        if self.sim.trace.enabled:
            self.sim.trace.emit("ack.rx", self.nic_id, msg=msg_id, peer=peer, ch=channel)
        if self.cfg.enable_rtt_estimation:
            self._rtt_sample(peer, timestamp)
        ch = self._match_channel_fields(peer, channel, epoch, msg_id)
        if ch is not None:
            msg = ch.outstanding
            ch.outstanding = None
            ch.seq ^= 1
            ch.disarm()
            self._resolve_delivered(msg)
            self._feed_channel(ch)
            return
        # An unbound message may be acknowledged by a late copy (§5.3's
        # copy accounting): resolve it wherever it is now.
        msg = self._unbound_by_id.pop(msg_id, None)
        if msg is not None:
            self._resolve_delivered(msg)
        else:
            self.stats.stale_acks += 1

    def _handle_nack(self, pkt: Packet):
        cfg = self.cfg
        yield self.sim.timeout(self.meter.cost_ns("nack_proc", cfg.ni_nack_proc_instr))
        self.stats.nacks_recv += 1
        if self.sim.trace.enabled:
            self.sim.trace.emit("nack.rx", self.nic_id, msg=pkt.msg_id, peer=pkt.src_nic,
                                reason=pkt.nack_reason.name if pkt.nack_reason else None)
        ch = self._match_channel(pkt)
        if ch is None:
            return
        msg = ch.outstanding
        reason = pkt.nack_reason
        if reason in (NackReason.BAD_KEY, NackReason.NO_ENDPOINT):
            # Serious, non-transient: return to sender (§3.2).
            ch.outstanding = None
            ch.disarm()
            self._resolve_returned(msg, reason)
            self._feed_channel(ch)
            return
        # Transient (not resident / queue overrun / out of sync): retry
        # later with backoff; the channel stays bound to the message.
        msg.consecutive_retrans += 1
        if msg.consecutive_retrans > cfg.max_consecutive_retrans:
            yield from self._unbind(ch, msg)
            return
        if reason is NackReason.RECV_OVERRUN:
            # Receiver-paced condition: the queue drains at the host's
            # consumption rate, so retry promptly rather than backing off
            # exponentially — this retransmission pressure is Figure 6b's
            # 75K->60K drop once credits stop preventing overruns.  Note
            # these retries are self-pacing: a copy can only be NACKed
            # again after the receiver actually processed it.
            self._arm_fixed_retry(ch, cfg.overrun_retry_us)
        elif reason is NackReason.NOT_RESIDENT:
            # Paced to the re-mapping latency (Section 4.2).
            self._arm_fixed_retry(ch, cfg.not_resident_retry_us)
        else:
            self._arm_timer_backoff(ch, msg.consecutive_retrans)

    def _arm_fixed_retry(self, ch: TxChannel, retry_us: float) -> None:
        jitter = 0.5 + self.rng.random()
        retry_ns = max(1_000, round(retry_us * 1_000 * jitter))
        deadline = ch.arm(self.sim.now, retry_ns)
        heapq.heappush(self._timers, (deadline, next(self._tie), ch, ch.timer_gen))
        self._work.set()

    # ============================================================ resolution
    def _resolve_delivered(self, msg: Message) -> None:
        msg.state = MessageState.DELIVERED
        msg.delivered_ns = self.sim.now
        tr = self.sim.trace
        if tr.enabled and msg.enqueued_ns is not None:
            tr.metrics.histogram("msg_rtt_ns", node=self.nic_id).observe(
                self.sim.now - msg.enqueued_ns
            )
        self._finish_inflight(msg)
        msg.resolve(True)

    def _resolve_returned(self, msg: Message, reason) -> None:
        msg.state = MessageState.RETURNED
        msg.return_reason = reason
        self.stats.returns += 1
        if self.sim.trace.enabled:
            self.sim.trace.emit("msg.return", self.nic_id, msg=msg.msg_id,
                                peer=msg.dst_node,
                                reason=getattr(reason, "name", str(reason)))
        self._finish_inflight(msg)
        ep = self.endpoints.get(msg.src_ep)
        if ep is not None and ep.residency is not Residency.FREED:
            ep.returned.append(msg)
            if "returned" in ep.event_mask:
                self._notify_driver("event", ep, detail="returned")
        msg.resolve(False)

    def _finish_inflight(self, msg: Message) -> None:
        ep = self.endpoints.get(msg.src_ep)
        if ep is not None:
            ep.inflight = max(0, ep.inflight - 1)
        self._work.set()  # may complete a pending unload

    # ======================================================== driver protocol
    def _notify_driver(self, kind: str, ep: EndpointState, detail=None) -> None:
        note = NicNotify(
            kind=kind,
            ep_id=ep.ep_id,
            generation=ep.generation,
            clock=self.clock.tick(),
            detail=detail,
        )
        if kind == "make_resident":
            self.stats.make_resident_notifies += 1
        self.to_driver.try_put(note)

    def _request_make_resident(self, ep: EndpointState) -> None:
        """Message arrived for a non-resident endpoint (Section 4.2)."""
        if getattr(ep, "mr_requested", False) or ep.transition:
            return
        ep.mr_requested = True
        self._notify_driver("make_resident", ep)

    def _handle_driver_op(self, op: DriverOp):
        cfg = self.cfg
        self.clock.observe(op.clock)
        self.stats.driver_ops += 1
        if self.sim.trace.enabled:
            self.sim.trace.emit("drv.op", self.nic_id, op=op.op, ep=op.ep.ep_id)
        yield self.sim.timeout(self.meter.cost_ns("driver_op", cfg.ni_driver_op_instr))
        if op.op == "alloc":
            # Registration binds the endpoint's row into this NIC's
            # table (no-op when the driver already built it there).
            self.table.adopt(op.ep)
            self.endpoints[op.ep.ep_id] = op.ep
            op.done.trigger(None)
        elif op.op == "free":
            ep = op.ep
            # Descriptors still in the send ring were accepted from the
            # application but never bound to a channel; freeing the
            # endpoint (process exit/kill, Section 4.2) must resolve them
            # as returned-to-sender rather than leak them — the delivery
            # contract says every accepted message ends DELIVERED or
            # RETURNED (Section 3.2).  Bound/unbound messages were already
            # drained by the quiesce that precedes the free.
            while ep.send_ring:
                self._resolve_returned(ep.send_ring.popleft(), "endpoint_freed")
            self.endpoints.pop(ep.ep_id, None)
            if ep.frame is not None and self.frames[ep.frame] is ep:
                self.frames[ep.frame] = None
                self.table.frame_rows[ep.frame] = -1
            op.done.trigger(None)
        elif op.op == "load":
            self.sim.spawn(self._do_load(op), name=f"nic{self.nic_id}.load")
        elif op.op == "unload":
            op.ep.quiescing = True
            self._pending_unloads.append((op.ep, op))
            self._work.set()
        else:
            op.done.fail(ValueError(f"unknown driver op {op.op!r}"))

    def _do_load(self, op: DriverOp):
        """Move an endpoint image from host memory into an NI frame."""
        ep, frame = op.ep, op.frame
        if frame is None or self.frames[frame] is not None:
            op.done.fail(RuntimeError(f"frame {frame} not free for load"))
            return
        self.frames[frame] = ep  # reserve before the DMA
        self.table.frame_rows[frame] = self.table.adopt(ep)
        load_start = self.sim.now
        yield from self.sbus.transfer(self.cfg.frame_bytes, SbusDma.READ)
        if ep.residency is Residency.FREED or self.endpoints.get(ep.ep_id) is not ep:
            # The driver freed the endpoint while the load DMA was in
            # flight (the "free" op saw ep.frame still unset, so it could
            # not release the reservation).  Completing the load would
            # resurrect a freed endpoint into a frame — release the
            # reservation instead and report completion.
            if self.frames[frame] is ep:
                self.frames[frame] = None
                self.table.frame_rows[frame] = -1
            ep.transition = False
            self._work.set()
            op.done.trigger(None)
            return
        if self.sim.trace.enabled:
            self.sim.trace.emit("ep.load", self.nic_id, ep=ep.ep_id, frame=frame,
                                dur_ns=self.sim.now - load_start)
        ep.frame = frame
        ep.residency = Residency.ONNIC_RW
        ep.loaded_at_ns = self.sim.now
        ep.referenced = True  # fresh loads start with a second chance
        ep.mr_requested = False
        ep.transition = False
        if ep.send_ring:
            self._enqueue_rotation(ep)
        self._work.set()
        op.done.trigger(None)

    def _check_unloads(self) -> None:
        """Start unload DMAs for quiescent endpoints (Section 5.3)."""
        if not self._pending_unloads:
            return
        still = []
        for ep, op in self._pending_unloads:
            if ep.inflight == 0:
                self.sim.spawn(self._do_unload(ep, op), name=f"nic{self.nic_id}.unload")
            else:
                still.append((ep, op))
        self._pending_unloads = still

    def _do_unload(self, ep: EndpointState, op: DriverOp):
        unload_start = self.sim.now
        yield from self.sbus.transfer(self.cfg.frame_bytes, SbusDma.WRITE)
        if self.sim.trace.enabled:
            self.sim.trace.emit("ep.unload", self.nic_id, ep=ep.ep_id, frame=ep.frame,
                                dur_ns=self.sim.now - unload_start)
        if ep.frame is not None and self.frames[ep.frame] is ep:
            self.frames[ep.frame] = None
            self.table.frame_rows[ep.frame] = -1
        ep.frame = None
        ep.residency = Residency.ONHOST_RO
        ep.quiescing = False
        ep.in_rotation = False
        op.done.trigger(None)
