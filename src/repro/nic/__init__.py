"""Network interface model: endpoint frames, transport protocol, firmware."""

from .channels import RxPeerState, TxChannel, backoff_ns
from .driver_port import DriverOp, LamportClock, NicNotify
from .endpoint_state import EndpointState, EndpointStats, Residency, TranslationEntry
from .firmware import Nic, NicStats
from .message import Message, MessageState, MsgKind, next_msg_id

__all__ = [
    "DriverOp",
    "EndpointState",
    "EndpointStats",
    "LamportClock",
    "Message",
    "MessageState",
    "MsgKind",
    "Nic",
    "NicNotify",
    "NicStats",
    "Residency",
    "RxPeerState",
    "TranslationEntry",
    "TxChannel",
    "backoff_ns",
    "next_msg_id",
]
