"""The driver/NI protocol (Section 4.3).

The endpoint segment driver and the NI are peer agents exchanging
asynchronous requests through a dedicated, permanently resident *system
endpoint*.  We model that as two typed queues: :class:`DriverOp` records
travel driver→NI (allocate, free, load, unload, ...) and carry a
completion event; :class:`NicNotify` records travel NI→driver (make an
endpoint resident, notify a thread of an event).

Both sides stamp messages with a Lamport logical clock (a variant of
[Lamport 78], as the paper prescribes) so that each agent can resolve the
ordering of events initiated by the other — e.g. when the driver frees an
endpoint concurrently with the NI requesting it be made resident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..sim.core import Event
from .endpoint_state import EndpointState

__all__ = ["LamportClock", "DriverOp", "NicNotify"]


class LamportClock:
    """Classic logical clock: tick on local events, merge on receipt."""

    __slots__ = ("time",)

    def __init__(self) -> None:
        self.time = 0

    def tick(self) -> int:
        self.time += 1
        return self.time

    def observe(self, other_time: int) -> int:
        """Merge a received timestamp; returns the new local time."""
        self.time = max(self.time, other_time) + 1
        return self.time


@dataclass
class DriverOp:
    """One driver→NI request, completed by triggering ``done``."""

    op: str  # "alloc" | "free" | "load" | "unload"
    ep: EndpointState
    done: Event
    clock: int = 0
    #: target frame index for "load"
    frame: Optional[int] = None


@dataclass
class NicNotify:
    """One NI→driver notification."""

    kind: str  # "make_resident" | "event" | "returned"
    ep_id: int
    generation: int
    clock: int = 0
    detail: Any = None
