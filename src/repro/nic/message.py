"""Messages: the unit the transport protocol moves exactly once.

A message is what the Active Message library writes into an endpoint's
send ring (one descriptor).  The NI binds it to a logical flow-control
channel, transmits it (possibly many times), and eventually resolves it as
DELIVERED (positive acknowledgment) or RETURNED (undeliverable, handed
back to the sender's error handler — Section 3.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional, Tuple

__all__ = ["Message", "MessageState", "MsgKind", "next_msg_id"]

_msg_ids = itertools.count(1)


def next_msg_id() -> int:
    return next(_msg_ids)


class MessageState(Enum):
    #: in the send ring, not yet bound to a channel
    PENDING = "pending"
    #: bound to a channel, waiting its turn or an acknowledgment
    BOUND = "bound"
    #: unbound from its channel after too many consecutive retransmissions;
    #: a later retransmission will reacquire a channel (Section 5.1)
    UNBOUND = "unbound"
    #: positively acknowledged -- written into the destination endpoint
    DELIVERED = "delivered"
    #: undeliverable; returned to the sender (Section 3.2)
    RETURNED = "returned"


class MsgKind(Enum):
    REQUEST = "request"
    REPLY = "reply"


@dataclass
class Message:
    """One Active Message in flight (or one bulk fragment)."""

    src_node: int
    src_ep: int
    dst_node: int
    dst_ep: int
    key: int
    kind: MsgKind
    payload_bytes: int = 0
    #: True for bulk fragments: payload travels via SBus DMA to/from host
    #: memory regions instead of living in the endpoint frame
    is_bulk: bool = False
    #: handler index + arguments (opaque to the NI)
    body: Any = None
    msg_id: int = field(default_factory=next_msg_id)

    # -- transport state (owned by the sending NI) --------------------------
    state: MessageState = MessageState.PENDING
    #: time the NI first transmitted it (for the dead timeout)
    first_tx_ns: Optional[int] = None
    enqueued_ns: Optional[int] = None
    delivered_ns: Optional[int] = None
    transmissions: int = 0
    consecutive_retrans: int = 0
    #: why the message was returned, if it was (NackReason or "timeout")
    return_reason: Any = None
    #: invoked on the sender side when resolved: fn(msg, delivered: bool)
    on_resolved: Optional[Callable[["Message", bool], None]] = None

    def resolve(self, delivered: bool) -> None:
        if self.on_resolved is not None:
            self.on_resolved(self, delivered)

    @property
    def dst(self) -> Tuple[int, int]:
        return (self.dst_node, self.dst_ep)

    def __repr__(self) -> str:
        return (
            f"<Msg {self.msg_id} {self.kind.value}"
            f" ({self.src_node},{self.src_ep})->({self.dst_node},{self.dst_ep})"
            f" {self.payload_bytes}B {self.state.value}>"
        )
