"""Endpoint state: slotted struct-of-arrays records + flyweight views.

An endpoint (Section 3) bundles message queues and associated state that
lives *beneath* the programming interface: a send descriptor ring, receive
queues for requests and replies, a protection tag, a translation table
mapping small integers to (endpoint name, key) pairs, and an event mask.
The same state is operated on by three agents — the user library (through
:mod:`repro.am`), the endpoint segment driver (:mod:`repro.osim.segdriver`)
and the NI firmware (:mod:`repro.nic.firmware`) — which is exactly the
coordination problem Sections 4 and 5 are about.

Memory layout (DESIGN.md §15).  The ROADMAP's fleet-scale target
(10^5–10^6 endpoints per run) is memory-impossible with one fat Python
object per endpoint, so the scalar state lives in an
:class:`EndpointTable`: parallel ``array('i')``/``array('q')`` columns
indexed by an integer row id, a few hundred bytes per endpoint instead of
a few KB.  :class:`EndpointState` survives as a thin ``__slots__``
flyweight *view* over one row — every scalar attribute is a property that
reads/writes its column — so the AM/segdriver/firmware call sites are
unchanged.  Replacement policies and observability gauges index the
columns directly (by row id, via ``EndpointTable.frame_rows``) and never
materialize per-candidate objects; the fleet sweep
(:mod:`repro.scale.fleet`) drives tables with no views at all.

Invariants shared by the three agents:

* a row's scalar state has exactly one home (its column slot); a view is
  never a cache, so concurrent mutation through different views of the
  same row is always coherent;
* ``frame_rows[f]`` mirrors ``Nic.frames[f]`` — ``-1`` iff the frame is
  empty, else the row id of the (possibly still loading) occupant;
* ``ring_used[row]`` mirrors ``len(view.send_ring)`` whenever a view
  exists (the send ring itself is a deque of in-flight ``Message``
  objects; the column carries only its occupancy, which is all the
  policies need).
"""

from __future__ import annotations

import sys
from array import array
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Deque, Optional

from .message import Message

__all__ = [
    "Residency",
    "TranslationEntry",
    "EndpointState",
    "EndpointStats",
    "EndpointTable",
]


class Residency(Enum):
    """The four-state residency protocol of Figure 2."""

    ONHOST_RO = "on-host r/o"
    ONHOST_RW = "on-host r/w"
    ONNIC_RW = "on-nic r/w"
    ONDISK = "on-disk"
    #: terminal state after free
    FREED = "freed"


#: residency enum <-> small-int column code (declaration order)
RES_MEMBER = tuple(Residency)
RES_CODE = {m: i for i, m in enumerate(RES_MEMBER)}
RES_ONHOST_RO, RES_ONHOST_RW, RES_ONNIC_RW, RES_ONDISK, RES_FREED = range(5)

#: flag bits in ``EndpointTable.flags``
F_QUIESCING = 1
F_TRANSITION = 2
F_MR_REQUESTED = 4
F_REFERENCED = 8
F_SHARED = 16
F_IN_ROTATION = 32


@dataclass(slots=True)
class TranslationEntry:
    """One slot of an endpoint translation table (Section 3.1)."""

    dst_node: int
    dst_ep: int
    key: int


class EndpointTable:
    """Struct-of-arrays backing store for a set of endpoints (one per NIC).

    Rows are append-only (``add_row``); a freed endpoint keeps its row in
    the FREED state rather than compacting, so row ids stay stable for
    the lifetime of the table.  ``adopt`` migrates a row created in
    another table (an :class:`EndpointState` constructed standalone) into
    this one, preserving every column value.
    """

    #: machine-int columns
    INT_COLS = ("ep_id", "res", "frame", "gen", "flags", "inflight",
                "deficit", "bulk_req", "bulk_rep", "ring_used", "tenant_id")
    #: 64-bit columns: timestamps + folded per-endpoint stats counters
    LONG_COLS = ("last_active", "loaded_at", "evicted_at",
                 "st_enqueued", "st_delivered_in", "st_consumed",
                 "st_ring_full", "st_recv_drops")

    __slots__ = ("node", "frame_rows", "tenant_ref", "views") \
        + INT_COLS + LONG_COLS

    def __init__(self, node: int = 0, frames: int = 0):
        self.node = node
        for name in self.INT_COLS:
            setattr(self, name, array("i"))
        for name in self.LONG_COLS:
            setattr(self, name, array("q"))
        #: frame slot -> occupying row id (-1 = empty); mirrors Nic.frames
        self.frame_rows = array("i", bytes(0)) if frames == 0 else \
            array("i", [-1] * frames)
        #: row -> tenant object (None = untenanted); object refs cannot
        #: live in a typed column, and the fleet path never populates it
        self.tenant_ref: list = []
        #: row -> flyweight view, when one was constructed (sim path only)
        self.views: list = []

    # ------------------------------------------------------------- rows
    def __len__(self) -> int:
        return len(self.ep_id)

    def add_row(self, ep_id: int) -> int:
        """Append one endpoint row (on-host r/o, empty frame); returns it."""
        row = len(self.ep_id)
        self.ep_id.append(ep_id)
        self.res.append(RES_ONHOST_RO)
        self.frame.append(-1)
        self.gen.append(0)
        self.flags.append(0)
        self.inflight.append(0)
        self.deficit.append(0)
        self.bulk_req.append(0)
        self.bulk_rep.append(0)
        self.ring_used.append(0)
        self.tenant_id.append(-1)
        self.last_active.append(0)
        self.loaded_at.append(0)
        self.evicted_at.append(-1)
        self.st_enqueued.append(0)
        self.st_delivered_in.append(0)
        self.st_consumed.append(0)
        self.st_ring_full.append(0)
        self.st_recv_drops.append(0)
        self.tenant_ref.append(None)
        self.views.append(None)
        return row

    def adopt(self, ep: "EndpointState") -> int:
        """Migrate ``ep``'s row into this table (no-op if already here).

        Registration with a NIC binds a standalone endpoint to the NIC's
        table so frame bookkeeping and policy scans see one coherent
        column set.
        """
        if ep.table is self:
            return ep.row
        src, i = ep.table, ep.row
        j = self.add_row(src.ep_id[i])
        for name in self.INT_COLS + self.LONG_COLS:
            getattr(self, name)[j] = getattr(src, name)[i]
        self.tenant_ref[j] = src.tenant_ref[i]
        self.views[j] = ep
        src.views[i] = None
        ep.table = self
        ep.row = j
        ep.send_ring.table = self
        ep.send_ring.row = j
        ep.stats.table = self
        ep.stats.row = j
        return j

    # ----------------------------------------------------------- frames
    def ensure_frames(self, n: int) -> None:
        while len(self.frame_rows) < n:
            self.frame_rows.append(-1)

    def resident_count(self) -> int:
        """Occupied frames, straight off the column (no object walk)."""
        return sum(1 for r in self.frame_rows if r >= 0)

    # ----------------------------------------------------------- memory
    def nbytes(self) -> int:
        """Total table footprint, including list/array overheads."""
        total = sys.getsizeof(self)
        for name in self.INT_COLS + self.LONG_COLS:
            total += sys.getsizeof(getattr(self, name))
        total += sys.getsizeof(self.frame_rows)
        total += sys.getsizeof(self.tenant_ref)
        total += sys.getsizeof(self.views)
        return total

    def bytes_per_row(self) -> float:
        return self.nbytes() / max(1, len(self))


def _col_prop(name: str):
    def fget(self):
        return getattr(self.table, name)[self.row]

    def fset(self, value):
        getattr(self.table, name)[self.row] = value

    return property(fget, fset)


def _flag_prop(bit: int):
    def fget(self):
        return bool(self.table.flags[self.row] & bit)

    def fset(self, value):
        flags = self.table.flags
        if value:
            flags[self.row] |= bit
        else:
            flags[self.row] &= ~bit

    return property(fget, fset)


class _SendRing(deque):
    """Send-ring deque mirroring its occupancy into ``ring_used``.

    Policies rank candidates by queued work through the column alone, so
    every mutator keeps the mirror exact.
    """

    __slots__ = ("table", "row")

    def __init__(self, table: EndpointTable, row: int):
        super().__init__()
        self.table = table
        self.row = row

    def _sync(self) -> None:
        self.table.ring_used[self.row] = len(self)

    def append(self, item) -> None:
        deque.append(self, item)
        self.table.ring_used[self.row] += 1

    def appendleft(self, item) -> None:
        deque.appendleft(self, item)
        self.table.ring_used[self.row] += 1

    def popleft(self):
        item = deque.popleft(self)
        self.table.ring_used[self.row] -= 1
        return item

    def pop(self):
        item = deque.pop(self)
        self.table.ring_used[self.row] -= 1
        return item

    def clear(self) -> None:
        deque.clear(self)
        self.table.ring_used[self.row] = 0

    def extend(self, items) -> None:
        deque.extend(self, items)
        self._sync()

    def remove(self, item) -> None:
        deque.remove(self, item)
        self.table.ring_used[self.row] -= 1


class EndpointStats:
    """Flyweight view over the per-endpoint stats columns."""

    __slots__ = ("table", "row")

    def __init__(self, table: Optional[EndpointTable] = None, row: int = 0):
        if table is None:  # standalone stats: private single-row table
            table = EndpointTable()
            row = table.add_row(0)
        self.table = table
        self.row = row

    enqueued = _col_prop("st_enqueued")
    delivered_in = _col_prop("st_delivered_in")
    consumed = _col_prop("st_consumed")
    send_ring_full = _col_prop("st_ring_full")
    recv_drops = _col_prop("st_recv_drops")

    def __repr__(self) -> str:
        return (f"EndpointStats(enqueued={self.enqueued}, "
                f"delivered_in={self.delivered_in}, consumed={self.consumed}, "
                f"send_ring_full={self.send_ring_full}, "
                f"recv_drops={self.recv_drops})")


class EndpointState:
    """Queues + residency + protection state of one endpoint.

    A ``__slots__`` flyweight over one :class:`EndpointTable` row: the
    scalar state lives in the table's columns (each attribute below a
    property), only the things a table column cannot hold — the message
    deques, the translation dict, the event callback — live on the view.
    Constructed standalone (``table=None``) it owns a private single-row
    table, so unit tests and callers outside a NIC see the old interface
    unchanged.
    """

    __slots__ = ("table", "row", "node", "ep_id", "tag", "translation",
                 "send_ring_depth", "recv_queue_depth", "send_ring",
                 "recv_requests", "recv_replies", "returned",
                 "event_mask", "event_callback", "stats")

    def __init__(
        self,
        node: int,
        ep_id: int,
        *,
        send_ring_depth: int,
        recv_queue_depth: int,
        tag: int = 0,
        table: Optional[EndpointTable] = None,
    ):
        if table is None:
            table = EndpointTable(node=node)
        self.table = table
        self.row = table.add_row(ep_id)
        self.node = node
        self.ep_id = ep_id
        #: protection tag: incoming messages must carry this key (§3.1)
        self.tag = tag
        self.translation: dict[int, TranslationEntry] = {}
        self.send_ring_depth = send_ring_depth
        self.recv_queue_depth = recv_queue_depth

        #: FIFO of Messages awaiting NI descriptor processing
        self.send_ring: Deque[Message] = _SendRing(table, self.row)
        #: arrived requests not yet consumed by the host (32-deep, §6.4)
        self.recv_requests: Deque[Message] = deque()
        #: arrived replies; sized like the request window (a reply slot is
        #: reserved per outstanding request, so replies never overrun)
        self.recv_replies: Deque[Message] = deque()
        #: messages returned to this (sending) endpoint as undeliverable
        self.returned: Deque[Message] = deque()

        #: which state transitions generate events ("recv", "returned")
        self.event_mask: set[str] = set()
        #: invoked (in driver context) when a masked event fires
        self.event_callback: Optional[Callable[[str], None]] = None

        self.stats = EndpointStats(table, self.row)
        table.views[self.row] = self

    # ------------------------------------------------------ column views
    #: generation bumped on free; stale NI->driver notifications about a
    #: previous endpoint with the same id are discarded (§4.3 races)
    generation = _col_prop("gen")
    #: messages from this endpoint bound into the NI/network, not yet
    #: resolved; must drain to zero before unload (quiescence, §5.3)
    inflight = _col_prop("inflight")
    #: receive-queue slots reserved by in-flight bulk DMAs
    bulk_reserved_req = _col_prop("bulk_req")
    bulk_reserved_rep = _col_prop("bulk_rep")
    #: deficit carried between NI service visits when tenant rate
    #: limiting cut a visit short of its weighted quantum (messages)
    service_deficit = _col_prop("deficit")
    #: last service time, for LRU replacement
    last_active_ns = _col_prop("last_active")
    #: when this endpoint last became resident (eviction hysteresis)
    loaded_at_ns = _col_prop("loaded_at")
    #: when this endpoint was last unloaded, -1 once residency is
    #: re-requested; a re-request within ``thrash_bounce_us`` of this
    #: stamp scores the eviction as a bounce (thrash, §6.4)
    evicted_at_ns = _col_prop("evicted_at")

    #: set while the driver is quiescing/unloading this endpoint
    quiescing = _flag_prop(F_QUIESCING)
    #: marks residency-change in progress (load or unload scheduled)
    transition = _flag_prop(F_TRANSITION)
    #: True while a make-resident request is pending at the driver
    #: (dedupes the NACK-triggered notifications of Section 4.2)
    mr_requested = _flag_prop(F_MR_REQUESTED)
    #: second-chance bit for the "clock" replacement policy; the NI
    #: firmware sets it on send service and message delivery, the
    #: policy's sweep clears it
    referenced = _flag_prop(F_REFERENCED)
    #: endpoints marked shared pay a lock cost per operation (§3.3)
    shared = _flag_prop(F_SHARED)
    #: WRR bookkeeping: True while queued in the NI service rotation
    in_rotation = _flag_prop(F_IN_ROTATION)

    @property
    def residency(self) -> Residency:
        return RES_MEMBER[self.table.res[self.row]]

    @residency.setter
    def residency(self, value: Residency) -> None:
        self.table.res[self.row] = RES_CODE[value]

    @property
    def frame(self) -> Optional[int]:
        f = self.table.frame[self.row]
        return None if f < 0 else f

    @frame.setter
    def frame(self, value: Optional[int]) -> None:
        self.table.frame[self.row] = -1 if value is None else value

    @property
    def tenant(self) -> Optional[Any]:
        """The :class:`repro.tenant.Tenant` this endpoint belongs to, or
        None (untenanted endpoints behave exactly as before: weight 1,
        no rate limit, no frame reservation).  Set via Tenant.adopt()."""
        return self.table.tenant_ref[self.row]

    @tenant.setter
    def tenant(self, value: Optional[Any]) -> None:
        self.table.tenant_ref[self.row] = value

    # --------------------------------------------------------------- naming
    @property
    def name(self) -> tuple[int, int]:
        """The opaque global endpoint name (Section 3.1)."""
        return (self.node, self.ep_id)

    def map_translation(self, index: int, dst_node: int, dst_ep: int, key: int) -> None:
        if index < 0:
            raise ValueError("translation index must be non-negative")
        self.translation[index] = TranslationEntry(dst_node, dst_ep, key)

    def unmap_translation(self, index: int) -> None:
        self.translation.pop(index, None)

    # --------------------------------------------------------------- queues
    @property
    def resident(self) -> bool:
        return self.table.res[self.row] == RES_ONNIC_RW

    def send_ring_free(self) -> int:
        return self.send_ring_depth - len(self.send_ring)

    def recv_room(self, is_reply: bool) -> bool:
        if is_reply:
            return len(self.recv_replies) + self.bulk_reserved_rep < self.recv_queue_depth
        return len(self.recv_requests) + self.bulk_reserved_req < self.recv_queue_depth

    def total_queued(self) -> int:
        return (
            len(self.send_ring)
            + len(self.recv_requests)
            + len(self.recv_replies)
            + len(self.returned)
        )

    def has_sendable(self) -> bool:
        t, r = self.table, self.row
        return bool(self.send_ring) and t.res[r] == RES_ONNIC_RW \
            and not (t.flags[r] & F_QUIESCING)

    def __repr__(self) -> str:
        return (
            f"<EP ({self.node},{self.ep_id}) {self.residency.value}"
            f" sr={len(self.send_ring)} rq={len(self.recv_requests)}"
            f" inflight={self.inflight}>"
        )
