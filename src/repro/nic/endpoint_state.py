"""Endpoint state: the object the OS pages between host memory and NI frames.

An endpoint (Section 3) bundles message queues and associated state that
lives *beneath* the programming interface: a send descriptor ring, receive
queues for requests and replies, a protection tag, a translation table
mapping small integers to (endpoint name, key) pairs, and an event mask.
The same object is operated on by three agents — the user library (through
:mod:`repro.am`), the endpoint segment driver (:mod:`repro.osim.segdriver`)
and the NI firmware (:mod:`repro.nic.firmware`) — which is exactly the
coordination problem Sections 4 and 5 are about.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Deque, Optional

from .message import Message

__all__ = ["Residency", "TranslationEntry", "EndpointState", "EndpointStats"]


class Residency(Enum):
    """The four-state residency protocol of Figure 2."""

    ONHOST_RO = "on-host r/o"
    ONHOST_RW = "on-host r/w"
    ONNIC_RW = "on-nic r/w"
    ONDISK = "on-disk"
    #: terminal state after free
    FREED = "freed"


@dataclass
class TranslationEntry:
    """One slot of an endpoint translation table (Section 3.1)."""

    dst_node: int
    dst_ep: int
    key: int


@dataclass
class EndpointStats:
    enqueued: int = 0
    delivered_in: int = 0
    consumed: int = 0
    send_ring_full: int = 0
    recv_drops: int = 0


class EndpointState:
    """Queues + residency + protection state of one endpoint."""

    def __init__(
        self,
        node: int,
        ep_id: int,
        *,
        send_ring_depth: int,
        recv_queue_depth: int,
        tag: int = 0,
    ):
        self.node = node
        self.ep_id = ep_id
        #: protection tag: incoming messages must carry this key (§3.1)
        self.tag = tag
        self.translation: dict[int, TranslationEntry] = {}
        self.send_ring_depth = send_ring_depth
        self.recv_queue_depth = recv_queue_depth

        #: FIFO of Messages awaiting NI descriptor processing
        self.send_ring: Deque[Message] = deque()
        #: arrived requests not yet consumed by the host (32-deep, §6.4)
        self.recv_requests: Deque[Message] = deque()
        #: arrived replies; sized like the request window (a reply slot is
        #: reserved per outstanding request, so replies never overrun)
        self.recv_replies: Deque[Message] = deque()
        #: messages returned to this (sending) endpoint as undeliverable
        self.returned: Deque[Message] = deque()

        self.residency = Residency.ONHOST_RO
        self.frame: Optional[int] = None
        #: generation bumped on free; stale NI->driver notifications about a
        #: previous endpoint with the same id are discarded (§4.3 races)
        self.generation = 0
        #: messages from this endpoint bound into the NI/network, not yet
        #: resolved; must drain to zero before unload (quiescence, §5.3)
        self.inflight = 0
        #: set while the driver is quiescing/unloading this endpoint
        self.quiescing = False
        #: marks residency-change in progress (load or unload scheduled)
        self.transition = False
        #: True while a make-resident request is pending at the driver
        #: (dedupes the NACK-triggered notifications of Section 4.2)
        self.mr_requested = False
        #: receive-queue slots reserved by in-flight bulk DMAs
        self.bulk_reserved_req = 0
        self.bulk_reserved_rep = 0

        #: which state transitions generate events ("recv", "returned")
        self.event_mask: set[str] = set()
        #: invoked (in driver context) when a masked event fires
        self.event_callback: Optional[Callable[[str], None]] = None
        #: endpoints marked shared pay a lock cost per operation (§3.3)
        self.shared = False
        #: the :class:`repro.tenant.Tenant` this endpoint belongs to, or
        #: None (untenanted endpoints behave exactly as before: weight 1,
        #: no rate limit, no frame reservation).  Set via Tenant.adopt().
        self.tenant: Optional[Any] = None

        #: deficit carried between NI service visits when tenant rate
        #: limiting cut a visit short of its weighted quantum (messages)
        self.service_deficit = 0

        #: WRR bookkeeping: True while queued in the NI service rotation
        self.in_rotation = False
        #: last service time, for LRU replacement
        self.last_active_ns = 0
        #: second-chance bit for the "clock" replacement policy; the NI
        #: firmware sets it on send service and message delivery, the
        #: policy's sweep clears it
        self.referenced = False
        #: when this endpoint last became resident (eviction hysteresis)
        self.loaded_at_ns = 0
        #: when this endpoint was last unloaded, -1 once residency is
        #: re-requested; a re-request within ``thrash_bounce_us`` of this
        #: stamp scores the eviction as a bounce (thrash, §6.4)
        self.evicted_at_ns = -1

        self.stats = EndpointStats()

    # --------------------------------------------------------------- naming
    @property
    def name(self) -> tuple[int, int]:
        """The opaque global endpoint name (Section 3.1)."""
        return (self.node, self.ep_id)

    def map_translation(self, index: int, dst_node: int, dst_ep: int, key: int) -> None:
        if index < 0:
            raise ValueError("translation index must be non-negative")
        self.translation[index] = TranslationEntry(dst_node, dst_ep, key)

    def unmap_translation(self, index: int) -> None:
        self.translation.pop(index, None)

    # --------------------------------------------------------------- queues
    @property
    def resident(self) -> bool:
        return self.residency == Residency.ONNIC_RW

    def send_ring_free(self) -> int:
        return self.send_ring_depth - len(self.send_ring)

    def recv_room(self, is_reply: bool) -> bool:
        if is_reply:
            return len(self.recv_replies) + self.bulk_reserved_rep < self.recv_queue_depth
        return len(self.recv_requests) + self.bulk_reserved_req < self.recv_queue_depth

    def total_queued(self) -> int:
        return (
            len(self.send_ring)
            + len(self.recv_requests)
            + len(self.recv_replies)
            + len(self.returned)
        )

    def has_sendable(self) -> bool:
        return bool(self.send_ring) and self.resident and not self.quiescing

    def __repr__(self) -> str:
        return (
            f"<EP ({self.node},{self.ep_id}) {self.residency.value}"
            f" sr={len(self.send_ring)} rq={len(self.recv_requests)}"
            f" inflight={self.inflight}>"
        )
