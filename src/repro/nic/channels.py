"""Logical flow-control channels (Section 5.1).

Between every pair of interfaces the transport layer maintains a small set
of stop-and-wait channels with positive acknowledgment.  Each channel
carries at most one unacknowledged packet; multiple channels mask
transmission and acknowledgment latencies and exploit multipath routing
(the channel index selects the spine in :mod:`repro.myrinet.topology`).

Because channels are shared physical resources, no message may occupy one
indefinitely: after ``max_consecutive_retrans`` consecutive retransmissions
the message is *unbound*, freeing the channel; later retransmissions
reacquire and rebind (Section 5.1).  Retransmission timing uses randomized
exponential backoff.

Channels are self-synchronizing: each end stamps packets with its epoch,
and a receiver seeing a new epoch (peer rebooted) adopts it and resets its
duplicate-suppression window.
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque
from typing import Deque, Optional

from ..cluster.config import ClusterConfig
from .message import Message

__all__ = ["TxChannel", "RxPeerState", "backoff_ns"]


def backoff_ns(cfg: ClusterConfig, consecutive: int, rng: random.Random) -> int:
    """Randomized exponential backoff for the next retransmission."""
    base_us = cfg.retrans_timeout_us * (2 ** min(consecutive, 10))
    capped_us = min(base_us, max(cfg.retrans_backoff_max_us, cfg.retrans_timeout_us))
    jittered = capped_us * (1.0 + rng.random())  # 1x .. 2x (never early)
    return max(1_000, round(jittered * 1_000))


class TxChannel:
    """Sender-side state of one stop-and-wait channel."""

    __slots__ = (
        "peer",
        "index",
        "seq",
        "epoch",
        "outstanding",
        "pending",
        "deadline_ns",
        "timer_gen",
    )

    def __init__(self, peer: int, index: int, epoch: int = 0):
        self.peer = peer
        self.index = index
        #: alternating sequence bit
        self.seq = 0
        #: bumped when the owning NI reboots (uninitialized state, §5.1)
        self.epoch = epoch
        #: the one message awaiting acknowledgment, if any
        self.outstanding: Optional[Message] = None
        #: messages bound to this channel awaiting their turn (FIFO, §5.3)
        self.pending: Deque[Message] = deque()
        #: absolute retransmission deadline for the outstanding packet
        self.deadline_ns: Optional[int] = None
        #: invalidates stale timer-heap entries
        self.timer_gen = 0

    @property
    def idle(self) -> bool:
        return self.outstanding is None

    def load(self) -> int:
        """Queue depth used for least-loaded channel selection."""
        return (0 if self.idle else 1) + len(self.pending)

    def arm(self, now_ns: int, timeout_ns: int) -> int:
        """Arm the retransmission timer; returns the deadline."""
        self.timer_gen += 1
        self.deadline_ns = now_ns + timeout_ns
        return self.deadline_ns

    def disarm(self) -> None:
        self.timer_gen += 1
        self.deadline_ns = None

    def reset(self, epoch: int) -> list[Message]:
        """Reboot: drop all state, return the orphaned messages."""
        orphans = []
        if self.outstanding is not None:
            orphans.append(self.outstanding)
        orphans.extend(self.pending)
        self.outstanding = None
        self.pending.clear()
        self.seq = 0
        self.epoch = epoch
        self.disarm()
        return orphans

    def __repr__(self) -> str:
        return (
            f"<TxCh ->{self.peer}#{self.index} seq{self.seq}"
            f" out={self.outstanding is not None} pend={len(self.pending)}>"
        )


class RxPeerState:
    """Receiver-side per-peer state: epoch tracking + duplicate suppression.

    Stop-and-wait sequencing alone cannot suppress duplicates across
    channel unbind/rebind, so (like the paper's copy accounting, §5.3) the
    receiver remembers recently delivered message ids per peer and re-ACKs
    duplicates without redelivering — this is what makes delivery exactly
    once (Section 3.2).
    """

    #: class-level default; per-instance depth comes from
    #: ``ClusterConfig.dup_window`` (passed by the firmware)
    WINDOW = 512

    def __init__(self, peer: int, window: Optional[int] = None):
        self.peer = peer
        self.window = self.WINDOW if window is None else window
        self.epoch = 0
        self._delivered: OrderedDict[int, None] = OrderedDict()

    def observe_epoch(self, epoch: int) -> bool:
        """Track the peer's epoch; True if it changed (peer rebooted)."""
        if epoch != self.epoch:
            self.epoch = epoch
            self._delivered.clear()
            return True
        return False

    def is_duplicate(self, msg_id: int) -> bool:
        return msg_id in self._delivered

    def record_delivery(self, msg_id: int) -> None:
        self._delivered[msg_id] = None
        while len(self._delivered) > self.window:
            self._delivered.popitem(last=False)
