"""Firmware-forwarded collective operations (barrier / broadcast / reduce).

The paper leaves the NI programmable precisely so communication patterns
beyond point-to-point can run without host round-trips; Yu et al.
(PAPERS.md) show NIC-level barrier/broadcast beating host-level trees for
exactly this reason.  This module is that extension: each participating
host posts **one** descriptor to its local NI and receives **one**
completion — all interior forwarding happens NI-to-NI over fire-and-forget
``COLL`` packets, charged per-step instruction budgets against the NI's
LogP occupancy like every other firmware operation.

Protocol
--------
Spanning-tree state is held per ``(root, vnet)`` in NI memory
(:class:`CollTree`, cached in :attr:`CollectiveEngine.trees`); the tree is
a deterministic k-ary rotation of the sorted membership with the root
first, so every NI derives the identical tree locally.  Barrier and
reduce run an **up phase** (each NI combines its host's contribution with
its children's partials and forwards one packet to its parent) followed —
for barrier — by a **down phase** releasing the members.  Broadcast is a
pure down phase.  Two tree shapes exist:

* ``firmware``: interior fan-out ``cfg.coll_fanout``; the down phase is
  forwarded hop-by-hop through the tree.
* ``express``: the same up tree, but the root's NI posts the whole down
  fan-out as a single :meth:`~repro.myrinet.network.Network.send_multicast`
  so an idle fabric delivers it as one pooled callback batch over the
  precomputed fabric spanning tree (and a busy or faulted fabric demotes
  it to the wormhole fan-out with the PR-5 revocation rules).

``COLL`` packets carry no flow-control channel and are never
retransmitted: a lost or corrupted step surfaces as a clean host-side
:class:`CollectiveTimeout` (``cfg.coll_timeout_ms``), never a deadlock.

Tree invalidation
-----------------
:meth:`CollectiveEngine.reset` drops every cached tree and fails every
pending operation; :meth:`~repro.nic.firmware.Nic.crash` *and*
:meth:`~repro.nic.firmware.Nic.reboot` both call it, so a rebooted NI can
never forward stale collective edges (the leak class the PR-5 re-attach
path had for rx handlers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from ..myrinet.packet import Packet, PacketType

if TYPE_CHECKING:
    from .firmware import Nic

__all__ = ["COMBINE_OPS", "CollTree", "CollectiveEngine", "CollectiveTimeout",
           "CollStats"]

#: integer combine operators for firmware reduce; names are the wire
#: representation (the descriptor carries the name, never the callable)
COMBINE_OPS = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": max,
    "min": min,
    "band": lambda a, b: a & b,
    "bor": lambda a, b: a | b,
    "bxor": lambda a, b: a ^ b,
}

#: wire size of a collective descriptor packet's payload (combine value /
#: control word); broadcast payloads add their own bytes
_COLL_DESC_BYTES = 8


class CollectiveTimeout(Exception):
    """A firmware collective did not complete (lost step, crashed tree
    node, or local NI reset) before the host-side deadline."""


@dataclass
class CollStats:
    ops_started: int = 0
    up_sent: int = 0
    down_sent: int = 0
    combines: int = 0
    completed: int = 0
    #: pending operations failed by a crash/reboot reset
    aborted: int = 0
    #: fan-outs posted as one express multicast
    mcast_fanouts: int = 0


class CollTree:
    """The deterministic spanning tree of one (root, membership, fanout).

    Virtual ranks are the sorted membership rotated root-first; node
    ``v``'s parent is ``(v-1)//fanout`` and its children are
    ``fanout*v+1 .. fanout*v+fanout``.  Every NI computes the identical
    tree from the descriptor alone — no tree-construction traffic.
    """

    __slots__ = ("root", "members", "fanout", "order", "parent", "children")

    def __init__(self, root: int, members: tuple, fanout: int):
        self.root = root
        self.members = members  # sorted tuple, root included
        self.fanout = fanout
        sm = list(members)
        ri = sm.index(root)
        self.order = sm[ri:] + sm[:ri]
        n = len(self.order)
        self.parent = {}
        self.children = {}
        for v, nid in enumerate(self.order):
            self.parent[nid] = self.order[(v - 1) // fanout] if v > 0 else None
            self.children[nid] = [
                self.order[c] for c in range(fanout * v + 1,
                                             min(fanout * v + fanout + 1, n))
            ]


class _CollHandle:
    """Host-side completion handle: one CondVar, one result slot."""

    __slots__ = ("cv", "done", "failed", "value")

    def __init__(self, sim, name: str):
        # Imported here, not at module top: repro.osim pulls in the
        # segment driver, which imports the firmware that imports us.
        from ..osim.threads import CondVar
        self.cv = CondVar(sim, name=name)
        self.done = False
        self.failed = False
        self.value: Any = None

    def complete(self, value: Any) -> None:
        self.done = True
        self.value = value
        self.cv.broadcast(value)

    def fail(self) -> None:
        self.failed = True
        self.cv.broadcast(None)


class _CollOp:
    """Per-NI state of one in-flight collective operation."""

    __slots__ = ("key", "kind", "root", "members", "strategy", "op_name",
                 "tree", "got", "partial", "self_arrived", "down_done",
                 "down_value", "handle")

    def __init__(self, key, kind, root, members, strategy, op_name, tree):
        self.key = key
        self.kind = kind
        self.root = root
        self.members = members
        self.strategy = strategy
        self.op_name = op_name
        self.tree = tree
        self.got = 0              # child up-contributions received
        self.partial = None       # folded reduce value so far
        self.self_arrived = False
        self.down_done = False
        self.down_value = None
        self.handle: Optional[_CollHandle] = None


class CollectiveEngine:
    """The collective half of one NI's firmware.

    Owned by :class:`~repro.nic.firmware.Nic`; every generator here runs
    inside the NI dispatch loop (via ``_internal_q`` thunks or the
    ``COLL`` branch of ``_handle_rx``), so instruction charges serialize
    with all other firmware work — which is exactly how collectives
    consume the NI's LogP occupancy.
    """

    def __init__(self, nic: "Nic"):
        self.nic = nic
        self.stats = CollStats()
        #: (root, members, fanout) -> CollTree, the per-(root, vnet)
        #: spanning-tree state held in NI memory
        self.trees: dict[tuple, CollTree] = {}
        #: (members, kind, coll_id, root) -> _CollOp
        self.pending: dict[tuple, _CollOp] = {}

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        """Crash/reboot: drop all tree state, fail all pending ops.

        A rebooted NI must never forward collective edges computed
        before the reset, and host threads blocked on a handle must get
        a prompt failure instead of waiting out the full timeout.
        """
        self.trees.clear()
        ops, self.pending = list(self.pending.values()), {}
        for op in ops:
            if op.handle is not None and not op.handle.done:
                self.stats.aborted += 1
                op.handle.fail()

    # ------------------------------------------------------------- plumbing
    def _tree(self, root: int, members: tuple, strategy: str) -> CollTree:
        # Both strategies share the k-ary up tree (parallel combining);
        # express differs only in the down phase, where the root's NI
        # posts one fabric multicast instead of forwarding hop-by-hop.
        fanout = self.nic.cfg.coll_fanout
        key = (root, members, fanout)
        tree = self.trees.get(key)
        if tree is None:
            tree = self.trees[key] = CollTree(root, members, fanout)
        return tree

    def _op(self, kind: str, coll_id: int, root: int, members: tuple,
            strategy: str, op_name: str) -> _CollOp:
        key = (members, kind, coll_id, root)
        op = self.pending.get(key)
        if op is None:
            tree = self._tree(root, members, strategy)
            op = self.pending[key] = _CollOp(
                key, kind, root, members, strategy, op_name, tree)
        return op

    def _coll_pkt(self, dst: int, phase: str, op: _CollOp, coll_id: int,
                  value: Any, payload_bytes: int) -> Packet:
        return Packet.alloc(
            self.nic.nic_id, dst, PacketType.COLL,
            payload_bytes=payload_bytes,
            body=(op.kind, coll_id, op.root, op.members, op.strategy,
                  op.op_name, phase, value),
        )

    def _charge(self, label: str, instr: int):
        return self.nic.sim.timeout(self.nic.meter.cost_ns(label, instr))

    # ----------------------------------------------------- host initiation
    def host_initiate(self, kind: str, coll_id: int, members: tuple,
                      root: int, value: Any = None, op_name: str = "sum",
                      payload_bytes: int = _COLL_DESC_BYTES,
                      strategy: str = "firmware") -> _CollHandle:
        """Post one collective descriptor to this NI (host side, instant);
        the firmware dispatch loop picks it up as completion work.  The
        caller blocks on the returned handle."""
        nic = self.nic
        handle = _CollHandle(nic.sim, name=f"nic{nic.nic_id}.coll{coll_id}")
        self.stats.ops_started += 1

        def thunk():
            yield self._charge("coll_init", nic.cfg.ni_coll_init_instr)
            yield from self._local_arrive(kind, coll_id, members, root,
                                          strategy, op_name, value,
                                          payload_bytes, handle)

        nic._internal_q.append(thunk)
        nic._work.set()
        return handle

    def _local_arrive(self, kind, coll_id, members, root, strategy, op_name,
                      value, payload_bytes, handle):
        nic = self.nic
        op = self._op(kind, coll_id, root, members, strategy, op_name)
        op.handle = handle
        if kind == "bcast":
            if root == nic.nic_id:
                yield from self._start_down(op, coll_id, value, payload_bytes)
                self._complete(op, value)
            elif op.down_done:
                # The root's down phase raced ahead of this host's post.
                self._complete(op, op.down_value)
            return
        # barrier / reduce: this host has arrived
        op.self_arrived = True
        if kind == "reduce" and value is not None:
            if op.partial is None:
                op.partial = value
            else:
                yield self._charge("coll_combine", nic.cfg.ni_coll_combine_instr)
                self.stats.combines += 1
                op.partial = COMBINE_OPS[op.op_name](op.partial, value)
        yield from self._maybe_send_up(op, coll_id, payload_bytes)

    # --------------------------------------------------------- wire receive
    def handle_rx(self, pkt: Packet):
        """One COLL packet from the wire (dispatched ahead of data, like
        ACK/NACK — collective steps are latency-critical control)."""
        nic = self.nic
        kind, coll_id, root, members, strategy, op_name, phase, value = pkt.body
        if nic.nic_id not in members:
            return  # stale/misrouted step for a membership we left
        op = self._op(kind, coll_id, root, members, strategy, op_name)
        if phase == "up":
            yield self._charge("coll_up", nic.cfg.ni_coll_up_instr)
            op.got += 1
            if op.kind == "reduce" and value is not None:
                if op.partial is None:
                    op.partial = value
                else:
                    yield self._charge("coll_combine",
                                       nic.cfg.ni_coll_combine_instr)
                    self.stats.combines += 1
                    op.partial = COMBINE_OPS[op.op_name](op.partial, value)
            if nic.sim.trace.enabled:
                nic.sim.trace.emit("coll.up", nic.nic_id, op=kind, id=coll_id,
                                   got=op.got)
            yield from self._maybe_send_up(op, coll_id, pkt.payload_bytes)
        else:  # down
            yield self._charge("coll_down", nic.cfg.ni_coll_down_instr)
            op.down_done = True
            op.down_value = value
            if nic.sim.trace.enabled:
                nic.sim.trace.emit("coll.down", nic.nic_id, op=kind, id=coll_id)
            if op.strategy != "express":
                # Interior forwarding: relay the down phase to our
                # subtree (express down arrives at every member directly).
                for child in op.tree.children.get(nic.nic_id, ()):
                    yield self._charge("coll_down", nic.cfg.ni_coll_down_instr)
                    self.stats.down_sent += 1
                    nic.network.send(self._coll_pkt(child, "down", op, coll_id,
                                                    value, pkt.payload_bytes))
            if op.handle is not None:
                self._complete(op, value if op.kind == "bcast" else None)
            # else: bcast down outran the local post; _local_arrive
            # completes from the stored down_value.

    # -------------------------------------------------------------- phases
    def _maybe_send_up(self, op: _CollOp, coll_id: int, payload_bytes: int):
        nic = self.nic
        children = op.tree.children.get(nic.nic_id, ())
        if not op.self_arrived or op.got < len(children):
            return
        if nic.nic_id == op.root:
            # Every member has arrived.
            if op.kind == "reduce":
                self._complete(op, op.partial)
            else:  # barrier: release the members
                yield from self._start_down(op, coll_id, None, payload_bytes)
                self._complete(op, None)
            return
        parent = op.tree.parent[nic.nic_id]
        yield self._charge("coll_up", nic.cfg.ni_coll_up_instr)
        self.stats.up_sent += 1
        if nic.sim.trace.enabled:
            nic.sim.trace.emit("coll.fwd_up", nic.nic_id, op=op.kind,
                               id=coll_id, to=parent)
        nic.network.send(self._coll_pkt(parent, "up", op, coll_id,
                                        op.partial, payload_bytes))
        if op.kind == "reduce":
            # Locally complete: our contribution is on its way to the
            # root; only the root observes the folded result.
            self._complete(op, None)
        # barrier: stay pending until the down phase releases us.

    def _start_down(self, op: _CollOp, coll_id: int, value: Any,
                    payload_bytes: int):
        nic = self.nic
        others = tuple(m for m in op.members if m != nic.nic_id)
        if not others:
            return
        if op.strategy == "express":
            # One NI posting, the fabric replicates: the whole fan-out
            # rides the precomputed spanning tree as pooled callback
            # batches (or the wormhole fan-out when contended/faulted).
            yield self._charge("coll_down", nic.cfg.ni_coll_down_instr)
            self.stats.down_sent += len(others)
            self.stats.mcast_fanouts += 1
            nic.network.send_multicast(
                nic.nic_id, others,
                lambda dst: self._coll_pkt(dst, "down", op, coll_id,
                                           value, payload_bytes))
            return
        for child in op.tree.children.get(nic.nic_id, ()):
            yield self._charge("coll_down", nic.cfg.ni_coll_down_instr)
            self.stats.down_sent += 1
            nic.network.send(self._coll_pkt(child, "down", op, coll_id,
                                            value, payload_bytes))

    def _complete(self, op: _CollOp, value: Any) -> None:
        self.pending.pop(op.key, None)
        self.stats.completed += 1
        if self.nic.sim.trace.enabled:
            self.nic.sim.trace.emit("coll.complete", self.nic.nic_id,
                                    op=op.kind, id=op.key[2])
        if op.handle is not None:
            op.handle.complete(value)
