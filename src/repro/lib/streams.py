"""Connection-oriented byte streams over Active Messages.

Figure 1 shows standard sockets riding the virtual-network substrate ("by
supporting a subset of the interface within Solaris, standard sockets,
network file systems, and remote-procedure call packages can leverage the
performance of the network").  This module provides that stream
abstraction: listen/connect rendezvous, ordered byte delivery with
windowed flow control, and graceful close — all as AM request traffic on
the endpoints underneath (cf. the SHRIMP stream-sockets work cited as
[13]).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, Generator, Optional

from ..am.endpoint import Endpoint
from ..am.names import NameService
from ..am.vnet import new_endpoint
from ..cluster.builder import Cluster, Node
from ..osim.threads import Thread

__all__ = ["StreamSocket", "Listener", "stream_connect", "stream_listen"]

_conn_ids = itertools.count(1)

#: stream segment payload limit (one AM request per segment)
SEGMENT_BYTES = 4096
#: receive window, in segments, advertised to the peer
WINDOW_SEGMENTS = 8


class StreamSocket:
    """One end of an established byte stream."""

    def __init__(self, endpoint: Endpoint, conn_id: int):
        self.endpoint = endpoint
        self.conn_id = conn_id
        #: reassembled in-order payload chunks awaiting read
        self._rx: Deque[bytes] = deque()
        self._rx_bytes = 0
        self._next_rx_seq = 0
        self._ooo: dict[int, tuple] = {}
        self._tx_seq = 0
        #: segments in flight, bounded by the peer's window
        self._inflight = 0
        self.peer_closed = False
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        endpoint._stream_socket = self

    # ------------------------------------------------------------- handlers
    @staticmethod
    def _segment_handler(token, conn_id, seq, chunk, fin):
        sock: "StreamSocket" = token.endpoint._stream_socket
        if seq == sock._next_rx_seq:
            sock._accept(chunk, fin)
            sock._next_rx_seq += 1
            while sock._next_rx_seq in sock._ooo:
                c, f = sock._ooo.pop(sock._next_rx_seq)
                sock._accept(c, f)
                sock._next_rx_seq += 1
        else:
            sock._ooo[seq] = (chunk, fin)
        # explicit credit reply: releases one unit of the send window
        token.reply(StreamSocket._credit_handler)

    def _accept(self, chunk, fin):
        if fin:
            self.peer_closed = True
        elif chunk:
            self._rx.append(chunk)
            self._rx_bytes += len(chunk)
            self.bytes_received += len(chunk)

    @staticmethod
    def _credit_handler(token):
        sock: "StreamSocket" = token.endpoint._stream_socket
        sock._inflight -= 1

    # ------------------------------------------------------------------ API
    def send(self, thr: Thread, data: bytes) -> Generator:
        """Send bytes in order (generator; blocks on the send window)."""
        if self.closed:
            raise RuntimeError("send on closed stream")
        view = memoryview(bytes(data))
        offset = 0
        while offset < len(view):
            chunk = bytes(view[offset : offset + SEGMENT_BYTES])
            offset += len(chunk)
            yield from self._send_segment(thr, chunk, fin=False)
            self.bytes_sent += len(chunk)

    def _send_segment(self, thr: Thread, chunk: bytes, fin: bool) -> Generator:
        while self._inflight >= WINDOW_SEGMENTS:
            processed = yield from self.endpoint.poll(thr, limit=8)
            if processed == 0:
                yield from thr.compute(2_000)
        self._inflight += 1
        seq = self._tx_seq
        self._tx_seq += 1
        yield from self.endpoint.request(
            thr, 0, StreamSocket._segment_handler, self.conn_id, seq, chunk, fin,
            nbytes=max(16, len(chunk)),
        )

    def recv(self, thr: Thread, max_bytes: int) -> Generator:
        """Receive up to ``max_bytes`` (generator; b"" means peer closed)."""
        while True:
            if self._rx:
                chunk = self._rx.popleft()
                if len(chunk) > max_bytes:
                    keep = chunk[max_bytes:]
                    self._rx.appendleft(keep)
                    chunk = chunk[:max_bytes]
                self._rx_bytes -= len(chunk)
                return chunk
            if self.peer_closed:
                return b""
            processed = yield from self.endpoint.poll(thr, limit=8)
            if processed == 0:
                yield from self.endpoint.wait(thr, timeout_ns=2_000_000)

    def recv_exact(self, thr: Thread, nbytes: int) -> Generator:
        """Receive exactly ``nbytes`` (generator; raises on early close)."""
        parts = []
        got = 0
        while got < nbytes:
            chunk = yield from self.recv(thr, nbytes - got)
            if not chunk:
                raise EOFError(f"stream closed after {got}/{nbytes} bytes")
            parts.append(chunk)
            got += len(chunk)
        return b"".join(parts)

    def close(self, thr: Thread, linger_ns: int = 50_000_000) -> Generator:
        """Half-close: signal FIN, then flush for at most ``linger_ns``.

        Bounded like SO_LINGER: if the peer has stopped servicing its
        endpoint, close returns anyway (the transport keeps retrying
        underneath until its own dead timeout).
        """
        if self.closed:
            return
        self.closed = True
        yield from self._send_segment(thr, b"", fin=True)
        deadline = self.endpoint.node.sim.now + linger_ns
        while self._inflight > 0 and self.endpoint.node.sim.now < deadline:
            processed = yield from self.endpoint.poll(thr, limit=8)
            if processed == 0:
                yield from thr.compute(10_000)


class Listener:
    """A passive endpoint accepting stream connections."""

    def __init__(self, node: Node, endpoint: Endpoint, label: str, names: NameService):
        self.node = node
        self.endpoint = endpoint
        self.label = label
        self.names = names
        self._pending: Deque[tuple] = deque()
        endpoint._stream_listener = self
        names.register(label, endpoint.name, endpoint.tag)

    @staticmethod
    def _syn_handler(token, conn_id, client_name, client_key):
        listener: "Listener" = token.endpoint._stream_listener
        listener._pending.append((conn_id, client_name, client_key))

    def accept(self, thr: Thread, cluster: Cluster, timeout_ns: Optional[int] = None) -> Generator:
        """Wait for a connection; returns a new StreamSocket (or None)."""
        deadline = None if timeout_ns is None else self.node.sim.now + timeout_ns
        while not self._pending:
            processed = yield from self.endpoint.poll(thr, limit=8)
            if processed == 0:
                if deadline is not None and self.node.sim.now >= deadline:
                    return None
                yield from self.endpoint.wait(thr, timeout_ns=2_000_000)
        conn_id, client_name, client_key = self._pending.popleft()
        # dedicated endpoint per accepted connection (its own virtual net)
        ep = yield from new_endpoint(self.node, rngs=cluster.rngs)
        ep.map(0, client_name, client_key)
        sock = StreamSocket(ep, conn_id)
        # tell the client which endpoint to talk to, through a temporary
        # translation back to the connecting endpoint
        tmp_index = 1 + (conn_id % 4096)
        self.endpoint.map(tmp_index, client_name, client_key)
        yield from self.endpoint.request(
            thr, tmp_index, _synack_handler, conn_id, ep.name, ep.tag
        )
        # wait for the handshake credit before retiring the translation
        while self.endpoint.credits_available(tmp_index) < self.endpoint.cfg.user_credits:
            processed = yield from self.endpoint.poll(thr, limit=8)
            if processed == 0:
                yield from thr.compute(2_000)
        self.endpoint.unmap(tmp_index)
        return sock


def _synack_handler(token, conn_id, server_ep_name, server_key):
    client_sock: "StreamSocket" = token.endpoint._stream_socket
    client_sock.endpoint.map(0, server_ep_name, server_key)
    client_sock._established = True


def stream_listen(cluster: Cluster, node_id: int, label: str, names: NameService) -> Generator:
    """Create a listener registered under ``label`` (generator)."""
    node = cluster.node(node_id)
    ep = yield from new_endpoint(node, rngs=cluster.rngs)
    return Listener(node, ep, label, names)


def stream_connect(thr: Thread, cluster: Cluster, node_id: int, label: str, names: NameService) -> Generator:
    """Connect to ``label`` (generator run in a thread; returns StreamSocket)."""
    looked_up = names.lookup(label)
    if looked_up is None:
        raise ConnectionError(f"no listener registered as {label!r}")
    listener_name, listener_key = looked_up
    node = cluster.node(node_id)
    ep = yield from new_endpoint(node, rngs=cluster.rngs)
    conn_id = next(_conn_ids)
    sock = StreamSocket(ep, conn_id)
    sock._established = False
    # temporary mapping to the listener for the handshake
    ep.map(0, listener_name, listener_key)
    yield from ep.request(thr, 0, Listener._syn_handler, conn_id, ep.name, ep.tag)
    while not sock._established:
        processed = yield from ep.poll(thr, limit=8)
        if processed == 0:
            yield from ep.wait(thr, timeout_ns=2_000_000)
    return sock
