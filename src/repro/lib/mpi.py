"""Mini-MPI on Active Messages: the MPICH-on-AM port of Section 2.

The paper runs MPI codes (NPB, ScaLAPACK) over "our port of the standard
MPICH on Active Messages".  This module provides the pieces those codes
need: eager point-to-point send/recv with (source, tag) matching, and the
collectives the NAS benchmarks use (barrier, bcast, reduce, allreduce,
allgather, alltoall, gather), all implemented as message patterns over the
AM request/reply layer so their cost comes out of the simulated network.

Payloads are Python objects used as metadata; the *size* argument is what
travels through the simulated network (fragmentation, credits, DMA).

Usage::

    world = cluster.run_process(build_world(cluster, nodes), "mpi")
    def main(thr, comm):
        yield from comm.barrier(thr)
        ...
    threads = world.spawn(main)
"""

from __future__ import annotations

import math
from typing import Any, Callable, Generator, Optional, Sequence

from ..am.endpoint import Endpoint
from ..am.vnet import parallel_vnet
from ..cluster.builder import Cluster
from ..nic.collective import COMBINE_OPS
from ..osim.threads import Thread

__all__ = ["ANY", "Comm", "World", "build_world"]

#: wildcard for source/tag matching
ANY = -1


class Comm:
    """One rank's communicator state."""

    def __init__(self, world: "World", rank: int, endpoint: Endpoint):
        self.world = world
        self.rank = rank
        self.endpoint = endpoint
        self._inbox: list[tuple[int, Any, Any, int]] = []  # (src, tag, payload, nbytes)
        #: per-peer sequence numbers: the AM layer's multipath channels may
        #: reorder independent messages, but MPI guarantees per-pair FIFO,
        #: so the library sequences and reorders (as MPICH-on-AM did).
        self._send_seq: dict[int, int] = {}
        self._recv_next: dict[int, int] = {}
        self._out_of_order: dict[int, dict[int, tuple]] = {}
        self._coll_seq = 0
        self.bytes_sent = 0
        self.msgs_sent = 0
        #: time spent inside communication calls (ns), for §6.2's
        #: communication-time instrumentation
        self.comm_ns = 0

    @property
    def size(self) -> int:
        return len(self.world.comms)

    # ------------------------------------------------------------- delivery
    def _deliver(self, token, src: int, seq: int, tag: Any, payload: Any, nbytes: int):
        expected = self._recv_next.get(src, 0)
        if seq != expected:
            self._out_of_order.setdefault(src, {})[seq] = (tag, payload, nbytes)
            return
        self._inbox.append((src, tag, payload, nbytes))
        expected += 1
        stash = self._out_of_order.get(src)
        while stash and expected in stash:
            t, p, n = stash.pop(expected)
            self._inbox.append((src, t, p, n))
            expected += 1
        self._recv_next[src] = expected

    def _match(self, source: int, tag: Any) -> Optional[tuple]:
        for i, (src, t, payload, nbytes) in enumerate(self._inbox):
            if (source == ANY or src == source) and (tag == ANY or t == tag):
                return self._inbox.pop(i)
        return None

    # --------------------------------------------------------- point-to-point
    def send(self, thr: Thread, dest: int, tag: Any, nbytes: int, payload: Any = None) -> Generator:
        """Eager send of ``nbytes`` to ``dest`` (generator)."""
        if not (0 <= dest < self.size):
            raise ValueError(f"bad destination rank {dest}")
        t0 = self.world.sim.now
        handler = self.world.comms[dest]._deliver
        seq = self._send_seq.get(dest, 0)
        self._send_seq[dest] = seq + 1
        yield from self.endpoint.request(thr, dest, handler, self.rank, seq, tag, payload, nbytes, nbytes=nbytes)
        self.msgs_sent += 1
        self.bytes_sent += nbytes
        self.comm_ns += self.world.sim.now - t0

    def recv(self, thr: Thread, source: int = ANY, tag: Any = ANY) -> Generator:
        """Blocking receive; returns (src, tag, payload, nbytes)."""
        t0 = self.world.sim.now
        while True:
            found = self._match(source, tag)
            if found is not None:
                self.comm_ns += self.world.sim.now - t0
                return found
            processed = yield from self.endpoint.poll(thr, limit=8)
            if processed == 0:
                yield from thr.compute(self.endpoint._poll_touch_ns())

    def sendrecv(self, thr: Thread, dest: int, source: int, tag: Any, nbytes: int, payload: Any = None) -> Generator:
        """Exchange: send to ``dest`` while receiving from ``source``."""
        yield from self.send(thr, dest, tag, nbytes, payload)
        result = yield from self.recv(thr, source, tag)
        return result

    # ------------------------------------------------------------ collectives
    def _tag(self, name: str) -> tuple:
        """Per-collective-instance tag (ranks call collectives in order)."""
        self._coll_seq += 1
        return ("__coll", name, self._coll_seq)

    def _strategy(self) -> str:
        """Which implementation Barrier/Bcast/Reduce use, per ClusterConfig.

        ``host`` is the message-pattern implementation below; ``firmware``
        and ``express`` offload to the NI collective engine.  Firmware
        trees are per-NI, so a world with co-located ranks (two ranks on
        one node) always falls back to the host trees.
        """
        s = self.endpoint.cfg.collective_strategy
        if s == "host":
            return "host"
        nodes = self.world.nodes
        if len(set(nodes)) != len(nodes):
            return "host"
        return s

    def _nic_collective(self, thr: Thread, op: str, root: int, value: Any = None,
                        op_name: str = "sum", nbytes: int = 8,
                        strategy: str = "firmware") -> Generator:
        """One firmware/express collective through this rank's endpoint.

        The operation id is the communicator's collective sequence number
        — synchronized across ranks by MPI's rule that all ranks call
        collectives in the same order — so every NI folds contributions
        of the same logical operation together.
        """
        t0 = self.world.sim.now
        self._coll_seq += 1
        nodes = self.world.nodes
        result = yield from self.endpoint.collective(
            thr, op, self._coll_seq, nodes, nodes[root], value=value,
            op_name=op_name, nbytes=nbytes, strategy=strategy)
        self.comm_ns += self.world.sim.now - t0
        return result

    def barrier(self, thr: Thread) -> Generator:
        """Barrier: a true synchronization point across all ranks.

        Host strategy runs a dissemination barrier (ceil(log2 n) rounds
        of pairwise messages); firmware/express offload one descriptor to
        the NI spanning tree.
        """
        n = self.size
        if n == 1:
            return
        strategy = self._strategy()
        if strategy != "host":
            yield from self._nic_collective(thr, "barrier", 0, strategy=strategy)
            return
        tag = self._tag("bar")
        rounds = max(1, math.ceil(math.log2(n)))
        for k in range(rounds):
            dist = 1 << k
            dest = (self.rank + dist) % n
            src = (self.rank - dist) % n
            yield from self.send(thr, dest, (*tag, k), 8)
            yield from self.recv(thr, src, (*tag, k))

    def bcast(self, thr: Thread, root: int, nbytes: int, payload: Any = None) -> Generator:
        """Broadcast from ``root``; returns the payload on every rank.

        Host strategy is a binomial tree; firmware forwards hop-by-hop
        down the NI spanning tree; express posts the whole fan-out as one
        fabric multicast from the root's NI.
        """
        n = self.size
        if n == 1:
            return payload
        strategy = self._strategy()
        if strategy != "host":
            result = yield from self._nic_collective(
                thr, "bcast", root, value=payload, nbytes=nbytes,
                strategy=strategy)
            return result
        tag = self._tag("bcast")
        vrank = (self.rank - root) % n
        if vrank != 0:
            mask = 1
            while mask < n:
                if vrank & mask:
                    src = ((vrank - mask) + root) % n
                    _, _, payload, _ = yield from self.recv(thr, src, tag)
                    break
                mask <<= 1
            mask >>= 1
        else:
            mask = 1
            while mask < n:
                mask <<= 1
            mask >>= 1
        while mask > 0:
            if vrank + mask < n and vrank & (mask - 1) == 0 and not vrank & mask:
                dest = ((vrank + mask) + root) % n
                yield from self.send(thr, dest, tag, nbytes, payload)
            mask >>= 1
        return payload

    def reduce(self, thr: Thread, root: int, value: Any, op, nbytes: int) -> Generator:
        """Reduction to ``root``; returns the result there, None elsewhere.

        ``op`` is either a two-argument callable or the name of an
        integer combine op (:data:`~repro.nic.collective.COMBINE_OPS`).
        Only named ops can offload — the NI firmware combines by name,
        never by shipping host callables — so callable ops always use the
        host binomial tree.
        """
        n = self.size
        if n == 1:
            return value
        strategy = self._strategy()
        if isinstance(op, str):
            if strategy != "host":
                result = yield from self._nic_collective(
                    thr, "reduce", root, value=value, op_name=op,
                    nbytes=nbytes, strategy=strategy)
                return result
            op = COMBINE_OPS[op]
        tag = self._tag("reduce")
        vrank = (self.rank - root) % n
        acc = value
        mask = 1
        while mask < n:
            if vrank & mask:
                dest = ((vrank & ~mask) + root) % n
                yield from self.send(thr, dest, tag, nbytes, acc)
                break
            partner = vrank | mask
            if partner < n:
                src = (partner + root) % n
                _, _, other, _ = yield from self.recv(thr, src, tag)
                acc = op(acc, other)
            mask <<= 1
        return acc if vrank == 0 else None

    def allreduce(self, thr: Thread, value: Any, op: Callable[[Any, Any], Any], nbytes: int) -> Generator:
        """Reduce-to-0 then broadcast (handles non-power-of-two sizes)."""
        acc = yield from self.reduce(thr, 0, value, op, nbytes)
        result = yield from self.bcast(thr, 0, nbytes, acc)
        return result

    def allgather(self, thr: Thread, value: Any, nbytes_each: int) -> Generator:
        """Ring allgather; returns the list indexed by rank."""
        n = self.size
        out: list[Any] = [None] * n
        out[self.rank] = value
        if n == 1:
            return out
        tag = self._tag("agather")
        right = (self.rank + 1) % n
        left = (self.rank - 1) % n
        carry_rank, carry = self.rank, value
        for _ in range(n - 1):
            yield from self.send(thr, right, tag, nbytes_each, (carry_rank, carry))
            _, _, (carry_rank, carry), _ = yield from self.recv(thr, left, tag)
            out[carry_rank] = carry
        return out

    def alltoall(self, thr: Thread, values: Sequence[Any], nbytes_each: int) -> Generator:
        """Pairwise-shift all-to-all; returns list indexed by source rank.

        This is the bisection-stressing pattern of FT and IS (Figure 5).
        """
        n = self.size
        if len(values) != n:
            raise ValueError("alltoall needs one value per rank")
        out: list[Any] = [None] * n
        out[self.rank] = values[self.rank]
        if n == 1:
            return out
        tag = self._tag("a2a")
        for shift in range(1, n):
            dest = (self.rank + shift) % n
            src = (self.rank - shift) % n
            yield from self.send(thr, dest, (*tag, shift), nbytes_each, values[dest])
            _, _, payload, _ = yield from self.recv(thr, src, (*tag, shift))
            out[src] = payload
        return out

    def gather(self, thr: Thread, root: int, value: Any, nbytes_each: int) -> Generator:
        """Linear gather to root; returns the list there, None elsewhere."""
        n = self.size
        tag = self._tag("gather")
        if self.rank == root:
            out: list[Any] = [None] * n
            out[root] = value
            for _ in range(n - 1):
                src, _, payload, _ = yield from self.recv(thr, ANY, tag)
                out[src] = payload
            return out
        yield from self.send(thr, root, tag, nbytes_each, value)
        return None


class World:
    """All ranks of one MPI job."""

    def __init__(self, cluster: Cluster, nodes: Sequence[int], comms: list[Comm]):
        self.cluster = cluster
        self.sim = cluster.sim
        self.nodes = list(nodes)
        self.comms = comms

    @property
    def size(self) -> int:
        return len(self.comms)

    def spawn(self, main: Callable[[Thread, Comm], Generator], name: str = "mpi") -> list[Thread]:
        """Start one thread per rank running ``main(thr, comm)``."""
        threads = []
        for rank, node_id in enumerate(self.nodes):
            proc = self.cluster.node(node_id).start_process(f"{name}.r{rank}")
            comm = self.comms[rank]
            threads.append(
                proc.spawn_thread(
                    (lambda c: lambda thr: main(thr, c))(comm), name=f"{name}.r{rank}"
                )
            )
        return threads

    def total_comm_ns(self) -> int:
        return sum(c.comm_ns for c in self.comms)

    def total_bytes(self) -> int:
        return sum(c.bytes_sent for c in self.comms)


def build_world(cluster: Cluster, nodes: Sequence[int]) -> Generator:
    """Create an all-pairs virtual network and one Comm per rank.

    Generator (run with ``cluster.run_process``); returns :class:`World`.
    """
    vnet = yield from parallel_vnet(cluster, nodes)
    comms: list[Comm] = []
    world = World(cluster, nodes, comms)
    for rank, ep in enumerate(vnet.endpoints):
        comms.append(Comm(world, rank, ep))
    return world
