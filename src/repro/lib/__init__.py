"""Upper-layer libraries over Active Messages: mini-MPI, Split-C ops, RPC."""

from .mpi import ANY, Comm, World, build_world
from .rpc import RpcClient, RpcError, RpcServer
from .splitc import SplitCContext, SplitCWorld, build_splitc_world
from .via import CompletionQueue, Vi, connect_vis, create_vi, full_mesh_vis

__all__ = [
    "ANY",
    "Comm",
    "RpcClient",
    "RpcError",
    "RpcServer",
    "CompletionQueue",
    "SplitCContext",
    "SplitCWorld",
    "Vi",
    "connect_vis",
    "create_vi",
    "full_mesh_vis",
    "World",
    "build_splitc_world",
    "build_world",
]
