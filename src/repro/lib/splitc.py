"""Split-C-style one-sided operations on Active Messages.

Section 2: "the communication programming interface supports traditional
parallel libraries, such as ... the Split-C language originally developed
for the CM-5."  Split-C programs use split-phase one-sided *get*/*put*
against a global address space plus barriers; this module provides those
on the AM request/reply layer.  The time-shared workload of Section 6.3
is written against this interface.

A :class:`SplitCContext` is one rank of a Split-C program; ranks share a
:class:`SplitCWorld` whose per-rank "memories" are plain dictionaries
(data values are metadata; sizes drive the simulated network).
"""

from __future__ import annotations

import math
from typing import Any, Generator, Optional, Sequence

from ..am.endpoint import Endpoint
from ..am.vnet import parallel_vnet
from ..cluster.builder import Cluster
from ..osim.threads import Thread

__all__ = ["SplitCWorld", "SplitCContext", "build_splitc_world"]


class SplitCContext:
    """One rank: split-phase gets/puts plus sync and barrier."""

    def __init__(self, world: "SplitCWorld", rank: int, endpoint: Endpoint):
        self.world = world
        self.rank = rank
        self.endpoint = endpoint
        #: this rank's slice of the global address space
        self.memory: dict[Any, Any] = {}
        self._pending = 0
        self._barrier_seq = 0
        self._barrier_inbox: set = set()
        self.comm_ns = 0
        self.puts = 0
        self.gets = 0

    @property
    def size(self) -> int:
        return len(self.world.contexts)

    # ------------------------------------------------------------- handlers
    def _put_handler(self, token, key, value):
        self.memory[key] = value

    def _get_handler(self, token, key, requester_nbytes):
        value = self.memory.get(key)
        token.reply(self._get_reply, key, value, nbytes=requester_nbytes)

    def _get_reply(self, token, key, value):
        # runs at the requester: completion of a split-phase get
        owner = token.endpoint._splitc_ctx
        owner._get_results[key] = value
        owner._pending -= 1

    def _barrier_handler(self, token, seq, round_):
        self._barrier_inbox.add((seq, round_))

    # ------------------------------------------------------------ operations
    def put(self, thr: Thread, dest: int, key: Any, value: Any, nbytes: int) -> Generator:
        """Split-phase put: returns once the request is issued."""
        c0 = thr.cpu_ns
        target = self.world.contexts[dest]
        yield from self.endpoint.request(thr, dest, target._put_handler, key, value, nbytes=nbytes)
        self.puts += 1
        self.comm_ns += thr.cpu_ns - c0

    def get(self, thr: Thread, src: int, key: Any, nbytes: int) -> Generator:
        """Split-phase get: issues the fetch; :meth:`sync` completes it."""
        c0 = thr.cpu_ns
        target = self.world.contexts[src]
        self._pending += 1
        yield from self.endpoint.request(thr, src, target._get_handler, key, nbytes, nbytes=16)
        self.gets += 1
        self.comm_ns += thr.cpu_ns - c0

    def sync(self, thr: Thread) -> Generator:
        """Wait for all outstanding split-phase gets to complete.

        Two-phase waiting (spin briefly, then block on the endpoint event
        mask) — the implicit co-scheduling mechanism of Section 6.3.
        """
        c0 = thr.cpu_ns
        while self._pending > 0:
            processed = yield from self.endpoint.poll(thr, limit=8)
            if processed == 0:
                yield from self.endpoint.wait(thr, timeout_ns=2_000_000)
        # communication time is CPU time spent communicating; waiting
        # blocked (or descheduled) is not -- which is why the paper sees
        # it stay nearly constant when time-shared (Section 6.3)
        self.comm_ns += thr.cpu_ns - c0
        return dict(self._get_results)

    def barrier(self, thr: Thread) -> Generator:
        """Dissemination barrier over the virtual network."""
        n = self.size
        if n == 1:
            return
        c0 = thr.cpu_ns
        self._barrier_seq += 1
        seq = self._barrier_seq
        rounds = max(1, math.ceil(math.log2(n)))
        for k in range(rounds):
            dist = 1 << k
            dest = (self.rank + dist) % n
            partner = self.world.contexts[dest]
            yield from self.endpoint.request(thr, dest, partner._barrier_handler, seq, k)
            while (seq, k) not in self._barrier_inbox:
                processed = yield from self.endpoint.poll(thr, limit=8)
                if processed == 0:
                    # spin-then-block: lets a co-resident application run
                    # while we wait (implicit co-scheduling, Section 6.3)
                    yield from self.endpoint.wait(thr, timeout_ns=2_000_000)
            self._barrier_inbox.discard((seq, k))
        self.comm_ns += thr.cpu_ns - c0


class SplitCWorld:
    """All ranks of one Split-C program."""

    def __init__(self, cluster: Cluster, nodes: Sequence[int], contexts: list[SplitCContext]):
        self.cluster = cluster
        self.sim = cluster.sim
        self.nodes = list(nodes)
        self.contexts = contexts

    def spawn(self, main, name: str = "splitc"):
        """One thread per rank running ``main(thr, ctx)``."""
        threads = []
        for rank, node_id in enumerate(self.nodes):
            proc = self.cluster.node(node_id).start_process(f"{name}.r{rank}")
            ctx = self.contexts[rank]
            threads.append(
                proc.spawn_thread((lambda c: lambda thr: main(thr, c))(ctx), name=f"{name}.r{rank}")
            )
        return threads

    def total_comm_ns(self) -> int:
        return sum(c.comm_ns for c in self.contexts)


def build_splitc_world(cluster: Cluster, nodes: Sequence[int]) -> Generator:
    """All-pairs virtual network + one context per rank (generator)."""
    vnet = yield from parallel_vnet(cluster, nodes)
    contexts: list[SplitCContext] = []
    world = SplitCWorld(cluster, nodes, contexts)
    for rank, ep in enumerate(vnet.endpoints):
        ctx = SplitCContext(world, rank, ep)
        ctx._get_results = {}
        ep._splitc_ctx = ctx
        contexts.append(ctx)
    return world
