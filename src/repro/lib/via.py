"""A Virtual Interface Architecture (VIA) layer over virtual networks.

The paper's conclusions: "We are currently working on applying these
techniques for network virtualization to an implementation of the Virtual
Interface Architecture" — managing a large logical space of VIs with
finite interface resources, exactly as endpoints are managed here.

This module provides the VIA shapes of Section 7 on top of the AM-II
endpoint layer:

* a **VI** is a *connection*: a send/receive queue pair bound to exactly
  one remote VI (contrast with endpoints, which address many peers
  through a translation table — the paper notes a parallel program needs
  n^2 VIs where a virtual network needs n endpoints);
* **completion queues**: collections of VIs may share a CQ, giving one
  central place to poll or block;
* reliability rides the underlying virtual-network transport, so the
  VIA "reliable delivery" mode comes for free — with endpoint paging
  managing the large VI space against finite NI frames.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Generator, Optional, Sequence

from ..am.endpoint import Endpoint
from ..am.vnet import new_endpoint
from ..cluster.builder import Cluster, Node
from ..osim.threads import CondVar, Thread

__all__ = ["Completion", "CompletionQueue", "Vi", "create_vi", "connect_vis", "full_mesh_vis"]

_vi_ids = itertools.count(1)

#: completion kinds
SEND_DONE = "send_done"
RECV = "recv"
ERROR = "error"


@dataclass
class Completion:
    """One entry popped from a completion queue."""

    vi: "Vi"
    kind: str
    context: Any = None
    nbytes: int = 0
    payload: Any = None


class CompletionQueue:
    """A shared completion queue: the central polling point (Section 7)."""

    def __init__(self, node: Node, name: str = "cq"):
        self.node = node
        self.name = name
        self._entries: list[Completion] = []
        self._cv = CondVar(node.sim, name=f"{name}.cv")

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, completion: Completion) -> None:
        self._entries.append(completion)
        self._cv.broadcast()

    def poll(self, thr: Thread) -> Generator:
        """Non-blocking pop (generator; returns Completion or None).

        Also services the member VIs' endpoints so completions surface.
        """
        seen = set()
        for vi in list(self._vis()):
            ep = vi.endpoint
            if id(ep) not in seen:
                seen.add(id(ep))
                yield from ep.poll(thr, limit=8)
        if self._entries:
            return self._entries.pop(0)
        return None

    def wait(self, thr: Thread, timeout_ns: Optional[int] = None) -> Generator:
        """Blocking pop (generator; returns Completion or None on timeout)."""
        deadline = None if timeout_ns is None else self.node.sim.now + timeout_ns
        while True:
            completion = yield from self.poll(thr)
            if completion is not None:
                return completion
            if deadline is not None and self.node.sim.now >= deadline:
                return None
            waits = [self._cv.wait()]
            if deadline is not None:
                waits.append(self.node.sim.timeout(max(1, deadline - self.node.sim.now)))
            from ..sim.core import AnyOf

            yield from thr.block(AnyOf(self.node.sim, waits))

    _registered: list = None

    def _vis(self):
        return self._registered or []

    def register(self, vi: "Vi") -> None:
        if self._registered is None:
            self._registered = []
        self._registered.append(vi)


class Vi:
    """One Virtual Interface: a connected send/receive queue pair."""

    def __init__(self, node: Node, endpoint: Endpoint, cq: CompletionQueue):
        self.node = node
        self.endpoint = endpoint
        self.cq = cq
        self.vi_id = next(_vi_ids)
        self.peer: Optional[tuple] = None  # (name, key) of the remote VI
        self.connected = False
        self.sends_posted = 0
        self.recvs_completed = 0
        cq.register(self)
        endpoint.undeliverable_handler = self._undeliverable

    # ---------------------------------------------------------- connection
    def connect(self, peer_name: tuple[int, int], peer_key: int) -> None:
        """Bind this VI to its one remote VI (connection semantics)."""
        if self.connected:
            raise RuntimeError(f"VI {self.vi_id} already connected")
        self.endpoint.map(0, peer_name, peer_key)
        self.peer = (peer_name, peer_key)
        self.connected = True

    # ------------------------------------------------------------- transfers
    def _recv_handler(self, token, context, payload):
        self.recvs_completed += 1
        self.cq.push(Completion(self, RECV, context=context, nbytes=token.nbytes, payload=payload))

    def _send_done(self, token, context):
        self.cq.push(Completion(self, SEND_DONE, context=context))

    def _undeliverable(self, msg, reason):
        self.cq.push(Completion(self, ERROR, context=reason))

    def post_send(self, thr: Thread, nbytes: int, context: Any = None, payload: Any = None) -> Generator:
        """Post a send descriptor (generator); completion lands in the CQ.

        Under VIA's reliable-delivery mode the completion means the data
        reached the remote VI — here that is the remote library's receipt
        acknowledgment (a reply), so the guarantee is end-to-end.
        """
        if not self.connected:
            raise RuntimeError(f"VI {self.vi_id} not connected")
        self.sends_posted += 1
        remote_handler = self._peer_recv_handler()
        yield from self.endpoint.request(
            thr, 0, remote_handler, context, payload, nbytes=nbytes
        )

    def _peer_recv_handler(self):
        # In-process rendezvous: the remote VI registered itself by name.
        peer_vi = _VI_DIRECTORY.get(self.peer[0])
        if peer_vi is None:
            # Send into the void: the transport's return-to-sender error
            # model will surface an ERROR completion.
            return lambda token, context, payload: None

        def handler(token, context, payload):
            peer_vi._recv_handler(token, context, payload)
            token.reply(peer_vi._remote_send_done, context)

        return handler

    def _remote_send_done(self, token, context):
        # runs at the *sender* when the receipt reply arrives
        vi = _VI_DIRECTORY.get(token.endpoint.name)
        if vi is not None:
            vi._send_done(token, context)


#: name -> Vi rendezvous (one simulated address space)
_VI_DIRECTORY: dict = {}


def create_vi(node: Node, cq: CompletionQueue, cluster: Cluster) -> Generator:
    """Allocate a VI on ``node`` attached to ``cq`` (generator; returns Vi)."""
    ep = yield from new_endpoint(node, rngs=cluster.rngs)
    vi = Vi(node, ep, cq)
    _VI_DIRECTORY[ep.name] = vi
    return vi


def connect_vis(a: Vi, b: Vi) -> None:
    """Connect two VIs to each other (the rendezvous is out of band)."""
    a.connect(b.endpoint.name, b.endpoint.tag)
    b.connect(a.endpoint.name, a.endpoint.tag)


def full_mesh_vis(cluster: Cluster, nodes: Sequence[int]) -> Generator:
    """Fully connect ``n`` nodes with VIA semantics: n*(n-1) VIs.

    Illustrates the provisioning contrast of Section 7: a virtual network
    needs one endpoint per node; VIA connections need a VI per peer —
    which is exactly why managing a large VI space against finite frames
    needs the paper's virtualization machinery.
    Generator; returns (cqs_by_node, vis[i][j]).
    """
    n = len(nodes)
    cqs = {}
    vis: dict[int, dict[int, Vi]] = {i: {} for i in range(n)}
    for i, node_id in enumerate(nodes):
        cqs[i] = CompletionQueue(cluster.node(node_id), name=f"cq{i}")
    for i, node_id in enumerate(nodes):
        for j in range(n):
            if i == j:
                continue
            vi = yield from create_vi(cluster.node(node_id), cqs[i], cluster)
            vis[i][j] = vi
    for i in range(n):
        for j in range(i + 1, n):
            connect_vis(vis[i][j], vis[j][i])
    return cqs, vis
