"""A small RPC package over Active Messages.

Figure 1 lists remote-procedure-call packages among the system software
running over virtual networks.  This is the minimal client/server RPC the
examples use: a server registers named procedures on an endpoint; clients
call them and block for the result.  Unreachable servers surface through
the return-to-sender error model rather than client timeouts (§3.2).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..am.endpoint import Endpoint
from ..osim.threads import Thread

__all__ = ["RpcServer", "RpcClient", "RpcError"]


class RpcError(Exception):
    """Call failed: procedure unknown or request undeliverable."""


class RpcServer:
    """Registry of procedures served from one endpoint."""

    def __init__(self, endpoint: Endpoint):
        self.endpoint = endpoint
        self._procs: dict[str, Callable[..., Any]] = {}
        self.calls_served = 0

    def register(self, name: str, fn: Callable[..., Any]) -> None:
        if name in self._procs:
            raise ValueError(f"procedure {name!r} already registered")
        self._procs[name] = fn

    def _dispatch(self, token, name: str, args: tuple):
        fn = self._procs.get(name)
        if fn is None:
            token.reply(RpcClient._complete, None, f"no such procedure {name!r}")
            return
        self.calls_served += 1
        result = fn(*args)
        token.reply(RpcClient._complete, result, None)

    def serve_loop(self, thr: Thread, stop: dict) -> Generator:
        """Event-driven service loop (run as a thread body)."""
        self.endpoint.set_event_mask({"recv"})
        while not stop.get("flag"):
            yield from self.endpoint.wait(thr, timeout_ns=5_000_000)
            while True:
                n = yield from self.endpoint.poll(thr, limit=8)
                if n == 0:
                    break


class RpcClient:
    """Issues calls through one endpoint; one outstanding call at a time."""

    def __init__(self, endpoint: Endpoint, server_index: int = 0):
        self.endpoint = endpoint
        self.server_index = server_index
        self._completion: Optional[tuple] = None
        endpoint._rpc_client = self
        endpoint.undeliverable_handler = self._undeliverable

    @staticmethod
    def _complete(token, result, error):
        client = token.endpoint._rpc_client
        client._completion = (result, error)

    def _undeliverable(self, msg, reason):
        self._completion = (None, f"undeliverable: {reason}")

    def call(self, thr: Thread, server: RpcServer, name: str, *args: Any) -> Generator:
        """Blocking RPC; returns the result or raises :class:`RpcError`."""
        self._completion = None
        yield from self.endpoint.request(
            thr, self.server_index, server._dispatch, name, args
        )
        while self._completion is None:
            processed = yield from self.endpoint.poll(thr, limit=8)
            if processed == 0:
                yield from thr.compute(self.endpoint._poll_touch_ns())
        result, error = self._completion
        if error is not None:
            raise RpcError(error)
        return result
