"""Discrete-event simulation kernel used by the whole reproduction."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupted,
    NS_PER_MS,
    NS_PER_S,
    NS_PER_US,
    NULL_TRACE,
    Process,
    SimError,
    Simulator,
    Timeout,
    ms,
    seconds,
    us,
)
from .reference import ReferenceProcess, ReferenceSimulator
from .resources import Gate, GateTimeout, Resource, Store
from .rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Gate",
    "GateTimeout",
    "Interrupted",
    "NS_PER_MS",
    "NS_PER_S",
    "NS_PER_US",
    "NULL_TRACE",
    "Process",
    "ReferenceProcess",
    "ReferenceSimulator",
    "Resource",
    "RngStreams",
    "SimError",
    "Simulator",
    "Store",
    "Timeout",
    "ms",
    "seconds",
    "us",
]
