"""Synchronization and queueing primitives built on the event kernel.

These are deliberately small: a counted FIFO :class:`Resource`, a FIFO
:class:`Store` (bounded or unbounded), and a level-triggered :class:`Gate`.
Higher layers (OS mutexes, condition variables, NIC work queues) are built
from these.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Event, SimError, Simulator

__all__ = ["Resource", "Store", "Gate"]


class Resource:
    """A counted resource granted in strict FIFO order.

    ``yield res.acquire()`` blocks until a unit is available; every acquire
    must be paired with exactly one :meth:`release`.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.acquire")
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            ev.trigger(None)
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True if a unit was granted."""
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the unit directly to the next waiter (count unchanged).
            self._waiters.popleft().trigger(None)
        else:
            self._in_use -= 1


class Store:
    """A FIFO queue of items with optional capacity.

    ``yield store.get()`` evaluates to the next item; ``yield store.put(x)``
    blocks while the store is full.  Items are delivered in put order and
    getters are served in arrival order.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity < 1:
            raise SimError(f"store capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        ev = Event(self.sim, name=f"{self.name}.put")
        if self._getters:
            # Direct handoff keeps FIFO order: store must be empty here.
            self._getters.popleft().trigger(item)
            ev.trigger(None)
        elif not self.full:
            self._items.append(item)
            ev.trigger(None)
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False if the store is full."""
        if self._getters:
            self._getters.popleft().trigger(item)
            return True
        if self.full:
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.get")
        if self._items:
            ev.trigger(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters and not self.full:
            ev, item = self._putters.popleft()
            self._items.append(item)
            ev.trigger(None)


class Gate:
    """A level-triggered flag processes can wait on.

    While *set*, waits complete immediately; while *clear*, waiters queue
    until the next :meth:`set`.  Used for "work available" signalling where
    edge-triggered one-shot events would race.
    """

    def __init__(self, sim: Simulator, is_set: bool = False, name: str = ""):
        self.sim = sim
        self.name = name
        self._set = is_set
        self._waiters: list[Event] = []

    @property
    def is_set(self) -> bool:
        return self._set

    def wait(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.wait")
        if self._set:
            ev.trigger(None)
        else:
            self._waiters.append(ev)
        return ev

    def set(self) -> None:
        if self._set:
            return
        self._set = True
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.trigger(None)

    def clear(self) -> None:
        self._set = False

    def pulse(self) -> None:
        """Release current waiters without leaving the gate set."""
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.trigger(None)
