"""Synchronization and queueing primitives built on the event kernel.

These are deliberately small: a counted FIFO :class:`Resource`, a FIFO
:class:`Store` (bounded or unbounded), and a level-triggered :class:`Gate`.
Higher layers (OS mutexes, condition variables, NIC work queues) are built
from these.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from .core import Event, SimError, Simulator

__all__ = ["Resource", "Store", "Gate", "GateTimeout"]


class Resource:
    """A counted resource granted in strict FIFO order.

    ``yield res.acquire()`` blocks until a unit is available; every acquire
    must be paired with exactly one :meth:`release`.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def idle(self) -> bool:
        """True when no unit is held and nobody is queued."""
        return self._in_use == 0 and not self._waiters

    def acquire(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.acquire")
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            ev.trigger(None)
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True if a unit was granted."""
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the unit directly to the next waiter (count unchanged).
            self._waiters.popleft().trigger(None)
        else:
            self._in_use -= 1


class Store:
    """A FIFO queue of items with optional capacity.

    ``yield store.get()`` evaluates to the next item; ``yield store.put(x)``
    blocks while the store is full.  Items are delivered in put order and
    getters are served in arrival order.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity < 1:
            raise SimError(f"store capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        ev = Event(self.sim, name=f"{self.name}.put")
        if self._getters:
            # Direct handoff keeps FIFO order: store must be empty here.
            self._getters.popleft().trigger(item)
            ev.trigger(None)
        elif not self.full:
            self._items.append(item)
            ev.trigger(None)
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False if the store is full."""
        if self._getters:
            self._getters.popleft().trigger(item)
            return True
        if self.full:
            return False
        self._items.append(item)
        return True

    def offer(self, item: Any) -> Optional[Event]:
        """Accept ``item`` without allocating when it fits (the hot case).

        Returns ``None`` if the item was accepted immediately (direct
        handoff to a getter, or appended to a non-full store) — exactly
        the cases where :meth:`put` would have returned an
        already-triggered event.  Returns the blocking put event when the
        store is full, so callers can ``yield`` it for backpressure.
        """
        if self._getters:
            self._getters.popleft().trigger(item)
            return None
        if not self.full:
            self._items.append(item)
            return None
        ev = Event(self.sim, name=f"{self.name}.put")
        self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.get")
        if self._items:
            ev.trigger(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters and not self.full:
            ev, item = self._putters.popleft()
            self._items.append(item)
            ev.trigger(None)


class Gate:
    """A level-triggered flag processes can wait on.

    While *set*, waits complete immediately; while *clear*, waiters queue
    until the next :meth:`set`.  Used for "work available" signalling where
    edge-triggered one-shot events would race.

    A Gate is itself a waitable: ``yield gate`` is equivalent to
    ``yield gate.wait()`` but skips the per-wait :class:`Event`
    allocation, so hot service loops can park for free.  The waiter list
    therefore holds a mix of Events (from :meth:`wait`) and raw callbacks
    (from ``_subscribe``); :meth:`set`/:meth:`pulse` release both in
    strict FIFO order.
    """

    def __init__(self, sim: Simulator, is_set: bool = False, name: str = ""):
        self.sim = sim
        self.name = name
        self._set = is_set
        self._waiters: list[Any] = []  # Events and raw callbacks, FIFO

    @property
    def is_set(self) -> bool:
        return self._set

    def wait(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.wait")
        if self._set:
            ev.trigger(None)
        else:
            self._waiters.append(ev)
        return ev

    def set(self) -> None:
        if self._set:
            return
        self._set = True
        self._release()

    def clear(self) -> None:
        self._set = False

    def pulse(self) -> None:
        """Release current waiters without leaving the gate set."""
        self._release()

    def _release(self) -> None:
        waiters, self._waiters = self._waiters, []
        post = self.sim._post
        for w in waiters:
            if w.__class__ is Event:
                w.trigger(None)
            else:
                post(w, None, None)

    # -- waitable protocol -------------------------------------------------
    def _subscribe(self, cb: Callable[[Any, Optional[BaseException]], None]) -> Callable[[], None]:
        if self._set:
            self.sim._post(cb, None, None)
            return lambda: None
        self._waiters.append(cb)

        def cancel() -> None:
            try:
                self._waiters.remove(cb)
            except ValueError:
                pass

        return cancel


class GateTimeout:
    """Waitable: a :class:`Gate` opening *or* a deadline, whichever first.

    Equivalent to ``AnyOf(sim, [gate.wait(), sim.timeout(delay)])`` —
    fires with ``(0, None)`` if the gate opens first and ``(1, None)``
    if the deadline passes first, with the same same-nanosecond
    tie-break (first posted wins, the loser is suppressed by the fired
    guard) — but without allocating an Event, a Timeout, and a closure
    per child.  Built for the firmware service loop's idle wait.
    """

    __slots__ = ("gate", "delay")

    def __init__(self, gate: Gate, delay: int):
        if delay < 0:
            raise SimError(f"negative timeout: {delay}")
        self.gate = gate
        self.delay = delay

    def _subscribe(self, cb: Callable[[Any, Optional[BaseException]], None]) -> Callable[[], None]:
        fired = [False]

        def on_gate(value: Any, exc: Optional[BaseException]) -> None:
            if fired[0]:
                return
            fired[0] = True
            handle.cancel()
            cb((0, None), None)

        def on_timer(value: Any, exc: Optional[BaseException]) -> None:
            if fired[0]:
                return
            fired[0] = True
            cancel_gate()
            cb((1, None), None)

        cancel_gate = self.gate._subscribe(on_gate)
        handle = self.gate.sim.schedule(self.delay, on_timer, None, None)

        def cancel_all() -> None:
            fired[0] = True
            cancel_gate()
            handle.cancel()

        return cancel_all
