"""Named, seeded random-number streams.

Every stochastic component (backoff jitter, replacement policy, workload
arrivals, fault injection) draws from its own named stream derived from a
single experiment seed, so adding a component never perturbs the draws of
another and every run is reproducible.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngStreams"]


class RngStreams:
    """Factory of independent ``random.Random`` streams keyed by name."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngStreams":
        """Derive a child factory (for per-node or per-app namespaces)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
