"""Conservative time-windowed parallel simulation (PDES) over shards.

The monolithic kernel tops out in the few-hundred-K events/s range
(BENCH_PERF.json); the next order of magnitude is structural.  This
module partitions the cluster into ``cfg.num_shards`` contiguous host
ranges.  Each shard owns a full private stack — pooled event heap
(:class:`~repro.sim.core.Simulator`), forked RNG namespace, fabric
(:class:`~repro.myrinet.network.Network`), metric registry — and shards
interact *only* through the inter-shard trunk modeled by
:class:`~repro.myrinet.shardlink.ShardBoundary`.

Synchronization is classic conservative windowing (YAWNS-style): since
no cross-shard record can arrive sooner than the trunk base latency
``L`` after it is emitted, every shard may safely execute all events in
``[t_min, t_min + L - 1]`` (``t_min`` = the global minimum pending
time) without hearing from its peers.  Between windows the runner
exchanges batched trunk records and recomputes the horizon.

Three executors share the exact same :class:`Shard` build:

``sequential``
    all shards share one heap — the single-kernel baseline the digests
    are gated against;
``inprocess``
    per-shard heaps stepped round-robin by window in one process — the
    deterministic scheduler used by tests and debugging;
``mp``
    one ``multiprocessing`` worker per shard, batched record handoff
    over pipes — the executor that actually overlaps shard compute on
    multi-core hosts.

**Determinism is the contract** (DESIGN.md §13 carries the full
argument): all three executors must produce bit-identical
:meth:`ShardRunResult.digest` values.  The argument rests on (a)
shard-local state being touched only by shard-local events, (b) trunk
ingress delivering in the canonical ``(arrive, src_shard, seq)`` order
with same-host arrivals serialized onto distinct ticks, and (c) two
protocol restrictions enforced by construction here: local-fabric rx
handlers never emit trunk records, and trunk-triggered handlers never
inject local-fabric traffic (their replies re-enter ``Network.send``
and exit through the boundary before any stats or RNG state is
touched).

Because a 1-CPU runner cannot show wall-clock parallelism, the
machine-independent scaling figure is **critical-path parallelism**:
``total_events / Σ_windows max_per_shard_events`` — the events-per-
second multiple a perfectly parallel executor extracts from the actual
windowed schedule, including every synchronization barrier.  The perf
harness gates that ratio (and the cross-executor digests); measured
walls for all three executors are reported alongside, untrusted.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..cluster.config import ClusterConfig
from ..myrinet.network import Network
from ..myrinet.packet import Packet, PacketType
from ..myrinet.shardlink import ShardBoundary, TrunkRecord
from ..obs.metrics import MetricRegistry, merge_counter_snapshots
from .core import SimError, Simulator
from .rng import RngStreams

__all__ = [
    "SHARD_SCENARIOS",
    "Shard",
    "ShardRunResult",
    "ShardSpec",
    "ShardedSimulator",
    "TrunkIngress",
]

#: trunk packet kinds (carried in the Packet/record ``channel`` field)
KIND_REQ = 0
KIND_RSP = 1


# --------------------------------------------------------------------------
# trunk ingress: the receiving end of the boundary
# --------------------------------------------------------------------------
class TrunkIngress:
    """Canonical delivery of trunk records into one shard.

    Records are held in a heap keyed by the full record tuple — i.e.
    ``(arrive, src_shard, seq, ...)`` — and popped in that order by a
    flush scheduled at each record's arrival tick.  Same-destination
    arrivals are serialized through a per-host ``busy`` horizon with a
    gap of at least 1 ns, so every delivery lands on its own tick and
    the destination shard observes one total order regardless of how
    records were batched in transit.
    """

    __slots__ = ("shard", "heap", "busy")

    def __init__(self, shard: "Shard"):
        self.shard = shard
        self.heap: List[TrunkRecord] = []
        #: per-local-host earliest next delivery time
        self.busy: Dict[int, int] = {}

    def push(self, rec: TrunkRecord) -> None:
        sim = self.shard.sim
        delay = rec[0] - sim.now
        if delay <= 0:
            # A record arriving at or before the shard's current time
            # means the conservative window was violated — fail loudly,
            # never silently reorder.
            raise SimError(
                f"conservative window violated: trunk record arrives at "
                f"{rec[0]} but shard {self.shard.shard_id} is at {sim.now}")
        heapq.heappush(self.heap, rec)
        sim.schedule(delay, self._flush)

    def _flush(self) -> None:
        sim = self.shard.sim
        heap = self.heap
        while heap and heap[0][0] <= sim.now:
            rec = heapq.heappop(heap)
            arrive, _src_shard, _seq, _src_g, dst_g, _mid, nbytes, _kind = rec
            h = self.shard.boundary.to_local(dst_g)
            t_d = max(arrive, self.busy.get(h, 0))
            self.busy[h] = t_d + self.shard.boundary.ingress_gap_ns(nbytes)
            sim.schedule(t_d - sim.now, self.shard._trunk_deliver, rec)


# --------------------------------------------------------------------------
# shard spec + build
# --------------------------------------------------------------------------
@dataclass
class ShardSpec:
    """Everything needed to (re)build one shard — picklable, so the mp
    executor ships it to a fresh worker process."""

    shard_id: int
    num_shards: int
    hosts_per_shard: int
    scenario: str
    params: dict
    cfg: ClusterConfig

    @property
    def base(self) -> int:
        return self.shard_id * self.hosts_per_shard

    @property
    def total_hosts(self) -> int:
        return self.num_shards * self.hosts_per_shard


class Shard:
    """One shard: private kernel, fabric, RNG namespace, and workload.

    Identical regardless of executor; only ``sim`` (shared heap in the
    sequential engine) and ``emit`` (direct ingress routing vs. outbox
    batching) differ, and neither affects event content or timing.
    """

    def __init__(self, spec: ShardSpec, sim: Optional[Simulator] = None,
                 emit: Optional[Callable[[TrunkRecord], None]] = None):
        self.spec = spec
        self.shard_id = spec.shard_id
        self.sim = sim if sim is not None else Simulator()
        self.outbox: List[TrunkRecord] = []
        self.rngs = RngStreams(spec.cfg.seed).fork(f"shard{spec.shard_id}")
        local_cfg = spec.cfg.with_(num_hosts=spec.hosts_per_shard,
                                   num_shards=1, engine="sequential")
        self.net = Network(self.sim, local_cfg, rngs=self.rngs)
        self.boundary = ShardBoundary(
            spec.shard_id, spec.base, spec.hosts_per_shard, spec.cfg,
            emit if emit is not None else self.outbox.append)
        self.net.install_boundary(self.boundary)
        self.ingress = TrunkIngress(self)
        self.metrics = MetricRegistry()
        #: observable timeline: ("L"|"T", t, src_global, dst_global,
        #: msg_id, nbytes) — digest-sorted, so append order is free
        self.deliveries: List[Tuple] = []
        #: shard-namespaced message ids (globally unique, engine-invariant)
        self._mid = spec.shard_id * 10_000_000
        self._events_at_start = 0
        for local in range(spec.hosts_per_shard):
            self.net.attach(local, self._rx_local)
        builder = SHARD_SCENARIOS.get(spec.scenario)
        if builder is None:
            raise SimError(f"unknown shard scenario {spec.scenario!r}; "
                           f"registered: {sorted(SHARD_SCENARIOS)}")
        builder(self)

    # ------------------------------------------------------------ workload
    def next_mid(self) -> int:
        self._mid += 1
        return self._mid

    def inject(self, src_g: int, dst_g: int, nbytes: int, mid: int,
               kind: int = KIND_REQ) -> None:
        """Send one message; the boundary decides local fabric vs trunk."""
        self.net.send(Packet(src_g, dst_g, PacketType.DATA, channel=kind,
                             payload_bytes=nbytes, msg_id=mid))

    def inject_multicast(self, src_g: int, dsts_g: List[int], nbytes: int,
                         kind: int = KIND_REQ) -> None:
        """Fan one payload out to every destination in one tree send.

        Shard-local branches ride the fabric spanning tree (one pooled
        express commit on an idle fabric); cross-shard tree edges are
        demoted packet-by-packet to the trunk by the boundary inside
        :meth:`~repro.myrinet.network.Network.send_multicast`, before any
        local stats or RNG state is touched — so the digest contract
        holds with collective traffic exactly as with unicast.
        """
        dsts = sorted(set(dsts_g))
        mids = {d: self.next_mid() for d in dsts}
        self.net.send_multicast(
            src_g, dsts,
            lambda d: Packet(src_g, d, PacketType.DATA, channel=kind,
                             payload_bytes=nbytes, msg_id=mids[d]))

    def _rx_local(self, pkt: Packet) -> None:
        # Local-fabric delivery.  Restriction (a) of the determinism
        # argument: this handler must never emit a trunk record.
        g = self.boundary.to_global
        self.deliveries.append(("L", self.sim.now, g(pkt.src_nic),
                                g(pkt.dst_nic), pkt.msg_id, pkt.payload_bytes))
        self.metrics.counter("shard.local.delivered").inc()

    def _trunk_deliver(self, rec: TrunkRecord) -> None:
        # Trunk delivery.  Restriction (b): nothing here may inject
        # local-fabric traffic; replies go back out through the trunk
        # (inject() below hits the boundary check before any local
        # stats or RNG state).
        _arrive, _src_shard, _seq, src_g, dst_g, mid, nbytes, kind = rec
        self.deliveries.append(("T", self.sim.now, src_g, dst_g, mid, nbytes))
        self.metrics.counter("shard.trunk.delivered").inc()
        if kind == KIND_REQ and self.spec.params.get("reply", True):
            self.metrics.counter("shard.trunk.replies").inc()
            reply_ns = self.spec.cfg.lanai_ns(
                self.spec.cfg.ni_recv_instr + self.spec.cfg.ni_send_instr)
            nb = int(self.spec.params.get("reply_bytes", 16))
            self.sim.schedule(reply_ns, self.inject, dst_g, src_g, nb,
                              self.next_mid(), KIND_RSP)

    # ----------------------------------------------------------- stepping
    def next_when(self) -> Optional[int]:
        heap = self.sim._heap
        return heap[0][0] if heap else None

    def step(self, until: int, inbox: List[TrunkRecord]
             ) -> Tuple[List[TrunkRecord], Optional[int], int]:
        """Ingest a batch of trunk records, run one conservative window,
        return (outbox, next pending time, events dispatched)."""
        for rec in inbox:
            self.ingress.push(rec)
        e0 = self.sim.events_dispatched
        self.sim.run(until=until)
        # Drain in place: the boundary's emit callback holds a bound
        # reference to this exact list.
        out = self.outbox[:]
        del self.outbox[:]
        return out, self.next_when(), self.sim.events_dispatched - e0

    def payload(self) -> dict:
        """Everything the runner folds into a :class:`ShardRunResult`."""
        x = self.net.express
        return {
            "deliveries": self.deliveries,
            "stats": dict(sorted(asdict(self.net.stats).items())),
            "boundary": self.boundary.stats.as_dict(),
            "counters": self.metrics.flat(),
            "express": {"hits": x.hits(), "revoked": x.revoked,
                        "boundary_demotions": x.boundary_demotions},
            "events": self.sim.events_dispatched,
            "now": self.sim.now,
        }


# --------------------------------------------------------------------------
# canonical shard scenarios
# --------------------------------------------------------------------------
_UNIFORM_DEFAULTS = dict(waves=6, stagger_ns=6_000, pad_ns=20_000,
                         cross_every=2, cross_bytes=64, reply=True,
                         reply_bytes=16)


def _params(shard: Shard, defaults: dict) -> dict:
    return {**defaults, **shard.spec.params}


def _build_local_waves(shard: Shard, p: dict,
                       cross_dst: Callable[[int, int], int]) -> None:
    """Shift-permutation local waves + periodic cross-shard traffic.

    ``cross_dst(global_src, wave)`` picks the cross-wave target; the
    per-wave schedule is identical across shards, so the load is
    balanced by construction (``uniform``) or deliberately not
    (``hotspot``).
    """
    spec = shard.spec
    n = spec.hosts_per_shard
    base_t = 1_000
    for w in range(int(p["waves"])):
        if n > 1:
            shift = (w % (n - 1)) + 1
        else:
            shift = 0
        for k in range(n):
            src_g = spec.base + k
            dst_g = spec.base + ((k + shift) % n)
            nbytes = 16 + ((w * 13 + k * 7) % 6) * 48
            shard.sim.schedule(base_t + k * int(p["stagger_ns"]),
                               shard.inject, src_g, dst_g, nbytes,
                               shard.next_mid(), KIND_REQ)
        if int(p["cross_every"]) and (w + 1) % int(p["cross_every"]) == 0:
            for k in range(n):
                src_g = spec.base + k
                shard.sim.schedule(
                    base_t + k * int(p["stagger_ns"]) + 2_500,
                    shard.inject, src_g, cross_dst(src_g, w),
                    int(p["cross_bytes"]), shard.next_mid(), KIND_REQ)
        base_t += n * int(p["stagger_ns"]) + int(p["pad_ns"])


def _build_uniform(shard: Shard) -> None:
    """Balanced: every host periodically messages its counterpart one
    shard over (mod the ring), so trunk load is symmetric."""
    p = _params(shard, _UNIFORM_DEFAULTS)
    total = shard.spec.total_hosts

    def cross_dst(src_g: int, w: int) -> int:
        return (src_g + shard.spec.hosts_per_shard * (1 + w % max(
            1, shard.spec.num_shards - 1))) % total

    _build_local_waves(shard, p, cross_dst)


def _build_hotspot(shard: Shard) -> None:
    """Adversarial: every cross wave fans into global host 0, stressing
    the ingress serializer and unbalancing the critical path."""
    p = _params(shard, _UNIFORM_DEFAULTS)
    _build_local_waves(shard, p, lambda src_g, w: 0)


def _build_chaos_storm(shard: Shard) -> None:
    """Uniform traffic plus a deterministic, build-time-seeded schedule
    of local link flaps — express disarm/re-arm, in-flight drops, and
    fault-path accounting, all shard-local and engine-invariant."""
    _build_uniform(shard)
    p = _params(shard, dict(_UNIFORM_DEFAULTS, flaps=6,
                            flap_down_ns=40_000, flap_spread_ns=400_000))
    links = shard.net.topology.all_links
    if not links:
        return
    rng = shard.rngs.stream("shard.flaps")

    def set_up(idx: int, up: bool) -> None:
        links[idx].up = up

    for _ in range(int(p["flaps"])):
        idx = rng.randrange(len(links))
        t_down = 1_000 + rng.randrange(int(p["flap_spread_ns"]))
        shard.sim.schedule(t_down, set_up, idx, False)
        shard.sim.schedule(t_down + int(p["flap_down_ns"]), set_up, idx, True)


def _build_collective(shard: Shard) -> None:
    """Rotating-root collective fan-outs over the uniform background.

    Each wave, one root per shard multicasts to every other local host
    plus a stride of counterpart hosts one shard over: the local
    branches exercise the fabric spanning tree while the cross-shard
    tree edges traverse the trunk.  Scheduled between the uniform waves
    so some fan-outs meet an idle fabric (express batches) and some
    collide with unicast traffic (wormhole fallback) — both must fold
    into identical digests across executors.
    """
    _build_uniform(shard)
    p = _params(shard, dict(_UNIFORM_DEFAULTS, coll_waves=4,
                            coll_bytes=96, coll_stride=2))
    spec = shard.spec
    n = spec.hosts_per_shard
    total = spec.total_hosts
    period = n * int(p["stagger_ns"]) + int(p["pad_ns"])
    for w in range(int(p["coll_waves"])):
        root_g = spec.base + (w % n)
        dsts = [spec.base + k for k in range(n) if spec.base + k != root_g]
        if spec.num_shards > 1:
            dsts += [(root_g + n + k) % total
                     for k in range(0, n, int(p["coll_stride"]))]
        shard.sim.schedule(500 + w * period, shard.inject_multicast,
                           root_g, dsts, int(p["coll_bytes"]), KIND_REQ)


SHARD_SCENARIOS: Dict[str, Callable[[Shard], None]] = {
    "uniform": _build_uniform,
    "hotspot": _build_hotspot,
    "chaos_storm": _build_chaos_storm,
    "collective": _build_collective,
}


# --------------------------------------------------------------------------
# run result
# --------------------------------------------------------------------------
@dataclass
class ShardRunResult:
    """One sharded run, folded across shards and digest-comparable."""

    mode: str
    num_shards: int
    deliveries: List[Tuple]
    shard_stats: List[dict]
    boundary_stats: List[dict]
    counters: Dict[str, float]
    express: List[dict]
    events: int
    sim_ns: int
    wall_s: float
    #: windowed executors only
    barriers: int = 0
    crit_events: int = 0
    crit_wall_s: float = 0.0
    shard_events: List[int] = field(default_factory=list)

    def digest(self) -> str:
        """sha256 over everything mode-invariant: the sorted delivery
        timeline, per-shard NetworkStats and boundary stats, and the
        merged counters.  ExpressStats stay out, as everywhere else."""
        import hashlib

        h = hashlib.sha256()
        for rec in sorted(self.deliveries):
            h.update(repr(rec).encode())
        h.update(repr([sorted(s.items()) for s in self.shard_stats]).encode())
        h.update(repr([sorted(b.items()) for b in self.boundary_stats]).encode())
        h.update(repr(sorted(self.counters.items())).encode())
        return h.hexdigest()

    @property
    def checks(self) -> dict:
        """The cross-engine oracle: digest, delivery count, and total
        dispatched events (the two kernels must execute the very same
        event population, not merely converge)."""
        return {"digest": self.digest(), "delivered": len(self.deliveries),
                "events": self.events}

    def parallelism(self) -> float:
        """Critical-path events parallelism of the windowed schedule."""
        if not self.crit_events:
            return 1.0
        return self.events / self.crit_events


# --------------------------------------------------------------------------
# executors
# --------------------------------------------------------------------------
class ShardedSimulator:
    """Build + run a sharded scenario under any of the three executors."""

    def __init__(self, cfg: Optional[ClusterConfig] = None, *,
                 scenario: str = "uniform",
                 params: Optional[dict] = None, **overrides):
        cfg = cfg if cfg is not None else ClusterConfig()
        if overrides:
            cfg = cfg.with_(**overrides)
        cfg.validate()
        if cfg.num_hosts % cfg.num_shards:
            raise SimError(
                f"num_hosts ({cfg.num_hosts}) must divide evenly into "
                f"num_shards ({cfg.num_shards})")
        self.cfg = cfg
        self.scenario = scenario
        self.params = dict(params or {})

    def _spec(self, sid: int) -> ShardSpec:
        return ShardSpec(sid, self.cfg.num_shards,
                         self.cfg.num_hosts // self.cfg.num_shards,
                         self.scenario, self.params, self.cfg)

    # ------------------------------------------------------------ running
    def run(self, mode: Optional[str] = None) -> ShardRunResult:
        mode = mode or self.cfg.shard_workers
        if mode == "sequential":
            return self._run_sequential()
        if mode == "inprocess":
            return self._run_windowed(_InprocessStepper, "inprocess")
        if mode == "mp":
            return self._run_windowed(_MpStepper, "mp")
        raise SimError(f"unknown shard executor {mode!r}; "
                       "expected sequential | inprocess | mp")

    def _run_sequential(self) -> ShardRunResult:
        from ..chaos.runner import reset_global_ids
        reset_global_ids()
        sim = Simulator()
        shards: List[Shard] = []
        hps = self.cfg.num_hosts // self.cfg.num_shards

        def route(rec: TrunkRecord) -> None:
            shards[rec[4] // hps].ingress.push(rec)

        for sid in range(self.cfg.num_shards):
            shards.append(Shard(self._spec(sid), sim=sim, emit=route))
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        payloads = [sh.payload() for sh in shards]
        return self._fold("sequential", payloads,
                          events=sim.events_dispatched, sim_ns=sim.now,
                          wall_s=wall)

    def _run_windowed(self, stepper_cls, mode: str) -> ShardRunResult:
        from ..chaos.runner import reset_global_ids
        reset_global_ids()
        n = self.cfg.num_shards
        hps = self.cfg.num_hosts // n
        lookahead = self.cfg.shard_lookahead_ns
        specs = [self._spec(sid) for sid in range(n)]
        stepper = stepper_cls(specs)
        t0 = time.perf_counter()
        try:
            next_whens = stepper.start()
            inboxes: List[List[TrunkRecord]] = [[] for _ in range(n)]
            barriers = total_events = crit_events = 0
            crit_wall = 0.0
            shard_events = [0] * n
            horizon = 0
            while True:
                cands = [w for w in next_whens if w is not None]
                cands += [rec[0] for box in inboxes for rec in box]
                if not cands:
                    break
                t_min = min(cands)
                until = t_min + lookahead - 1
                horizon = until
                active = [i for i in range(n)
                          if inboxes[i] or (next_whens[i] is not None
                                            and next_whens[i] <= until)]
                results = stepper.step(active, until, inboxes)
                for i in active:
                    inboxes[i] = []
                barriers += 1
                crit_events += max(ev for _, _, ev, _ in results)
                crit_wall += max(wl for _, _, _, wl in results)
                for i, (out, nxt, ev, _wl) in zip(active, results):
                    total_events += ev
                    shard_events[i] += ev
                    next_whens[i] = nxt
                    for rec in out:
                        inboxes[rec[4] // hps].append(rec)
            payloads = stepper.finish()
        finally:
            stepper.close()
        wall = time.perf_counter() - t0
        return self._fold(mode, payloads, events=total_events,
                          sim_ns=horizon, wall_s=wall, barriers=barriers,
                          crit_events=crit_events, crit_wall_s=crit_wall,
                          shard_events=shard_events)

    def _fold(self, mode: str, payloads: List[dict], **kw) -> ShardRunResult:
        deliveries: List[Tuple] = []
        for p in payloads:
            deliveries.extend(p["deliveries"])
        deliveries.sort()
        return ShardRunResult(
            mode=mode, num_shards=self.cfg.num_shards, deliveries=deliveries,
            shard_stats=[p["stats"] for p in payloads],
            boundary_stats=[p["boundary"] for p in payloads],
            counters=merge_counter_snapshots(p["counters"] for p in payloads),
            express=[p["express"] for p in payloads], **kw)


class _InprocessStepper:
    """Deterministic single-process executor (tests/debug)."""

    def __init__(self, specs: List[ShardSpec]):
        self.shards = [Shard(s) for s in specs]

    def start(self) -> List[Optional[int]]:
        return [sh.next_when() for sh in self.shards]

    def step(self, active, until, inboxes):
        out = []
        for i in active:
            t0 = time.perf_counter()
            o, nxt, ev = self.shards[i].step(until, inboxes[i])
            out.append((o, nxt, ev, time.perf_counter() - t0))
        return out

    def finish(self) -> List[dict]:
        return [sh.payload() for sh in self.shards]

    def close(self) -> None:
        pass


def _shard_worker(spec: ShardSpec, conn) -> None:
    """Worker main: build the shard, then serve step/finish requests."""
    shard = Shard(spec)
    conn.send(shard.next_when())
    while True:
        msg = conn.recv()
        if msg[0] == "step":
            _, until, inbox = msg
            t0 = time.perf_counter()
            out, nxt, ev = shard.step(until, inbox)
            conn.send((out, nxt, ev, time.perf_counter() - t0))
        else:
            conn.send(shard.payload())
            conn.close()
            return


class _MpStepper:
    """One worker process per shard, batched handoff over pipes.

    The parent sends every active shard its window before collecting
    any reply, so shard compute genuinely overlaps on multi-core hosts;
    per-window worker walls come back with each reply so the runner can
    report compute-only critical-path time separately from pipe/fork
    overhead.
    """

    def __init__(self, specs: List[ShardSpec]):
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        self.conns = []
        self.procs = []
        for spec in specs:
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_shard_worker, args=(spec, child),
                               daemon=True)
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    def start(self) -> List[Optional[int]]:
        return [conn.recv() for conn in self.conns]

    def step(self, active, until, inboxes):
        for i in active:
            self.conns[i].send(("step", until, inboxes[i]))
        return [self.conns[i].recv() for i in active]

    def finish(self) -> List[dict]:
        for conn in self.conns:
            conn.send(("finish",))
        return [conn.recv() for conn in self.conns]

    def close(self) -> None:
        for conn in self.conns:
            conn.close()
        for proc in self.procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
