"""Deterministic discrete-event simulation kernel.

Everything in the reproduction — host CPUs, the LANai firmware loop, Myrinet
links and switches, Solaris kernel threads — runs as a *process* (a Python
generator) on one :class:`Simulator`.  Time is an integer count of
nanoseconds, so event ordering is exact and runs are reproducible
bit-for-bit.

A process advances by yielding *waitables*:

``yield Timeout(sim, delay_ns)``
    resume ``delay_ns`` later.
``yield event``
    resume when the :class:`Event` is triggered; the yield expression
    evaluates to the event's value.
``yield process``
    join another process; evaluates to its return value.
``yield AnyOf(sim, [w1, w2, ...])``
    resume when the first waitable fires; evaluates to ``(index, value)``.
``yield AllOf(sim, [w1, w2, ...])``
    resume when all fire; evaluates to the list of values.

Processes may be interrupted (:meth:`Process.interrupt`), which raises
:class:`Interrupted` inside the generator at its current wait point.

Hot-path design (see DESIGN.md "Kernel fast-path invariants"):

The kernel's determinism contract is *ordering plus integer time* — never
allocation identity.  That freedom is what the fast paths exploit:

* heap entries are 5-slot lists ``[when, seq, args, fn, poolable]``; the
  strictly-increasing ``seq`` guarantees comparisons never reach ``args``;
* entries created internally (``_post``, the process timeout fast path)
  are recycled through ``Simulator._entry_pool`` once dispatched, so
  steady-state scheduling allocates nothing;
* ``Simulator.timeout()`` hands out :class:`Timeout` objects from a
  free list; the process wait fast path returns them the moment their
  ``(delay, value)`` pair has been copied into a heap entry.  A pooled
  timeout is therefore *single-use*: yield it once, then call
  ``sim.timeout`` again (every call site in the tree does exactly this);
* ``Process._resume`` dispatches on the yielded object's exact class:
  ``Timeout`` and ``Event`` waits bypass ``_subscribe`` entirely — no
  handle objects, no cancel closures — while any other waitable falls
  back to the generic ``_subscribe`` protocol, so the extension point
  is unchanged.

Every fast path preserves the exact (when, seq)-relative ordering of the
straight-line implementation (kept as :mod:`repro.sim.reference`);
``benchmarks/test_perf_regression.py`` pins bit-identical timelines
between the two kernels.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "NULL_TRACE",
    "Process",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupted",
    "SimError",
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_S",
    "us",
    "ms",
    "seconds",
]

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000

_heappush = heapq.heappush
_heappop = heapq.heappop

#: shared args tuple for value-less resumes (the overwhelmingly common case)
_NO_VALUE_ARGS: tuple = (None, None)


def us(x: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(x * NS_PER_US)


def ms(x: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(x * NS_PER_MS)


def seconds(x: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(x * NS_PER_S)


class _NullTrace:
    """Default trace sink: tracing off costs one attribute check.

    :class:`repro.obs.bus.TraceBus` replaces this via ``TraceBus.attach``.
    The kernel only knows the two-member protocol (``enabled``, ``emit``)
    so :mod:`repro.sim` never imports :mod:`repro.obs`.
    """

    __slots__ = ()
    enabled = False

    def emit(self, kind: str, node: int = -1, **args: Any) -> None:
        pass


#: shared nil sink installed on every new Simulator
NULL_TRACE = _NullTrace()


class SimError(Exception):
    """Base class for simulation kernel errors."""


class Interrupted(SimError):
    """Raised inside a process that another process interrupted.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event is triggered exactly once, either with a value
    (:meth:`trigger`) or with an exception (:meth:`fail`).  Waiting on an
    already-triggered event resumes the waiter immediately (at the current
    simulation time, not synchronously).
    """

    __slots__ = ("sim", "_waiters", "_done", "_value", "_exc", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._waiters: list[Callable[[Any, Optional[BaseException]], None]] = []
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimError(f"event {self.name!r} not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    def trigger(self, value: Any = None) -> "Event":
        if self._done:
            raise SimError(f"event {self.name!r} triggered twice")
        self._done = True
        self._value = value
        self._flush()
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._done:
            raise SimError(f"event {self.name!r} triggered twice")
        self._done = True
        self._exc = exc
        self._flush()
        return self

    def _flush(self) -> None:
        waiters = self._waiters
        if waiters:
            self._waiters = []
            post = self.sim._post
            value, exc = self._value, self._exc
            for cb in waiters:
                post(cb, value, exc)

    # -- waitable protocol -------------------------------------------------
    def _subscribe(self, cb: Callable[[Any, Optional[BaseException]], None]) -> Callable[[], None]:
        """Register ``cb(value, exc)``; returns an unsubscribe callable."""
        if self._done:
            self.sim._post(cb, self._value, self._exc)
            return lambda: None
        self._waiters.append(cb)

        def cancel() -> None:
            try:
                self._waiters.remove(cb)
            except ValueError:
                pass

        return cancel


class Timeout:
    """Waitable that fires ``delay`` nanoseconds after it is waited on.

    Instances handed out by :meth:`Simulator.timeout` come from a free
    list and are recycled the moment a process wait consumes them —
    treat them as single-use (yield once, or hand to one combinator).
    Directly constructed instances are never pooled.
    """

    __slots__ = ("sim", "delay", "value", "_pooled")

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout: {delay}")
        self.sim = sim
        self.delay = int(delay)
        self.value = value
        self._pooled = False

    def _subscribe(self, cb: Callable[[Any, Optional[BaseException]], None]) -> Callable[[], None]:
        handle = self.sim.schedule(self.delay, cb, self.value, None)
        return handle.cancel


class AnyOf:
    """Waitable combinator: fires with ``(index, value)`` of the first child."""

    __slots__ = ("sim", "waitables")

    def __init__(self, sim: "Simulator", waitables: Iterable[Any]):
        self.sim = sim
        self.waitables = list(waitables)
        if not self.waitables:
            raise SimError("AnyOf of nothing")

    def _subscribe(self, cb: Callable[[Any, Optional[BaseException]], None]) -> Callable[[], None]:
        cancels: list[Callable[[], None]] = []
        fired = [False]

        def make(i: int) -> Callable[[Any, Optional[BaseException]], None]:
            def inner(value: Any, exc: Optional[BaseException]) -> None:
                if fired[0]:
                    return
                fired[0] = True
                for c in cancels:
                    c()
                if exc is not None:
                    cb(None, exc)
                else:
                    cb((i, value), None)

            return inner

        for i, w in enumerate(self.waitables):
            cancels.append(_as_waitable(self.sim, w)._subscribe(make(i)))

        def cancel_all() -> None:
            fired[0] = True
            for c in cancels:
                c()

        return cancel_all


class AllOf:
    """Waitable combinator: fires with the list of all child values."""

    __slots__ = ("sim", "waitables")

    def __init__(self, sim: "Simulator", waitables: Iterable[Any]):
        self.sim = sim
        self.waitables = list(waitables)

    def _subscribe(self, cb: Callable[[Any, Optional[BaseException]], None]) -> Callable[[], None]:
        n = len(self.waitables)
        if n == 0:
            self.sim._post(cb, [], None)
            return lambda: None
        values: list[Any] = [None] * n
        remaining = [n]
        dead = [False]
        cancels: list[Callable[[], None]] = []

        def make(i: int) -> Callable[[Any, Optional[BaseException]], None]:
            def inner(value: Any, exc: Optional[BaseException]) -> None:
                if dead[0]:
                    return
                if exc is not None:
                    dead[0] = True
                    for c in cancels:
                        c()
                    cb(None, exc)
                    return
                values[i] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    cb(values, None)

            return inner

        for i, w in enumerate(self.waitables):
            cancels.append(_as_waitable(self.sim, w)._subscribe(make(i)))

        def cancel_all() -> None:
            dead[0] = True
            for c in cancels:
                c()

        return cancel_all


def _as_waitable(sim: "Simulator", obj: Any) -> Any:
    """Normalize a yielded object to something with ``_subscribe``."""
    if isinstance(obj, Process):
        return obj.done
    if hasattr(obj, "_subscribe"):
        return obj
    raise SimError(f"cannot wait on {obj!r}")


class Process:
    """A generator-based simulation process.

    The wrapped generator's return value becomes :attr:`result` and is
    delivered to any process joining via ``yield process``.  An uncaught
    exception propagates to joiners, or aborts the simulation run if nobody
    joined (errors must never pass silently).
    """

    __slots__ = ("sim", "name", "_gen", "done", "_cancel_wait", "_finished")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self.done = Event(sim, name=f"{self.name}.done")
        # None | heap entry (list) | Event | cancel callable — see interrupt()
        self._cancel_wait: Any = None
        self._finished = False

    def __repr__(self) -> str:
        state = "done" if self._finished else "active"
        return f"<Process {self.name} {state}>"

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def result(self) -> Any:
        return self.done.value

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupted` inside the process at its wait point."""
        if self._finished:
            return
        cw = self._cancel_wait
        if cw is not None:
            cls = cw.__class__
            if cls is list:
                cw[3] = None  # cancel the pending heap entry in place
            elif cls is Event:
                try:
                    cw._waiters.remove(self._resume)
                except ValueError:
                    pass
            else:
                cw()
            self._cancel_wait = None
        self.sim._post(self._resume, None, Interrupted(cause))

    # -- stepping ----------------------------------------------------------
    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._finished:
            return
        self._cancel_wait = None
        sim = self.sim
        sim._current = self
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except Interrupted as unhandled:
            self._finish_fail(unhandled)
            return
        except Exception as err:  # noqa: BLE001 - propagate to joiners
            self._finish_fail(err)
            return
        finally:
            sim._current = None
        # -- fast-path dispatch on the yielded waitable's exact class ------
        cls = target.__class__
        if cls is Timeout:
            tvalue = target.value
            args = _NO_VALUE_ARGS if tvalue is None else (tvalue, None)
            pool = sim._entry_pool
            if pool:
                entry = pool.pop()
                entry[0] = sim.now + target.delay
                entry[1] = next(sim._seq)
                entry[2] = args
                entry[3] = self._resume
            else:
                entry = [sim.now + target.delay, next(sim._seq), args, self._resume, True]
            _heappush(sim._heap, entry)
            self._cancel_wait = entry
            if target._pooled:
                target._pooled = False
                sim._timeout_pool.append(target)
            return
        if cls is Process:
            target = target.done
            cls = Event
        if cls is Event:
            if target._done:
                sim._post(self._resume, target._value, target._exc)
            else:
                target._waiters.append(self._resume)
                self._cancel_wait = target
            return
        try:
            waitable = _as_waitable(sim, target)
        except SimError as err:
            self._finish_fail(err)
            return
        self._cancel_wait = waitable._subscribe(self._resume)

    def _finish_ok(self, value: Any) -> None:
        self._finished = True
        if self.sim.trace.enabled:
            self.sim.trace.emit("sim.exit", proc=self.name, ok=True)
        self.done.trigger(value)

    def _finish_fail(self, exc: BaseException) -> None:
        self._finished = True
        if self.sim.trace.enabled:
            self.sim.trace.emit("sim.exit", proc=self.name, ok=False)
        if self.done._waiters:
            self.done.fail(exc)
        else:
            # Nobody is joining: mark done and abort the run loudly.
            self.done._done = True
            self.done._exc = exc
            self.sim._crash(self, exc)


class _Handle:
    """Cancelable handle for a scheduled callback."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list):
        self._entry = entry

    def cancel(self) -> None:
        self._entry[3] = None


class Simulator:
    """The event loop: a heap of timestamped callbacks plus process plumbing."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[list] = []
        self._seq = itertools.count()
        self._current: Optional[Process] = None
        self._crashed: Optional[tuple[Process, BaseException]] = None
        self._nprocesses = 0
        #: cumulative count of dispatched events (perf harness metric)
        self.events_dispatched = 0
        #: recycled heap entries (only internally created, handle-less ones)
        self._entry_pool: list[list] = []
        #: recycled Timeout objects handed out by :meth:`timeout`
        self._timeout_pool: list[Timeout] = []
        #: observer-only trace sink (see repro.obs); nil by default
        self.trace: Any = NULL_TRACE

    # -- low-level scheduling ----------------------------------------------
    def schedule(self, delay: int, fn: Callable, *args: Any) -> _Handle:
        """Run ``fn(*args)`` after ``delay`` ns. Returns a cancelable handle."""
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay})")
        entry = [self.now + int(delay), next(self._seq), args, fn, False]
        _heappush(self._heap, entry)
        return _Handle(entry)

    def call_after(self, delay: int, fn: Callable, *args: Any) -> list:
        """Run ``fn(*args)`` after ``delay`` ns; pooled one-shot callback.

        The hot-path sibling of :meth:`schedule`: the heap entry is
        recycled after dispatch, so steady-state callers allocate
        nothing.  Returns the raw entry; cancel by setting
        ``entry[3] = None`` (the callback slot both kernels share) and
        dropping the reference — a canceled entry is reclaimed when it
        surfaces.  Unlike :meth:`schedule` there is no handle object, so
        holders must not touch the entry after it may have fired.
        """
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay})")
        pool = self._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = self.now + int(delay)
            entry[1] = next(self._seq)
            entry[2] = args
            entry[3] = fn
        else:
            entry = [self.now + int(delay), next(self._seq), args, fn, True]
        _heappush(self._heap, entry)
        return entry

    def _post(self, fn: Callable, *args: Any) -> None:
        """Schedule at the current time (preserving FIFO order).

        Unlike :meth:`schedule` this returns no handle, so the entry is
        recycled after dispatch.
        """
        pool = self._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = self.now
            entry[1] = next(self._seq)
            entry[2] = args
            entry[3] = fn
        else:
            entry = [self.now, next(self._seq), args, fn, True]
        _heappush(self._heap, entry)

    def _crash(self, proc: Process, exc: BaseException) -> None:
        if self._crashed is None:
            self._crashed = (proc, exc)

    # -- process API ---------------------------------------------------------
    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process from a generator; it runs from the next tick."""
        proc = Process(self, gen, name=name)
        self._nprocesses += 1
        if self.trace.enabled:
            self.trace.emit("sim.spawn", proc=proc.name)
        self._post(proc._resume, None, None)
        return proc

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """A single-use timeout from the free list (see :class:`Timeout`)."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimError(f"negative timeout: {delay}")
            t = pool.pop()
            t.delay = int(delay)
            t.value = value
            t._pooled = True
            return t
        t = Timeout(self, delay, value)
        t._pooled = True
        return t

    #: alias: the zero-allocation sleep path is just a pooled timeout
    sleep = timeout

    def any_of(self, waitables: Iterable[Any]) -> AnyOf:
        return AnyOf(self, waitables)

    def all_of(self, waitables: Iterable[Any]) -> AllOf:
        return AllOf(self, waitables)

    def process_count(self) -> int:
        return self._nprocesses

    # -- run loop ------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run until the heap drains, ``until`` ns is reached, ``max_events``
        have fired, or ``stop()`` returns True (checked after each event).

        Returns the simulation time at exit.  Re-raises the first uncaught
        process exception.
        """
        heap = self._heap
        pop = _heappop
        entry_pool = self._entry_pool
        count = 0
        try:
            while heap:
                if self._crashed is not None:
                    proc, exc = self._crashed
                    self._crashed = None
                    raise SimError(f"uncaught exception in process {proc.name!r}") from exc
                when = heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    return self.now
                entry = pop(heap)
                fn = entry[3]
                if fn is None:  # canceled
                    if entry[4]:
                        entry[2] = None
                        entry_pool.append(entry)
                    continue
                self.now = when
                fn(*entry[2])
                if entry[4]:
                    entry[2] = None
                    entry[3] = None
                    entry_pool.append(entry)
                count += 1
                if stop is not None and stop():
                    return self.now
                if max_events is not None and count >= max_events:
                    return self.now
            if self._crashed is not None:
                proc, exc = self._crashed
                self._crashed = None
                raise SimError(f"uncaught exception in process {proc.name!r}") from exc
            if until is not None:
                self.now = max(self.now, until)
            return self.now
        finally:
            self.events_dispatched += count

    def run_process(self, gen: Generator, name: str = "", until: Optional[int] = None) -> Any:
        """Spawn ``gen`` and run until *it* finishes; return its result.

        Stops as soon as the process completes even if other (long-lived)
        processes keep the event heap populated.
        """
        proc = self.spawn(gen, name=name)
        done = {}
        proc.done._subscribe(lambda value, exc: done.setdefault("d", True))
        self.run(until=until, stop=lambda: "d" in done)
        if not proc.finished:
            raise SimError(f"process {proc.name!r} did not finish by t={self.now}")
        return proc.result
