"""Straight-line reference kernel: the ordering oracle for the fast paths.

:class:`ReferenceSimulator` / :class:`ReferenceProcess` preserve the
pre-optimization event loop exactly: every ``schedule`` allocates a fresh
4-slot heap entry, every ``timeout`` a fresh :class:`Timeout`, and every
process wait goes through the generic ``_as_waitable(...)._subscribe``
protocol — no free lists, no class-dispatch shortcuts.

Both kernels run the *same* library code (firmware, AM layer, chaos
runner), so running one scenario on each and comparing timeline digests
is a bit-exact proof that the optimized fast paths preserve event
ordering; comparing their events/sec on the same machine is a
machine-independent perf-regression check (identical event count,
different per-event cost).  See ``repro.bench.perf``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from .core import (
    Event,
    Interrupted,
    Process,
    SimError,
    Simulator,
    Timeout,
    _as_waitable,
    _Handle,
)

__all__ = ["ReferenceSimulator", "ReferenceProcess"]


class ReferenceProcess(Process):
    """Process with the generic (pre-fast-path) wait dispatch."""

    __slots__ = ()

    def interrupt(self, cause: Any = None) -> None:
        if self._finished:
            return
        if self._cancel_wait is not None:
            self._cancel_wait()
            self._cancel_wait = None
        self.sim._post(self._resume, None, Interrupted(cause))

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._finished:
            return
        self._cancel_wait = None
        self.sim._current = self
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except Interrupted as unhandled:
            self._finish_fail(unhandled)
            return
        except Exception as err:  # noqa: BLE001 - propagate to joiners
            self._finish_fail(err)
            return
        finally:
            self.sim._current = None
        try:
            waitable = _as_waitable(self.sim, target)
        except SimError as err:
            self._finish_fail(err)
            return
        self._cancel_wait = waitable._subscribe(self._resume)


class ReferenceSimulator(Simulator):
    """Event loop with per-event allocation (no entry or timeout pools)."""

    def schedule(self, delay: int, fn: Callable, *args: Any) -> _Handle:
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay})")
        entry = [self.now + int(delay), next(self._seq), args, fn]
        heapq.heappush(self._heap, entry)
        return _Handle(entry)

    def _post(self, fn: Callable, *args: Any) -> None:
        self.schedule(0, fn, *args)

    def call_after(self, delay: int, fn: Callable, *args: Any) -> list:
        """One-shot callback with per-call allocation (no entry pool).

        Same cancel protocol as the optimized kernel — ``entry[3] = None``
        — since both kernels keep the callback in slot 3.
        """
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay})")
        entry = [self.now + int(delay), next(self._seq), args, fn]
        heapq.heappush(self._heap, entry)
        return entry

    def spawn(self, gen: Generator, name: str = "") -> ReferenceProcess:
        proc = ReferenceProcess(self, gen, name=name)
        self._nprocesses += 1
        if self.trace.enabled:
            self.trace.emit("sim.spawn", proc=proc.name)
        self._post(proc._resume, None, None)
        return proc

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    sleep = timeout

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> int:
        count = 0
        try:
            while self._heap:
                if self._crashed is not None:
                    proc, exc = self._crashed
                    self._crashed = None
                    raise SimError(f"uncaught exception in process {proc.name!r}") from exc
                when = self._heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    return self.now
                entry = heapq.heappop(self._heap)
                fn = entry[3]
                if fn is None:  # canceled
                    continue
                self.now = when
                fn(*entry[2])
                count += 1
                if stop is not None and stop():
                    return self.now
                if max_events is not None and count >= max_events:
                    return self.now
            if self._crashed is not None:
                proc, exc = self._crashed
                self._crashed = None
                raise SimError(f"uncaught exception in process {proc.name!r}") from exc
            if until is not None:
                self.now = max(self.now, until)
            return self.now
        finally:
            self.events_dispatched += count
