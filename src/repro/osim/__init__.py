"""Operating-system resource management: threads, the endpoint segment driver."""

from .clock import LamportClock
from .process import UserProcess
from .segdriver import DriverStats, SegmentDriver
from .threads import CondVar, Mutex, Thread

__all__ = [
    "CondVar",
    "DriverStats",
    "LamportClock",
    "Mutex",
    "SegmentDriver",
    "Thread",
    "UserProcess",
]
