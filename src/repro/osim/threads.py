"""Kernel/user threads and POSIX-style synchronization (Section 3.3).

The programming interface deliberately reuses standard thread
synchronization instead of inventing an event model: endpoints sensitize
condition variables to state transitions and threads wait on them.  This
module provides the simulated equivalents — :class:`Thread` (a body
generator bound to a host CPU), :class:`Mutex` and :class:`CondVar`.

A thread body is a generator function receiving the :class:`Thread`; it
consumes CPU with ``yield from thr.compute(ns)`` and blocks with
``yield event`` / ``yield from cv.wait_with(mutex)``.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Deque, Generator, Optional

from ..hw.host import Cpu
from ..sim.core import Event, Interrupted, SimError, Simulator

__all__ = ["Thread", "Mutex", "CondVar"]

_thread_ids = itertools.count(1)


class Thread:
    """A schedulable thread on one node's CPU."""

    def __init__(
        self,
        sim: Simulator,
        cpu: Cpu,
        body: Callable[["Thread"], Generator],
        name: str = "",
    ):
        self.sim = sim
        self.cpu = cpu
        self.tid = next(_thread_ids)
        self.name = name or f"thread{self.tid}"
        #: accumulated CPU time (filled in by the scheduler)
        self.cpu_ns = 0
        #: set while the thread is suspended by a fault injector (chaos
        #: testing): the thread parks at its next compute/block point and
        #: stays off-CPU until :meth:`resume`
        self._pause_ev: Optional[Event] = None
        self.proc = sim.spawn(self._run(body), name=self.name)

    def _run(self, body: Callable[["Thread"], Generator]) -> Generator:
        try:
            result = yield from body(self)
        except Interrupted as intr:
            # An uncaught interrupt is a clean cancellation (e.g. process
            # termination), not an error.
            result = intr.cause
        finally:
            # A finished (or failed) thread must not keep the CPU lease.
            self.cpu.release_lease(self)
        return result

    @property
    def done(self):
        return self.proc.done

    @property
    def finished(self) -> bool:
        return self.proc.finished

    @property
    def result(self) -> Any:
        return self.proc.result

    # ------------------------------------------------------------ suspension
    @property
    def paused(self) -> bool:
        return self._pause_ev is not None

    def pause(self) -> None:
        """Suspend the thread at its next compute/block point (chaos fault:
        a stalled receiver that stops polling, Section 3.2 pressure)."""
        if self._pause_ev is None and not self.finished:
            self._pause_ev = Event(self.sim, name=f"{self.name}.pause")

    def resume(self) -> None:
        """Release a paused thread; it re-contends for the CPU."""
        ev, self._pause_ev = self._pause_ev, None
        if ev is not None and not ev.triggered:
            ev.trigger(None)

    def _pause_gate(self) -> Generator:
        """Park off-CPU while paused (re-checks: pause can nest/repeat)."""
        while self._pause_ev is not None:
            tr = self.sim.trace
            if tr.enabled:
                tr.emit("thr.block", self.cpu.node_id, thread=self.name, paused=True)
            self.cpu.release_lease(self)
            yield self._pause_ev
            if tr.enabled:
                tr.emit("thr.wake", self.cpu.node_id, thread=self.name, paused=True)

    def compute(self, ns: int) -> Generator:
        """Consume CPU time (sliced and preemptible by the quantum)."""
        if self._pause_ev is not None:
            yield from self._pause_gate()
        if ns <= 0:
            return
        # Single-slice fast path: the lease holder consuming less than a
        # slice needs none of Cpu.compute's acquire/loop machinery — the
        # dominant case for per-poll touch costs.  Scheduling decisions
        # still go through Cpu._should_yield/_handoff_next.
        cpu = self.cpu
        if cpu._holder is self and ns <= cpu.max_slice_ns and ns <= cpu._expiry - self.sim.now:
            cpu._in_slice = True
            yield self.sim.timeout(ns)
            self._slice_end(ns)
            return
        yield from cpu.compute(ns, owner=self)

    def _slice_begin(self, ns: int) -> Optional[Any]:
        """Fast-path entry for single-yield computes on hot call sites.

        When the caller can complete ``ns`` inside the current lease slice
        (the dominant case for per-poll touch costs), returns the pooled
        timeout to yield — the caller must call :meth:`_slice_end` right
        after the yield.  Returns None when the full :meth:`compute` path
        is required (paused, zero cost, not the leaseholder, slice split).
        Semantically identical to ``yield from thr.compute(ns)``; it only
        skips the generator frame.
        """
        cpu = self.cpu
        if (self._pause_ev is not None or ns <= 0 or cpu._holder is not self
                or ns > cpu.max_slice_ns or ns > cpu._expiry - self.sim.now):
            return None
        cpu._in_slice = True
        return self.sim.timeout(ns)

    def _slice_end(self, ns: int) -> None:
        """Close out a fast-path slice: accounting + scheduling decision
        (the inline equivalent of ``Cpu._should_yield(0)`` + handoff)."""
        cpu = self.cpu
        cpu._in_slice = False
        cpu.busy_ns += ns
        self.cpu_ns += ns
        if cpu._hi_queue or (cpu._queue and self.sim.now >= cpu._expiry):
            cpu._holder = None
            cpu._handoff_next()

    def block(self, waitable: Any) -> Generator:
        """Wait off-CPU: release the scheduler lease, then wait.

        All blocking waits inside thread bodies should go through this (or
        :meth:`sleep`) so other runnable threads get the CPU immediately
        rather than at lease expiry.
        """
        tr = self.sim.trace
        if tr.enabled:
            tr.emit("thr.block", self.cpu.node_id, thread=self.name)
        self.cpu.release_lease(self)
        result = yield waitable
        if self._pause_ev is not None:
            yield from self._pause_gate()
        if tr.enabled:
            tr.emit("thr.wake", self.cpu.node_id, thread=self.name)
        return result

    def sleep(self, ns: int) -> Generator:
        """Block off-CPU for ``ns``."""
        yield from self.block(self.sim.timeout(ns))

    def interrupt(self, cause: Any = None) -> None:
        self.proc.interrupt(cause)

    def __repr__(self) -> str:
        return f"<Thread {self.name}>"


class Mutex:
    """FIFO mutex with owner tracking."""

    def __init__(self, sim: Simulator, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._owner: Optional[Thread] = None
        self._waiters: Deque[tuple[Event, Thread]] = deque()

    @property
    def locked(self) -> bool:
        return self._owner is not None

    def acquire(self, thread: Thread) -> Event:
        ev = Event(self.sim, name=f"{self.name}.acq")
        if self._owner is None:
            self._owner = thread
            ev.trigger(None)
        else:
            self._waiters.append((ev, thread))
        return ev

    def release(self, thread: Thread) -> None:
        if self._owner is not thread:
            raise SimError(f"{thread} releasing {self.name} owned by {self._owner}")
        if self._waiters:
            ev, nxt = self._waiters.popleft()
            self._owner = nxt
            ev.trigger(None)
        else:
            self._owner = None


class CondVar:
    """Condition variable; signals wake waiters in FIFO order."""

    def __init__(self, sim: Simulator, name: str = "cv"):
        self.sim = sim
        self.name = name
        self._waiters: Deque[Event] = deque()

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        """Bare wait (no mutex): yield the returned event."""
        ev = Event(self.sim, name=f"{self.name}.wait")
        self._waiters.append(ev)
        return ev

    def wait_with(self, mutex: Mutex, thread: Thread) -> Generator:
        """Atomically release ``mutex``, wait, and reacquire."""
        ev = self.wait()
        mutex.release(thread)
        yield from thread.block(ev)
        yield mutex.acquire(thread)

    def signal(self, value: Any = None) -> None:
        if self._waiters:
            self._waiters.popleft().trigger(value)

    def broadcast(self, value: Any = None) -> None:
        if not self._waiters:
            return
        waiters, self._waiters = self._waiters, deque()
        for ev in waiters:
            ev.trigger(value)
