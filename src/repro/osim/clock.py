"""Logical clocks for driver/NI event ordering (re-export).

The implementation lives with the protocol definitions in
:mod:`repro.nic.driver_port`; this module keeps the documented layout
(`repro.osim.clock`) importable without a package cycle.
"""

from ..nic.driver_port import LamportClock

__all__ = ["LamportClock"]
