"""User processes: containers of threads and endpoints on one node.

A process groups the threads it spawns and the endpoints it allocated so
that termination can release everything — process termination invokes the
segment-driver methods that free endpoint segments, synchronizing
de-allocation with the network interface (Section 4.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from ..nic.endpoint_state import EndpointState
from .threads import Thread

if TYPE_CHECKING:
    from ..cluster.builder import Node

__all__ = ["UserProcess"]


class UserProcess:
    """One application process on a node."""

    def __init__(self, node: "Node", name: str = "proc"):
        self.node = node
        self.name = name
        self.threads: list[Thread] = []
        self.endpoints: list[EndpointState] = []
        self.terminated = False

    def spawn_thread(self, body: Callable[[Thread], Generator], name: str = "") -> Thread:
        if self.terminated:
            raise RuntimeError(f"process {self.name} already terminated")
        thr = Thread(
            self.node.sim,
            self.node.cpu,
            body,
            name=name or f"{self.name}.t{len(self.threads)}",
        )
        self.threads.append(thr)
        return thr

    def adopt_endpoint(self, ep: EndpointState) -> None:
        self.endpoints.append(ep)

    def terminate(self) -> Generator:
        """Release all endpoints through the segment driver (generator)."""
        self.terminated = True
        for thr in self.threads:
            if not thr.finished:
                thr.interrupt("process terminated")
        for ep in list(self.endpoints):
            yield from self.node.driver.free_endpoint(ep)
        self.endpoints.clear()

    # ------------------------------------------------------------ fault hooks
    def pause(self) -> None:
        """Suspend every thread (a stalled process that stops polling)."""
        for thr in self.threads:
            if not thr.finished:
                thr.pause()

    def resume(self) -> None:
        for thr in self.threads:
            thr.resume()

    def kill(self) -> None:
        """Abrupt asynchronous termination (the chaos adversary's SIGKILL).

        Unlike :meth:`terminate` this is not a generator: threads are
        interrupted immediately and the endpoints are released through the
        segment driver by a background reaper process — in-flight messages
        from this process drain first (the free quiesces), and messages
        still addressed to the vanished endpoints come back to their
        senders as return-to-sender (Section 3.2), never hang.
        """
        if self.terminated:
            return
        self.terminated = True
        for thr in self.threads:
            if not thr.finished:
                thr.interrupt("process killed")
        eps, self.endpoints = list(self.endpoints), []

        def reaper() -> Generator:
            for ep in eps:
                yield from self.node.driver.free_endpoint(ep)

        self.node.sim.spawn(reaper(), name=f"{self.name}.reaper")
