"""The endpoint segment driver (Section 4).

Endpoint management is cast as a virtual memory problem: endpoints are
memory-mapped objects whose backing store migrates between NI frames
(on-nic r/w), cacheable host memory (on-host r/w and r/o) and the swap
area (on-disk) — the four-state protocol of Figure 2.

Key mechanisms reproduced here:

* **Write faults** move an endpoint from on-host r/o to on-host r/w and
  *schedule* its re-mapping, letting the faulting thread continue
  immediately.  This asynchronous state was added for robustness under
  high re-mapping load (Section 6.4.1) and can be disabled
  (``enable_onhost_rw=False``) to reproduce the single-threaded-server
  collapse ablation.
* **A background remap kernel thread** services re-mapping requests:
  evicting a victim (replacement policy, Section 4.1) when all frames are
  occupied, quiescing and unloading it through the NI, then loading the
  target endpoint.  Victim selection is pluggable
  (:data:`REPLACEMENT_POLICIES`): the paper's ``random`` choice, strict
  ``lru``, a ``clock`` second-chance sweep over the frame array, and an
  ``active-preference`` policy that deprioritizes endpoints with queued
  sends or a pending make-resident request (evicting those is pure
  thrash — they fault straight back in, Section 6.4).  Recently loaded
  endpoints can be protected from re-eviction for
  ``eviction_hysteresis_us`` (0 disables, reproducing the paper's
  behaviour).
* **A residency scoreboard** tracks remaps, evictions and *bounced*
  evictions (the victim re-requested residency within
  ``thrash_bounce_us`` of being unloaded — the eviction bought nothing)
  per NIC; its evictions-per-remap and thrash ratios quantify how close
  the node is to the Section 6.4 page-thrash regime and are surfaced
  through :mod:`repro.obs` metrics.
* **A proxy kernel thread** performs operations on behalf of the NI: the
  arrival of a message for a non-resident endpoint generates a
  software-initiated page fault through the same driver mechanisms.
* **Logical clocks** order events initiated concurrently by the two
  agents, e.g. the driver freeing an endpoint while the NI asks for it to
  be made resident (a stale generation/clock is discarded).

Both kernel threads consume real host CPU, so heavy re-mapping competes
with application threads — the effect behind Figure 6's ST-8 behaviour.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional

from ..cluster.config import ClusterConfig
from ..hw.host import Cpu
from ..nic.driver_port import DriverOp, LamportClock
from ..nic.endpoint_state import (
    F_MR_REQUESTED,
    F_QUIESCING,
    F_REFERENCED,
    F_TRANSITION,
    RES_FREED,
    EndpointState,
    EndpointTable,
    Residency,
)
from ..nic.firmware import Nic
from ..sim.core import Event, Simulator, us
from ..sim.resources import Gate
from ..sim.rng import RngStreams

__all__ = [
    "SegmentDriver",
    "DriverStats",
    "ResidencyScoreboard",
    "VictimPolicy",
    "REPLACEMENT_POLICIES",
    "register_policy",
]


@dataclass
class DriverStats:
    allocs: int = 0
    frees: int = 0
    write_faults: int = 0
    proxy_faults: int = 0
    remaps: int = 0
    evictions: int = 0
    loads: int = 0
    unloads: int = 0
    pageins: int = 0
    pageouts: int = 0
    events_delivered: int = 0
    stale_notifies: int = 0

    def remap_rate(self, elapsed_ns: int) -> float:
        """Re-mappings per second over ``elapsed_ns`` (cf. §6.4.1's 200-300/s).

        Guarded against ``elapsed_ns <= 0`` (a zero-length measurement
        window must read as "no rate", not raise ZeroDivisionError).
        """
        if elapsed_ns <= 0:
            return 0.0
        return self.remaps / (elapsed_ns / 1e9)


# ===================================================== replacement policies
#: registry of victim-selection policies, keyed by the
#: ``ClusterConfig.replacement_policy`` name.  Filled by
#: :func:`register_policy`; ``ClusterConfig.validate`` checks against it.
REPLACEMENT_POLICIES: dict[str, Callable[..., "VictimPolicy"]] = {}


def register_policy(name: str):
    """Class decorator: register a :class:`VictimPolicy` under ``name``."""

    def deco(cls):
        cls.name = name
        REPLACEMENT_POLICIES[name] = cls
        return cls

    return deco


class VictimPolicy:
    """Chooses which resident endpoint to evict when all frames are full.

    Policies operate on integer row ids against an
    :class:`~repro.nic.endpoint_state.EndpointTable`'s columns — no
    per-candidate object materialization, which is what lets the fleet
    sweep (:mod:`repro.scale.fleet`) run the same code over 10^5+
    endpoints.  ``choose_row`` receives only *eligible* candidates
    (resident, not quiescing, not in transition, not freed, and — when
    the hysteresis knob allows — not loaded within the protection
    window) in frame-index order.  It must return one of them; the
    caller never passes an empty list.
    """

    name = "?"

    def __init__(self, table: EndpointTable, rng):
        self.table = table
        self.rng = rng

    def choose_row(self, candidates: list[int]) -> int:
        raise NotImplementedError


@register_policy("random")
class RandomPolicy(VictimPolicy):
    """The paper's choice (Section 4.1): uniformly random victim."""

    def choose_row(self, candidates: list[int]) -> int:
        return self.rng.choice(candidates)


@register_policy("lru")
class LruPolicy(VictimPolicy):
    """Strict least-recently-active, tie-broken on ``ep_id``.

    The explicit secondary key keeps victim choice deterministic when
    several endpoints share a ``last_active_ns`` (common right after a
    burst of loads, where none has been serviced yet).
    """

    def choose_row(self, candidates: list[int]) -> int:
        la, eid = self.table.last_active, self.table.ep_id
        return min(candidates, key=lambda r: (la[r], eid[r]))


@register_policy("clock")
class ClockPolicy(VictimPolicy):
    """Second-chance clock sweep over the NI frame array.

    A hand walks the frames; a candidate with its ``referenced`` bit set
    (the firmware sets it on send service and delivery) gets a second
    chance — the bit is cleared and the hand moves on.  The first
    unreferenced eligible candidate is the victim.  Two full sweeps
    always suffice (the first clears every bit); the LRU fallback is a
    belt-and-braces guarantee of termination.
    """

    def __init__(self, table: EndpointTable, rng):
        super().__init__(table, rng)
        self._hand = 0

    def choose_row(self, candidates: list[int]) -> int:
        t = self.table
        frames = t.frame_rows
        flags = t.flags
        eligible = set(candidates)
        n = len(frames)
        for _ in range(2 * n):
            r = frames[self._hand]
            self._hand = (self._hand + 1) % n
            if r < 0 or r not in eligible:
                continue
            if flags[r] & F_REFERENCED:
                flags[r] &= ~F_REFERENCED
                continue
            return r
        la, eid = t.last_active, t.ep_id
        return min(candidates, key=lambda r: (la[r], eid[r]))


@register_policy("active-preference")
class ActivePreferencePolicy(VictimPolicy):
    """Prefer idle victims (paper-faithful reading of Section 6.4).

    Evicting an endpoint with queued sends, unresolved in-flight
    messages, or a pending make-resident request is pure thrash: it
    faults straight back in, and the eviction bought nothing.  This
    policy ranks such endpoints last and picks the least-recently-active
    idle endpoint (tie-broken on ``ep_id``) when one exists.
    """

    def choose_row(self, candidates: list[int]) -> int:
        t = self.table
        ring, flags, infl = t.ring_used, t.flags, t.inflight
        la, eid = t.last_active, t.ep_id

        def rank(r: int):
            busy = 1 if (ring[r] or flags[r] & F_MR_REQUESTED or infl[r]) else 0
            return (busy, la[r], eid[r])

        return min(candidates, key=rank)


# ====================================================== residency scoreboard
class ResidencyScoreboard:
    """Per-NIC residency health: remap/eviction accounting + thrash detection.

    *Thrash* here is the Section 6.4 page-thrash regime: evictions whose
    victim promptly re-requests residency, so the re-mapping machinery
    spins without making progress.  Two ratios:

    ``eviction_remap_ratio``
        evictions per re-mapping — 1.0 means every remap had to evict
        (the frames are permanently oversubscribed);
    ``thrash_score``
        *bounced* evictions per re-mapping — the fraction of re-mapping
        work that was wasted.  An eviction bounces when the victim
        re-requests residency within ``thrash_bounce_us`` of being
        unloaded: either it still had queued sends (it faults back in
        instantly) or a client re-targeted it before the eviction could
        pay for itself.  This is the policy-sensitive metric — evicting
        hot endpoints bounces, evicting idle ones does not.

    A sliding window over the last ``window`` remaps drives
    :meth:`thrashing`, the hook a control loop (or dashboard) would key
    off; the window state updates unconditionally but only observation
    reads it, so tracing on/off cannot perturb behaviour.
    """

    def __init__(self, window: int = 64):
        self.window = window
        self.remaps = 0
        self.evictions = 0
        self.forced_evictions = 0
        self.bounced_evictions = 0
        #: candidates passed over because they were inside the
        #: ``eviction_hysteresis_us`` protection window
        self.hysteresis_vetoes = 0
        self.per_ep_evictions: dict[int, int] = {}
        #: 1 per remap that required an eviction, else 0 (sliding window)
        self._recent: Deque[int] = deque(maxlen=window)

    def record_remap(self, evicted: bool) -> None:
        self.remaps += 1
        self._recent.append(1 if evicted else 0)

    def record_eviction(self, ep: EndpointState, *, forced: bool = False) -> None:
        self.evictions += 1
        if forced:
            self.forced_evictions += 1
        self.per_ep_evictions[ep.ep_id] = self.per_ep_evictions.get(ep.ep_id, 0) + 1

    def record_bounce(self, ep: EndpointState) -> None:
        """The evicted ``ep`` re-requested residency inside the bounce window."""
        self.bounced_evictions += 1

    @property
    def eviction_remap_ratio(self) -> float:
        return self.evictions / max(1, self.remaps)

    @property
    def thrash_score(self) -> float:
        return self.bounced_evictions / max(1, self.remaps)

    def recent_pressure(self) -> float:
        """Fraction of the last ``window`` remaps that had to evict."""
        if not self._recent:
            return 0.0
        return sum(self._recent) / len(self._recent)

    def thrashing(self, threshold: float = 0.75) -> bool:
        """True once a full window of remaps mostly required evictions."""
        return len(self._recent) == self.window and self.recent_pressure() >= threshold

    def snapshot(self) -> dict[str, float]:
        """Flat dict for reporting/JSON (deterministic key order)."""
        return {
            "remaps": self.remaps,
            "evictions": self.evictions,
            "forced_evictions": self.forced_evictions,
            "bounced_evictions": self.bounced_evictions,
            "hysteresis_vetoes": self.hysteresis_vetoes,
            "eviction_remap_ratio": self.eviction_remap_ratio,
            "thrash_score": self.thrash_score,
            "recent_pressure": self.recent_pressure(),
            "max_ep_evictions": max(self.per_ep_evictions.values(), default=0),
        }


class SegmentDriver:
    """Per-node endpoint segment driver extending the VM system."""

    def __init__(
        self,
        sim: Simulator,
        cfg: ClusterConfig,
        nic: Nic,
        cpu: Cpu,
        rngs: Optional[RngStreams] = None,
    ):
        self.sim = sim
        self.cfg = cfg
        self.nic = nic
        self.cpu = cpu
        self.rng = (rngs or RngStreams(cfg.seed)).stream(f"driver{nic.nic_id}")
        self.clock = LamportClock()
        self.stats = DriverStats()
        try:
            policy_cls = REPLACEMENT_POLICIES[cfg.replacement_policy]
        except KeyError:
            raise ValueError(
                f"unknown replacement policy {cfg.replacement_policy!r}; "
                f"registered: {sorted(REPLACEMENT_POLICIES)}"
            ) from None
        self.policy = policy_cls(nic.table, self.rng)
        self.scoreboard = ResidencyScoreboard(window=cfg.thrash_window)
        self._hysteresis_ns = us(cfg.eviction_hysteresis_us)
        self._bounce_ns = us(cfg.thrash_bounce_us)
        #: last thrashing() state, for edge-triggered drv.thrash events
        self._thrash_flagged = False

        self.endpoints: dict[int, EndpointState] = {}
        self._next_ep_id = 1
        self._remap_q: Deque[EndpointState] = deque()
        self._remap_gate = Gate(sim, name=f"drv{nic.nic_id}.remap")
        #: events triggered when an endpoint becomes resident (blocked
        #: writers under the enable_onhost_rw=False ablation, and am_wait)
        self._resident_waiters: dict[int, list[Event]] = {}

        #: distinct scheduler identities for the two kernel threads
        self._remap_owner = object()
        self._proxy_owner = object()
        self._remap_thread = sim.spawn(self._remap_loop(), name=f"drv{nic.nic_id}.remap")
        self._proxy_thread = sim.spawn(self._proxy_loop(), name=f"drv{nic.nic_id}.proxy")

    def _kwait(self, owner, waitable):
        """Kernel thread blocking wait: release the CPU lease first."""
        self.cpu.release_lease(owner)
        result = yield waitable
        return result

    # ===================================================== user-facing (gen)
    def alloc_endpoint(self, tag: int = 0, owner=None) -> "Generator":
        """Allocate an endpoint: segment creation + NI registration.

        Generator; returns the new :class:`EndpointState` (initially
        on-host r/o, per Figure 2).  ``owner`` is the calling thread: the
        system call runs in its scheduler context at kernel priority.
        """
        own = owner if owner is not None else object()
        yield from self.cpu.compute(us(self.cfg.ep_alloc_us), owner=own, priority=1)
        ep = EndpointState(
            self.nic.nic_id,
            self._next_ep_id,
            send_ring_depth=self.cfg.send_ring_depth,
            recv_queue_depth=self.cfg.recv_queue_depth,
            tag=tag,
            table=self.nic.table,
        )
        self._next_ep_id += 1
        done = Event(self.sim)
        self.nic.driver_request(DriverOp("alloc", ep, done, clock=self.clock.tick()))
        yield from self._kwait(own, done)
        self.endpoints[ep.ep_id] = ep
        self.stats.allocs += 1
        return ep

    def free_endpoint(self, ep: EndpointState) -> "Generator":
        """Free an endpoint; synchronizes de-allocation with the NI (§4.2)."""
        if ep.residency is Residency.FREED:
            return
        if ep.resident or ep.quiescing:
            yield from self._unload(ep)
        ep.residency = Residency.FREED
        ep.generation += 1  # stale NI notifications now discarded
        # An endpoint can never become resident after this point, so any
        # thread parked in wait_resident must be released now — leaving
        # it parked would be a lost wakeup (a free racing a write fault
        # under the enable_onhost_rw=False ablation, or an am_wait).
        self._wake_resident_waiters(ep)
        done = Event(self.sim)
        self.nic.driver_request(DriverOp("free", ep, done, clock=self.clock.tick()))
        yield done
        self.endpoints.pop(ep.ep_id, None)
        self.stats.frees += 1

    def write_fault(self, ep: EndpointState, owner=None) -> "Generator":
        """Application wrote a non-resident endpoint (Figure 2 transitions).

        on-host r/o -> on-host r/w (+ schedule re-mapping); on-disk pages
        in first.  With ``enable_onhost_rw`` disabled the faulting thread
        blocks until the endpoint is resident (the original design whose
        collapse Section 6.4.1 describes).
        """
        if ep.residency in (Residency.ONNIC_RW, Residency.FREED):
            return
        if ep.residency is Residency.ONDISK:
            self.stats.pageins += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("ep.pagein", self.nic.nic_id, ep=ep.ep_id)
            yield self.sim.timeout(us(self.cfg.disk_pagein_us))
            ep.residency = Residency.ONHOST_RO
        if ep.residency is Residency.ONHOST_RO:
            self.stats.write_faults += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("ep.writefault", self.nic.nic_id, ep=ep.ep_id)
            own = owner if owner is not None else object()
            yield from self.cpu.compute(us(self.cfg.host_fault_us), owner=own, priority=1)
            if owner is None:
                self.cpu.release_lease(own)
            ep.residency = Residency.ONHOST_RW
        self.request_remap(ep)
        if not self.cfg.enable_onhost_rw:
            # Synchronous fault handling: suspend until resident.
            yield self.wait_resident(ep)

    def pageout(self, ep: EndpointState) -> None:
        """VM page reclamation: on-host r/o endpoints may go to disk."""
        if ep.residency is Residency.ONHOST_RO:
            ep.residency = Residency.ONDISK
            self.stats.pageouts += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("ep.pageout", self.nic.nic_id, ep=ep.ep_id)

    def wait_resident(self, ep: EndpointState) -> Event:
        """Event triggered when ``ep`` reaches on-nic r/w (or is freed:
        waiters are released rather than leaked — they must re-check the
        residency state on wakeup)."""
        ev = Event(self.sim)
        if ep.resident or ep.residency is Residency.FREED:
            ev.trigger(None)
        else:
            self._resident_waiters.setdefault(ep.ep_id, []).append(ev)
        return ev

    def _wake_resident_waiters(self, ep: EndpointState) -> None:
        for ev in self._resident_waiters.pop(ep.ep_id, []):
            ev.trigger(None)

    # ========================================================== remap engine
    def request_remap(self, ep: EndpointState) -> None:
        """Queue an endpoint for the background remap thread."""
        if ep.resident or ep.transition or ep.residency is Residency.FREED:
            return
        if ep not in self._remap_q:
            if ep.evicted_at_ns >= 0:
                # First residency request since the last eviction: if it
                # comes inside the bounce window, that eviction was thrash
                # (Section 6.4 — the victim fell straight back in).
                if self.sim.now - ep.evicted_at_ns <= self._bounce_ns:
                    self.scoreboard.record_bounce(ep)
                ep.evicted_at_ns = -1
            self._remap_q.append(ep)
            self._remap_gate.set()

    def _remap_loop(self):
        cfg = self.cfg
        while True:
            if not self._remap_q:
                self._remap_gate.clear()
                yield from self._kwait(self._remap_owner, self._remap_gate.wait())
                # Periodic servicing (Section 4.2): the thread wakes and
                # scans; model the wake-to-scan delay.
                yield from self._kwait(self._remap_owner, self.sim.timeout(us(cfg.remap_scan_period_us)))
                continue
            ep = self._remap_q.popleft()
            if ep.resident or ep.transition or ep.residency is Residency.FREED:
                continue
            yield from self._make_resident(ep)

    def _make_resident(self, ep: EndpointState):
        """Bind an endpoint to an NI frame, evicting if necessary (§4.1)."""
        cfg = self.cfg
        ep.transition = True
        remap_start = self.sim.now
        yield from self.cpu.compute(us(cfg.remap_driver_overhead_us / 2), owner=self._remap_owner, priority=1)
        # off-CPU synchronization latency of the re-mapping (§4.2)
        yield from self._kwait(self._remap_owner, self.sim.timeout(us(cfg.remap_sync_latency_us)))
        frame = self.nic.free_frame_index()
        evicted = False
        if frame is None:
            victim = self._choose_victim(ep)
            if victim is None:
                # Everything is quiescing, in transition, or protected by
                # a tenant reservation; retry shortly.
                ep.transition = False
                self.sim.schedule(us(cfg.remap_scan_period_us), self.request_remap, ep)
                return
            yield from self._unload(victim)
            evicted = True
            self.stats.evictions += 1
            self.scoreboard.record_eviction(victim)
            self._attribute_eviction(ep, victim)
            if self.sim.trace.enabled:
                self.sim.trace.emit("ep.evict", self.nic.nic_id, ep=victim.ep_id,
                                    for_ep=ep.ep_id)
            # A victim unloaded with queued work faults straight back in
            # (Section 6.4); request_remap scores that as a bounce.
            if victim.send_ring or victim.mr_requested:
                self.request_remap(victim)
            frame = self.nic.free_frame_index()
            if frame is None:
                ep.transition = False
                self.request_remap(ep)
                return
        if ep.residency is Residency.FREED:
            ep.transition = False
            self._wake_resident_waiters(ep)
            return
        done = Event(self.sim)
        self.nic.driver_request(DriverOp("load", ep, done, clock=self.clock.tick(), frame=frame))
        yield from self._kwait(self._remap_owner, done)
        if ep.residency is Residency.FREED:
            # Freed while the load DMA was in flight: the NI declined the
            # load; nothing became resident.
            self._wake_resident_waiters(ep)
            return
        self.stats.loads += 1
        self.stats.remaps += 1
        self.scoreboard.record_remap(evicted=evicted)
        yield from self.cpu.compute(us(cfg.remap_driver_overhead_us / 2), owner=self._remap_owner, priority=1)
        self._observe_residency()
        if self.sim.trace.enabled:
            self.sim.trace.emit("drv.remap", self.nic.nic_id, ep=ep.ep_id,
                                dur_ns=self.sim.now - remap_start)
        self._wake_resident_waiters(ep)

    def _choose_victim(self, requester: Optional[EndpointState] = None) -> Optional[EndpointState]:
        """Pick an eviction victim via the configured policy (§4.1).

        Hysteresis: endpoints loaded within the last
        ``eviction_hysteresis_us`` are exempted, unless *every* candidate
        is that fresh (a frame must still be found, so protection yields
        rather than deadlocking the remap engine).

        Tenant isolation (two hard rules, applied before the policy):

        * **Reservation veto** — a cross-tenant candidate may not be
          evicted if doing so would drop its tenant at or below its
          ``frame_reservation`` on this NIC.  A tenant may still evict
          *its own* endpoints below its reservation (it is spending its
          own guarantee).
        * **Quota self-paging** — a requester whose tenant already holds
          ``frame_quota`` frames on this NIC may only victimize that
          tenant's own endpoints.

        Either rule may empty the candidate list; the driver then retries
        after ``remap_scan_period_us`` rather than violating a guarantee
        (``TenantRegistry.validate_against`` keeps reservations
        co-satisfiable, so the retry always terminates once frames drain).
        """
        req_tenant = requester.tenant if requester is not None else None
        node = self.nic.nic_id
        t = self.nic.table
        flags, res = t.flags, t.res
        # Candidate rows come straight off the frame_rows column in
        # frame-index order; no per-candidate view objects are built.
        candidates = [
            r
            for r in t.frame_rows
            if r >= 0
            and not (flags[r] & (F_QUIESCING | F_TRANSITION))
            and res[r] != RES_FREED
        ]
        if not candidates:
            return None
        tenant_ref = t.tenant_ref
        if req_tenant is not None and req_tenant.spec.frame_quota is not None:
            if req_tenant.frames_held(node) >= req_tenant.spec.frame_quota:
                candidates = [r for r in candidates if tenant_ref[r] is req_tenant]
                if not candidates:
                    return None
        vetoed = 0
        allowed = []
        for r in candidates:
            ct = tenant_ref[r]
            if (ct is not None and ct is not req_tenant
                    and ct.frames_held(node) <= ct.spec.frame_reservation):
                ct.stats.reservation_vetoes += 1
                vetoed += 1
                continue
            allowed.append(r)
        if vetoed and self.sim.trace.enabled:
            self.sim.trace.emit("tenant.veto", node, count=vetoed)
        candidates = allowed
        if not candidates:
            return None
        if self._hysteresis_ns > 0:
            now = self.sim.now
            loaded_at = t.loaded_at
            seasoned = [
                r for r in candidates if now - loaded_at[r] >= self._hysteresis_ns
            ]
            if seasoned and len(seasoned) < len(candidates):
                self.scoreboard.hysteresis_vetoes += len(candidates) - len(seasoned)
                candidates = seasoned
        return t.views[self.policy.choose_row(candidates)]

    def _attribute_eviction(self, requester: EndpointState, victim: EndpointState) -> None:
        """Per-tenant eviction attribution (who caused / who suffered)."""
        rt = requester.tenant
        vt = victim.tenant
        if vt is not None and vt is not rt:
            vt.stats.evictions_suffered += 1
        if rt is not None:
            if vt is rt:
                rt.stats.quota_self_evictions += 1
            else:
                rt.stats.evictions_caused += 1

    def _observe_residency(self) -> None:
        """Surface scoreboard counters through repro.obs (observer-only)."""
        flagged = self.scoreboard.thrashing()
        was_flagged = self._thrash_flagged
        self._thrash_flagged = flagged
        tr = self.sim.trace
        if not tr.enabled:
            return
        sb = self.scoreboard
        node = self.nic.nic_id
        m = tr.metrics
        m.gauge("residency.thrash_score", node=node, policy=self.policy.name).set(
            sb.thrash_score
        )
        m.gauge("residency.eviction_remap_ratio", node=node, policy=self.policy.name).set(
            sb.eviction_remap_ratio
        )
        m.gauge("residency.resident", node=node).set(
            self.nic.table.resident_count()
        )
        if flagged and not was_flagged:
            tr.emit("drv.thrash", node, policy=self.policy.name,
                    pressure=round(sb.recent_pressure(), 3),
                    thrash_score=round(sb.thrash_score, 3))

    def force_evict(self, ep: EndpointState) -> bool:
        """Forcibly unload a resident endpoint (chaos adversary: eviction
        under synthetic frame pressure, Section 4.1's replacement path
        without a competing endpoint).  Returns True if an unload started;
        traffic arriving meanwhile draws NOT_RESIDENT NACKs and the NI's
        make-resident request faults the endpoint back in.
        """
        if not ep.resident or ep.transition or ep.quiescing:
            return False
        if ep.residency is Residency.FREED:
            return False

        def evictor():
            yield from self._unload(ep)
            self.stats.evictions += 1
            self.scoreboard.record_eviction(ep, forced=True)
            if self.sim.trace.enabled:
                self.sim.trace.emit("ep.evict", self.nic.nic_id, ep=ep.ep_id,
                                    forced=True)
            # Queued work faults it straight back in, like an evicted
            # victim with a non-empty ring (Section 6.4's thrash).
            if ep.send_ring or ep.mr_requested:
                self.request_remap(ep)

        self.sim.spawn(evictor(), name=f"drv{self.nic.nic_id}.evict")
        return True

    def _unload(self, ep: EndpointState):
        """Quiesce and unload an endpoint (the NI handles the draining)."""
        ep.transition = True
        done = Event(self.sim)
        self.nic.driver_request(DriverOp("unload", ep, done, clock=self.clock.tick()))
        yield from self._kwait(self._remap_owner, done)
        ep.transition = False
        ep.evicted_at_ns = self.sim.now  # start of the bounce window
        self.stats.unloads += 1

    # ============================================================ proxy loop
    def _proxy_loop(self):
        """Consume NI->driver notifications (Section 4.2's proxy thread)."""
        cfg = self.cfg
        while True:
            note = yield from self._kwait(self._proxy_owner, self.nic.to_driver.get())
            self.clock.observe(note.clock)
            ep = self.endpoints.get(note.ep_id)
            if ep is None or ep.generation != note.generation or ep.residency is Residency.FREED:
                # Race resolved by generation + logical clock (§4.3): the
                # endpoint was freed while the notification was in flight.
                self.stats.stale_notifies += 1
                continue
            if note.kind == "make_resident":
                # Simulate the effect of a page fault with no faulting
                # instruction: a software-initiated fault (Section 4.2).
                self.stats.proxy_faults += 1
                if self.sim.trace.enabled:
                    self.sim.trace.emit("drv.proxy_fault", self.nic.nic_id, ep=ep.ep_id)
                yield from self.cpu.compute(us(cfg.proxy_fault_us), owner=self._proxy_owner, priority=1)
                if ep.residency is Residency.ONHOST_RO:
                    ep.residency = Residency.ONHOST_RW
                self.request_remap(ep)
            elif note.kind == "event":
                yield from self.cpu.compute(cfg.event_notify_ns, owner=self._proxy_owner, priority=1)
                self.stats.events_delivered += 1
                if ep.event_callback is not None:
                    ep.event_callback(note.detail)
