"""The endpoint segment driver (Section 4).

Endpoint management is cast as a virtual memory problem: endpoints are
memory-mapped objects whose backing store migrates between NI frames
(on-nic r/w), cacheable host memory (on-host r/w and r/o) and the swap
area (on-disk) — the four-state protocol of Figure 2.

Key mechanisms reproduced here:

* **Write faults** move an endpoint from on-host r/o to on-host r/w and
  *schedule* its re-mapping, letting the faulting thread continue
  immediately.  This asynchronous state was added for robustness under
  high re-mapping load (Section 6.4.1) and can be disabled
  (``enable_onhost_rw=False``) to reproduce the single-threaded-server
  collapse ablation.
* **A background remap kernel thread** services re-mapping requests:
  evicting a victim (random replacement, Section 4.1) when all frames are
  occupied, quiescing and unloading it through the NI, then loading the
  target endpoint.
* **A proxy kernel thread** performs operations on behalf of the NI: the
  arrival of a message for a non-resident endpoint generates a
  software-initiated page fault through the same driver mechanisms.
* **Logical clocks** order events initiated concurrently by the two
  agents, e.g. the driver freeing an endpoint while the NI asks for it to
  be made resident (a stale generation/clock is discarded).

Both kernel threads consume real host CPU, so heavy re-mapping competes
with application threads — the effect behind Figure 6's ST-8 behaviour.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from ..cluster.config import ClusterConfig
from ..hw.host import Cpu
from ..nic.driver_port import DriverOp, LamportClock
from ..nic.endpoint_state import EndpointState, Residency
from ..nic.firmware import Nic
from ..sim.core import Event, Simulator, us
from ..sim.resources import Gate
from ..sim.rng import RngStreams

__all__ = ["SegmentDriver", "DriverStats"]


@dataclass
class DriverStats:
    allocs: int = 0
    frees: int = 0
    write_faults: int = 0
    proxy_faults: int = 0
    remaps: int = 0
    evictions: int = 0
    loads: int = 0
    unloads: int = 0
    pageins: int = 0
    pageouts: int = 0
    events_delivered: int = 0
    stale_notifies: int = 0

    def remap_rate(self, elapsed_ns: int) -> float:
        """Re-mappings per second over ``elapsed_ns`` (cf. §6.4.1's 200-300/s)."""
        if elapsed_ns <= 0:
            return 0.0
        return self.remaps / (elapsed_ns / 1e9)


class SegmentDriver:
    """Per-node endpoint segment driver extending the VM system."""

    def __init__(
        self,
        sim: Simulator,
        cfg: ClusterConfig,
        nic: Nic,
        cpu: Cpu,
        rngs: Optional[RngStreams] = None,
    ):
        self.sim = sim
        self.cfg = cfg
        self.nic = nic
        self.cpu = cpu
        self.rng = (rngs or RngStreams(cfg.seed)).stream(f"driver{nic.nic_id}")
        self.clock = LamportClock()
        self.stats = DriverStats()

        self.endpoints: dict[int, EndpointState] = {}
        self._next_ep_id = 1
        self._remap_q: Deque[EndpointState] = deque()
        self._remap_gate = Gate(sim, name=f"drv{nic.nic_id}.remap")
        #: events triggered when an endpoint becomes resident (blocked
        #: writers under the enable_onhost_rw=False ablation, and am_wait)
        self._resident_waiters: dict[int, list[Event]] = {}

        #: distinct scheduler identities for the two kernel threads
        self._remap_owner = object()
        self._proxy_owner = object()
        self._remap_thread = sim.spawn(self._remap_loop(), name=f"drv{nic.nic_id}.remap")
        self._proxy_thread = sim.spawn(self._proxy_loop(), name=f"drv{nic.nic_id}.proxy")

    def _kwait(self, owner, waitable):
        """Kernel thread blocking wait: release the CPU lease first."""
        self.cpu.release_lease(owner)
        result = yield waitable
        return result

    # ===================================================== user-facing (gen)
    def alloc_endpoint(self, tag: int = 0, owner=None) -> "Generator":
        """Allocate an endpoint: segment creation + NI registration.

        Generator; returns the new :class:`EndpointState` (initially
        on-host r/o, per Figure 2).  ``owner`` is the calling thread: the
        system call runs in its scheduler context at kernel priority.
        """
        own = owner if owner is not None else object()
        yield from self.cpu.compute(us(self.cfg.ep_alloc_us), owner=own, priority=1)
        ep = EndpointState(
            self.nic.nic_id,
            self._next_ep_id,
            send_ring_depth=self.cfg.send_ring_depth,
            recv_queue_depth=self.cfg.recv_queue_depth,
            tag=tag,
        )
        self._next_ep_id += 1
        done = Event(self.sim)
        self.nic.driver_request(DriverOp("alloc", ep, done, clock=self.clock.tick()))
        yield from self._kwait(own, done)
        self.endpoints[ep.ep_id] = ep
        self.stats.allocs += 1
        return ep

    def free_endpoint(self, ep: EndpointState) -> "Generator":
        """Free an endpoint; synchronizes de-allocation with the NI (§4.2)."""
        if ep.residency is Residency.FREED:
            return
        if ep.resident or ep.quiescing:
            yield from self._unload(ep)
        ep.residency = Residency.FREED
        ep.generation += 1  # stale NI notifications now discarded
        done = Event(self.sim)
        self.nic.driver_request(DriverOp("free", ep, done, clock=self.clock.tick()))
        yield done
        self.endpoints.pop(ep.ep_id, None)
        self.stats.frees += 1

    def write_fault(self, ep: EndpointState, owner=None) -> "Generator":
        """Application wrote a non-resident endpoint (Figure 2 transitions).

        on-host r/o -> on-host r/w (+ schedule re-mapping); on-disk pages
        in first.  With ``enable_onhost_rw`` disabled the faulting thread
        blocks until the endpoint is resident (the original design whose
        collapse Section 6.4.1 describes).
        """
        if ep.residency in (Residency.ONNIC_RW, Residency.FREED):
            return
        if ep.residency is Residency.ONDISK:
            self.stats.pageins += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("ep.pagein", self.nic.nic_id, ep=ep.ep_id)
            yield self.sim.timeout(us(self.cfg.disk_pagein_us))
            ep.residency = Residency.ONHOST_RO
        if ep.residency is Residency.ONHOST_RO:
            self.stats.write_faults += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("ep.writefault", self.nic.nic_id, ep=ep.ep_id)
            own = owner if owner is not None else object()
            yield from self.cpu.compute(us(self.cfg.host_fault_us), owner=own, priority=1)
            if owner is None:
                self.cpu.release_lease(own)
            ep.residency = Residency.ONHOST_RW
        self.request_remap(ep)
        if not self.cfg.enable_onhost_rw:
            # Synchronous fault handling: suspend until resident.
            yield self.wait_resident(ep)

    def pageout(self, ep: EndpointState) -> None:
        """VM page reclamation: on-host r/o endpoints may go to disk."""
        if ep.residency is Residency.ONHOST_RO:
            ep.residency = Residency.ONDISK
            self.stats.pageouts += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("ep.pageout", self.nic.nic_id, ep=ep.ep_id)

    def wait_resident(self, ep: EndpointState) -> Event:
        """Event triggered when ``ep`` reaches on-nic r/w."""
        ev = Event(self.sim)
        if ep.resident:
            ev.trigger(None)
        else:
            self._resident_waiters.setdefault(ep.ep_id, []).append(ev)
        return ev

    # ========================================================== remap engine
    def request_remap(self, ep: EndpointState) -> None:
        """Queue an endpoint for the background remap thread."""
        if ep.resident or ep.transition or ep.residency is Residency.FREED:
            return
        if ep not in self._remap_q:
            self._remap_q.append(ep)
            self._remap_gate.set()

    def _remap_loop(self):
        cfg = self.cfg
        while True:
            if not self._remap_q:
                self._remap_gate.clear()
                yield from self._kwait(self._remap_owner, self._remap_gate.wait())
                # Periodic servicing (Section 4.2): the thread wakes and
                # scans; model the wake-to-scan delay.
                yield from self._kwait(self._remap_owner, self.sim.timeout(us(cfg.remap_scan_period_us)))
                continue
            ep = self._remap_q.popleft()
            if ep.resident or ep.transition or ep.residency is Residency.FREED:
                continue
            yield from self._make_resident(ep)

    def _make_resident(self, ep: EndpointState):
        """Bind an endpoint to an NI frame, evicting if necessary (§4.1)."""
        cfg = self.cfg
        ep.transition = True
        remap_start = self.sim.now
        yield from self.cpu.compute(us(cfg.remap_driver_overhead_us / 2), owner=self._remap_owner, priority=1)
        # off-CPU synchronization latency of the re-mapping (§4.2)
        yield from self._kwait(self._remap_owner, self.sim.timeout(us(cfg.remap_sync_latency_us)))
        frame = self.nic.free_frame_index()
        if frame is None:
            victim = self._choose_victim()
            if victim is None:
                # Everything is quiescing or in transition; retry shortly.
                ep.transition = False
                self.sim.schedule(us(cfg.remap_scan_period_us), self.request_remap, ep)
                return
            yield from self._unload(victim)
            self.stats.evictions += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("ep.evict", self.nic.nic_id, ep=victim.ep_id,
                                    for_ep=ep.ep_id)
            # A victim with queued work will fault back in (thrash is the
            # workload's problem, not the policy's -- Section 6.4).
            if victim.send_ring or victim.mr_requested:
                self.request_remap(victim)
            frame = self.nic.free_frame_index()
            if frame is None:
                ep.transition = False
                self.request_remap(ep)
                return
        if ep.residency is Residency.FREED:
            ep.transition = False
            return
        done = Event(self.sim)
        self.nic.driver_request(DriverOp("load", ep, done, clock=self.clock.tick(), frame=frame))
        yield from self._kwait(self._remap_owner, done)
        self.stats.loads += 1
        self.stats.remaps += 1
        yield from self.cpu.compute(us(cfg.remap_driver_overhead_us / 2), owner=self._remap_owner, priority=1)
        if self.sim.trace.enabled:
            self.sim.trace.emit("drv.remap", self.nic.nic_id, ep=ep.ep_id,
                                dur_ns=self.sim.now - remap_start)
        for ev in self._resident_waiters.pop(ep.ep_id, []):
            ev.trigger(None)

    def _choose_victim(self) -> Optional[EndpointState]:
        candidates = [
            cand
            for cand in self.nic.resident_endpoints()
            if not cand.quiescing and not cand.transition
        ]
        if not candidates:
            return None
        if self.cfg.replacement_policy == "lru":
            return min(candidates, key=lambda c: c.last_active_ns)
        return self.rng.choice(candidates)

    def force_evict(self, ep: EndpointState) -> bool:
        """Forcibly unload a resident endpoint (chaos adversary: eviction
        under synthetic frame pressure, Section 4.1's replacement path
        without a competing endpoint).  Returns True if an unload started;
        traffic arriving meanwhile draws NOT_RESIDENT NACKs and the NI's
        make-resident request faults the endpoint back in.
        """
        if not ep.resident or ep.transition or ep.quiescing:
            return False
        if ep.residency is Residency.FREED:
            return False

        def evictor():
            yield from self._unload(ep)
            self.stats.evictions += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("ep.evict", self.nic.nic_id, ep=ep.ep_id,
                                    forced=True)
            # Queued work faults it straight back in, like an evicted
            # victim with a non-empty ring (Section 6.4's thrash).
            if ep.send_ring or ep.mr_requested:
                self.request_remap(ep)

        self.sim.spawn(evictor(), name=f"drv{self.nic.nic_id}.evict")
        return True

    def _unload(self, ep: EndpointState):
        """Quiesce and unload an endpoint (the NI handles the draining)."""
        ep.transition = True
        done = Event(self.sim)
        self.nic.driver_request(DriverOp("unload", ep, done, clock=self.clock.tick()))
        yield from self._kwait(self._remap_owner, done)
        ep.transition = False
        self.stats.unloads += 1

    # ============================================================ proxy loop
    def _proxy_loop(self):
        """Consume NI->driver notifications (Section 4.2's proxy thread)."""
        cfg = self.cfg
        while True:
            note = yield from self._kwait(self._proxy_owner, self.nic.to_driver.get())
            self.clock.observe(note.clock)
            ep = self.endpoints.get(note.ep_id)
            if ep is None or ep.generation != note.generation or ep.residency is Residency.FREED:
                # Race resolved by generation + logical clock (§4.3): the
                # endpoint was freed while the notification was in flight.
                self.stats.stale_notifies += 1
                continue
            if note.kind == "make_resident":
                # Simulate the effect of a page fault with no faulting
                # instruction: a software-initiated fault (Section 4.2).
                self.stats.proxy_faults += 1
                if self.sim.trace.enabled:
                    self.sim.trace.emit("drv.proxy_fault", self.nic.nic_id, ep=ep.ep_id)
                yield from self.cpu.compute(us(cfg.proxy_fault_us), owner=self._proxy_owner, priority=1)
                if ep.residency is Residency.ONHOST_RO:
                    ep.residency = Residency.ONHOST_RW
                self.request_remap(ep)
            elif note.kind == "event":
                yield from self.cpu.compute(cfg.event_notify_ns, owner=self._proxy_owner, priority=1)
                self.stats.events_delivered += 1
                if ep.event_callback is not None:
                    ep.event_callback(note.detail)
