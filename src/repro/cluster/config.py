"""Cluster configuration: every calibration constant in one place.

The paper's testbed (Section 2): 100 x 167 MHz UltraSPARC-1, Solaris 2.6,
Myrinet with 25 switches / 185 links in a fat-tree-like topology, ~300 ns
cut-through switch latency, 1.2 Gb/s bidirectional ports, LANai 4.3 NICs
(37.5 MHz embedded CPU, 1 MB SRAM, send/receive network DMA engines and one
SBus DMA engine).  The constants below parameterize our discrete-event
models of those parts; defaults are calibrated so the microbenchmarks land
near the paper's measured numbers (Figures 3 and 4) and the macrobenchmark
*shapes* (Figures 5-7) follow.

Derived quantities (instruction times, byte times) are exposed as
properties so a config edit stays consistent everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..sim.core import NS_PER_S, us

__all__ = ["ClusterConfig", "DEFAULT_CONFIG"]


@dataclass
class ClusterConfig:
    # ------------------------------------------------------------- topology
    num_hosts: int = 100
    #: hosts per leaf switch in the fat-tree builder (Myrinet 8-port
    #: switches: 4 host ports + 4 up ports, paper-era NOW configuration)
    switch_radix: int = 8
    seed: int = 1999

    # ----------------------------------------------------------------- wire
    #: link bandwidth, bits per second per direction (1.2 Gb/s, Section 2)
    link_bandwidth_bps: float = 1.2e9
    #: per-switch cut-through latency (≈300 ns, Section 2)
    switch_latency_ns: int = 300
    #: cable propagation + NI-to-wire latency per hop endpoint
    cable_latency_ns: int = 40
    #: link-level packet header bytes (route, CRC, type, channel, seq,
    #: 32-bit timestamp -- Section 5.1)
    packet_header_bytes: int = 24
    #: maximum transmission unit for AM-II (64 max-size sends ≈ 4 ms, §5.2)
    mtu_bytes: int = 8192

    # ----------------------------------------------------------------- SBus
    #: asymmetric DMA rates (Figure 4): NI writing host memory tops out at
    #: 46.8 MB/s; NI reading host memory is a little faster.
    sbus_write_mb_s: float = 46.8
    sbus_read_mb_s: float = 52.0
    #: fixed startup cost per DMA transfer
    sbus_dma_startup_ns: int = 1_000
    #: host programmed-I/O cost per 64-byte line moved to/from NI SRAM
    pio_line_ns: int = 600

    # ---------------------------------------------------------------- LANai
    #: LANai 4.3 clock (37.5 MHz => 26.67 ns per instruction)
    lanai_mhz: float = 37.5
    #: instruction budgets for firmware operations (calibrated; Figure 3).
    #: The per-direction occupancy of a small message is ~6.4 us, so a
    #: request+reply pair costs ~12.8 us per NI -- which is simultaneously
    #: the measured LogP gap and the 78K msg/s server ceiling of Figure 6.
    #: Latency-path cost of pushing one small message to the wire:
    ni_send_instr: int = 94
    #: post-send bookkeeping (timer arm, ring advance) off the latency path:
    ni_send_post_instr: int = 82
    #: latency-path cost of receiving + delivering one small message:
    ni_recv_instr: int = 112
    #: post-receive bookkeeping plus ACK generation:
    ni_ack_gen_instr: int = 90
    #: processing an incoming ACK (timer cancel, descriptor free, credit):
    ni_ack_proc_instr: int = 64
    #: processing an incoming NACK:
    ni_nack_proc_instr: int = 70
    #: bulk receive completion (reprogramming the staging DMA, descriptor
    #: completion) charged while the SBus engine is still held — the
    #: per-packet overhead behind Figure 4's 93%-of-hardware ceiling
    ni_bulk_complete_instr: int = 210
    #: extra defensive error checking of virtualization (~1.1 us on L and g,
    #: Section 6.1); charged on the receive latency path.
    ni_errcheck_instr: int = 38
    #: per-descriptor cost of scanning an empty/ineligible endpoint
    ni_poll_ep_instr: int = 14
    #: NI receive staging FIFO (packets the receive DMA engine has pulled
    #: off the wire into SRAM awaiting firmware dispatch).  Generous: the
    #: engine drains the wire at link speed, and sender populations are
    #: credit-bounded; only a pathological flood fills it, at which point
    #: link-level backpressure holds packets in the network ("congestion
    #: rapidly spreads", Section 2)
    ni_rx_fifo_packets: int = 4096
    #: servicing one driver (system-endpoint) request
    ni_driver_op_instr: int = 220

    # ----------------------------------------------------- NI collectives
    #: firmware-forwarded collectives (barrier/broadcast/reduce, Yu et al.
    #: style): the host posts one descriptor to its local NI and the
    #: spanning tree is walked NI-to-NI without host round-trips.  Each
    #: firmware step charges an instruction budget against the NI's LogP
    #: occupancy, like every other firmware operation.
    #: Host-initiated collective setup (descriptor parse, tree lookup,
    #: first up/down packet launch):
    ni_coll_init_instr: int = 150
    #: forwarding one up-phase (towards-root) collective packet:
    ni_coll_up_instr: int = 120
    #: forwarding one down-phase (fan-out) collective packet:
    ni_coll_down_instr: int = 96
    #: folding one child contribution into the partial reduce value:
    ni_coll_combine_instr: int = 28
    #: which tree walks the collective: "host" (lib.mpi point-to-point
    #: trees, the baseline), "firmware" (k-ary NI spanning tree), or
    #: "express" (flat firmware tree whose fan-out rides the fabric's
    #: express multicast path)
    collective_strategy: str = "host"
    #: interior fan-out of the firmware spanning tree
    coll_fanout: int = 4
    #: host-side completion timeout: collective packets are fire-and-forget
    #: (no stop-and-wait channel), so a lost packet or crashed tree node
    #: surfaces as a clean CollectiveTimeout rather than a deadlock
    coll_timeout_ms: float = 50.0

    # --------------------------------------------------- first-gen AM (GAM)
    #: the single-endpoint baseline skips the transport protocol entirely;
    #: per-direction occupancy ~2.9 us, so request+reply gap ~5.8 us and
    #: the virtualization gap ratio lands at the paper's 2.21x.
    gam_ni_send_instr: int = 70
    gam_ni_send_post_instr: int = 39
    gam_ni_recv_instr: int = 85
    gam_ni_recv_post_instr: int = 24
    #: GAM fragments bulk transfers at 4 KB and does not pipeline descriptor
    #: processing with the store-and-forward staging delay (Section 6.1)
    gam_mtu_bytes: int = 4096
    gam_bulk_extra_us: float = 8.0

    # ----------------------------------------------------------------- host
    #: host CPU clock (167 MHz UltraSPARC-1)
    host_mhz: float = 167.0
    #: LogP send overhead Os: writing an AM-II message descriptor to a
    #: resident endpoint with PIO (bigger descriptors than GAM, Section 6.1)
    host_send_overhead_ns: int = 2_400
    gam_host_send_overhead_ns: int = 1_600
    #: LogP receive overhead Or: AM-II reads the whole descriptor with one
    #: VIS block load; GAM reads word-by-word (Section 6.1)
    host_recv_overhead_ns: int = 2_400
    gam_host_recv_overhead_ns: int = 3_200
    #: polling an endpoint that is resident (uncacheable NI SRAM read) vs
    #: non-resident (cacheable host memory) -- drives Figure 6 ST-96
    poll_resident_ns: int = 800
    poll_host_ns: int = 80
    #: writing a descriptor into a non-resident (on-host r/w) endpoint
    host_write_nonresident_ns: int = 300
    #: mutex acquire+release around shared-endpoint operations (§3.3)
    shared_ep_lock_ns: int = 400
    #: scheduler time slice (Solaris TS class, order 10 ms)
    cpu_quantum_ns: int = 10_000_000
    #: context switch cost
    context_switch_ns: int = 10_000
    #: thread wakeup via event mask notification (NI -> driver -> cv signal)
    event_notify_ns: int = 25_000
    #: page-fault trap cost (endpoint write fault, Section 4.2)
    host_fault_us: float = 18.0
    #: paging a swapped endpoint back from disk (on-disk state, Figure 2)
    disk_pagein_us: float = 6_000.0
    #: allocating an endpoint (segment creation, driver registration)
    ep_alloc_us: float = 250.0
    #: driver proxy thread handling one NI notification (software fault)
    proxy_fault_us: float = 15.0
    #: two-phase waiting: spin this long before blocking (implicit
    #: co-scheduling, Section 6.3)
    spin_before_block_us: float = 50.0

    # ------------------------------------------------------------ transport
    #: logical stop-and-wait flow-control channels per NI pair (Section
    #: 5.1).  With 32 channels a client can keep a full credit window in
    #: flight; one client's window fits the 32-deep receive queue, two
    #: mostly fit once pipeline population is subtracted, and a third
    #: pins the queue full and triggers persistent overrun NACKing --
    #: Figure 6b's 75K->60K crossover between 2 and 3 clients.
    channels_per_pair: int = 32
    #: base retransmission timeout; randomized exponential backoff doubles
    #: it (with jitter) per consecutive retransmission.  Static and
    #: conservative, like the paper's firmware (RTT estimation is listed
    #: as future work in its conclusions): it must exceed the worst-case
    #: acknowledgment latency when dozens of credit windows queue at one
    #: hot receiver (32 clients x 32 credits x 6.4 us/msg ~ 6.6 ms), or
    #: healthy transfers get duplicated.  Losses therefore recover in
    #: ~10-20 ms -- rare on Myrinet; all *fast* retry behaviour rides the
    #: explicit NACK paths below.  Explicit NACKs —
    #: not this timer — drive all fast-retry behaviour.
    retrans_timeout_us: float = 8_000.0
    #: fast retry after an explicit receive-queue-overrun NACK: the
    #: receiver told us the queue was full, so retry at drain speed
    overrun_retry_us: float = 30.0
    #: retry after a not-resident NACK: paced to the driver's re-mapping
    #: latency (the retry lands shortly after the endpoint is loaded)
    not_resident_retry_us: float = 800.0
    #: delay before an unbound message reacquires a channel (§5.1): prompt
    #: -- unbinding exists to free the channel, not to delay the message
    rebind_delay_us: float = 400.0

    # ------------------------------------------- future-work extensions
    #: the paper's conclusions propose round-trip-time estimation for
    #: scheduling retransmissions (the 32-bit reflected timestamps exist
    #: for this).  Off by default to match the published system.
    enable_rtt_estimation: bool = False
    #: minimum adaptive timeout when RTT estimation is on
    rtt_min_timeout_us: float = 60.0
    #: the conclusions also propose piggybacking acknowledgments on
    #: reverse-direction data packets to reduce network occupancy
    enable_piggyback_acks: bool = False
    #: how long a pending acknowledgment may wait for a ride
    piggyback_delay_us: float = 15.0
    retrans_backoff_max_us: float = 4_000.0
    #: extra retransmission-timeout allowance per payload byte (covers the
    #: staging DMAs and wire time of bulk packets so the timer does not
    #: fire while a healthy bulk transfer is still in flight)
    bulk_timeout_ns_per_byte: float = 150.0
    #: consecutive retransmissions before a message is unbound from its
    #: channel so the channel can be reused (Section 5.1)
    max_consecutive_retrans: int = 8
    #: total time without any acknowledgment before a message is returned
    #: to its sender as undeliverable (Section 3.2); kept short so tests run
    dead_timeout_ms: float = 50.0
    #: receiver-side duplicate-suppression depth per peer (Section 5.3's
    #: copy accounting): how many recently delivered message ids each
    #: :class:`~repro.nic.channels.RxPeerState` remembers.  A late copy of
    #: a message evicted from this window would be *re-delivered*, so the
    #: window must exceed the number of messages one peer can deliver
    #: while another of its messages is still unresolved — bounded by
    #: ``channels_per_pair`` outstanding plus the unbound population, far
    #: below the 512 default (tests/test_dup_window.py demonstrates both
    #: the overflow failure mode and the default's safety margin)
    dup_window: int = 512
    #: receive-queue depth per endpoint => user-level credits (Section 6.4)
    recv_queue_depth: int = 32
    send_ring_depth: int = 64
    #: user-level request credits per translation-table entry
    user_credits: int = 32
    #: payloads up to this size travel inside the descriptor (host PIO into
    #: the endpoint frame); larger ones take the bulk SBus-DMA path
    small_payload_max_bytes: int = 128

    # ----------------------------------------------------- service discipline
    #: weighted round-robin loiter budget (Section 5.2): at most 64 messages
    #: or ~4 ms on one endpoint before moving on
    wrr_max_msgs: int = 64
    wrr_max_ns: int = 4_000_000

    # ------------------------------------------------------------ residency
    #: endpoint frames on the NI (8 on LANai 4.3; 96 on newer boards)
    endpoint_frames: int = 8
    #: bytes per endpoint frame (64 KB reserved for 8 frames, Section 4.1)
    frame_bytes: int = 8192
    #: NI SRAM size (1 MB, Section 2)
    ni_sram_bytes: int = 1 << 20
    #: driver-side latencies of the residency protocol (Section 4): these
    #: give the paper's observed 200-300 remaps/s under thrash
    remap_quiesce_us: float = 900.0
    remap_transfer_us: float = 350.0
    #: CPU consumed by the driver per re-mapping (host cycles actually
    #: burned; modest, or the remap thread would starve the application)
    remap_driver_overhead_us: float = 400.0
    #: additional off-CPU latency per re-mapping (lock synchronization,
    #: interrupt round-trips); with the DMAs and quiesce this serializes
    #: the background thread to the paper's 200-300 remaps/s
    remap_sync_latency_us: float = 2_200.0
    #: background remap kernel thread service period
    remap_scan_period_us: float = 200.0
    #: endpoint replacement policy; the registry in
    #: :mod:`repro.osim.segdriver` defines the valid names — "random"
    #: (the paper's choice), "lru", "clock" (second chance), and
    #: "active-preference" (deprioritize endpoints with queued sends or a
    #: pending make-resident request)
    replacement_policy: str = "random"
    #: an endpoint loaded within this window is protected from eviction
    #: (unless every candidate is that fresh); 0 disables, reproducing
    #: the paper's unprotected replacement behaviour
    eviction_hysteresis_us: float = 0.0
    #: sliding window (in remaps) of the residency scoreboard's thrash
    #: detector
    thrash_window: int = 64
    #: an eviction counts as *bounced* (wasted — the Section 6.4 thrash
    #: signature) if the victim re-requests residency within this window
    thrash_bounce_us: float = 1000.0
    #: §6.4.1 ablation: with False, a write fault blocks the faulting
    #: thread synchronously until the endpoint is resident
    enable_onhost_rw: bool = True

    # ---------------------------------------------------------- express path
    #: elide the per-hop wormhole simulation for provably uncontended
    #: packets: when every link on a cached route is idle through the
    #: packet's whole occupancy window, tracing is off and no fault has
    #: fired, delivery collapses to one scheduled callback with identical
    #: timing, stats and link accounting (see repro.myrinet.network and
    #: DESIGN.md "The express path").  Purely an execution-speed knob —
    #: timelines are bit-identical either way, which repro.bench.perf's
    #: net_burst oracle enforces in CI.
    express_path: bool = True
    #: allow back-to-back same-route sends to *join* a committed express
    #: flight as train members (one pooled callback re-armed member to
    #: member) instead of revoking it and sending both down the wormhole
    #: path.  Same bit-identical-timeline contract as ``express_path``;
    #: off reproduces the old revoke-on-second-send behaviour.
    express_trains: bool = True
    #: quiet period after the most recent fault injection (or direct
    #: link/switch flip) before the express path re-arms, provided every
    #: link and switch is back up.  0 restores the old sticky behaviour:
    #: the first fault demotes the whole rest of the run.  Re-arming is
    #: sound because loss/corruption are applied before the express
    #: attempt and route caching degrades to per-send recomputation once
    #: the fabric has ever been reconfigured.
    express_reenable_quiet_us: float = 200.0

    # --------------------------------------------------------------- engine
    #: which event kernel executes the model — resolved through
    #: :mod:`repro.api.engine`.  "sequential" is the optimized
    #: single-heap kernel, "reference" the pre-optimization ordering
    #: oracle, and "sharded" the conservative-window PDES kernel of
    #: :mod:`repro.sim.sharded` (shard-partitionable scenarios only;
    #: see DESIGN.md §13).
    engine: str = "sequential"
    #: shards for the PDES kernel (1 = degenerate, bit-identical to the
    #: sequential kernel by construction)
    num_shards: int = 1
    #: sharded executor: "inprocess" (deterministic round-robin, the
    #: tests/debug scheduler) or "mp" (one ``multiprocessing`` worker
    #: per shard with batched cross-shard handoff)
    shard_workers: str = "inprocess"
    #: one-way latency of the inter-shard trunk (store-and-forward at
    #: the boundary NI plus the inter-rack spine crossing).  This is the
    #: conservative lookahead budget: no shard can affect another in
    #: less than this, so shards may run that far ahead unsynchronized.
    #: Must be at least the fat-tree minimum cross-shard latency
    #: (:meth:`shard_min_trunk_ns`) — the fabric cannot be beaten by
    #: its own trunk.
    shard_trunk_latency_us: float = 25.0
    #: conservative window size; 0 derives it as the full trunk latency
    #: (the maximum sound value).  Smaller windows are always sound and
    #: only add barriers.
    shard_lookahead_us: float = 0.0

    # --------------------------------------------------------------- faults
    #: transient packet loss probability (transmission errors are rare on
    #: Myrinet; raise this in robustness tests)
    packet_loss_prob: float = 0.0
    packet_corrupt_prob: float = 0.0

    # ------------------------------------------------------------- derived
    @property
    def lanai_instr_ns(self) -> float:
        """Nanoseconds per LANai instruction."""
        return 1_000.0 / self.lanai_mhz

    def lanai_ns(self, instructions: int) -> int:
        """Time for an instruction budget on the LANai, in ns."""
        return round(instructions * self.lanai_instr_ns)

    @property
    def link_byte_ns(self) -> float:
        """Wire time per byte on one link."""
        return 8.0 * NS_PER_S / self.link_bandwidth_bps / 1.0

    def wire_ns(self, nbytes: int) -> int:
        """Serialization time of ``nbytes`` on one link."""
        return round(nbytes * self.link_byte_ns)

    def sbus_write_ns(self, nbytes: int) -> int:
        """NI -> host-memory DMA time (the 46.8 MB/s Figure 4 ceiling)."""
        return self.sbus_dma_startup_ns + round(nbytes * 1_000.0 / self.sbus_write_mb_s)

    def sbus_read_ns(self, nbytes: int) -> int:
        """Host-memory -> NI DMA time."""
        return self.sbus_dma_startup_ns + round(nbytes * 1_000.0 / self.sbus_read_mb_s)

    def pio_ns(self, nbytes: int) -> int:
        """Host programmed-I/O time for ``nbytes`` (64-byte lines)."""
        lines = max(1, (nbytes + 63) // 64)
        return lines * self.pio_line_ns

    @property
    def shard_trunk_base_ns(self) -> int:
        """One-way inter-shard trunk latency in ns (before wire time)."""
        return us(self.shard_trunk_latency_us)

    @property
    def shard_lookahead_ns(self) -> int:
        """Conservative window size in ns (derived when unset).

        A shard may execute events up to ``t_min + lookahead - 1``
        without hearing from its peers because every cross-shard record
        takes at least the trunk base latency to arrive.
        """
        return us(self.shard_lookahead_us) or self.shard_trunk_base_ns

    def shard_min_trunk_ns(self) -> int:
        """Fat-tree floor for cross-shard latency: host → leaf → spine →
        leaf → host, four store-and-forward hop endpoints.  The trunk
        models a *longer* path than any intra-shard route, so its base
        latency must not undercut this."""
        hop = (self.switch_latency_ns + self.cable_latency_ns
               + self.wire_ns(self.packet_header_bytes))
        return 4 * hop

    @property
    def retrans_timeout_ns(self) -> int:
        return us(self.retrans_timeout_us)

    @property
    def dead_timeout_ns(self) -> int:
        return round(self.dead_timeout_ms * 1_000_000)

    def with_(self, **kwargs) -> "ClusterConfig":
        """Return a copy with fields replaced (convenience for sweeps)."""
        return replace(self, **kwargs)

    def validate(self) -> None:
        """Sanity-check invariants; raises ValueError on nonsense."""
        if self.num_hosts < 1:
            raise ValueError("num_hosts must be >= 1")
        if self.mtu_bytes <= self.packet_header_bytes:
            raise ValueError("mtu must exceed header size")
        if self.endpoint_frames < 1:
            raise ValueError("need at least one endpoint frame")
        if self.endpoint_frames * self.frame_bytes > self.ni_sram_bytes:
            raise ValueError("endpoint frames exceed NI SRAM")
        if self.recv_queue_depth < 1 or self.send_ring_depth < 1:
            raise ValueError("queue depths must be positive")
        if self.user_credits > self.recv_queue_depth:
            raise ValueError(
                "user credits must not exceed the receive queue depth "
                "(credits exist to prevent queue overrun, Section 6.4)"
            )
        # The policy registry lives with the driver; import lazily so the
        # config module (imported by the driver) stays cycle-free.
        from ..osim.segdriver import REPLACEMENT_POLICIES

        if self.replacement_policy not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"unknown replacement policy {self.replacement_policy!r}; "
                f"registered: {sorted(REPLACEMENT_POLICIES)}"
            )
        if self.eviction_hysteresis_us < 0:
            raise ValueError("eviction_hysteresis_us must be >= 0")
        if self.express_reenable_quiet_us < 0:
            raise ValueError("express_reenable_quiet_us must be >= 0")
        if self.thrash_window < 1:
            raise ValueError("thrash_window must be >= 1")
        if self.thrash_bounce_us < 0:
            raise ValueError("thrash_bounce_us must be >= 0")
        if not (0.0 <= self.packet_loss_prob <= 1.0):
            raise ValueError("packet_loss_prob must be a probability")
        if not (0.0 <= self.packet_corrupt_prob <= 1.0):
            raise ValueError("packet_corrupt_prob must be a probability")
        if self.channels_per_pair < 1:
            raise ValueError("need at least one flow-control channel")
        if self.dup_window < 1:
            raise ValueError("duplicate-suppression window must be positive")
        if self.collective_strategy not in ("host", "firmware", "express"):
            raise ValueError(
                f"unknown collective strategy {self.collective_strategy!r}; "
                "choose from 'host', 'firmware', 'express'"
            )
        if self.coll_fanout < 2:
            raise ValueError("coll_fanout must be >= 2")
        if self.coll_timeout_ms <= 0:
            raise ValueError("coll_timeout_ms must be positive")
        # Lazy: the engine registry imports this module.
        from ..api.engine import ENGINE_NAMES

        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; registered: {sorted(ENGINE_NAMES)}"
            )
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.shard_workers not in ("inprocess", "mp"):
            raise ValueError("shard_workers must be 'inprocess' or 'mp'")
        if self.shard_trunk_base_ns < self.shard_min_trunk_ns():
            raise ValueError(
                "shard_trunk_latency_us undercuts the fat-tree minimum "
                f"cross-shard latency ({self.shard_min_trunk_ns()} ns); "
                "the trunk cannot be faster than the fabric it bypasses"
            )
        if self.shard_lookahead_us < 0:
            raise ValueError("shard_lookahead_us must be >= 0")
        if self.shard_lookahead_ns > self.shard_trunk_base_ns:
            raise ValueError(
                "shard_lookahead_us must not exceed shard_trunk_latency_us: "
                "the window is only conservative if no cross-shard record "
                "can arrive inside it"
            )


DEFAULT_CONFIG = ClusterConfig()
