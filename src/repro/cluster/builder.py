"""Cluster assembly: wire hosts, NICs, drivers and the fabric together.

``Cluster(cfg)`` builds the whole machine of Section 2 — one
:class:`Node` (CPU + NIC + segment driver) per host, a fat-tree
:class:`~repro.myrinet.network.Network`, and a fault injector — on a
single deterministic simulator.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..hw.host import Cpu
from ..myrinet.fault import FaultInjector
from ..myrinet.network import Network
from ..nic.firmware import Nic
from ..osim.process import UserProcess
from ..osim.segdriver import SegmentDriver
from ..sim.core import Simulator
from ..sim.rng import RngStreams
from .config import ClusterConfig

__all__ = ["Node", "Cluster"]


class Node:
    """One workstation: CPU, network interface, and segment driver."""

    def __init__(self, sim: Simulator, cfg: ClusterConfig, node_id: int, network: Network, rngs: RngStreams):
        self.sim = sim
        self.cfg = cfg
        self.node_id = node_id
        self.cpu = Cpu(sim, cfg.cpu_quantum_ns, cfg.context_switch_ns, name=f"cpu{node_id}", node_id=node_id)
        self.nic = Nic(sim, cfg, node_id, network, rngs)
        self.driver = SegmentDriver(sim, cfg, self.nic, self.cpu, rngs)
        self.processes: list[UserProcess] = []

    def start_process(self, name: str = "") -> UserProcess:
        proc = UserProcess(self, name=name or f"n{self.node_id}.p{len(self.processes)}")
        self.processes.append(proc)
        return proc

    def __repr__(self) -> str:
        return f"<Node {self.node_id}>"


class Cluster:
    """The full machine: nodes + fabric + faults, on one simulator."""

    def __init__(
        self,
        cfg: Optional[ClusterConfig] = None,
        sim_factory: Optional[Callable[[], Simulator]] = None,
        *,
        engine=None,
        **overrides,
    ):
        if cfg is None:
            cfg = ClusterConfig()
        if overrides:
            cfg = cfg.with_(**overrides)
        cfg.validate()
        self.cfg = cfg
        #: kernel selection goes through :mod:`repro.api.engine` — pass
        #: ``engine=`` (a name, an Engine, or None to consult
        #: ``cfg.engine``).  A raw ``sim_factory`` callable is still
        #: honored for in-tree harnesses that drive a specific kernel
        #: class (e.g. the perf harness's reference oracle); everything
        #: else is kernel-agnostic.
        from ..api.engine import resolve_engine, resolve_kernel

        self.engine = (engine if not isinstance(engine, (str, type(None)))
                       else resolve_engine(engine, cfg))
        self.sim = resolve_kernel(engine, cfg, sim_factory)()
        self.rngs = RngStreams(cfg.seed)
        self.network = Network(self.sim, cfg, self.rngs)
        self.nodes = [Node(self.sim, cfg, i, self.network, self.rngs) for i in range(cfg.num_hosts)]
        self.faults = FaultInjector(self.sim, self.network)

    def node(self, i: int) -> Node:
        return self.nodes[i]

    def enable_tracing(self, capacity: Optional[int] = None):
        """Attach a :class:`repro.obs.TraceBus` to this cluster's simulator.

        Observer-only: enabling tracing never changes simulated time or
        event order.  Returns the bus (also reachable as ``cluster.sim.trace``).
        """
        from ..obs import TraceBus

        return TraceBus.attach(self.sim, capacity=capacity)

    def run(self, until: Optional[int] = None) -> int:
        return self.sim.run(until=until)

    def run_process(self, gen: Generator, name: str = "", until: Optional[int] = None):
        return self.sim.run_process(gen, name=name, until=until)

    def crash_node(self, i: int) -> None:
        self.nodes[i].nic.crash()
        self.faults.crash_node(i)

    def reboot_node(self, i: int) -> None:
        self.faults.reboot_node(i)
        self.nodes[i].nic.reboot()
