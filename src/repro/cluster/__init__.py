"""Cluster configuration and assembly.

``Cluster``/``Node`` are imported lazily: ``builder`` pulls in the whole
stack (NIC, driver, network), and deep modules import ``ClusterConfig``
from here — eager import would be a package cycle.
"""

from .config import DEFAULT_CONFIG, ClusterConfig

__all__ = ["Cluster", "ClusterConfig", "DEFAULT_CONFIG", "Node"]


def __getattr__(name):
    if name in ("Cluster", "Node"):
        from . import builder

        return getattr(builder, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
