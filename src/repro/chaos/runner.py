"""Deterministic chaos-run execution and reporting.

``run_chaos(scenario, workload)`` builds a fresh cluster, attaches the
trace bus, resolves the scenario's abstract fault actions against the
live cluster/workload, drives the traffic to quiescence, and audits the
timeline with :mod:`repro.chaos.invariants`.

Determinism is the load-bearing property: the same ``(seed, scenario,
workload)`` must produce a bit-identical event timeline on every run so
a chaos failure found in CI replays locally.  Two things make that true:

* every run gets a *fresh* :class:`~repro.cluster.builder.Cluster` with
  its own seeded RNG streams, and
* the module-global id counters (message ids, packet transmit ids, bulk
  transfer ids, thread ids) are rewound first — they are cosmetic
  labels, but they appear in trace events, so a previous run in the same
  process would otherwise shift the digest.

The timeline digest is a SHA-256 over the normalized event lines;
``tests/test_chaos_determinism.py`` pins the bit-identical guarantee.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Generator, Optional

from ..cluster.builder import Cluster
from ..cluster.config import ClusterConfig
from ..sim.core import AllOf, SimError
from .invariants import (DeliveryChecker, Violation, check_drop_accounting,
                         check_quiescence)
from .schedule import FaultAction, Scenario
from .workloads import ChaosWorkload, make_workload

__all__ = ["ChaosReport", "chaos_config", "run_chaos", "reset_global_ids",
           "timeline_digest"]


def reset_global_ids() -> None:
    """Rewind the cosmetic module-global id counters (see module doc)."""
    from ..am import endpoint as am_endpoint
    from ..myrinet import packet as myrinet_packet
    from ..nic import message as nic_message
    from ..osim import threads as osim_threads

    nic_message._msg_ids = itertools.count(1)
    myrinet_packet._packet_ids = itertools.count(1)
    am_endpoint._transfer_ids = itertools.count(1)
    osim_threads._thread_ids = itertools.count(1)


def chaos_config(seed: int, num_hosts: int = 8, **overrides) -> ClusterConfig:
    """A cluster sized and timed for fast chaos runs.

    Transport timeouts are compressed (dead timeout 6 ms instead of
    50 ms) so scenarios heal and settle within tens of simulated
    milliseconds; the protocol behaviour under test is unchanged.
    """
    base = dict(
        num_hosts=num_hosts,
        seed=seed,
        dead_timeout_ms=6.0,
        retrans_timeout_us=500.0,
        retrans_backoff_max_us=1_000.0,
        rebind_delay_us=150.0,
        not_resident_retry_us=300.0,
        ep_alloc_us=50.0,
        spin_before_block_us=5.0,
    )
    base.update(overrides)
    return ClusterConfig().with_(**base)


def timeline_digest(events) -> str:
    """SHA-256 over normalized event lines — the bit-identity witness."""
    h = hashlib.sha256()
    for ev in events:
        args = sorted(ev.args.items()) if ev.args else []
        h.update(f"{ev.ts}|{ev.kind}|{ev.node}|{args!r}\n".encode())
    return h.hexdigest()


@dataclass
class ChaosReport:
    """Everything one chaos run produced."""

    scenario: str
    profile: str
    workload: str
    seed: int
    sim_ns: int = 0
    events: int = 0
    digest: str = ""
    accepted: int = 0
    delivered: int = 0
    returned: int = 0
    duplicates: int = 0
    faults_injected: int = 0
    violations: list[Violation] = field(default_factory=list)
    #: delivery rate inside crash-outage windows vs outside (msgs/s)
    goodput_outage_msg_s: Optional[float] = None
    goodput_clear_msg_s: float = 0.0
    #: worst time from a reboot to the node's next delivery involvement
    recovery_ns: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        rec = (f" recovery={self.recovery_ns / 1e6:.2f}ms"
               if self.recovery_ns is not None else "")
        return (f"{self.scenario}[{self.profile}]/{self.workload} seed={self.seed}: "
                f"{status}; {self.accepted} accepted -> {self.delivered} delivered "
                f"+ {self.returned} returned, {self.faults_injected} faults, "
                f"{self.events} events{rec}")


def _resolve_action(action: FaultAction, cluster: Cluster,
                    workload: ChaosWorkload) -> Optional[tuple]:
    """Map an abstract action to ``(callable, args)`` on the live objects."""
    faults = cluster.faults
    kind, p = action.kind, action.params
    if kind == "set_loss":
        return faults.set_loss, p
    if kind == "set_corruption":
        return faults.set_corruption, p
    if kind == "spine":
        return faults.set_spine, p
    if kind == "hostlink":
        return (faults.set_host_link, p) if p[0] < cluster.cfg.num_hosts else None
    if kind == "crash":
        return (cluster.crash_node, p) if p[0] < cluster.cfg.num_hosts else None
    if kind == "reboot":
        return (cluster.reboot_node, p) if p[0] < cluster.cfg.num_hosts else None
    if kind in ("kill_proc", "pause_proc", "resume_proc"):
        if p[0] >= len(workload.procs):
            return None
        proc = workload.procs[p[0]]
        fn = {"kill_proc": faults.kill_process,
              "pause_proc": faults.pause_process,
              "resume_proc": faults.resume_process}[kind]
        return fn, (proc,)
    if kind == "evict_ep":
        if not workload.eviction_targets:
            return None
        node, ep = workload.eviction_targets[p[0] % len(workload.eviction_targets)]
        return faults.evict_endpoint, (node, ep)
    raise ValueError(f"unresolvable action {action}")


def _availability(checker: DeliveryChecker, events,
                  report: ChaosReport) -> None:
    """Goodput inside/outside crash outages + worst recovery time."""
    outages: list[tuple[int, int, int]] = []  # (node, crash_ts, reboot_ts)
    open_crash: dict[int, int] = {}
    end_ts = events[-1].ts if events else 0
    for ev in events:
        if ev.kind != "fault.inject":
            continue
        if ev.get("action") == "crash":
            open_crash[ev.node] = ev.ts
        elif ev.get("action") == "reboot" and ev.node in open_crash:
            outages.append((ev.node, open_crash.pop(ev.node), ev.ts))
    outage_ns = sum(t1 - t0 for _, t0, t1 in outages)
    clear_ns = max(1, end_ts - outage_ns)
    in_outage = clear = 0
    for dels in checker.deliveries.values():
        for _, ts, _, _ in dels:
            if any(t0 <= ts <= t1 for _, t0, t1 in outages):
                in_outage += 1
            else:
                clear += 1
    report.goodput_clear_msg_s = clear * 1e9 / clear_ns
    if outage_ns:
        report.goodput_outage_msg_s = in_outage * 1e9 / outage_ns
    worst: Optional[int] = None
    for node, _, reboot_ts in outages:
        first_after: Optional[int] = None
        for dels in checker.deliveries.values():
            for _, ts, receiver, sender in dels:
                if ts >= reboot_ts and node in (receiver, sender):
                    if first_after is None or ts < first_after:
                        first_after = ts
        if first_after is not None:
            rec = first_after - reboot_ts
            if worst is None or rec > worst:
                worst = rec
    report.recovery_ns = worst


def run_chaos(
    scenario: Scenario,
    workload: str | ChaosWorkload = "pairwise",
    *,
    cfg: Optional[ClusterConfig] = None,
    num_hosts: int = 8,
    trace_path: Optional[str] = None,
    keep: bool = False,
    engine=None,
    sim_factory=None,
    **workload_kwargs,
) -> ChaosReport:
    """Execute one (scenario, workload) chaos run and audit it.

    ``trace_path``: on invariant failure, export the timeline there as
    Chrome trace JSON (always exported when ``trace_path`` is set and
    the run fails; never otherwise).  ``keep=True`` attaches the live
    ``cluster``/``bus``/``workload`` to the report for tests.
    ``engine`` selects the event kernel through
    :func:`repro.api.engine.resolve_engine`; ``sim_factory`` still
    swaps in a raw kernel class (the perf harness runs the same chaos
    scenario on the optimized and reference kernels and compares
    digests).
    """
    scenario.validate()
    reset_global_ids()
    if cfg is None:
        cfg = chaos_config(scenario.seed, num_hosts=num_hosts)
    cluster = Cluster(cfg, sim_factory=sim_factory, engine=engine)
    bus = cluster.enable_tracing()
    wl = workload if isinstance(workload, ChaosWorkload) \
        else make_workload(workload, **workload_kwargs)
    report = ChaosReport(scenario=scenario.name, profile=scenario.profile,
                         workload=wl.name, seed=scenario.seed)

    sim = cluster.sim
    sim.run_process(wl.build(cluster), name="chaos.setup")
    wl.give_up_ns = 3 * cfg.dead_timeout_ns

    t0 = sim.now
    for action in scenario.actions:
        resolved = _resolve_action(action, cluster, wl)
        if resolved is not None:
            fn, args = resolved
            cluster.faults.at(t0 + action.at_ns, fn, *args)
    wl.start()

    drain_ns = 2 * cfg.dead_timeout_ns + 1_000_000
    tail_ns = 200_000

    def supervise() -> Generator:
        yield wl.quota_done()
        t_end = t0 + scenario.duration_ns
        if sim.now < t_end:
            yield sim.timeout(t_end - sim.now)
        yield sim.timeout(drain_ns)
        wl.stop_receivers()
        pending = [t.done for t in wl.all_threads]
        if pending:
            yield AllOf(sim, pending)
        yield sim.timeout(tail_ns)

    hard_deadline = (t0 + scenario.duration_ns + wl.give_up_ns + drain_ns
                     + 5 * cfg.dead_timeout_ns + 5_000_000)
    try:
        sim.run_process(supervise(), name="chaos.supervisor", until=hard_deadline)
    except SimError:
        report.violations.append(Violation(
            "Q.hang", f"run did not reach quiescence by t={hard_deadline}ns "
            "(supervisor stuck: blocked thread or unresolved traffic)",
            ts=sim.now))

    events = bus.events
    checker = DeliveryChecker(events)
    report.violations += checker.check()
    report.violations += check_drop_accounting(cluster.network, events)
    report.violations += check_quiescence(cluster, wl)
    bus.publish_network(cluster.network)

    report.sim_ns = sim.now
    report.events = len(events)
    report.digest = timeline_digest(events)
    report.accepted = len(checker.accepted)
    report.delivered = sum(1 for d in checker.deliveries.values() if d)
    report.returned = sum(1 for r in checker.returns.values() if r)
    report.duplicates = sum(1 for d in checker.deliveries.values() if len(d) > 1)
    report.faults_injected = sum(1 for ev in events if ev.kind == "fault.inject")
    _availability(checker, events, report)

    if trace_path and not report.ok:
        from ..obs.export import write_chrome_trace

        write_chrome_trace(bus, trace_path,
                           label=f"chaos:{scenario.name}:{wl.name}:{scenario.seed}")
    if keep:
        report.cluster = cluster  # type: ignore[attr-defined]
        report.bus = bus  # type: ignore[attr-defined]
        report.workload = wl  # type: ignore[attr-defined]
    bus.detach()
    return report
