"""Trace-driven checking of the delivery contract (Section 3.2).

The checker consumes the :class:`repro.obs.TraceBus` timeline of a chaos
run and audits the promises the transport makes to applications:

**I1 — resolution.**  Every message the AM layer accepted (an
``am.request`` or ``am.reply`` event) is eventually resolved: DELIVERED
(``msg.deliver``) or RETURNED to its sender with a non-empty reason
(``msg.return``).  Nothing may vanish.  A message may be *both*
delivered and returned only in the ways a timeout-based return scheme
genuinely permits — the acknowledgment was lost for the whole dead
timeout (reason ``timeout``), the sender rebooted while the ACK was in
flight (``reboot``), or the receiving endpoint was freed between the
delivery and a retransmission (``NO_ENDPOINT``).

**I2 — exactly-once.**  No message is delivered twice.  The one excuse
is a receiver crash/reboot between the two deliveries: the rebooted NI's
duplicate-suppression state is gone by design, and the sender-side
retransmission that follows re-delivers (at-least-once across a crash is
the documented contract, §5.1).  A duplicate *without* an interposed
crash — e.g. a too-small ``dup_window`` letting a late copy past the
copy accounting — is a violation (see ``tests/test_dup_window.py``).

**I3 — per-channel order.**  Each stop-and-wait channel delivers the
messages it carried in the order they were bound to it: sorting a
channel's deliveries by delivery time must also sort them by the time of
each message's last transmission on that channel.  Messages whose
lifetime spans a crash/reboot of either end are skipped (channel state
was reset under them).

**Quiescence.**  Inspected directly on the cluster object at scenario
end: every NI alive with all channels idle and disarmed, no unbound
messages awaiting rebind, no receive-side staging or bulk DMA in flight,
and every registered endpoint's rings and queues empty.  A paused or
unfinished workload thread is likewise a violation — the run must end
with nothing armed, nothing blocked, nothing in flight.

**Drop accounting.**  Every fabric drop the network counted
(``NetworkStats.dropped_{loss,linkdown,noroute,dead_nic}``) must have a
matching ``net.drop`` trace event with that reason, and vice versa.
Chaos runs always trace, so a mismatch means a drop site bumped a
counter without emitting (or emitted without counting) — the kind of
silent-loss bug the delivery contract exists to rule out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:
    from ..cluster.builder import Cluster
    from ..obs.events import TraceEvent
    from .workloads import ChaosWorkload

__all__ = ["Violation", "DeliveryChecker", "check_drop_accounting",
           "check_quiescence", "IsolationSLO", "check_isolation"]

#: the fabric's drop-reason vocabulary (NetworkStats.dropped_* fields)
_DROP_REASONS = ("loss", "linkdown", "noroute", "dead_nic")

#: msg.return reasons that may coexist with a delivery (see module doc)
_DELIVERED_AND_RETURNED_OK = {"timeout", "reboot", "NO_ENDPOINT"}

#: fault actions that reset transport state on the affected node
_RESET_ACTIONS = {"crash", "reboot"}


@dataclass
class Violation:
    invariant: str  # "I1.unresolved" | "I2.duplicate" | "I3.order" | "Q.*"
    detail: str
    msg_id: Optional[int] = None
    ts: Optional[int] = None

    def __str__(self) -> str:
        at = f" @{self.ts}ns" if self.ts is not None else ""
        who = f" msg={self.msg_id}" if self.msg_id is not None else ""
        return f"[{self.invariant}]{who}{at} {self.detail}"


class DeliveryChecker:
    """Audits one run's event timeline against I1–I3."""

    def __init__(self, events: Iterable["TraceEvent"]):
        self.events = list(events)
        # msg_id -> (first index, ts, node) of acceptance
        self.accepted: dict[int, tuple[int, int, int]] = {}
        # msg_id -> [(index, ts, receiver, sender)]
        self.deliveries: dict[int, list[tuple[int, int, int, int]]] = {}
        # msg_id -> [(index, ts, sender, reason)]
        self.returns: dict[int, list[tuple[int, int, int, str]]] = {}
        # msg_id -> [(index, ts, sender_node, channel)]
        self.txs: dict[int, list[tuple[int, int, int, int]]] = {}
        # msg_id -> [(index, ts, receiver_node, channel)]
        self.rxs: dict[int, list[tuple[int, int, int, int]]] = {}
        # node -> [ts of crash/reboot faults]
        self.resets: dict[int, list[int]] = {}
        self._index()

    def _index(self) -> None:
        for i, ev in enumerate(self.events):
            kind = ev.kind
            if kind in ("am.request", "am.reply"):
                m = ev.get("msg")
                self.accepted.setdefault(m, (i, ev.ts, ev.node))
            elif kind == "msg.deliver":
                self.deliveries.setdefault(ev.get("msg"), []).append(
                    (i, ev.ts, ev.node, ev.get("peer")))
            elif kind == "msg.return":
                self.returns.setdefault(ev.get("msg"), []).append(
                    (i, ev.ts, ev.node, ev.get("reason")))
            elif kind in ("pkt.tx", "pkt.retransmit"):
                self.txs.setdefault(ev.get("msg"), []).append(
                    (i, ev.ts, ev.node, ev.get("ch")))
            elif kind == "pkt.rx":
                self.rxs.setdefault(ev.get("msg"), []).append(
                    (i, ev.ts, ev.node, ev.get("ch")))
            elif kind == "fault.inject" and ev.get("action") in _RESET_ACTIONS:
                self.resets.setdefault(ev.node, []).append(ev.ts)

    # ------------------------------------------------------------- helpers
    def _reset_between(self, node: int, t0: int, t1: int) -> bool:
        return any(t0 <= t <= t1 for t in self.resets.get(node, ()))

    def _spans_reset(self, msg_id: int, sender: int, receiver: int,
                     deliver_ts: int) -> bool:
        txs = self.txs.get(msg_id)
        t0 = txs[0][1] if txs else deliver_ts
        return (self._reset_between(sender, t0, deliver_ts)
                or self._reset_between(receiver, t0, deliver_ts))

    # -------------------------------------------------------------- checks
    def check(self) -> list[Violation]:
        return self.check_resolution() + self.check_exactly_once() + self.check_order()

    def check_resolution(self) -> list[Violation]:
        """I1: accepted => delivered or returned-with-reason."""
        out: list[Violation] = []
        for m, (_, ts, node) in sorted(self.accepted.items()):
            delivered = m in self.deliveries
            returned = self.returns.get(m)
            if not delivered and not returned:
                out.append(Violation("I1.unresolved", f"accepted on node {node}, "
                                     "never delivered nor returned", m, ts))
                continue
            for _, rts, rnode, reason in returned or ():
                if not reason:
                    out.append(Violation("I1.noreason",
                                         f"returned on node {rnode} without a reason",
                                         m, rts))
                elif delivered and reason not in _DELIVERED_AND_RETURNED_OK:
                    out.append(Violation(
                        "I1.contradiction",
                        f"delivered AND returned with reason {reason!r} "
                        "(only lost-ACK reasons may coexist with a delivery)",
                        m, rts))
        return out

    def check_exactly_once(self) -> list[Violation]:
        """I2: duplicate delivery only across a receiver crash/reboot."""
        out: list[Violation] = []
        for m, dels in sorted(self.deliveries.items()):
            if len(dels) <= 1:
                continue
            for (_, t0, node0, _), (_, t1, node1, _) in zip(dels, dels[1:]):
                if self._reset_between(node1, t0, t1) or node0 != node1:
                    continue  # receiver state legitimately reset (or moved)
                out.append(Violation(
                    "I2.duplicate",
                    f"delivered {len(dels)}x on node {node1} with no "
                    f"crash/reboot between t={t0} and t={t1} "
                    "(duplicate-suppression window breached?)", m, t1))
                break
        return out

    def check_order(self) -> list[Violation]:
        """I3: per (sender, receiver, channel), delivery order == bind order."""
        out: list[Violation] = []
        # (sender, receiver, ch) -> list of (deliver_index, bind_index, msg)
        lanes: dict[tuple[int, int, int], list[tuple[int, int, int]]] = {}
        for m, dels in self.deliveries.items():
            d_idx, d_ts, receiver, sender = dels[0]  # first delivery only
            if self._spans_reset(m, sender, receiver, d_ts):
                continue
            ch = None
            for (i, _, node, c) in self.rxs.get(m, ()):
                if node == receiver and i < d_idx:
                    ch = c
            if ch is None:
                continue
            bind_idx = None
            for (i, _, node, c) in self.txs.get(m, ()):
                if node == sender and c == ch and i < d_idx:
                    bind_idx = i
            if bind_idx is None:
                continue
            lanes.setdefault((sender, receiver, ch), []).append((d_idx, bind_idx, m))
        for (sender, receiver, ch), entries in sorted(lanes.items()):
            entries.sort()
            for (_, b0, m0), (d1, b1, m1) in zip(entries, entries[1:]):
                if b1 < b0:
                    out.append(Violation(
                        "I3.order",
                        f"channel {sender}->{receiver}#{ch} delivered msg {m1} "
                        f"(bound earlier) after msg {m0} (bound later)",
                        m1, self.events[d1].ts))
        return out


def check_drop_accounting(network, events: Iterable["TraceEvent"]) -> list[Violation]:
    """Per-reason ``net.drop`` trace counts must equal NetworkStats counters.

    Requires the run to have been fully traced (chaos runs always are);
    with tracing off the emits are elided by design and this check does
    not apply.
    """
    out: list[Violation] = []
    traced = {r: 0 for r in _DROP_REASONS}
    for ev in events:
        if ev.kind != "net.drop":
            continue
        reason = ev.get("reason")
        if reason in traced:
            traced[reason] += 1
        else:
            out.append(Violation(
                "D.reason", f"net.drop event with unclassified reason {reason!r}",
                msg_id=ev.get("msg"), ts=ev.ts))
    for reason in _DROP_REASONS:
        counted = getattr(network.stats, f"dropped_{reason}")
        if counted != traced[reason]:
            out.append(Violation(
                "D.mismatch",
                f"network counted {counted} {reason!r} drop(s) but the trace "
                f"has {traced[reason]} net.drop event(s) with that reason"))
    return out


@dataclass(frozen=True)
class IsolationSLO:
    """The quiet tenant's service-level objective under interference.

    ``baseline_p99_ns`` is the quiet tenant's p99 RTT measured on a
    *fault-free* run with the same tenant mix, seed and probe cadence —
    the contention the operator admitted when placing both tenants on
    the fabric.  ``max_p99_inflation`` then bounds what a fault storm
    scoped to the noisy tenant may add on top: the gate isolates the
    storm's effect from the admitted load's effect.
    ``min_goodput_frac`` is the floor on answered probes — it must stay
    strictly positive ("graceful degradation, never starvation").
    """

    baseline_p99_ns: int
    max_p99_inflation: float = 3.0
    min_goodput_frac: float = 0.5

    def __post_init__(self):
        if self.baseline_p99_ns <= 0:
            raise ValueError("baseline_p99_ns must be positive")
        if self.max_p99_inflation < 1.0:
            raise ValueError("max_p99_inflation must be >= 1")
        if not (0.0 < self.min_goodput_frac <= 1.0):
            raise ValueError("min_goodput_frac must be in (0, 1]")


def check_isolation(events: Iterable["TraceEvent"], workload,
                    slo: IsolationSLO) -> list[Violation]:
    """Audit tenant isolation after a storm scoped to the noisy tenant.

    Four independent gates, all reported as ``ISO.*`` violations:

    * **ISO.leak** — no injected fault may land on a quiet-tenant node:
      the storm was scoped to the noisy fault domain, so a quiet-node
      ``fault.inject`` means the scoping itself leaked.
    * **ISO.contract** — the quiet tenant's delivery contract (I1–I3),
      checked over *its own* event partition only.  The noisy tenant's
      faults legitimately produce returns and re-deliveries on noisy
      nodes; none of that may surface as a violation attributed to the
      quiet tenant.
    * **ISO.p99** — the quiet tenant's observed p99 RTT must stay within
      ``max_p99_inflation`` of the fault-free baseline.
    * **ISO.goodput** — answered probes must meet the goodput floor and
      may never be zero.

    ``workload`` is an :class:`repro.tenant.interference.InterferenceWorkload`
    (anything with ``quiet_nodes``, ``pings``, ``quiet_answered`` and
    ``bench_latencies_ns()`` works).
    """
    from ..calib.workloads import percentile_ns

    out: list[Violation] = []
    events = list(events)
    quiet_nodes = set(workload.quiet_nodes)

    for ev in events:
        if ev.kind == "fault.inject" and ev.node in quiet_nodes:
            out.append(Violation(
                "ISO.leak",
                f"fault {ev.get('action')!r} injected on quiet-tenant "
                f"node {ev.node} despite noisy-scoped storm", ts=ev.ts))

    quiet_events = [ev for ev in events if ev.node in quiet_nodes]
    for v in DeliveryChecker(quiet_events).check():
        out.append(Violation("ISO.contract." + v.invariant, v.detail,
                             v.msg_id, v.ts))

    lats = workload.bench_latencies_ns()
    p99 = percentile_ns(lats, 99)
    bound = round(slo.baseline_p99_ns * slo.max_p99_inflation)
    if p99 > bound:
        out.append(Violation(
            "ISO.p99",
            f"quiet-tenant p99 RTT {p99}ns exceeds {slo.max_p99_inflation}x "
            f"idle baseline {slo.baseline_p99_ns}ns (bound {bound}ns)"))

    answered = workload.quiet_answered
    floor = slo.min_goodput_frac * workload.pings
    if answered == 0:
        out.append(Violation(
            "ISO.goodput", "quiet tenant starved: zero probes answered"))
    elif answered < floor:
        out.append(Violation(
            "ISO.goodput",
            f"quiet tenant answered {answered}/{workload.pings} probes, "
            f"below the {slo.min_goodput_frac:.0%} floor"))
    return out


def check_quiescence(cluster: "Cluster",
                     workload: Optional["ChaosWorkload"] = None) -> list[Violation]:
    """Assert nothing is armed, blocked, or in flight at scenario end.

    Inspects the live cluster rather than the trace: the trace says what
    happened, only the object graph can say what is *still pending*.
    """
    out: list[Violation] = []
    now = cluster.sim.now
    for node in cluster.nodes:
        nic = node.nic
        nid = nic.nic_id
        if not nic.alive:
            out.append(Violation("Q.dead", f"node {nid} still crashed", ts=now))
            continue
        for chans in nic._tx_channels.values():
            for ch in chans:
                if ch.outstanding is not None or ch.pending:
                    out.append(Violation(
                        "Q.channel", f"node {nid} channel ->{ch.peer}#{ch.index} "
                        f"busy ({ch.outstanding} outstanding, "
                        f"{len(ch.pending)} pending)", ts=now))
                if ch.deadline_ns is not None:
                    out.append(Violation(
                        "Q.timer", f"node {nid} channel ->{ch.peer}#{ch.index} "
                        f"timer armed for t={ch.deadline_ns}", ts=now))
        live_unbound = [m for _, _, m in nic._unbound
                        if m.state.name == "UNBOUND"]
        if live_unbound or nic._unbound_by_id:
            out.append(Violation("Q.unbound",
                                 f"node {nid} has {len(live_unbound) or len(nic._unbound_by_id)} "
                                 "message(s) awaiting channel rebind", ts=now))
        if nic._rx_inflight:
            out.append(Violation("Q.bulkdma",
                                 f"node {nid} bulk receive DMA in flight for "
                                 f"msgs {sorted(nic._rx_inflight)}", ts=now))
        if len(nic._rx_store) or nic._rx_proto_q:
            out.append(Violation("Q.rxfifo",
                                 f"node {nid} receive FIFO not drained", ts=now))
        if nic._driver_q or nic._internal_q or nic._pending_unloads:
            out.append(Violation("Q.driverq",
                                 f"node {nid} driver/completion queues not drained",
                                 ts=now))
        for ep in nic.endpoints.values():
            if ep.send_ring or ep.inflight:
                out.append(Violation(
                    "Q.endpoint", f"node {nid} ep {ep.ep_id} still sending "
                    f"({len(ep.send_ring)} ringed, {ep.inflight} in flight)",
                    ts=now))
            if ep.recv_requests or ep.recv_replies or ep.returned:
                out.append(Violation(
                    "Q.endpoint", f"node {nid} ep {ep.ep_id} has undrained "
                    f"receive/returned queues", ts=now))
    if workload is not None:
        for thr in workload.all_threads:
            if not thr.finished:
                out.append(Violation("Q.thread",
                                     f"workload thread {thr.name} never finished"
                                     + (" (still paused)" if thr.paused else ""),
                                     ts=now))
    return out
