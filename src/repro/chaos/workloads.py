"""Fault-tolerant workload shapes for chaos runs.

Each workload drives one of the repo's standard traffic patterns —
pairwise request/reply (the quickstart shape), bulk transfer, and
client/server over a star virtual network — but written to *survive the
adversary*: senders never enter an unbounded credit spin against a dead
peer, receivers drain and exit on a stop flag, and every thread treats
:class:`~repro.am.errors.EndpointFreedError` (its process was killed) as
a clean exit.  Termination is two-phase: a sender finishes its quota,
then *settles* — polls until its transport state is idle (credits home,
no in-flight messages, nothing pending) or a give-up deadline passes —
so the run ends quiescent without ever hanging on a lost peer.

A workload exposes uniform attack surfaces for the schedule resolver:
``procs`` (kill/pause targets; index 0 is the server/observer side and
is never killed by generated schedules) and ``eviction_targets``
(endpoints for forced residency eviction).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..am.endpoint import Endpoint
from ..am.errors import EndpointFreedError
from ..am.vnet import parallel_vnet, star_vnet
from ..osim.threads import Thread
from ..sim.core import Event

if TYPE_CHECKING:
    from ..cluster.builder import Cluster, Node
    from ..nic.endpoint_state import EndpointState
    from ..osim.process import UserProcess

__all__ = ["ChaosWorkload", "PairwiseWorkload", "CollectiveWorkload",
           "BulkWorkload", "ClientServerWorkload", "WORKLOADS", "make_workload"]

#: poll backoff while idle (ns) — short enough to see stop flags promptly
_IDLE_NS = 20_000


class ChaosWorkload:
    """Base: builds endpoints/processes, runs sender + receiver threads."""

    name = "base"

    def __init__(self, requests: int = 40, payload: int = 16):
        self.requests = requests
        self.payload = payload
        self.procs: list["UserProcess"] = []
        self.eviction_targets: list[tuple["Node", "EndpointState"]] = []
        self.sender_threads: list[Thread] = []
        self.receiver_threads: list[Thread] = []
        self._stop = {"flag": False}
        #: application-level receipt counts (handler invocations)
        self.handled = 0
        self.returned_seen = 0
        self.sent = 0
        self.give_up_ns = 0
        self.cluster: Optional["Cluster"] = None
        self._quota_event: Optional[Event] = None
        self._quota_count = 0

    # -- lifecycle ----------------------------------------------------------
    def build(self, cluster: "Cluster") -> Generator:
        """Allocate endpoints and processes (generator, run before faults)."""
        raise NotImplementedError

    def start(self) -> None:
        """Spawn the traffic threads (call at scenario time zero)."""
        raise NotImplementedError

    def stop_receivers(self) -> None:
        self._stop["flag"] = True

    @property
    def all_threads(self) -> list[Thread]:
        return self.sender_threads + self.receiver_threads

    # -- quota completion ---------------------------------------------------
    # Senders signal when their send quota is finished (or their process
    # died trying); afterwards they linger, draining stragglers, until the
    # supervisor raises the stop flag.  The supervisor therefore waits on
    # this event rather than on sender thread exit.
    def quota_done(self) -> Event:
        if self._quota_event is None:
            self._quota_event = Event(self.cluster.sim, name="chaos.quota")
        self._maybe_fire_quota()
        return self._quota_event

    def _mark_sender_done(self) -> None:
        self._quota_count += 1
        self._maybe_fire_quota()

    def _maybe_fire_quota(self) -> None:
        ev = self._quota_event
        if ev is not None and not ev.triggered \
                and self._quota_count >= len(self.sender_threads):
            ev.trigger(None)

    # -- shared thread bodies ----------------------------------------------
    def _on_request(self, token, *args) -> None:
        self.handled += 1

    def _on_returned(self, msg, reason) -> None:
        self.returned_seen += 1

    def _guarded_request(self, thr: Thread, ep: Endpoint, index: int,
                         nbytes: int = 0, handler=None) -> Generator:
        """Send one request without ever spinning unboundedly on credits.

        Returns True if sent, False if the credit window never reopened
        before the give-up deadline (peer dead and returns still in
        flight) — the caller just moves on; the delivery contract is
        audited from the trace, not from here.  ``handler`` overrides
        the shipped request handler (default :meth:`_on_request`).
        """
        cfg = ep.cfg
        need = max(1, -(-nbytes // cfg.mtu_bytes)) if nbytes > cfg.small_payload_max_bytes else 1
        deadline = ep.node.sim.now + self.give_up_ns
        while ep.credits_available(index) < need:
            processed = yield from ep.poll(thr, limit=8)
            if processed == 0:
                yield from thr.sleep(_IDLE_NS)
            if ep.node.sim.now >= deadline:
                return False
        yield from ep.request(thr, index,
                              self._on_request if handler is None else handler,
                              nbytes=nbytes)
        self.sent += 1
        return True

    def _settle(self, thr: Thread, ep: Endpoint, indices: list[int]) -> Generator:
        """Poll until the endpoint's transport state is idle or give-up."""
        cfg = ep.cfg
        deadline = ep.node.sim.now + self.give_up_ns
        while ep.node.sim.now < deadline:
            idle = (ep.state.inflight == 0 and not ep.state.send_ring
                    and not ep.has_pending()
                    and all(ep.credits_available(i) >= cfg.user_credits for i in indices))
            if idle:
                return
            processed = yield from ep.poll(thr, limit=8)
            if processed == 0:
                yield from thr.sleep(_IDLE_NS)

    def _drain_loop(self, thr: Thread, ep: Endpoint) -> Generator:
        """Poll until the stop flag is up and the endpoint is idle."""
        while True:
            processed = yield from ep.poll(thr, limit=16)
            if self._stop["flag"] and not ep.has_pending() \
                    and ep.state.inflight == 0 and not ep.state.send_ring:
                return
            if processed == 0:
                yield from thr.sleep(_IDLE_NS)

    def _sender_body(self, ep: Endpoint, index: int, count: int,
                     nbytes: int) -> Generator:
        def body(thr: Thread) -> Generator:
            ep.undeliverable_handler = self._on_returned
            try:
                try:
                    for _ in range(count):
                        ok = yield from self._guarded_request(thr, ep, index, nbytes=nbytes)
                        if not ok:
                            # The credit window stayed shut for a whole
                            # give-up period: the peer took our requests and
                            # died before replying, so those credits are gone
                            # for good.  Abandon the rest of the quota —
                            # retrying would just wait give_up_ns per message.
                            break
                    yield from self._settle(thr, ep, [index])
                except EndpointFreedError:
                    return  # our process was killed mid-traffic: clean exit
            finally:
                self._mark_sender_done()
            try:
                # Linger: late returns/replies (a crashed peer rebooting
                # after our settle deadline) must still be drained, or the
                # run ends with undrained queues.
                yield from self._drain_loop(thr, ep)
            except EndpointFreedError:
                return
        return body

    def _receiver_body(self, ep: Endpoint) -> Generator:
        def body(thr: Thread) -> Generator:
            ep.undeliverable_handler = self._on_returned
            try:
                yield from self._drain_loop(thr, ep)
            except EndpointFreedError:
                return
        return body


class PairwiseWorkload(ChaosWorkload):
    """The quickstart shape: every rank requests from its right neighbour
    over an all-pairs virtual network; each rank also serves."""

    name = "pairwise"

    def __init__(self, ranks: int = 4, requests: int = 40, payload: int = 16):
        super().__init__(requests=requests, payload=payload)
        self.ranks = ranks
        self.vnet = None

    def build(self, cluster: "Cluster") -> Generator:
        self.cluster = cluster
        self.vnet = yield from parallel_vnet(cluster, list(range(self.ranks)))
        for rank in range(self.ranks):
            ep = self.vnet[rank]
            node = cluster.node(rank)
            proc = node.start_process(name=f"pair{rank}")
            proc.adopt_endpoint(ep.state)
            self.procs.append(proc)
            self.eviction_targets.append((node, ep.state))

    def start(self) -> None:
        for rank in range(self.ranks):
            proc = self.procs[rank]
            if proc.terminated:
                continue
            ep = self.vnet[rank]
            peer = (rank + 1) % self.ranks
            self.sender_threads.append(proc.spawn_thread(
                self._sender_body(ep, peer, self.requests, self.payload),
                name=f"pair{rank}.send"))
            self.receiver_threads.append(proc.spawn_thread(
                self._receiver_body(ep), name=f"pair{rank}.recv"))


class CollectiveWorkload(PairwiseWorkload):
    """Pairwise point-to-point traffic plus firmware collectives.

    Each rank additionally runs a round-loop of NI-offloaded collectives
    (barrier / bcast / reduce, rotating roots) through
    :meth:`~repro.am.endpoint.Endpoint.collective` with the *express*
    strategy, so chaos schedules hit spanning-tree state in NI SRAM and
    in-flight express multicast down-phases.  A round that times out
    (tree member crashed or unreachable) abandons the remaining rounds on
    that rank — :class:`~repro.nic.collective.CollectiveTimeout` is the
    expected fault answer, never a hang — while the inherited pairwise
    traffic keeps the AM-level delivery contract auditable (COLL control
    packets are invisible to it by design).
    """

    name = "collective"

    def __init__(self, ranks: int = 4, requests: int = 40, payload: int = 16,
                 rounds: int = 6, strategy: str = "express",
                 round_gap_ns: int = 2_500_000):
        super().__init__(ranks=ranks, requests=requests, payload=payload)
        self.rounds = rounds
        self.strategy = strategy
        #: inter-round spacing: collectives are us-scale, fault schedules
        #: ms-scale, so unpaced rounds would all finish before the first
        #: injection; the gap spreads them across the scenario window.
        self.round_gap_ns = round_gap_ns
        self.coll_completed = 0
        self.coll_timeouts = 0

    def _collective_body(self, ep: Endpoint, rank: int) -> Generator:
        from ..nic.collective import CollectiveTimeout

        members = tuple(range(self.ranks))
        ops = ("barrier", "bcast", "reduce")

        def body(thr: Thread) -> Generator:
            try:
                for r in range(self.rounds):
                    if r:
                        yield from thr.sleep(self.round_gap_ns)
                    op = ops[r % len(ops)]
                    root = r % self.ranks
                    try:
                        yield from ep.collective(
                            thr, op, 1000 + r, members, root,
                            value=(rank + 1) if op != "barrier" else None,
                            op_name="sum", strategy=self.strategy)
                        self.coll_completed += 1
                    except CollectiveTimeout:
                        # A member died or the tree never healed in time:
                        # the job aborts its collective phase, bounding
                        # the run at one timeout period per rank.
                        self.coll_timeouts += 1
                        return
            except EndpointFreedError:
                return  # our process was killed mid-collective: clean exit
            finally:
                self._mark_sender_done()
        return body

    def start(self) -> None:
        super().start()
        for rank in range(self.ranks):
            proc = self.procs[rank]
            if proc.terminated:
                continue
            self.sender_threads.append(proc.spawn_thread(
                self._collective_body(self.vnet[rank], rank),
                name=f"coll{rank}"))


class BulkWorkload(ChaosWorkload):
    """One node streams bulk transfers (fragmented at the MTU, staged over
    the SBus DMA) to a sink — the shape whose mid-transfer state the
    channel-reset guard protects."""

    name = "bulk"

    def __init__(self, transfers: int = 6, payload: int = 24_576):
        super().__init__(requests=transfers, payload=payload)
        self.vnet = None

    def build(self, cluster: "Cluster") -> Generator:
        self.cluster = cluster
        self.vnet = yield from parallel_vnet(cluster, [0, 1])
        for rank, role in ((0, "sink"), (1, "src")):
            node = cluster.node(rank)
            proc = node.start_process(name=f"bulk.{role}")
            proc.adopt_endpoint(self.vnet[rank].state)
            self.procs.append(proc)
            self.eviction_targets.append((node, self.vnet[rank].state))

    def start(self) -> None:
        sink_proc, src_proc = self.procs
        if not src_proc.terminated:
            self.sender_threads.append(src_proc.spawn_thread(
                self._sender_body(self.vnet[1], 0, self.requests, self.payload),
                name="bulk.send"))
        if not sink_proc.terminated:
            self.receiver_threads.append(sink_proc.spawn_thread(
                self._receiver_body(self.vnet[0]), name="bulk.recv"))


class ClientServerWorkload(ChaosWorkload):
    """Clients on distinct nodes share one server endpoint (the OneVN
    star of Section 6.4); the server polls and auto-replies."""

    name = "client_server"

    def __init__(self, clients: int = 3, requests: int = 30, payload: int = 16):
        super().__init__(requests=requests, payload=payload)
        self.clients = clients
        self.server_eps: list[Endpoint] = []
        self.client_eps: list[Endpoint] = []

    def build(self, cluster: "Cluster") -> Generator:
        self.cluster = cluster
        client_nodes = [1 + i for i in range(self.clients)]
        servers, clients = yield from star_vnet(
            cluster, 0, client_nodes, shared_server_ep=True)
        self.server_eps, self.client_eps = servers, clients
        sproc = cluster.node(0).start_process(name="server")
        sproc.adopt_endpoint(servers[0].state)
        self.procs.append(sproc)
        self.eviction_targets.append((cluster.node(0), servers[0].state))
        for i, cep in enumerate(clients):
            node = cluster.node(client_nodes[i])
            proc = node.start_process(name=f"client{i}")
            proc.adopt_endpoint(cep.state)
            self.procs.append(proc)
            self.eviction_targets.append((node, cep.state))

    def start(self) -> None:
        sproc = self.procs[0]
        if not sproc.terminated:
            self.receiver_threads.append(sproc.spawn_thread(
                self._receiver_body(self.server_eps[0]), name="server.poll"))
        for i, cep in enumerate(self.client_eps):
            proc = self.procs[1 + i]
            if proc.terminated:
                continue
            self.sender_threads.append(proc.spawn_thread(
                self._sender_body(cep, 0, self.requests, self.payload),
                name=f"client{i}.send"))


WORKLOADS = {
    "pairwise": PairwiseWorkload,
    "bulk": BulkWorkload,
    "client_server": ClientServerWorkload,
    "collective": CollectiveWorkload,
}


def make_workload(name: str, **kwargs) -> ChaosWorkload:
    cls = WORKLOADS.get(name)
    if cls is None:
        # The datacenter-diversity family (incast, rpc_fanout, streaming)
        # and the tenant interference shape live in other packages and
        # register themselves into WORKLOADS on import; pull them in
        # lazily so the chaos package stays importable on its own.
        import importlib

        importlib.import_module("repro.calib.workloads")
        importlib.import_module("repro.tenant.interference")
        cls = WORKLOADS.get(name)
    if cls is None:
        raise ValueError(f"unknown workload {name!r} (choose from {sorted(WORKLOADS)})")
    return cls(**kwargs)
