"""Seeded fault-schedule generation for chaos runs.

A :class:`Scenario` is a named, seeded, duration-bounded list of
:class:`FaultAction`\\ s — the adversary's script.  Actions are abstract
(they name nodes, spines, and workload processes by index, not by
object) so a scenario can be generated before the cluster it will attack
exists; :mod:`repro.chaos.runner` resolves them against a live cluster.

The :class:`ScheduleGenerator` composes the fault repertoire of
:class:`~repro.myrinet.fault.FaultInjector` — loss/corruption ramps,
spine and host-link flaps, crash/reboot storms, and the process-level
faults (kill, pause/resume, forced endpoint eviction) — into scenarios
under three intensity profiles.  Generation is deterministic: the same
``(seed, profile, scenario name)`` always yields byte-identical action
lists (``random.Random`` is seeded with a string, which Python hashes
with SHA-512, stable across processes).

Every generated scenario is *well formed* (checked by
:meth:`Scenario.validate`): transient disturbances are reverted before
the scenario ends — loss and corruption ramp back to zero, every downed
spine and host link comes back up, every crashed node reboots, every
paused process resumes — so the run can reach quiescence.  Process
kills are the one permanent fault: a killed process stays dead, and the
delivery contract answers with return-to-sender, not recovery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = ["FaultAction", "Scenario", "ScheduleGenerator", "SCENARIO_FAMILIES", "PROFILES"]

#: action kinds and their parameter tuples (resolved by the runner)
ACTION_KINDS = (
    "set_loss",       # (prob,)
    "set_corruption", # (prob,)
    "spine",          # (spine, up)
    "hostlink",       # (host, up)
    "crash",          # (node,)
    "reboot",         # (node,)
    "kill_proc",      # (proc_idx,)
    "pause_proc",     # (proc_idx,)
    "resume_proc",    # (proc_idx,)
    "evict_ep",       # (ep_idx,)
)

#: intensity profiles: how hard each scenario family hits
PROFILES: dict[str, dict[str, float]] = {
    "mild":   {"loss_peak": 0.02, "corrupt_peak": 0.01, "flaps": 1, "outage_frac": 0.08,
               "crashes": 1, "kills": 1, "pauses": 1, "evicts": 2},
    "rough":  {"loss_peak": 0.08, "corrupt_peak": 0.04, "flaps": 2, "outage_frac": 0.12,
               "crashes": 2, "kills": 1, "pauses": 2, "evicts": 4},
    "brutal": {"loss_peak": 0.20, "corrupt_peak": 0.10, "flaps": 3, "outage_frac": 0.18,
               "crashes": 3, "kills": 2, "pauses": 2, "evicts": 6},
}

SCENARIO_FAMILIES = (
    "loss_ramp",
    "corruption_ramp",
    "spine_flaps",
    "hostlink_flaps",
    "crash_storm",
    "kill_storm",
    "pause_storm",
    "evict_pressure",
    "mixed",
    "tenant_storm",
    "collective_storm",
)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled injection: ``kind(*params)`` at ``at_ns``."""

    at_ns: int
    kind: str
    params: tuple

    def __post_init__(self):
        if self.kind not in ACTION_KINDS:
            raise ValueError(f"unknown fault action kind {self.kind!r}")


@dataclass
class Scenario:
    """A named, seeded fault script over one run."""

    name: str
    seed: int
    profile: str
    duration_ns: int
    actions: list[FaultAction] = field(default_factory=list)

    def validate(self) -> None:
        """Well-formedness: the scenario must permit quiescence at its end."""
        last = -1
        loss = corrupt = 0.0
        spine_up: dict[int, bool] = {}
        link_up: dict[int, bool] = {}
        crashed: dict[int, bool] = {}
        paused: dict[int, bool] = {}
        killed: set[int] = set()
        for a in self.actions:
            if a.at_ns < 0 or a.at_ns >= self.duration_ns:
                raise ValueError(f"{a} outside [0, {self.duration_ns})")
            if a.at_ns < last:
                raise ValueError("actions must be time-sorted")
            last = a.at_ns
            if a.kind == "set_loss":
                loss = a.params[0]
            elif a.kind == "set_corruption":
                corrupt = a.params[0]
            elif a.kind == "spine":
                spine_up[a.params[0]] = a.params[1]
            elif a.kind == "hostlink":
                link_up[a.params[0]] = a.params[1]
            elif a.kind == "crash":
                if crashed.get(a.params[0]):
                    raise ValueError(f"node {a.params[0]} crashed twice without reboot")
                crashed[a.params[0]] = True
            elif a.kind == "reboot":
                if not crashed.get(a.params[0]):
                    raise ValueError(f"node {a.params[0]} rebooted while up")
                crashed[a.params[0]] = False
            elif a.kind == "kill_proc":
                if a.params[0] in killed:
                    raise ValueError(f"process {a.params[0]} killed twice")
                killed.add(a.params[0])
            elif a.kind == "pause_proc":
                if a.params[0] in killed:
                    raise ValueError("pausing a killed process")
                paused[a.params[0]] = True
            elif a.kind == "resume_proc":
                paused[a.params[0]] = False
        if loss or corrupt:
            raise ValueError("loss/corruption not ramped back to zero")
        for k, up in spine_up.items():
            if not up:
                raise ValueError(f"spine {k} left down")
        for h, up in link_up.items():
            if not up:
                raise ValueError(f"host link {h} left down")
        for n, down in crashed.items():
            if down:
                raise ValueError(f"node {n} left crashed")
        for p, is_paused in paused.items():
            if is_paused and p not in killed:
                raise ValueError(f"process {p} left paused")

    def describe(self) -> str:
        return (f"{self.name}[{self.profile}] seed={self.seed} "
                f"{len(self.actions)} actions / {self.duration_ns / 1e6:.1f} ms")


class ScheduleGenerator:
    """Deterministically composes fault actions into scenarios.

    ``num_hosts``/``num_spines`` bound the fabric-level targets;
    ``num_procs``/``num_eps`` bound the process-level targets (indices
    into the workload's process and endpoint lists — index 0 is reserved
    as the observer/server side and never killed, so every run retains at
    least one live traffic source to witness return-to-sender).

    **Fault domains** (tenant-scoped storms): ``host_pool``,
    ``proc_pool`` and ``ep_pool`` restrict which indices the generated
    actions may target — e.g. a storm scoped to the noisy tenant passes
    that tenant's host/process/endpoint indices only.  The defaults are
    the full ranges and draw *bit-identically* to the unscoped
    generator (``pool[rng.randrange(len(pool))]`` consumes the same RNG
    state as ``rng.randrange(n)`` when the pool is ``range(n)``), so
    every previously pinned schedule digest is unchanged.  Spine flaps
    and loss/corruption ramps are fabric-wide by nature and therefore
    not poolable; the ``tenant_storm`` family composes only host-scoped
    disturbances (host-link flaps, crash/reboot, kill, pause, evict).
    """

    def __init__(
        self,
        seed: int,
        *,
        num_hosts: int,
        num_spines: int,
        num_procs: int,
        num_eps: int,
        duration_ns: int = 20_000_000,
        profile: str = "rough",
        host_pool: Optional[Sequence[int]] = None,
        proc_pool: Optional[Sequence[int]] = None,
        ep_pool: Optional[Sequence[int]] = None,
    ):
        if profile not in PROFILES:
            raise ValueError(f"unknown profile {profile!r}")
        self.seed = seed
        self.num_hosts = num_hosts
        self.num_spines = num_spines
        self.num_procs = num_procs
        self.num_eps = num_eps
        self.duration_ns = duration_ns
        self.profile = profile
        self.intensity = PROFILES[profile]
        self.host_pool = list(host_pool) if host_pool is not None else list(range(num_hosts))
        self.proc_pool = list(proc_pool) if proc_pool is not None else list(range(num_procs))
        self.ep_pool = list(ep_pool) if ep_pool is not None else list(range(max(1, num_eps)))
        for name, pool, bound in (("host_pool", self.host_pool, num_hosts),
                                  ("proc_pool", self.proc_pool, num_procs),
                                  ("ep_pool", self.ep_pool, max(1, num_eps))):
            if not pool:
                raise ValueError(f"{name} must not be empty")
            if any(i < 0 or i >= bound for i in pool):
                raise ValueError(f"{name} {pool} outside [0, {bound})")

    # ------------------------------------------------------------- plumbing
    def _rng(self, name: str) -> random.Random:
        return random.Random(f"chaos:{self.seed}:{self.profile}:{name}")

    def _window(self, rng: random.Random, frac: float) -> int:
        """An outage length, jittered, that always fits the scenario."""
        ns = round(self.duration_ns * frac * (0.5 + rng.random()))
        return max(100_000, min(ns, self.duration_ns // 3))

    def _scenario(self, name: str, actions: list[FaultAction]) -> Scenario:
        sc = Scenario(
            name=name,
            seed=self.seed,
            profile=self.profile,
            duration_ns=self.duration_ns,
            actions=sorted(actions, key=lambda a: (a.at_ns, a.kind, a.params)),
        )
        sc.validate()
        return sc

    def generate(self, name: str) -> Scenario:
        if name not in SCENARIO_FAMILIES:
            raise ValueError(f"unknown scenario family {name!r} "
                             f"(choose from {SCENARIO_FAMILIES})")
        return getattr(self, "_gen_" + name)()

    def all(self) -> list[Scenario]:
        return [self.generate(name) for name in SCENARIO_FAMILIES]

    # ------------------------------------------------------------- families
    def _ramp(self, kind: str, peak: float, rng: random.Random) -> list[FaultAction]:
        """Probability staircase up to ``peak`` and back down to zero."""
        steps = 2 + rng.randrange(3)
        start = round(self.duration_ns * 0.1 * rng.random())
        end = round(self.duration_ns * (0.55 + 0.2 * rng.random()))
        acts = []
        for i in range(steps):
            t = start + (end - start) * i // steps
            level = round(peak * (i + 1) / steps, 4)
            acts.append(FaultAction(t, kind, (level,)))
        acts.append(FaultAction(end, kind, (0.0,)))
        return acts

    def _gen_loss_ramp(self) -> Scenario:
        rng = self._rng("loss_ramp")
        return self._scenario(
            "loss_ramp", self._ramp("set_loss", self.intensity["loss_peak"], rng))

    def _gen_corruption_ramp(self) -> Scenario:
        rng = self._rng("corruption_ramp")
        return self._scenario(
            "corruption_ramp",
            self._ramp("set_corruption", self.intensity["corrupt_peak"], rng))

    def _flaps(self, rng: random.Random, kind: str, pool: Sequence[int]) -> list[FaultAction]:
        acts: list[FaultAction] = []
        n = int(self.intensity["flaps"])
        for _ in range(n):
            target = pool[rng.randrange(len(pool))]
            down_at = round(self.duration_ns * 0.6 * rng.random())
            up_at = down_at + self._window(rng, self.intensity["outage_frac"])
            up_at = min(up_at, self.duration_ns - 1)
            acts.append(FaultAction(down_at, kind, (target, False)))
            acts.append(FaultAction(up_at, kind, (target, True)))
        # Flaps of one target must not interleave down/down/up/up: collapse
        # to the final state per target per timestamp by re-sorting and
        # dropping overlapping extra downs.
        return self._serialize_flaps(acts, self.duration_ns)

    @staticmethod
    def _serialize_flaps(acts: list[FaultAction], duration_ns: int) -> list[FaultAction]:
        """Drop nested down/up pairs so per-target state strictly alternates."""
        out: list[FaultAction] = []
        state: dict[tuple, bool] = {}
        for a in sorted(acts, key=lambda a: (a.at_ns, a.params[1])):
            target = (a.kind, a.params[0])
            if state.get(target, True) == a.params[1]:
                continue  # already in that state: redundant flap
            state[target] = a.params[1]
            out.append(a)
        # Anything left down gets a closing up right before the end.
        t_close = min(max((a.at_ns for a in out), default=0) + 1, duration_ns - 1)
        for (kind, target), up in sorted(state.items()):
            if not up:
                out.append(FaultAction(t_close, kind, (target, True)))
        return out

    def _gen_spine_flaps(self) -> Scenario:
        rng = self._rng("spine_flaps")
        if self.num_spines == 0:
            return self._scenario("spine_flaps", [])  # single-leaf fabric
        return self._scenario("spine_flaps",
                              self._flaps(rng, "spine", range(self.num_spines)))

    def _gen_hostlink_flaps(self) -> Scenario:
        rng = self._rng("hostlink_flaps")
        return self._scenario("hostlink_flaps",
                              self._flaps(rng, "hostlink", self.host_pool))

    def _crashes(self, rng: random.Random) -> list[FaultAction]:
        acts: list[FaultAction] = []
        busy_until: dict[int, int] = {}
        for _ in range(int(self.intensity["crashes"])):
            node = self.host_pool[rng.randrange(len(self.host_pool))]
            crash_at = round(self.duration_ns * 0.5 * rng.random())
            crash_at = max(crash_at, busy_until.get(node, 0))
            boot_at = min(crash_at + self._window(rng, self.intensity["outage_frac"]),
                          self.duration_ns - 1)
            if boot_at <= crash_at:
                continue
            busy_until[node] = boot_at + 1
            acts.append(FaultAction(crash_at, "crash", (node,)))
            acts.append(FaultAction(boot_at, "reboot", (node,)))
        return acts

    def _gen_crash_storm(self) -> Scenario:
        return self._scenario("crash_storm", self._crashes(self._rng("crash_storm")))

    def _kills(self, rng: random.Random) -> list[FaultAction]:
        acts: list[FaultAction] = []
        # Never kill proc 0 (the server/observer side): someone must stay
        # alive to witness the returns.
        victims = [p for p in self.proc_pool if p != 0]
        rng.shuffle(victims)
        for proc in victims[: int(self.intensity["kills"])]:
            # Early in the run, so the kill lands while traffic to/from the
            # victim is still in flight and return-to-sender is exercised.
            at = round(self.duration_ns * (0.02 + 0.15 * rng.random()))
            acts.append(FaultAction(at, "kill_proc", (proc,)))
        return acts

    def _gen_kill_storm(self) -> Scenario:
        return self._scenario("kill_storm", self._kills(self._rng("kill_storm")))

    def _pauses(self, rng: random.Random) -> list[FaultAction]:
        acts: list[FaultAction] = []
        busy_until: dict[int, int] = {}
        for _ in range(int(self.intensity["pauses"])):
            proc = self.proc_pool[rng.randrange(len(self.proc_pool))]
            at = round(self.duration_ns * 0.5 * rng.random())
            at = max(at, busy_until.get(proc, 0))
            until = min(at + self._window(rng, self.intensity["outage_frac"]),
                        self.duration_ns - 1)
            if until <= at:
                continue
            busy_until[proc] = until + 1
            acts.append(FaultAction(at, "pause_proc", (proc,)))
            acts.append(FaultAction(until, "resume_proc", (proc,)))
        return acts

    def _gen_pause_storm(self) -> Scenario:
        return self._scenario("pause_storm", self._pauses(self._rng("pause_storm")))

    def _evicts(self, rng: random.Random) -> list[FaultAction]:
        acts = []
        for _ in range(int(self.intensity["evicts"])):
            ep = self.ep_pool[rng.randrange(len(self.ep_pool))]
            at = round(self.duration_ns * 0.7 * rng.random())
            acts.append(FaultAction(at, "evict_ep", (ep,)))
        return acts

    def _gen_evict_pressure(self) -> Scenario:
        return self._scenario("evict_pressure", self._evicts(self._rng("evict_pressure")))

    def _gen_tenant_storm(self) -> Scenario:
        """Every host-scoped disturbance at once, confined to the pools.

        The fault-domain scenario: with ``host_pool``/``proc_pool``/
        ``ep_pool`` set to one tenant's indices, this storm rains
        host-link flaps, a crash/reboot, kills, pauses and forced
        evictions on that tenant only — the other tenants see a healthy
        fabric except for whatever interference leaks through shared
        resources, which is exactly what ``check_isolation`` audits.
        """
        pieces: list[FaultAction] = []
        pieces += self._flaps(self._rng("tenant.flap"), "hostlink", self.host_pool)
        pieces += self._crashes(self._rng("tenant.crash"))
        kills = self._kills(self._rng("tenant.kill"))
        pieces += kills
        killed_at = {a.params[0]: a.at_ns for a in kills}
        # A pause landing on (or after) a kill of the same process would
        # make the scenario ill-formed; drop the whole pause/resume pair.
        pauses = self._pauses(self._rng("tenant.pause"))
        dead_pairs = {a.params[0] for a in pauses
                      if a.kind == "pause_proc"
                      and a.params[0] in killed_at
                      and a.at_ns >= killed_at[a.params[0]]}
        pieces += [a for a in pauses if a.params[0] not in dead_pairs]
        pieces += self._evicts(self._rng("tenant.evict"))
        return self._scenario("tenant_storm", pieces)

    def _gen_collective_storm(self) -> Scenario:
        """Tree-hostile faults aimed at in-flight collectives.

        Host-link flaps sever spanning-tree edges mid-broadcast (an
        express multicast flight crossing the flapped link must demote
        to the store-and-forward path and replay), and a crash/reboot
        takes out a tree-interior NI so its per-(root, vnet) collective
        state is dropped and the survivors' operations time out instead
        of deadlocking.  Composed purely from name-keyed RNG streams so
        every previously pinned schedule digest is unchanged.
        """
        pieces: list[FaultAction] = []
        pieces += self._flaps(self._rng("collective.flap"), "hostlink",
                              self.host_pool)
        pieces += self._crashes(self._rng("collective.crash"))
        return self._scenario("collective_storm", pieces)

    def _gen_mixed(self) -> Scenario:
        """A bit of everything, composed from the other families."""
        pieces: list[FaultAction] = []
        pieces += self._ramp("set_loss", self.intensity["loss_peak"] / 2,
                             self._rng("mixed.loss"))
        if self.num_spines:
            pieces += self._flaps(self._rng("mixed.spine"), "spine",
                                  range(self.num_spines))
        rng = self._rng("mixed.crash")
        node = self.host_pool[rng.randrange(len(self.host_pool))]
        crash_at = round(self.duration_ns * 0.3 * rng.random())
        boot_at = min(crash_at + self._window(rng, self.intensity["outage_frac"]),
                      self.duration_ns - 1)
        if boot_at > crash_at:
            pieces.append(FaultAction(crash_at, "crash", (node,)))
            pieces.append(FaultAction(boot_at, "reboot", (node,)))
        killable = [p for p in self.proc_pool if p != 0]
        if killable and self.intensity["kills"]:
            kr = self._rng("mixed.kill")
            proc = killable[kr.randrange(len(killable))]
            pieces.append(FaultAction(
                round(self.duration_ns * (0.35 + 0.2 * kr.random())),
                "kill_proc", (proc,)))
        return self._scenario("mixed", pieces)
