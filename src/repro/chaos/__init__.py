"""repro.chaos — deterministic chaos testing of the virtual-network stack.

The paper's delivery model (Section 3.2) is a *contract*: transient
transport and reconfiguration errors are masked, serious conditions come
back as return-to-sender, and delivery is exactly once.  This package
attacks the simulated system with seeded fault schedules and audits the
contract from the :mod:`repro.obs` trace:

* :mod:`~repro.chaos.schedule` — seeded generation of well-formed fault
  scenarios (loss/corruption ramps, spine and host-link flaps,
  crash/reboot storms, process kills/stalls, forced endpoint eviction);
* :mod:`~repro.chaos.workloads` — fault-tolerant traffic shapes
  (pairwise request/reply, bulk transfer, client/server);
* :mod:`~repro.chaos.invariants` — the trace-driven delivery-contract
  checker (resolution, exactly-once, per-channel order) plus direct
  end-state quiescence inspection;
* :mod:`~repro.chaos.runner` — deterministic execution: same (seed,
  scenario, workload) ⇒ bit-identical event timeline and digest.

Quick start::

    from repro.chaos import ScheduleGenerator, run_chaos

    gen = ScheduleGenerator(7, num_hosts=8, num_spines=4,
                            num_procs=4, num_eps=4)
    report = run_chaos(gen.generate("crash_storm"), "client_server")
    assert report.ok, report.violations
"""

from .invariants import (DeliveryChecker, IsolationSLO, Violation,
                         check_isolation, check_quiescence)
from .runner import ChaosReport, chaos_config, reset_global_ids, run_chaos, timeline_digest
from .schedule import (PROFILES, SCENARIO_FAMILIES, FaultAction, Scenario,
                       ScheduleGenerator)
from .workloads import (WORKLOADS, BulkWorkload, ChaosWorkload,
                        ClientServerWorkload, CollectiveWorkload,
                        PairwiseWorkload, make_workload)

__all__ = [
    "FaultAction", "Scenario", "ScheduleGenerator", "SCENARIO_FAMILIES", "PROFILES",
    "ChaosWorkload", "PairwiseWorkload", "BulkWorkload", "ClientServerWorkload",
    "CollectiveWorkload", "WORKLOADS", "make_workload",
    "DeliveryChecker", "Violation", "check_quiescence",
    "IsolationSLO", "check_isolation",
    "ChaosReport", "chaos_config", "run_chaos", "reset_global_ids", "timeline_digest",
]
