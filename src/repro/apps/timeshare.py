"""Section 6.3: multiple time-shared parallel applications.

Several Split-C-style applications, each with its own virtual network,
time-share a 16-node partition.  The system uses *implicit co-scheduling*
(two-phase spin-then-block waiting coordinates the local schedulers), and
the virtual network subsystem adapts the resident endpoint set to whatever
the schedulers run.

Paper results: executing the applications together takes within 15% of
running them in sequence; the time spent in communication stays nearly
constant (communicating processes get full network performance); and with
load imbalance, time-sharing improves workload throughput by up to 20%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cluster.builder import Cluster
from ..cluster.config import ClusterConfig
from ..lib.splitc import build_splitc_world
from ..sim.core import ms, us

__all__ = ["TimeshareConfig", "TimeshareResult", "run_timeshare"]


@dataclass
class TimeshareConfig:
    nnodes: int = 16
    napps: int = 2
    #: bulk-synchronous iterations per application
    iterations: int = 40
    #: per-iteration computation per rank, microseconds
    compute_us: float = 800.0
    #: per-iteration neighbour-exchange volume, bytes
    exchange_bytes: int = 2048
    #: per-rank compute imbalance factor for the "imbalanced" variant:
    #: rank r of app a computes compute_us * (1 + imbalance * phase)
    imbalance: float = 0.0
    seed: int = 1999
    base: Optional[ClusterConfig] = None

    def cluster_config(self) -> ClusterConfig:
        base = self.base or ClusterConfig()
        return base.with_(num_hosts=self.nnodes, seed=self.seed)


@dataclass
class AppRun:
    start_ns: int = 0
    end_ns: int = 0
    comm_ns: int = 0

    @property
    def elapsed_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class TimeshareResult:
    sequential_ns: int
    shared_ns: int
    sequential_comm_ns: int
    shared_comm_ns: int

    @property
    def slowdown(self) -> float:
        """Shared makespan over sequential makespan (paper: <= 1.15)."""
        return self.shared_ns / self.sequential_ns

    @property
    def comm_ratio(self) -> float:
        """Shared comm time over sequential comm time (paper: ~1.0)."""
        if self.sequential_comm_ns == 0:
            return 1.0
        return self.shared_comm_ns / self.sequential_comm_ns


def _app_body(ctx_world, tscfg: TimeshareConfig, app_idx: int, record: AppRun):
    """One bulk-synchronous Split-C app over its own virtual network."""

    def main(thr, ctx):
        sim = ctx.world.sim
        if ctx.rank == 0:
            record.start_ns = sim.now
        for it in range(tscfg.iterations):
            comp = us(tscfg.compute_us)
            if tscfg.imbalance:
                # alternate which ranks are heavy so apps interleave work
                phase = 1.0 if (ctx.rank + it + app_idx) % 2 == 0 else 0.0
                comp = us(tscfg.compute_us * (1.0 + tscfg.imbalance * phase))
            yield from thr.compute(comp)
            right = (ctx.rank + 1) % ctx.size
            yield from ctx.put(thr, right, ("x", app_idx, it, ctx.rank), it, tscfg.exchange_bytes)
            yield from ctx.barrier(thr)
        if ctx.rank == 0:
            record.end_ns = sim.now
            record.comm_ns = ctx.world.total_comm_ns()
        return None

    return main


def _run_workload(tscfg: TimeshareConfig, concurrent: bool) -> tuple[int, int]:
    """Run all apps either concurrently or in sequence.

    Returns (makespan_ns, total_comm_ns).
    """
    cluster = Cluster(tscfg.cluster_config())
    sim = cluster.sim
    nodes = list(range(tscfg.nnodes))
    records = [AppRun() for _ in range(tscfg.napps)]
    start = sim.now
    total_comm = 0
    if concurrent:
        # Build every virtual network first (setup advances the clock),
        # then start all application threads together so they contend.
        worlds = [
            cluster.run_process(build_splitc_world(cluster, nodes), f"vnet{a}")
            for a in range(tscfg.napps)
        ]
        all_threads = []
        t_start = sim.now
        for a, world in enumerate(worlds):
            all_threads.extend(world.spawn(_app_body(world, tscfg, a, records[a]), name=f"app{a}"))
        cluster.run(until=sim.now + ms(60_000))
        for t in all_threads:
            if not t.finished:
                raise RuntimeError(f"time-shared app thread {t.name} did not finish")
        makespan = max(r.end_ns for r in records) - t_start
        total_comm = sum(r.comm_ns for r in records)
    else:
        makespan = 0
        for a in range(tscfg.napps):
            world = cluster.run_process(build_splitc_world(cluster, nodes), f"vnet{a}")
            t_start = sim.now
            threads = world.spawn(_app_body(world, tscfg, a, records[a]), name=f"app{a}")
            cluster.run(until=sim.now + ms(60_000))
            for t in threads:
                if not t.finished:
                    raise RuntimeError("sequential app thread did not finish")
            makespan += records[a].end_ns - t_start
            total_comm += records[a].comm_ns
    return makespan, total_comm


def run_timeshare(tscfg: Optional[TimeshareConfig] = None) -> TimeshareResult:
    """Compare time-shared execution against running apps in sequence."""
    tscfg = tscfg or TimeshareConfig()
    seq_ns, seq_comm = _run_workload(tscfg, concurrent=False)
    shr_ns, shr_comm = _run_workload(tscfg, concurrent=True)
    return TimeshareResult(seq_ns, shr_ns, seq_comm, shr_comm)
