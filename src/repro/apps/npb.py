"""NAS Parallel Benchmarks 2.2 (Class A) communication skeletons (Figure 5).

Each benchmark is modelled as (a) a serial computation time scaled by the
processor count and a per-benchmark cache factor ("improved cache
performance compensates for increased communication", §6.2), plus (b) the
benchmark's real per-iteration *communication pattern*, executed through
the mini-MPI layer on the simulated cluster — so FT's and IS's all-to-all
transposes genuinely contend for the fabric's bisection, which is what
caps their speedup in Figure 5.

Problem sizes, iteration counts, and communication volumes follow the NPB
2.2 Class A specifications; serial times are calibrated to paper-era
UltraSPARC-1 rates (only the computation/communication *ratio* matters for
speedup shape).

For the cross-machine comparison (IBM SP-2, SGI Origin 2000) we provide
analytic machine models over the same volume formulas — documented as
modelled baselines in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from ..cluster.builder import Cluster
from ..cluster.config import ClusterConfig
from ..lib.mpi import Comm, build_world
from ..sim.core import ms, seconds

__all__ = [
    "NPB_SPECS",
    "NpbResult",
    "NpbSpec",
    "valid_proc_counts",
    "run_npb",
    "analytic_time",
    "MACHINES",
]

DOUBLE = 8
COMPLEX = 16


@dataclass
class NpbSpec:
    name: str
    #: serial (1-processor) Class A execution time, seconds
    t1_seconds: float
    #: total iterations in the real benchmark
    iterations: int
    #: per-processor cache-efficiency gain per doubling of p (§6.2's
    #: superlinear compensation); comp(p) = t1/p * (1 - gain*log2(p))
    cache_gain: float
    #: allowed processor counts: "pow2" or "square"
    layout: str
    #: generator(comm, thr, p) performing ONE iteration's communication
    comm_iter: Callable[..., Generator]
    #: analytic volume model: (p) -> (total_bytes_per_rank, msgs_per_rank,
    #: bisection_bytes_total) per iteration, for the machine models
    volume: Callable[[int], tuple[float, float, float]]


def _grid2d(p: int) -> tuple[int, int]:
    q = int(round(math.sqrt(p)))
    if q * q == p:
        return q, q
    qx = 1 << (int(math.log2(p)) // 2)
    return qx, p // qx


# ---------------------------------------------------------------- patterns
def _neighbor_exchange(comm: Comm, thr, volume: int, neighbors: int = 4) -> Generator:
    """Shift exchanges with grid neighbours (volume bytes each way)."""
    n = comm.size
    for k in range(1, neighbors + 1):
        dest = (comm.rank + k) % n
        src = (comm.rank - k) % n
        yield from comm.sendrecv(thr, dest, src, ("nbr", k), volume)


def _bt_sp_iter(scale: float):
    def run(comm: Comm, thr, p: int) -> Generator:
        if p == 1:
            return
        q, _ = _grid2d(p)
        face = int(scale * 5 * DOUBLE * 64 * 64 / q)
        # three solve sweeps, each exchanging faces with the grid
        for _sweep in range(3):
            yield from _neighbor_exchange(comm, thr, face, neighbors=2)

    return run


def _bt_sp_volume(scale: float):
    def vol(p: int) -> tuple[float, float, float]:
        if p == 1:
            return (0.0, 0.0, 0.0)
        q, _ = _grid2d(p)
        face = scale * 5 * DOUBLE * 64 * 64 / q
        per_rank = 3 * 2 * face
        return (per_rank, 6.0, per_rank * p / 4)

    return vol


def _lu_iter(comm: Comm, thr, p: int) -> Generator:
    """Pipelined wavefront: many small plane messages (latency bound)."""
    if p == 1:
        return
    q, _ = _grid2d(p)
    plane = max(64, int(5 * DOUBLE * 64 / q))
    n = comm.size
    succ = (comm.rank + 1) % n
    pred = (comm.rank - 1) % n
    # 2 sweeps x planes/4 pipeline steps (batched 4 planes per message)
    steps = 2 * (64 // 4)
    for k in range(steps):
        yield from comm.sendrecv(thr, succ, pred, ("wave", k), plane * 4)


def _lu_volume(p: int) -> tuple[float, float, float]:
    if p == 1:
        return (0.0, 0.0, 0.0)
    q, _ = _grid2d(p)
    plane = max(64, 5 * DOUBLE * 64 / q) * 4
    steps = 2 * (64 // 4)
    return (steps * plane, float(steps), steps * plane * p / 8)


def _mg_iter(comm: Comm, thr, p: int) -> Generator:
    """V-cycle: neighbour exchanges at halving grid levels + allreduce."""
    if p == 1:
        return
    level_face = int(256 * 256 * DOUBLE / max(1, p))
    while level_face >= 256:
        yield from _neighbor_exchange(comm, thr, level_face, neighbors=2)
        level_face //= 4
    yield from comm.allreduce(thr, 0.0, lambda a, b: a + b, DOUBLE)


def _mg_volume(p: int) -> tuple[float, float, float]:
    if p == 1:
        return (0.0, 0.0, 0.0)
    total, msgs = 0.0, 0.0
    face = 256 * 256 * DOUBLE / max(1, p)
    while face >= 256:
        total += 4 * face
        msgs += 4
        face /= 4
    msgs += 2 * math.log2(max(2, p))
    return (total, msgs, total * p / 4)


def _ft_iter(comm: Comm, thr, p: int) -> Generator:
    """3-D FFT: two full-array redistributions (all-to-all) per iteration."""
    if p == 1:
        return
    total = 256 * 256 * 128 * COMPLEX  # 134 MB, the whole Class A array
    per_pair = max(1024, int(total / (p * p)))
    for _ in range(2):
        values = [None] * p
        yield from comm.alltoall(thr, values, per_pair)


def _ft_volume(p: int) -> tuple[float, float, float]:
    if p == 1:
        return (0.0, 0.0, 0.0)
    total = 2 * 256 * 256 * 128 * COMPLEX  # two redistributions
    per_rank = total / p
    return (per_rank, 2.0 * (p - 1), total / 2)


def _is_iter(comm: Comm, thr, p: int) -> Generator:
    """Bucket exchange: all-to-all of the key array + two allreduces."""
    if p == 1:
        return
    total = (1 << 23) * 4  # 8.4M integer keys
    per_pair = max(512, int(total / (p * p)))
    yield from comm.allreduce(thr, 0, lambda a, b: (a or 0) + (b or 0), 1024)
    values = [None] * p
    yield from comm.alltoall(thr, values, per_pair)


def _is_volume(p: int) -> tuple[float, float, float]:
    if p == 1:
        return (0.0, 0.0, 0.0)
    total = (1 << 23) * 4
    per_rank = total / p + 1024 * math.log2(max(2, p))
    return (per_rank, float(p + 1), total / 2)


def _cg_iter(comm: Comm, thr, p: int) -> Generator:
    """Sparse mat-vec exchanges along rows/cols + dot-product reductions."""
    if p == 1:
        return
    q, _ = _grid2d(p)
    seg = int(14000 * DOUBLE / q)
    for _ in range(2):
        yield from _neighbor_exchange(comm, thr, seg, neighbors=1)
        yield from comm.allreduce(thr, 0.0, lambda a, b: (a or 0) + (b or 0), DOUBLE)


def _cg_volume(p: int) -> tuple[float, float, float]:
    if p == 1:
        return (0.0, 0.0, 0.0)
    q, _ = _grid2d(p)
    seg = 14000 * DOUBLE / q
    per_rank = 2 * 2 * seg + 2 * DOUBLE * math.log2(max(2, p))
    return (per_rank, 4 + 4 * math.log2(max(2, p)), per_rank * p / 4)


def _ep_iter(comm: Comm, thr, p: int) -> Generator:
    """Embarrassingly parallel: one tiny reduction."""
    if p == 1:
        return
    yield from comm.allreduce(thr, 0.0, lambda a, b: (a or 0) + (b or 0), 10 * DOUBLE)


def _ep_volume(p: int) -> tuple[float, float, float]:
    if p == 1:
        return (0.0, 0.0, 0.0)
    return (80.0 * math.log2(max(2, p)), 2 * math.log2(max(2, p)), 80.0 * p)


NPB_SPECS: dict[str, NpbSpec] = {
    "bt": NpbSpec("bt", 4800.0, 200, 0.16, "square", _bt_sp_iter(1.0), _bt_sp_volume(1.0)),
    "sp": NpbSpec("sp", 2900.0, 400, 0.14, "square", _bt_sp_iter(1.3), _bt_sp_volume(1.3)),
    "lu": NpbSpec("lu", 3400.0, 250, 0.18, "pow2", _lu_iter, _lu_volume),
    "mg": NpbSpec("mg", 110.0, 4, 0.08, "pow2", _mg_iter, _mg_volume),
    "ft": NpbSpec("ft", 200.0, 6, 0.02, "pow2", _ft_iter, _ft_volume),
    "is": NpbSpec("is", 30.0, 10, 0.0, "pow2", _is_iter, _is_volume),
    "cg": NpbSpec("cg", 43.0, 15, 0.10, "pow2", _cg_iter, _cg_volume),
    "ep": NpbSpec("ep", 760.0, 1, 0.0, "pow2", _ep_iter, _ep_volume),
}


def valid_proc_counts(name: str, max_p: int = 36) -> list[int]:
    spec = NPB_SPECS[name]
    if spec.layout == "square":
        return [q * q for q in range(1, int(math.sqrt(max_p)) + 1)]
    out, p = [], 1
    while p <= max_p:
        out.append(p)
        p *= 2
    return out


@dataclass
class NpbResult:
    name: str
    nprocs: int
    comp_iter_s: float
    comm_iter_s: float
    time_s: float          # projected full-benchmark time
    speedup: float
    comm_fraction: float


def _comp_iter_seconds(spec: NpbSpec, p: int) -> float:
    base = spec.t1_seconds / spec.iterations
    if p == 1:
        return base
    eff = max(0.3, 1.0 - spec.cache_gain * math.log2(p) / math.log2(64))
    return base * eff / p


def run_npb(
    name: str,
    nprocs: int,
    cfg: Optional[ClusterConfig] = None,
    iters_sim: int = 1,
) -> NpbResult:
    """Simulate ``iters_sim`` iterations of one benchmark on the cluster.

    Computation time is charged analytically per rank; the communication
    pattern runs for real through mini-MPI/AM/NIC/fabric, so contention
    and bisection limits emerge.  The full-benchmark time is projected
    from the measured per-iteration time.
    """
    spec = NPB_SPECS[name]
    if nprocs not in valid_proc_counts(name, max(nprocs, 36)):
        raise ValueError(f"{name} cannot run on {nprocs} processors ({spec.layout})")
    comp_iter = _comp_iter_seconds(spec, nprocs)
    if nprocs == 1:
        t = spec.t1_seconds
        return NpbResult(name, 1, comp_iter, 0.0, t, 1.0, 0.0)

    base = cfg or ClusterConfig()
    cluster = Cluster(base.with_(num_hosts=max(2, nprocs)))
    world = cluster.run_process(build_world(cluster, list(range(nprocs))), "npb")
    sim = cluster.sim
    iter_times: list[int] = []

    def main(thr, comm: Comm):
        # warm endpoints + synchronize before timing
        yield from comm.barrier(thr)
        for _ in range(iters_sim):
            t0 = sim.now
            yield from spec.comm_iter(comm, thr, nprocs)
            yield from comm.barrier(thr)
            if comm.rank == 0:
                iter_times.append(sim.now - t0)
        return comm.comm_ns

    threads = world.spawn(main, name=f"npb-{name}")
    cluster.run(until=sim.now + seconds(120))
    for t in threads:
        if not t.finished:
            raise RuntimeError(f"{name} p={nprocs}: rank thread did not finish")
    comm_iter_s = sum(iter_times) / len(iter_times) / 1e9
    time_s = spec.iterations * (comp_iter + comm_iter_s)
    speedup = spec.t1_seconds / time_s
    return NpbResult(
        name,
        nprocs,
        comp_iter,
        comm_iter_s,
        time_s,
        speedup,
        comm_iter_s / (comp_iter + comm_iter_s),
    )


# ------------------------------------------------------- machine baselines
@dataclass
class Machine:
    name: str
    #: node speed relative to the UltraSPARC-1 (higher = faster node)
    node_speed: float
    #: per-message overhead, us
    overhead_us: float
    #: per-link bandwidth, MB/s
    bandwidth_mb_s: float
    #: bisection bandwidth per node pair, MB/s (caps all-to-all)
    bisection_mb_s: float


MACHINES = {
    #: modelled baselines for Figure 5's cross-machine comparison
    "sp2": Machine("IBM SP-2", 1.6, 40.0, 35.0, 30.0),
    "origin2000": Machine("SGI Origin 2000", 2.2, 10.0, 150.0, 120.0),
    "now": Machine("Berkeley NOW (analytic)", 1.0, 12.8, 44.0, 38.0),
}


def analytic_time(name: str, nprocs: int, machine: Machine) -> float:
    """Projected Class A time on a modelled machine (seconds)."""
    spec = NPB_SPECS[name]
    comp = _comp_iter_seconds(spec, nprocs) / machine.node_speed
    per_rank_bytes, msgs, bisection_bytes = spec.volume(nprocs)
    comm = msgs * machine.overhead_us * 1e-6 + per_rank_bytes / (machine.bandwidth_mb_s * 1e6)
    if bisection_bytes:
        comm = max(comm, bisection_bytes / (machine.bisection_mb_s * 1e6 * max(1, nprocs)))
    return spec.iterations * (comp + comm)


def analytic_speedup(name: str, nprocs: int, machine: Machine) -> float:
    return analytic_time(name, 1, machine) / analytic_time(name, nprocs, machine)
