"""A parallel I/O subsystem over virtual networks.

Figure 1 lists "high-performance parallel I/O subsystems [12]" (River)
among the user-level software running on Active Messages.  This module
provides that shape: per-node *storage servers* with a simple disk model
(seek + transfer), and a striped-file client that reads and writes stripe
units across many servers concurrently — the bulk AM path carries the
data, so I/O bandwidth aggregates across servers the way River's did.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator, Optional, Sequence

from ..am.endpoint import Endpoint
from ..am.vnet import new_endpoint
from ..cluster.builder import Cluster, Node
from ..osim.threads import Thread
from ..sim.core import us

__all__ = ["DiskModel", "StorageServer", "StripedFile", "build_pario"]

_req_ids = itertools.count(1)


@dataclass
class DiskModel:
    """Seek + streaming-transfer disk (paper-era fast-wide SCSI class)."""

    seek_us: float = 8_000.0
    transfer_mb_s: float = 12.0

    def access_ns(self, nbytes: int) -> int:
        return us(self.seek_us) + round(nbytes * 1_000.0 / self.transfer_mb_s)


class StorageServer:
    """One node's storage server: block store behind an endpoint."""

    def __init__(self, node: Node, endpoint: Endpoint, disk: Optional[DiskModel] = None):
        self.node = node
        self.endpoint = endpoint
        self.disk = disk or DiskModel()
        self.blocks: dict[tuple, bytes] = {}
        self.reads = 0
        self.writes = 0
        endpoint._storage_server = self

    # handlers run at the server inside its service thread's poll
    @staticmethod
    def _write_handler(token, key, data):
        server: "StorageServer" = token.endpoint._storage_server
        server.writes += 1
        server.blocks[key] = data
        # disk time is charged to the polling thread
        return server.disk.access_ns(token.nbytes)

    @staticmethod
    def _read_handler(token, key, nbytes, req_id):
        server: "StorageServer" = token.endpoint._storage_server
        server.reads += 1
        data = server.blocks.get(key, b"")
        token.reply(StripedFile._read_reply, req_id, data, nbytes=max(16, nbytes))
        return server.disk.access_ns(nbytes)

    def serve_loop(self, thr: Thread, stop: dict) -> Generator:
        self.endpoint.set_event_mask({"recv"})
        while not stop.get("flag"):
            yield from self.endpoint.wait(thr, timeout_ns=5_000_000)
            while True:
                n = yield from self.endpoint.poll(thr, limit=8)
                if n == 0:
                    break


class StripedFile:
    """A file striped round-robin across storage servers (RAID-0 style)."""

    def __init__(self, client_ep: Endpoint, nservers: int, stripe_bytes: int = 65536):
        self.endpoint = client_ep
        self.nservers = nservers
        self.stripe_bytes = stripe_bytes
        self._pending_reads: dict[int, Any] = {}
        client_ep._striped_file = self
        self.bytes_written = 0
        self.bytes_read = 0

    @staticmethod
    def _read_reply(token, req_id, data):
        sf: "StripedFile" = token.endpoint._striped_file
        sf._pending_reads[req_id] = data

    def _stripe_of(self, offset: int) -> tuple[int, tuple]:
        stripe_no = offset // self.stripe_bytes
        server = stripe_no % self.nservers
        return server, ("stripe", stripe_no)

    def write(self, thr: Thread, filename: str, data: bytes) -> Generator:
        """Write ``data`` striped across all servers (generator)."""
        offset = 0
        view = memoryview(bytes(data))
        while offset < len(view):
            server, key = self._stripe_of(offset)
            chunk = bytes(view[offset : offset + self.stripe_bytes])
            yield from self.endpoint.request(
                thr, server, StorageServer._write_handler, (filename, key), chunk,
                nbytes=len(chunk),
            )
            offset += len(chunk)
            self.bytes_written += len(chunk)
        # drain write acknowledgments (library credit replies)
        yield from self._drain(thr)

    def read(self, thr: Thread, filename: str, nbytes: int) -> Generator:
        """Read ``nbytes`` back, issuing all stripe reads concurrently."""
        reqs = []
        offset = 0
        while offset < nbytes:
            server, key = self._stripe_of(offset)
            chunk = min(self.stripe_bytes, nbytes - offset)
            req_id = next(_req_ids)
            reqs.append(req_id)
            yield from self.endpoint.request(
                thr, server, StorageServer._read_handler, (filename, key), chunk, req_id,
                nbytes=64,
            )
            offset += chunk
        parts = []
        for req_id in reqs:
            while req_id not in self._pending_reads:
                processed = yield from self.endpoint.poll(thr, limit=8)
                if processed == 0:
                    yield from self.endpoint.wait(thr, timeout_ns=2_000_000)
            parts.append(self._pending_reads.pop(req_id))
        data = b"".join(parts)
        self.bytes_read += len(data)
        return data

    def _drain(self, thr: Thread) -> Generator:
        while any(
            self.endpoint.credits_available(i) < self.endpoint.cfg.user_credits
            for i in range(self.nservers)
        ):
            processed = yield from self.endpoint.poll(thr, limit=8)
            if processed == 0:
                yield from self.endpoint.wait(thr, timeout_ns=2_000_000)


def build_pario(cluster: Cluster, client_node: int, server_nodes: Sequence[int],
                stripe_bytes: int = 65536, disk: Optional[DiskModel] = None) -> Generator:
    """Wire a striped-file client to storage servers (generator).

    Returns (StripedFile, [StorageServer], stop_dict); each server's
    service loop is already running as an event-driven thread.
    """
    client_ep = yield from new_endpoint(cluster.node(client_node), rngs=cluster.rngs)
    servers = []
    stop = {"flag": False}
    for i, node_id in enumerate(server_nodes):
        ep = yield from new_endpoint(cluster.node(node_id), rngs=cluster.rngs)
        server = StorageServer(cluster.node(node_id), ep, disk=disk)
        servers.append(server)
        client_ep.map(i, ep.name, ep.tag)
        ep.map(0, client_ep.name, client_ep.tag)
        proc = cluster.node(node_id).start_process(f"storage{i}")
        proc.spawn_thread(
            (lambda s: lambda thr: s.serve_loop(thr, stop))(server), name=f"storage{i}"
        )
    sf = StripedFile(client_ep, len(servers), stripe_bytes=stripe_bytes)
    return sf, servers, stop
