"""The Section 6.4 client/server workloads: virtualization at scale and load.

One server, N clients, each on its own dedicated node.  Each client sends
a continuous stream of requests to its endpoint(s) in the server — "the
workload is somewhat like a page thrash test".  Five configurations:

* **OneVN** — every client talks to one shared server endpoint (a single
  virtual network);
* **ST-8 / ST-96** — one server endpoint per client (as many virtual
  networks as clients), one server thread polling all endpoints, with 8
  or 96 endpoint frames on the server NI;
* **MT-8 / MT-96** — same endpoint layout, but one event-driven server
  thread per endpoint (Section 3.3's thread support is what makes this
  implementable).

More than 8 clients overcommit an 8-frame interface and activate the
on-the-fly re-mapping machinery (200-300 remaps/s in the paper while
still delivering 50-75% of peak).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..am.bundle import Bundle
from ..am.vnet import star_vnet
from ..cluster.builder import Cluster
from ..cluster.config import ClusterConfig
from ..myrinet.packet import NackReason
from ..sim.core import ms

__all__ = ["ContentionConfig", "ContentionResult", "run_contention", "CONFIG_NAMES"]

CONFIG_NAMES = ["one_vn", "st", "mt"]


@dataclass
class ContentionConfig:
    nclients: int
    #: request payload: 0/16 for Figure 6, 8192 for Figure 7
    msg_bytes: int = 0
    #: "one_vn" (shared endpoint), "st" (per-client endpoints, one
    #: thread), "mt" (per-client endpoints, thread per endpoint)
    mode: str = "one_vn"
    #: endpoint frames on every NI (8 default, 96 newer boards)
    frames: int = 8
    #: measured interval (after warmup); the paper used 20 s steady state
    duration_ms: float = 200.0
    warmup_ms: float = 120.0
    #: server request-handler cost; calibrated so the host drain rate is
    #: close to the NI's 78K msg/s ceiling, as in the paper's server
    handler_ns: int = 8_600
    seed: int = 1999
    base: Optional[ClusterConfig] = None

    def cluster_config(self) -> ClusterConfig:
        base = self.base or ClusterConfig()
        return base.with_(
            num_hosts=self.nclients + 1,
            endpoint_frames=self.frames,
            seed=self.seed,
        )


@dataclass
class ContentionResult:
    config: ContentionConfig
    per_client_msgs_s: list[float] = field(default_factory=list)
    aggregate_msgs_s: float = 0.0
    aggregate_mb_s: float = 0.0
    remaps_per_s: float = 0.0
    overrun_nacks: int = 0
    not_resident_nacks: int = 0
    server_cpu_util: float = 0.0
    #: kernel-level counters for the perf harness (repro.bench.perf)
    sim_ns: int = 0
    events_dispatched: int = 0

    @property
    def min_client_msgs_s(self) -> float:
        return min(self.per_client_msgs_s) if self.per_client_msgs_s else 0.0

    @property
    def max_client_msgs_s(self) -> float:
        return max(self.per_client_msgs_s) if self.per_client_msgs_s else 0.0


def run_contention(ccfg: ContentionConfig, *, engine=None,
                   sim_factory=None) -> ContentionResult:
    """Run one configuration and return throughput/robustness metrics.

    ``engine`` selects the event kernel by name/instance;
    ``sim_factory`` swaps in a raw kernel class (see :mod:`repro.bench.perf`,
    which replays the same configuration on the optimized and reference
    kernels and requires identical results).
    """
    if ccfg.mode not in CONFIG_NAMES:
        raise ValueError(f"unknown mode {ccfg.mode!r}")
    cluster = Cluster(ccfg.cluster_config(), sim_factory=sim_factory,
                      engine=engine)
    sim = cluster.sim
    server_node = cluster.node(0)
    client_nodes = list(range(1, ccfg.nclients + 1))
    shared = ccfg.mode == "one_vn"
    servers, clients = cluster.run_process(
        star_vnet(cluster, 0, client_nodes, shared_server_ep=shared), "setup"
    )
    for sep in servers:
        sep.handler_cost_ns = ccfg.handler_ns

    counts = [0] * ccfg.nclients
    stop = {"flag": False}

    def make_handler(idx: int):
        def handler(token):
            counts[idx] += 1  # auto credit reply follows

        return handler

    handlers = [make_handler(i) for i in range(ccfg.nclients)]

    # ---- clients: continuous request streams --------------------------
    for i, cep in enumerate(clients):
        proc = cluster.node(client_nodes[i]).start_process(f"client{i}")

        def client_body(thr, cep=cep, i=i):
            while not stop["flag"]:
                yield from cep.request(thr, 0, handlers[i], nbytes=ccfg.msg_bytes)
                yield from cep.poll(thr, limit=4)

        proc.spawn_thread(client_body, name=f"client{i}")

    # ---- server --------------------------------------------------------
    sproc = server_node.start_process("server")
    if ccfg.mode in ("one_vn", "st"):
        bundle = Bundle(servers)

        def st_body(thr):
            while not stop["flag"]:
                n = yield from bundle.poll_all(thr, limit=8)
                if n == 0:
                    yield from thr.compute(200)

        sproc.spawn_thread(st_body, name="server-st")
    else:  # mt: one thread per endpoint, event driven
        for k, sep in enumerate(servers):

            def mt_body(thr, sep=sep):
                sep.set_event_mask({"recv"})
                while not stop["flag"]:
                    ok = yield from sep.wait(thr, timeout_ns=ms(10))
                    while not stop["flag"]:
                        n = yield from sep.poll(thr, limit=16)
                        if n == 0:
                            break

            sproc.spawn_thread(mt_body, name=f"server-mt{k}")

    # ---- measure ---------------------------------------------------------
    cluster.run(until=sim.now + ms(ccfg.warmup_ms))
    snap_counts = list(counts)
    snap_remaps = server_node.driver.stats.remaps
    snap_cpu = server_node.cpu.busy_ns
    nic = server_node.nic
    snap_over = nic.stats.nacks_sent.get(NackReason.RECV_OVERRUN, 0)
    snap_notres = nic.stats.nacks_sent.get(NackReason.NOT_RESIDENT, 0)
    t0 = sim.now
    cluster.run(until=t0 + ms(ccfg.duration_ms))
    stop["flag"] = True
    elapsed_s = (sim.now - t0) / 1e9

    result = ContentionResult(config=ccfg)
    result.per_client_msgs_s = [
        (counts[i] - snap_counts[i]) / elapsed_s for i in range(ccfg.nclients)
    ]
    result.aggregate_msgs_s = sum(result.per_client_msgs_s)
    result.aggregate_mb_s = result.aggregate_msgs_s * ccfg.msg_bytes / 1e6
    result.remaps_per_s = (server_node.driver.stats.remaps - snap_remaps) / elapsed_s
    result.overrun_nacks = nic.stats.nacks_sent.get(NackReason.RECV_OVERRUN, 0) - snap_over
    result.not_resident_nacks = (
        nic.stats.nacks_sent.get(NackReason.NOT_RESIDENT, 0) - snap_notres
    )
    result.server_cpu_util = (server_node.cpu.busy_ns - snap_cpu) / (sim.now - t0)
    result.sim_ns = sim.now
    result.events_dispatched = sim.events_dispatched
    return result
