"""The massively-parallel Linpack run of Section 6.2.

"Our 100-node cluster sustained 10.14 GF on the massively-parallel
linpack benchmark, making it the first cluster on the Top-500 list,
ranking #315 on June 19th, 1997."

We model HPL over ScaLAPACK the standard way: LU factorization of an
N x N matrix (2/3 N^3 flops) on a P x Q process grid, with per-panel
broadcast and row-exchange communication volumes taken from the
block-cyclic algorithm.  Per-node compute rate is the Sun Performance
Library DGEMM rate on a 167 MHz UltraSPARC-1 (~140 Mflop/s sustained DGEMM).  The communication terms use the
measured virtual-network parameters (bandwidth, gap), so the headline
number is a *model*, cross-checked against the paper's 10.14 GF.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.config import ClusterConfig

__all__ = ["LinpackModel", "linpack_gflops"]


@dataclass
class LinpackModel:
    nodes: int = 100
    #: problem dimension (paper-era Top-500 runs used N ~ 30-40k)
    n: float = 38_000.0
    #: block size
    nb: int = 64
    #: sustained per-node DGEMM rate, Mflop/s
    node_mflops: float = 140.0
    #: HPL efficiency of the compute phases (panel factorization etc.)
    compute_eff: float = 0.75

    def grid(self) -> tuple[int, int]:
        p = int(math.sqrt(self.nodes))
        while self.nodes % p:
            p -= 1
        return p, self.nodes // p

    def total_flops(self) -> float:
        return 2.0 * self.n ** 3 / 3.0 + 2.0 * self.n ** 2

    def compute_seconds(self) -> float:
        rate = self.nodes * self.node_mflops * 1e6 * self.compute_eff
        return self.total_flops() / rate

    def comm_seconds(self, cfg: ClusterConfig) -> float:
        """Panel broadcasts + row swaps over the virtual network."""
        p, q = self.grid()
        panels = self.n / self.nb
        bw = 44.0e6  # delivered AM bandwidth, bytes/s (Figure 4)
        gap_s = 12.8e-6
        # per panel: broadcast an n x nb panel along rows (log q stages),
        # plus pivot row exchanges of n doubles along columns (log p)
        per_panel_bytes = self.n * self.nb * 8 * math.log2(max(2, q)) / q
        per_panel_bytes += self.n * 8 * math.log2(max(2, p))
        msgs = (math.log2(max(2, q)) + math.log2(max(2, p))) * 4
        return panels * (per_panel_bytes / bw + msgs * gap_s)

    def gflops(self, cfg: ClusterConfig | None = None) -> float:
        cfg = cfg or ClusterConfig()
        t = self.compute_seconds() + self.comm_seconds(cfg)
        return self.total_flops() / t / 1e9


def linpack_gflops(nodes: int = 100, cfg: ClusterConfig | None = None) -> float:
    """Modelled HPL rate for the paper's configuration (paper: 10.14 GF)."""
    return LinpackModel(nodes=nodes).gflops(cfg)
