"""Applications and workloads: contention, NPB skeletons, timesharing, Linpack."""

from .clientserver import CONFIG_NAMES, ContentionConfig, ContentionResult, run_contention
from .linpack import LinpackModel, linpack_gflops
from .npb import MACHINES, NPB_SPECS, NpbResult, analytic_time, run_npb, valid_proc_counts
from .timeshare import TimeshareConfig, TimeshareResult, run_timeshare

__all__ = [
    "CONFIG_NAMES",
    "ContentionConfig",
    "ContentionResult",
    "LinpackModel",
    "MACHINES",
    "NPB_SPECS",
    "NpbResult",
    "TimeshareConfig",
    "TimeshareResult",
    "analytic_time",
    "linpack_gflops",
    "run_contention",
    "run_npb",
    "run_timeshare",
    "valid_proc_counts",
]
