"""Host processor model: a single time-sliced CPU per workstation.

Threads consume CPU by delegating to :meth:`Cpu.compute` from inside their
simulation process (``yield from cpu.compute(ns, owner=thread)``).  The
scheduler is lease-based, like a real quantum scheduler: the running
thread *keeps* the CPU across consecutive short computations until its
quantum expires or it blocks (``release_lease``), at which point the next
runnable thread is granted the CPU and charged a context switch.  Threads
that block without releasing (a raw event wait) lose the CPU at lease
expiry at the latest.

Two priority levels model Solaris kernel threads: ``priority=1`` work
(the segment driver's remap and proxy threads) preempts user threads at
the next slice boundary — slices are capped at ``max_slice_ns`` so the
preemption latency is bounded well below the quantum.

This is what makes time-shared workloads (Section 6.3) and the polling
server configurations (Section 6.4) behave like they did on Solaris: a
single-threaded server monopolizes its quantum against other *user*
threads, but endpoint re-mapping still makes progress underneath it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from ..sim.core import Event, Simulator

__all__ = ["Cpu"]


class Cpu:
    """One processor: quantum leases, two-level run queue, preemption."""

    def __init__(
        self,
        sim: Simulator,
        quantum_ns: int,
        context_switch_ns: int = 0,
        name: str = "cpu",
        max_slice_ns: int = 1_000_000,
        node_id: int = -1,
    ):
        self.sim = sim
        self.name = name
        #: owning host, for trace attribution (-1 when standalone)
        self.node_id = node_id
        self.quantum_ns = int(quantum_ns)
        self.context_switch_ns = int(context_switch_ns)
        #: preemption granularity: a running slice is at most this long
        self.max_slice_ns = min(int(max_slice_ns), self.quantum_ns)
        self._holder: Any = None
        self._holder_priority = 0
        self._last_owner: Any = None
        self._expiry = 0
        self._in_slice = False
        self._queue: Deque[tuple[Event, Any]] = deque()
        self._hi_queue: Deque[tuple[Event, Any]] = deque()
        self._check_scheduled = False
        self.busy_ns = 0
        self.switches = 0

    @property
    def runnable(self) -> int:
        """Threads holding or queued for the CPU."""
        held = 1 if self._holder is not None else 0
        return held + len(self._queue) + len(self._hi_queue)

    # ------------------------------------------------------------ internals
    def _grant(self, owner: Any, priority: int) -> bool:
        """Give the lease to ``owner``; True if this is an owner change."""
        changed = self._last_owner is not None and self._last_owner is not owner
        self._holder = owner
        self._holder_priority = priority
        self._last_owner = owner
        self._expiry = self.sim.now + self.quantum_ns
        if changed:
            self.switches += 1
        return changed

    def _handoff_next(self) -> None:
        """Grant the lease to the next queued thread (kernel work first)."""
        for queue, prio in ((self._hi_queue, 1), (self._queue, 0)):
            while queue:
                ev, owner = queue.popleft()
                if ev.triggered:
                    continue
                changed = self._grant(owner, prio)
                ev.trigger(self.context_switch_ns if changed else 0)
                return
        self._holder = None

    def _schedule_expiry_check(self) -> None:
        if self._check_scheduled:
            return
        self._check_scheduled = True
        delay = max(0, self._expiry - self.sim.now)
        self.sim.schedule(delay, self._expiry_check)

    def _expiry_check(self) -> None:
        """Preempt an idle (blocked) leaseholder once its quantum is up."""
        self._check_scheduled = False
        if self._in_slice or (not self._queue and not self._hi_queue):
            return
        if self.sim.now >= self._expiry:
            self._holder = None
            self._handoff_next()
        else:
            self._schedule_expiry_check()

    def _should_yield(self, priority: int) -> bool:
        """After a slice: must the holder hand the CPU over?"""
        if priority == 0 and self._hi_queue:
            return True  # kernel work preempts at slice granularity
        if (self._queue or self._hi_queue) and self.sim.now >= self._expiry:
            return True
        return False

    def _acquire(self, owner: Any, priority: int) -> Generator:
        """Obtain the lease; yields while queued. Returns switch cost ns."""
        while True:
            if self._holder is owner:
                if self.sim.now >= self._expiry:
                    if self._queue or self._hi_queue:
                        self._holder = None
                        self._handoff_next()
                        continue
                    self._expiry = self.sim.now + self.quantum_ns  # renew
                return 0
            if self._holder is None and not self._queue and not self._hi_queue:
                changed = self._grant(owner, priority)
                return self.context_switch_ns if changed else 0
            if (
                priority > self._holder_priority
                and self._holder is not None
                and not self._in_slice
            ):
                # Holder is off-CPU (blocked/idle): kernel work steals now.
                changed = self._grant(owner, priority)
                return self.context_switch_ns if changed else 0
            ev = Event(self.sim, name=f"{self.name}.grant")
            (self._hi_queue if priority else self._queue).append((ev, owner))
            if not self._in_slice:
                self._schedule_expiry_check()
            switch_ns = yield ev
            return switch_ns or 0

    # ------------------------------------------------------------ public API
    def compute(self, ns: int, owner: Any = None, priority: int = 0) -> Generator:
        """Consume ``ns`` of CPU, preemptible at slice boundaries.

        Consecutive computations by the lease holder run back-to-back with
        no scheduling cost; a granted owner change pays the context
        switch.  ``priority=1`` marks kernel work that preempts user
        threads within ``max_slice_ns``.
        """
        remaining = int(ns)
        if remaining <= 0:
            return
        if owner is None:
            owner = object()  # anonymous: still serializes on the CPU
        while remaining > 0:
            if self._holder is owner and self.sim.now < self._expiry:
                # Holder retaining its lease: skip the _acquire generator
                # (the dominant case for back-to-back computations).
                switch_ns = 0
            else:
                switch_ns = yield from self._acquire(owner, priority)
            if switch_ns:
                self._in_slice = True
                yield self.sim.timeout(switch_ns)
                self._in_slice = False
                self.busy_ns += switch_ns
            slice_ns = min(remaining, self.max_slice_ns, max(1, self._expiry - self.sim.now))
            self._in_slice = True
            yield self.sim.timeout(slice_ns)
            self._in_slice = False
            self.busy_ns += slice_ns
            if hasattr(owner, "cpu_ns"):
                owner.cpu_ns += slice_ns  # per-thread CPU accounting
            remaining -= slice_ns
            if self._should_yield(priority):
                self._holder = None
                self._handoff_next()

    def release_lease(self, owner: Any) -> None:
        """Voluntarily yield the CPU (called when a thread blocks)."""
        if self._holder is owner and not self._in_slice:
            self._holder = None
            self._handoff_next()

    def utilization(self, elapsed_ns: Optional[int] = None) -> float:
        """Fraction of time the CPU was busy (since t=0 by default)."""
        total = elapsed_ns if elapsed_ns is not None else self.sim.now
        if total <= 0:
            return 0.0
        return min(1.0, self.busy_ns / total)
