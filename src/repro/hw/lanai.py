"""LANai embedded-processor cost accounting.

The LANai 4.3 runs firmware on a 37.5 MHz general-purpose core; every
firmware action is charged an instruction budget from
:class:`~repro.cluster.config.ClusterConfig`.  :class:`LanaiMeter`
accumulates where the cycles went, which the benchmark harnesses use to
attribute gap/latency costs the way Section 6.1 does (e.g. the ~1.1 us of
defensive error checking).
"""

from __future__ import annotations

from collections import Counter

from ..cluster.config import ClusterConfig

__all__ = ["LanaiMeter"]


class LanaiMeter:
    """Per-NIC account of LANai instruction time by category."""

    def __init__(self, cfg: ClusterConfig):
        self.cfg = cfg
        self.ns_by_op: Counter[str] = Counter()
        self.count_by_op: Counter[str] = Counter()

    def cost_ns(self, op: str, instructions: int) -> int:
        """Charge ``instructions`` to category ``op``; returns the ns cost."""
        ns = self.cfg.lanai_ns(instructions)
        self.ns_by_op[op] += ns
        self.count_by_op[op] += 1
        return ns

    @property
    def total_ns(self) -> int:
        return sum(self.ns_by_op.values())

    def mean_ns(self, op: str) -> float:
        n = self.count_by_op.get(op, 0)
        return self.ns_by_op.get(op, 0) / n if n else 0.0

    def snapshot(self) -> dict[str, int]:
        return dict(self.ns_by_op)
