"""Hardware models: host CPU, SBus DMA engine, LANai cost accounting."""

from .host import Cpu
from .lanai import LanaiMeter
from .sbus import SbusDma

__all__ = ["Cpu", "LanaiMeter", "SbusDma"]
