"""SBus DMA engine model.

The LANai 4.3 has a *single* DMA engine for SBus transfers (Section 2), so
host<->NI data movement in both directions serializes on one resource.
Transfer rates are asymmetric (Figure 4): the NI writes host memory at
46.8 MB/s and reads it somewhat faster.  This asymmetry — and the fact
that the engine is shared between the send and receive paths — produces
the paper's bandwidth ceiling and the multi-client bulk behaviour of
Figure 7.
"""

from __future__ import annotations

from typing import Generator

from ..cluster.config import ClusterConfig
from ..sim.core import Simulator
from ..sim.resources import Resource

__all__ = ["SbusDma"]


class SbusDma:
    """The shared SBus DMA engine of one network interface."""

    #: transfer directions
    READ = "read"    # host memory -> NI SRAM (send path)
    WRITE = "write"  # NI SRAM -> host memory (receive path)

    def __init__(self, sim: Simulator, cfg: ClusterConfig, name: str = "sbus"):
        self.sim = sim
        self.cfg = cfg
        self.name = name
        self._engine = Resource(sim, capacity=1, name=f"{name}.dma")
        self.bytes_read = 0
        self.bytes_written = 0
        self.transfers = 0
        self.busy_ns = 0

    def transfer_ns(self, nbytes: int, direction: str) -> int:
        """Duration of one DMA transfer, including startup."""
        if direction == self.READ:
            return self.cfg.sbus_read_ns(nbytes)
        if direction == self.WRITE:
            return self.cfg.sbus_write_ns(nbytes)
        raise ValueError(f"unknown DMA direction {direction!r}")

    def acquire(self):
        """Contend for the engine (use with :meth:`hold`/:meth:`release`)."""
        return self._engine.acquire()

    def hold(self, nbytes: int, direction: str) -> Generator:
        """Run one transfer while already holding the engine."""
        duration = self.transfer_ns(nbytes, direction)
        yield self.sim.timeout(duration)
        self.busy_ns += duration
        self.transfers += 1
        if direction == self.READ:
            self.bytes_read += nbytes
        else:
            self.bytes_written += nbytes

    def release(self) -> None:
        self._engine.release()

    def transfer(self, nbytes: int, direction: str) -> Generator:
        """Move ``nbytes`` across the SBus; blocks while the engine is busy."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        yield self._engine.acquire()
        yield from self.hold(nbytes, direction)
        self._engine.release()

    def utilization(self, elapsed_ns: int | None = None) -> float:
        total = elapsed_ns if elapsed_ns is not None else self.sim.now
        if total <= 0:
            return 0.0
        return min(1.0, self.busy_ns / total)
