"""Fat-tree-like topology builder and static source routing.

The paper's cluster wires 100 hosts through 25 8-port switches and 185
links in a three-level "fat-tree like" arrangement (Section 2).  We build
the equivalent **two-level Clos**: leaf switches hold ``radix/2`` hosts and
``radix/2`` uplinks, and each of the ``radix/2`` spine switches connects to
*every* leaf.  This collapses the paper's physical multi-stage wiring into
one logical spine stage with the same per-leaf uplink capacity and the same
bisection ratio (uplinks == host ports at every leaf), which is what the
bisection-limited results (FT/IS in Figure 5) depend on.  The deviation is
recorded in DESIGN.md.

Routes are static per (src, dst, channel): the transport layer binds each
logical flow-control channel to one physical path (Section 5.3), and the
spread of channels over spines provides the multipath the paper exploits.
Routing adapts transparently when a spine or link is administratively
down (hot-swap, Section 3.2) by falling back to the next live spine.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.config import ClusterConfig
from ..sim.core import Simulator
from .link import DirectedLink
from .switch import Switch

__all__ = ["FatTreeTopology", "McastTree"]

#: cache-miss sentinel (None is a legitimate cached value: "no route")
_MISS: object = object()


class McastTree:
    """A spanning tree for one (root, destination set, channel) fan-out.

    Levels mirror the hop structure of the unicast routes: level 0 is the
    root's host uplink, level 1 holds same-leaf host downlinks (terminals)
    plus the single leaf→spine uplink, level 2 the spine→leaf downlinks,
    level 3 the remote host downlinks.  Per-destination delivery timing is
    therefore identical to the unicast route to that destination; the win
    is that shared links (the root uplink, the spine crossing) are
    traversed once for the whole fan-out.
    """

    __slots__ = ("root", "dsts", "levels", "terminals", "downstream",
                 "all_links", "num_levels", "terminal_links", "level_of",
                 "parent")

    def __init__(self, root: int, dsts: tuple, levels: list,
                 terminals: list, downstream: dict):
        self.root = root
        self.dsts = dsts
        #: links acquired at each tree level (one hop time apart)
        self.levels = levels
        #: (dst, level, link) per destination, deterministic order:
        #: same-leaf destinations first, then remote, each sorted
        self.terminals = terminals
        #: link -> destinations reached through it (fault-drop accounting)
        self.downstream = downstream
        self.all_links = [lk for lvl in levels for lk in lvl]
        self.num_levels = len(levels)
        self.terminal_links = {lk for _, _, lk in terminals}
        self.level_of = {lk: j for j, lvl in enumerate(levels) for lk in lvl}
        #: link -> the upstream link feeding it (None for the root uplink)
        self.parent: dict = {levels[0][0]: None}
        for j in range(1, len(levels)):
            for lk in levels[j]:
                need = set(downstream[lk])
                for p in levels[j - 1]:
                    if need <= set(downstream[p]):
                        self.parent[lk] = p
                        break


class FatTreeTopology:
    """Two-level Clos: hosts -- leaf switches -- spine switches."""

    def __init__(self, sim: Simulator, cfg: ClusterConfig):
        cfg.validate()
        self.sim = sim
        self.cfg = cfg
        self.hosts_per_leaf = max(1, cfg.switch_radix // 2)
        self.num_leaves = (cfg.num_hosts + self.hosts_per_leaf - 1) // self.hosts_per_leaf
        self.num_spines = max(1, cfg.switch_radix // 2) if self.num_leaves > 1 else 0

        byte_ns = cfg.link_byte_ns
        mk = lambda name: DirectedLink(sim, name, byte_ns)  # noqa: E731

        self.switches: list[Switch] = []
        for leaf in range(self.num_leaves):
            hosts = [
                h
                for h in range(
                    leaf * self.hosts_per_leaf,
                    min((leaf + 1) * self.hosts_per_leaf, cfg.num_hosts),
                )
            ]
            self.switches.append(Switch(leaf, "leaf", hosts=hosts))
        for s in range(self.num_spines):
            self.switches.append(Switch(self.num_leaves + s, "spine"))

        # host <-> leaf links (both directions of each cable)
        self.host_up: list[DirectedLink] = []    # host -> leaf
        self.host_down: list[DirectedLink] = []  # leaf -> host
        for h in range(cfg.num_hosts):
            self.host_up.append(mk(f"h{h}->l{self.leaf_of(h)}"))
            self.host_down.append(mk(f"l{self.leaf_of(h)}->h{h}"))

        # leaf <-> spine links
        self.up_links: list[list[DirectedLink]] = []    # [leaf][spine]
        self.down_links: list[list[DirectedLink]] = []  # [spine][leaf]
        for leaf in range(self.num_leaves):
            self.up_links.append([mk(f"l{leaf}->s{s}") for s in range(self.num_spines)])
        for s in range(self.num_spines):
            self.down_links.append([mk(f"s{s}->l{leaf}") for leaf in range(self.num_leaves)])

        #: (src, dst, channel) -> hop list, valid only while no switch or
        #: link has ever flipped state (see mark_dirty); routing is a pure
        #: function of that state, so until the first flip a cached result
        #: is exactly what route() would recompute
        self._route_cache: dict[tuple[int, int, int], Optional[list[DirectedLink]]] = {}
        #: (root, sorted dsts, channel) -> McastTree | None, same validity
        #: rule as the route cache (pristine fabric only)
        self._mcast_cache: dict[tuple, Optional["McastTree"]] = {}
        self._fabric_dirty = False

    # ------------------------------------------------------------- queries
    def leaf_of(self, host: int) -> int:
        return host // self.hosts_per_leaf

    def spine_switch(self, s: int) -> Switch:
        return self.switches[self.num_leaves + s]

    def leaf_switch(self, leaf: int) -> Switch:
        return self.switches[leaf]

    @property
    def all_links(self) -> list[DirectedLink]:
        links = list(self.host_up) + list(self.host_down)
        for row in self.up_links:
            links.extend(row)
        for row in self.down_links:
            links.extend(row)
        return links

    def num_cables(self) -> int:
        """Physical (bidirectional) cable count, host links included."""
        return self.cfg.num_hosts + self.num_leaves * self.num_spines

    # ------------------------------------------------------------- routing
    def route(self, src: int, dst: int, channel: int = 0) -> Optional[list[DirectedLink]]:
        """Static source route for a channel; None if disconnected.

        Falls back deterministically to the next live spine when the
        preferred one is down, so reconfiguration is masked from the
        transport layer (Section 3.2).
        """
        if src == dst:
            return []
        sl, dl = self.leaf_of(src), self.leaf_of(dst)
        if not (self.leaf_switch(sl).up and self.leaf_switch(dl).up):
            return None
        first, last = self.host_up[src], self.host_down[dst]
        if not (first.up and last.up):
            return None
        if sl == dl:
            return [first, last]
        if self.num_spines == 0:
            return None
        preferred = (src + dst + channel) % self.num_spines
        for probe in range(self.num_spines):
            s = (preferred + probe) % self.num_spines
            up, down = self.up_links[sl][s], self.down_links[s][dl]
            if self.spine_switch(s).up and up.up and down.up:
                return [first, up, down, last]
        return None

    def mark_dirty(self) -> None:
        """A switch or link changed state: stop serving cached routes.

        Sticky by design: reconfiguration is rare (hot-swap experiments),
        and a permanently cold cache after the first fault keeps the
        invalidation logic trivially correct.
        """
        self._fabric_dirty = True
        self._route_cache.clear()
        self._mcast_cache.clear()

    def cached_route(self, src: int, dst: int, channel: int = 0) -> Optional[list[DirectedLink]]:
        """Like :meth:`route` but memoized while the fabric is pristine.

        Callers must not mutate the returned list.  After the first
        administrative state flip this degrades to a plain route().
        """
        if self._fabric_dirty:
            return self.route(src, dst, channel)
        key = (src, dst, channel)
        cache = self._route_cache
        hit = cache.get(key, _MISS)
        if hit is not _MISS:
            return hit
        r = self.route(src, dst, channel)
        cache[key] = r
        return r

    # ----------------------------------------------------------- multicast
    def multicast_tree(self, root: int, dsts, channel: int = 0) -> Optional[McastTree]:
        """Spanning tree from ``root`` to every destination; None if any
        needed element is down (callers fall back to per-dst unicast).

        Memoized per (root, sorted dsts, channel) while the fabric is
        pristine; after any reconfiguration this recomputes per call,
        like :meth:`cached_route`.
        """
        key = (root, tuple(sorted(dsts)), channel)
        if not self._fabric_dirty:
            hit = self._mcast_cache.get(key, _MISS)
            if hit is not _MISS:
                return hit
        tree = self._build_mcast(root, key[1], channel)
        if not self._fabric_dirty:
            self._mcast_cache[key] = tree
        return tree

    def _build_mcast(self, root: int, dsts: tuple, channel: int) -> Optional[McastTree]:
        rl = self.leaf_of(root)
        if not (self.leaf_switch(rl).up and self.host_up[root].up):
            return None
        by_leaf: dict[int, list[int]] = {}
        for d in dsts:
            if d == root:
                return None  # loopback is the caller's business
            dl = self.leaf_of(d)
            if not (self.leaf_switch(dl).up and self.host_down[d].up):
                return None
            by_leaf.setdefault(dl, []).append(d)
        remote_leaves = sorted(l for l in by_leaf if l != rl)
        spine = None
        if remote_leaves:
            if self.num_spines == 0:
                return None
            preferred = (root + channel) % self.num_spines
            for probe in range(self.num_spines):
                s = (preferred + probe) % self.num_spines
                if not (self.spine_switch(s).up and self.up_links[rl][s].up):
                    continue
                if all(self.down_links[s][l].up for l in remote_leaves):
                    spine = s
                    break
            if spine is None:
                return None
        levels: list[list[DirectedLink]] = [[self.host_up[root]]]
        terminals: list[tuple[int, int, DirectedLink]] = []
        downstream: dict[DirectedLink, tuple] = {self.host_up[root]: dsts}
        level1: list[DirectedLink] = []
        for d in by_leaf.get(rl, ()):
            link = self.host_down[d]
            level1.append(link)
            terminals.append((d, 1, link))
            downstream[link] = (d,)
        if remote_leaves:
            up = self.up_links[rl][spine]
            level1.append(up)
            downstream[up] = tuple(d for l in remote_leaves for d in by_leaf[l])
            levels.append(level1)
            level2 = []
            for l in remote_leaves:
                dn = self.down_links[spine][l]
                level2.append(dn)
                downstream[dn] = tuple(by_leaf[l])
            levels.append(level2)
            level3 = []
            for l in remote_leaves:
                for d in by_leaf[l]:
                    link = self.host_down[d]
                    level3.append(link)
                    terminals.append((d, 3, link))
                    downstream[link] = (d,)
            levels.append(level3)
        else:
            levels.append(level1)
        return McastTree(root, dsts, levels, terminals, downstream)

    def hop_count(self, src: int, dst: int) -> int:
        """Number of switches a packet traverses."""
        if src == dst:
            return 0
        return 1 if self.leaf_of(src) == self.leaf_of(dst) else 3
