"""Fault injection: transient loss, corruption, hot-swap, node crashes.

The delivery model (Section 3.2) promises that the substrate masks
transient transport and reconfiguration errors while surfacing serious
conditions (remote crash, nonexistent endpoint) through return-to-sender.
This module provides the adversary: it flips links and switches up/down on
a schedule, adjusts loss/corruption probabilities, and crashes/reboots
nodes, so the robustness tests can check both halves of the promise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.core import Simulator

if TYPE_CHECKING:
    from .network import Network

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives failures against a :class:`~repro.myrinet.network.Network`."""

    def __init__(self, sim: Simulator, network: "Network"):
        self.sim = sim
        self.network = network
        #: back-compat mirror of the fault timeline; the authoritative
        #: record is the ``fault.inject`` events on ``sim.trace``, where
        #: faults interleave with transport events in one timeline
        self.log: list[tuple[int, str]] = []

    def _note(self, what: str, **args) -> None:
        self.log.append((self.sim.now, what))
        if self.sim.trace.enabled:
            self.sim.trace.emit("fault.inject", args.pop("node", -1), what=what, **args)

    # ---------------------------------------------------------- probability
    def set_loss(self, prob: float) -> None:
        """Set the transient packet-loss probability."""
        if not (0.0 <= prob <= 1.0):
            raise ValueError("loss probability out of range")
        self.network.cfg.packet_loss_prob = prob
        self._note(f"loss={prob}", action="set_loss", prob=prob)

    def set_corruption(self, prob: float) -> None:
        if not (0.0 <= prob <= 1.0):
            raise ValueError("corruption probability out of range")
        self.network.cfg.packet_corrupt_prob = prob
        self._note(f"corrupt={prob}", action="set_corruption", prob=prob)

    # ------------------------------------------------------------- hot-swap
    def set_spine(self, spine: int, up: bool) -> None:
        """Take a spine switch (and its links) down or up — hot-swap."""
        topo = self.network.topology
        sw = topo.spine_switch(spine)
        sw.up = up
        for leaf in range(topo.num_leaves):
            topo.up_links[leaf][spine].up = up
            topo.down_links[spine][leaf].up = up
        self._note(f"spine{spine} {'up' if up else 'down'}", action="hotswap_spine",
                   spine=spine, up=up)

    def set_host_link(self, host: int, up: bool) -> None:
        """Disconnect/reconnect one host's cable."""
        topo = self.network.topology
        topo.host_up[host].up = up
        topo.host_down[host].up = up
        self._note(f"hostlink{host} {'up' if up else 'down'}", action="hostlink",
                   node=host, up=up)

    def at(self, when_ns: int, fn, *args) -> None:
        """Schedule a fault action at an absolute simulation time."""
        delay = when_ns - self.sim.now
        if delay < 0:
            raise ValueError("cannot schedule a fault in the past")
        self.sim.schedule(delay, fn, *args)

    # ---------------------------------------------------------- node crash
    def crash_node(self, nic_id: int) -> None:
        """Node stops: its NIC neither receives nor acknowledges."""
        self.network.set_nic_dead(nic_id, True)
        self._note(f"crash node{nic_id}", action="crash", node=nic_id)

    def reboot_node(self, nic_id: int) -> None:
        """Node returns; transport channels must self-resynchronize."""
        self.network.set_nic_dead(nic_id, False)
        self._note(f"reboot node{nic_id}", action="reboot", node=nic_id)
