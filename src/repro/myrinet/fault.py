"""Fault injection: transient loss, corruption, hot-swap, crashes, kills.

The delivery model (Section 3.2) promises that the substrate masks
transient transport and reconfiguration errors while surfacing serious
conditions (remote crash, nonexistent endpoint) through return-to-sender.
This module provides the adversary: it flips links and switches up/down on
a schedule, adjusts loss/corruption probabilities, crashes/reboots nodes,
and — for the chaos harness (:mod:`repro.chaos`) — attacks the host side:
killing processes so their endpoints vanish, pausing threads so receivers
stop polling, and forcibly evicting resident endpoints.

Every injection is reported as a ``fault.inject`` event on the trace bus
with normalized attribution: the event's ``node`` is the host the fault
hits (``-1`` for cluster- or fabric-scoped faults), ``action`` names the
injection, and ``scope`` says which of the three levels it targets
(``cluster`` probabilities, ``fabric`` switches/links, ``node`` hosts and
their processes) — so a trace-driven checker can correlate faults to the
transport events they disturb.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.core import Simulator

if TYPE_CHECKING:
    from ..cluster.builder import Node
    from ..nic.endpoint_state import EndpointState
    from ..osim.process import UserProcess
    from .network import Network

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives failures against a :class:`~repro.myrinet.network.Network`."""

    def __init__(self, sim: Simulator, network: "Network"):
        self.sim = sim
        self.network = network
        #: back-compat mirror of the fault timeline; the authoritative
        #: record is the ``fault.inject`` events on ``sim.trace``, where
        #: faults interleave with transport events in one timeline
        self.log: list[tuple[int, str]] = []

    def _note(self, what: str, *, action: str, scope: str, node: int = -1, **args) -> None:
        """Record one injection: legacy list + normalized bus event.

        Every injection funnels through here, so this is also where the
        express delivery path learns a fault family is live and drops to
        full-fidelity wormhole simulation for the rest of the run (see
        Network.on_fault).
        """
        self.network.on_fault()
        self.log.append((self.sim.now, what))
        if self.sim.trace.enabled:
            self.sim.trace.emit("fault.inject", node, what=what, action=action,
                                scope=scope, **args)

    # ---------------------------------------------------------- probability
    def set_loss(self, prob: float) -> None:
        """Set the transient packet-loss probability."""
        if not (0.0 <= prob <= 1.0):
            raise ValueError("loss probability out of range")
        self.network.cfg.packet_loss_prob = prob
        self._note(f"loss={prob}", action="set_loss", scope="cluster", prob=prob)

    def set_corruption(self, prob: float) -> None:
        if not (0.0 <= prob <= 1.0):
            raise ValueError("corruption probability out of range")
        self.network.cfg.packet_corrupt_prob = prob
        self._note(f"corrupt={prob}", action="set_corruption", scope="cluster", prob=prob)

    # ------------------------------------------------------------- hot-swap
    def set_spine(self, spine: int, up: bool) -> None:
        """Take a spine switch (and its links) down or up — hot-swap."""
        topo = self.network.topology
        sw = topo.spine_switch(spine)
        sw.up = up
        for leaf in range(topo.num_leaves):
            topo.up_links[leaf][spine].up = up
            topo.down_links[spine][leaf].up = up
        self._note(f"spine{spine} {'up' if up else 'down'}", action="hotswap_spine",
                   scope="fabric", spine=spine, up=up)

    def set_host_link(self, host: int, up: bool) -> None:
        """Disconnect/reconnect one host's cable."""
        topo = self.network.topology
        topo.host_up[host].up = up
        topo.host_down[host].up = up
        self._note(f"hostlink{host} {'up' if up else 'down'}", action="hostlink",
                   scope="node", node=host, up=up)

    def at(self, when_ns: int, fn, *args) -> None:
        """Schedule a fault action at an absolute simulation time."""
        delay = when_ns - self.sim.now
        if delay < 0:
            raise ValueError("cannot schedule a fault in the past")
        self.sim.schedule(delay, fn, *args)

    # ---------------------------------------------------------- node crash
    def crash_node(self, nic_id: int) -> None:
        """Node stops: its NIC neither receives nor acknowledges."""
        self.network.set_nic_dead(nic_id, True)
        self._note(f"crash node{nic_id}", action="crash", scope="node", node=nic_id)

    def reboot_node(self, nic_id: int) -> None:
        """Node returns; transport channels must self-resynchronize."""
        self.network.set_nic_dead(nic_id, False)
        self._note(f"reboot node{nic_id}", action="reboot", scope="node", node=nic_id)

    # ------------------------------------------- process-level adversaries
    def kill_process(self, proc: "UserProcess") -> None:
        """Kill a user process: its endpoints vanish through the segment
        driver, and messages addressed to them must come back to their
        senders as return-to-sender (Section 3.2) — never hang."""
        node = proc.node.node_id
        proc.kill()
        self._note(f"kill {proc.name}", action="kill_process", scope="node",
                   node=node, proc=proc.name)

    def pause_process(self, proc: "UserProcess") -> None:
        """Stall a process: its threads park off-CPU and stop polling, so
        receive queues fill and senders feel NACK/backoff pressure."""
        proc.pause()
        self._note(f"pause {proc.name}", action="pause_process", scope="node",
                   node=proc.node.node_id, proc=proc.name)

    def resume_process(self, proc: "UserProcess") -> None:
        proc.resume()
        self._note(f"resume {proc.name}", action="resume_process", scope="node",
                   node=proc.node.node_id, proc=proc.name)

    def evict_endpoint(self, node: "Node", ep: "EndpointState") -> None:
        """Force a resident endpoint off its NI frame (synthetic frame
        pressure): traffic to it draws NOT_RESIDENT NACKs until the driver
        faults it back in (Section 4.2)."""
        started = node.driver.force_evict(ep)
        self._note(f"evict ep{ep.ep_id}@node{node.node_id}", action="evict_endpoint",
                   scope="node", node=node.node_id, ep=ep.ep_id, started=started)
