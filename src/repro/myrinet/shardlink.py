"""Cross-shard link handoff: the trunk at a fabric boundary.

The sharded kernel (:mod:`repro.sim.sharded`) partitions the cluster
into contiguous host ranges, each owning a private :class:`Network`
fabric.  Packets addressed outside a shard's range never enter the
local fabric: :meth:`Network.send` consults the installed
:class:`ShardBoundary` *before* any stats update or RNG draw and hands
the packet off as a :class:`TrunkRecord` — a picklable, canonically
ordered description of a store-and-forward crossing of the inter-shard
trunk (think: the spine links between racks, modeled at rack
granularity instead of per-switch).

Determinism hinges on two properties enforced here:

* **Timing is engine-invariant.**  A record emitted at ``t`` arrives at
  ``t + trunk_base_ns + wire_ns(payload + header)`` regardless of which
  executor runs the shards; the trunk base latency is also the
  conservative lookahead (no shard can affect another sooner), and
  :meth:`ClusterConfig.validate` pins it above the fat-tree's own
  minimum cross-shard latency.

* **Ordering is canonical.**  Every record carries its source shard and
  a per-source monotonically increasing sequence number; the receiving
  :class:`~repro.sim.sharded.TrunkIngress` delivers strictly in
  ``(arrive, src_shard, seq)`` order and serializes same-host arrivals
  onto distinct ticks, so the destination shard observes one total
  order no matter how records were batched in transit.

Express-path interaction: a cached route can never span shards (routes
are computed on the local fabric), but the *attempt* would — so the
boundary check precedes :meth:`Network._try_express` entirely and the
demotion is counted in ``ExpressStats.boundary_demotions``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Tuple

from ..cluster.config import ClusterConfig
from .packet import Packet

__all__ = ["BoundaryStats", "ShardBoundary", "TrunkRecord", "trunk_record"]

#: (arrive_ns, src_shard, seq, src_global, dst_global, msg_id, nbytes, kind)
#: — a plain tuple so it pickles cheaply for batched ``multiprocessing``
#: handoff and sorts by exactly the canonical delivery key.
TrunkRecord = Tuple[int, int, int, int, int, int, int, int]


def trunk_record(arrive: int, src_shard: int, seq: int, src_g: int,
                 dst_g: int, msg_id: int, nbytes: int, kind: int) -> TrunkRecord:
    return (arrive, src_shard, seq, src_g, dst_g, msg_id, nbytes, kind)


@dataclass
class BoundaryStats:
    """Per-shard egress accounting (mode-invariant, digested)."""

    handoffs: int = 0
    bytes_handed_off: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


class ShardBoundary:
    """One shard's view of the global id space plus its trunk egress.

    ``base .. base+size-1`` are the global NIC ids this shard owns; the
    local fabric indexes them as ``0 .. size-1``.  ``emit`` receives
    each outbound :data:`TrunkRecord` — the sequential engine routes it
    straight into the destination ingress, the windowed engines append
    it to the shard's outbox for the next barrier.
    """

    __slots__ = ("shard_id", "base", "size", "cfg", "stats",
                 "trunk_base_ns", "_emit", "_seq")

    def __init__(self, shard_id: int, base: int, size: int,
                 cfg: ClusterConfig, emit: Callable[[TrunkRecord], None]):
        self.shard_id = shard_id
        self.base = base
        self.size = size
        self.cfg = cfg
        self.stats = BoundaryStats()
        self.trunk_base_ns = cfg.shard_trunk_base_ns
        self._emit = emit
        self._seq = 0

    # ---------------------------------------------------------- id space
    def is_local(self, global_nic: int) -> bool:
        return self.base <= global_nic < self.base + self.size

    def to_local(self, global_nic: int) -> int:
        return global_nic - self.base

    def to_global(self, local_nic: int) -> int:
        return local_nic + self.base

    # ------------------------------------------------------------- trunk
    def arrival_ns(self, now: int, nbytes: int) -> int:
        """Store-and-forward crossing: base latency + serialization of
        the full frame onto the trunk."""
        return now + self.trunk_base_ns + self.cfg.wire_ns(
            nbytes + self.cfg.packet_header_bytes)

    def ingress_gap_ns(self, nbytes: int) -> int:
        """Minimum spacing between two trunk deliveries into the *same*
        destination host: the frame's wire time off the trunk plus the
        NI receive budget.  Always >= 1 ns, which is what guarantees
        same-host arrivals land on distinct ticks."""
        return max(1, self.cfg.wire_ns(nbytes + self.cfg.packet_header_bytes)
                   + self.cfg.lanai_ns(self.cfg.ni_recv_instr))

    def handoff(self, pkt: Packet, now: int) -> None:
        """Convert an outbound packet into a trunk record and emit it.

        Called by :meth:`Network.send` before any fabric-local state is
        touched, so the local fabric's stats and RNG streams never see
        cross-shard traffic — the load-bearing fact in the determinism
        argument (DESIGN.md §13).
        """
        nbytes = pkt.payload_bytes
        rec = trunk_record(
            self.arrival_ns(now, nbytes), self.shard_id, self._seq,
            pkt.src_nic, pkt.dst_nic, pkt.msg_id, nbytes, pkt.channel,
        )
        self._seq += 1
        self.stats.handoffs += 1
        self.stats.bytes_handed_off += nbytes
        self._emit(rec)
