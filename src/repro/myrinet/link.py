"""Directed link model.

A physical Myrinet cable is full duplex; we model it as two independent
:class:`DirectedLink` objects, each a serialized 1.2 Gb/s channel.  A link
can be administratively taken down (hot-swap experiments, Section 3.2);
packets in flight on a downed link are lost and the transport protocol is
expected to mask the loss.
"""

from __future__ import annotations

from ..sim.core import Simulator
from ..sim.resources import Resource

__all__ = ["DirectedLink"]


class DirectedLink:
    """One direction of a cable: serialized, byte-rate limited, can fail."""

    def __init__(self, sim: Simulator, name: str, byte_ns: float):
        self.sim = sim
        self.name = name
        self.byte_ns = byte_ns
        self.up = True
        self._port = Resource(sim, capacity=1, name=f"{name}.port")
        self.bytes_carried = 0
        self.packets_carried = 0
        self.busy_ns = 0

    def wire_ns(self, nbytes: int) -> int:
        return round(nbytes * self.byte_ns)

    def acquire(self):
        """Contend for the link head; FIFO order."""
        return self._port.acquire()

    def release(self) -> None:
        self._port.release()

    def account(self, nbytes: int, busy_ns: int) -> None:
        self.bytes_carried += nbytes
        self.packets_carried += 1
        self.busy_ns += busy_ns

    def utilization(self, elapsed_ns: int | None = None) -> float:
        total = elapsed_ns if elapsed_ns is not None else self.sim.now
        if total <= 0:
            return 0.0
        return min(1.0, self.busy_ns / total)

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"<Link {self.name} {state}>"
