"""Directed link model.

A physical Myrinet cable is full duplex; we model it as two independent
:class:`DirectedLink` objects, each a serialized 1.2 Gb/s channel.  A link
can be administratively taken down (hot-swap experiments, Section 3.2);
packets in flight on a downed link are lost and the transport protocol is
expected to mask the loss.

Express-path bookkeeping (see :mod:`repro.myrinet.network`): the fabric
registers an ``on_state_change`` hook so *any* administrative flip of
``up`` — whether through :class:`~repro.myrinet.fault.FaultInjector` or a
test poking the attribute directly — invalidates cached routes and
revokes committed express flights before the new state can be observed
inconsistently.  ``busy_until`` / ``express_flight`` record the occupancy
window an express delivery has claimed without acquiring the port
resource; the slow path never consults them.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim.core import Simulator
from ..sim.resources import Resource

__all__ = ["DirectedLink"]


class DirectedLink:
    """One direction of a cable: serialized, byte-rate limited, can fail."""

    def __init__(self, sim: Simulator, name: str, byte_ns: float):
        self.sim = sim
        self.name = name
        self.byte_ns = byte_ns
        self._up = True
        self._port = Resource(sim, capacity=1, name=f"{name}.port")
        self.bytes_carried = 0
        self.packets_carried = 0
        self.busy_ns = 0
        #: end of the occupancy window a committed express flight has
        #: claimed on this link (0 = none); maintained by the Network
        self.busy_until = 0
        #: the express flight currently claiming this link, if any
        self.express_flight: Optional[Any] = None
        #: live wormhole traversals whose route includes this link;
        #: maintained by the Network so the express path only falls back
        #: when a slow packet could actually contend for *this* link
        self.slow_refs = 0
        #: fabric hook fired on every administrative up/down flip
        self.on_state_change: Optional[Callable[["DirectedLink"], None]] = None

    @property
    def up(self) -> bool:
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        changed = value != self._up
        self._up = value
        if changed and self.on_state_change is not None:
            self.on_state_change(self)

    def wire_ns(self, nbytes: int) -> int:
        return round(nbytes * self.byte_ns)

    def acquire(self):
        """Contend for the link head; FIFO order."""
        return self._port.acquire()

    def try_acquire(self) -> bool:
        return self._port.try_acquire()

    def release(self) -> None:
        self._port.release()

    @property
    def idle(self) -> bool:
        """No holder, no queue, and no express occupancy claim."""
        return self._port.idle and self.express_flight is None

    def account(self, nbytes: int, busy_ns: int) -> None:
        self.bytes_carried += nbytes
        self.packets_carried += 1
        self.busy_ns += busy_ns

    def utilization(self, elapsed_ns: int | None = None) -> float:
        total = elapsed_ns if elapsed_ns is not None else self.sim.now
        if total <= 0:
            return 0.0
        return min(1.0, self.busy_ns / total)

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"<Link {self.name} {state}>"
