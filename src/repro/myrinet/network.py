"""The network fabric: packet traversal with cut-through and backpressure.

A packet holds each link on its route from the moment its head enters
until its tail leaves.  The head advances to the next switch after the
cut-through latency plus header time; if the next link is busy the packet
stalls *while still occupying the upstream link* — the wormhole
backpressure through which "network congestion rapidly spreads through the
network" (Section 2).  Delivery happens when the tail arrives at the
destination NI.

Fault hooks (loss, corruption, link/switch down, node crash) are consulted
on every traversal; see :mod:`repro.myrinet.fault`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..cluster.config import ClusterConfig
from ..sim.core import Simulator
from ..sim.rng import RngStreams
from .link import DirectedLink
from .packet import Packet
from .topology import FatTreeTopology

__all__ = ["Network", "NetworkStats"]


@dataclass
class NetworkStats:
    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_linkdown: int = 0
    dropped_noroute: int = 0
    dropped_dead_nic: int = 0
    bytes_delivered: int = 0


class Network:
    """Connects NICs through a :class:`FatTreeTopology`."""

    def __init__(self, sim: Simulator, cfg: ClusterConfig, rngs: Optional[RngStreams] = None):
        self.sim = sim
        self.cfg = cfg
        self.topology = FatTreeTopology(sim, cfg)
        self.rng = (rngs or RngStreams(cfg.seed)).stream("network.fault")
        self._rx_handlers: dict[int, Callable[[Packet], None]] = {}
        self._dead_nics: set[int] = set()
        self.stats = NetworkStats()
        #: loopback delivery cost (NI-internal, no wire)
        self.loopback_ns = cfg.lanai_ns(40)

    # ------------------------------------------------------------ wiring
    def attach(self, nic_id: int, rx_handler: Callable[[Packet], None]) -> None:
        """Register the receive handler for a NIC (called on tail arrival)."""
        if nic_id in self._rx_handlers:
            raise ValueError(f"NIC {nic_id} already attached")
        if not (0 <= nic_id < self.cfg.num_hosts):
            raise ValueError(f"NIC id {nic_id} out of range")
        self._rx_handlers[nic_id] = rx_handler

    def set_nic_dead(self, nic_id: int, dead: bool = True) -> None:
        """Mark a NIC crashed: packets addressed to it vanish."""
        if dead:
            self._dead_nics.add(nic_id)
        else:
            self._dead_nics.discard(nic_id)

    # ------------------------------------------------------------- sending
    def send(self, pkt: Packet) -> None:
        """Inject a packet; returns immediately (transit is asynchronous)."""
        self.stats.sent += 1
        if self.cfg.packet_loss_prob and self.rng.random() < self.cfg.packet_loss_prob:
            self.stats.dropped_loss += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("net.drop", pkt.src_nic, msg=pkt.msg_id,
                                    dst=pkt.dst_nic, reason="loss")
            return
        if self.cfg.packet_corrupt_prob and self.rng.random() < self.cfg.packet_corrupt_prob:
            pkt.corrupted = True
        self.sim.spawn(self._traverse(pkt), name=f"pkt{pkt.xmit_id}")

    def _deliver(self, pkt: Packet):
        """Hand a packet to the destination NIC.

        Returns None when accepted immediately, or a waitable the caller
        must wait on while the NIC's receive FIFO is full — with the
        upstream link still held, so congestion backs up into the fabric
        (Section 2's "congestion rapidly spreads").
        """
        if pkt.dst_nic in self._dead_nics:
            self.stats.dropped_dead_nic += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("net.drop", pkt.dst_nic, msg=pkt.msg_id,
                                    src=pkt.src_nic, reason="dead_nic")
            return None
        handler = self._rx_handlers.get(pkt.dst_nic)
        if handler is None:
            self.stats.dropped_dead_nic += 1
            return None
        self.stats.delivered += 1
        self.stats.bytes_delivered += pkt.payload_bytes
        if self.sim.trace.enabled:
            self.sim.trace.emit("net.deliver", pkt.dst_nic, msg=pkt.msg_id,
                                src=pkt.src_nic, pkt=pkt.kind.name,
                                nbytes=pkt.payload_bytes)
        return handler(pkt)

    def _traverse(self, pkt: Packet):
        sim, cfg = self.sim, self.cfg
        if pkt.src_nic == pkt.dst_nic:
            yield sim.timeout(self.loopback_ns)
            pending = self._deliver(pkt)
            if pending is not None:
                yield pending
            return
        route = self.topology.route(pkt.src_nic, pkt.dst_nic, pkt.channel)
        if route is None:
            self.stats.dropped_noroute += 1
            return
        nbytes = pkt.wire_bytes(cfg.packet_header_bytes)
        header_ns = round(cfg.packet_header_bytes * cfg.link_byte_ns)
        hop_ns = cfg.switch_latency_ns + cfg.cable_latency_ns + header_ns

        acquired_at: list[int] = []
        held: list[DirectedLink] = []

        def fail_cleanup() -> None:
            for link in held:
                link.release()
            self.stats.dropped_linkdown += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("net.drop", pkt.dst_nic, msg=pkt.msg_id,
                                    src=pkt.src_nic, reason="linkdown")

        for i, link in enumerate(route):
            yield link.acquire()
            if not link.up:
                link.release()
                fail_cleanup()
                return
            held.append(link)
            acquired_at.append(sim.now)
            if i > 0:
                # The head has moved downstream: the upstream link frees
                # once its serialization completes (backpressure already
                # happened implicitly while we waited to acquire).
                prev = route[i - 1]
                prev_busy = prev.wire_ns(nbytes)
                free_at = max(sim.now, acquired_at[i - 1] + prev_busy)
                prev.account(nbytes, free_at - acquired_at[i - 1])
                sim.schedule(free_at - sim.now, prev.release)
                held.remove(prev)
            if i < len(route) - 1:
                yield sim.timeout(hop_ns)

        last = route[-1]
        tail_at = acquired_at[-1] + last.wire_ns(nbytes)
        if tail_at > sim.now:
            yield sim.timeout(tail_at - sim.now)
        if not last.up:
            fail_cleanup()
            return
        # Deliver before releasing: a full receive FIFO keeps the final
        # link occupied, backpressuring the whole path (Section 2).
        pending = self._deliver(pkt)
        if pending is not None:
            yield pending
        last.account(nbytes, sim.now - acquired_at[-1])
        last.release()
        held.remove(last)

    # ------------------------------------------------------------- queries
    def min_latency_ns(self, src: int, dst: int, nbytes_on_wire: int) -> int:
        """Uncongested head-to-tail transit time (for calibration tests)."""
        if src == dst:
            return self.loopback_ns
        route = self.topology.route(src, dst, 0)
        if route is None:
            raise ValueError("no route")
        header_ns = round(self.cfg.packet_header_bytes * self.cfg.link_byte_ns)
        hop_ns = self.cfg.switch_latency_ns + self.cfg.cable_latency_ns + header_ns
        return (len(route) - 1) * hop_ns + route[-1].wire_ns(nbytes_on_wire)
