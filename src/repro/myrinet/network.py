"""The network fabric: packet traversal with cut-through and backpressure.

A packet holds each link on its route from the moment its head enters
until its tail leaves.  The head advances to the next switch after the
cut-through latency plus header time; if the next link is busy the packet
stalls *while still occupying the upstream link* — the wormhole
backpressure through which "network congestion rapidly spreads through the
network" (Section 2).  Delivery happens when the tail arrives at the
destination NI.

Fault hooks (loss, corruption, link/switch down, node crash) are consulted
on every traversal; see :mod:`repro.myrinet.fault`.

The express path (DESIGN.md, "The express path")
------------------------------------------------

An *uncontended* route is a fixed, precomputable latency: the per-hop
wormhole process exists to model contention, and when there is provably
none it dispatches ~2L+1 kernel events per packet to compute a number
known at send time.  ``Network.send`` therefore commits an **express
flight** — one pooled callback at the precomputed tail-arrival time —
whenever all of the following hold:

* ``cfg.express_path`` is on and the path is currently armed: any
  fault injection, or any direct flip of a link/switch ``up``
  attribute, disarms it and demotes committed flights.  Disarming is
  no longer sticky for the whole run: once every link and switch is
  back up and ``cfg.express_reenable_quiet_us`` has elapsed since the
  most recent fault event, the next send re-arms the path (0 restores
  the old permanent disable);
* hop-level tracing is off (``sim.trace.enabled``), so the elided
  ``sim.spawn``/``sim.exit`` events are unobservable;
* no wormhole process is in flight *on any link of this route*
  (per-link ``slow_refs`` — a slow packet crossing a disjoint part of
  the fabric no longer forces a fallback), and every link on the
  (cached) route is idle with no express occupancy claim.

Soundness rests on *revocation*: a committed flight's timeline is only
valid while its links stay untouched, so any later send whose route
intersects a flight's links first **revokes** the flight — the delivery
callback is canceled and the flight is replayed as a wormhole process
holding exactly the links, accounting and pending releases the slow path
would have at that instant (`_revoke`/`_resume_traverse`).  Because
revocation runs before the new packet touches any port, FIFO acquisition
order is preserved and the flight's links are guaranteed re-acquirable.
Delivery timestamps, ``NetworkStats`` and per-link accounting are
bit-identical between modes; ``repro.bench.perf``'s net_burst oracle
enforces this in CI.  Express bookkeeping lives in the separate
:class:`ExpressStats` so ``NetworkStats`` stays mode-invariant.

Express trains (DESIGN.md §11 residual, closed)
-----------------------------------------------

One revocation case used to be self-inflicted: a *same-route* follow-up
send — the common back-to-back burst from one source — demoted the
committed flight and sent both packets down the wormhole path, even
though the pair contends only in the trivially precomputable FIFO way.
With ``cfg.express_trains`` on, such a send instead **joins** the
committed flight as a train member: its schedule is derived from its
predecessor's release times (exactly the slow path's FIFO handoff on an
otherwise idle route), and the whole train keeps ONE pending delivery
callback, re-armed member-to-member, so n back-to-back packets cost n
events instead of n·(2L+1).  Every unicast flight is a train; a train
of one reproduces the original flight behaviour bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..cluster.config import ClusterConfig
from ..sim.core import SimError, Simulator
from ..sim.rng import RngStreams
from .link import DirectedLink
from .packet import Packet
from .topology import FatTreeTopology, McastTree

__all__ = ["Network", "NetworkStats", "ExpressStats"]


@dataclass
class NetworkStats:
    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_linkdown: int = 0
    dropped_noroute: int = 0
    dropped_dead_nic: int = 0
    bytes_delivered: int = 0


@dataclass
class ExpressStats:
    """Express-path bookkeeping — deliberately *not* part of
    :class:`NetworkStats`, which must be identical across modes."""

    #: flights committed (single-callback deliveries scheduled)
    commits: int = 0
    #: flights that reached their delivery callback un-revoked
    delivered: int = 0
    #: loopback sends elided to one callback
    loopback: int = 0
    #: flights demoted back to wormhole processes by a conflicting send
    #: or a fault
    revoked: int = 0
    #: sends that fell back because a route link was occupied or claimed
    fallback_busy: int = 0
    #: sends that fell back because a wormhole process was in flight on
    #: a link of *this* route (or not yet attributable to its links)
    fallback_active: int = 0
    #: same-route sends that joined a committed flight as train members
    #: instead of revoking it (``cfg.express_trains``)
    train_joins: int = 0
    #: times the path re-armed after a quiet period following a fault
    reenabled: int = 0
    #: sends whose destination lay across a shard boundary: never
    #: expressible (the cached-route commit cannot span fabrics), always
    #: demoted to the store-and-forward trunk handoff
    boundary_demotions: int = 0
    #: multicast trees committed as pooled-callback-batch flights
    mcast_commits: int = 0
    #: pooled callback batches fired (one per distinct tail time)
    mcast_batches: int = 0
    #: multicast flights fully delivered un-revoked
    mcast_delivered: int = 0
    #: multicast flights demoted to the wormhole fan-out
    mcast_revoked: int = 0
    #: multicast sends that fell back to the wormhole fan-out at commit
    mcast_fallbacks: int = 0

    def hits(self) -> int:
        return self.commits + self.train_joins + self.loopback

    def fallbacks(self) -> int:
        return self.fallback_busy + self.fallback_active


class _TrainMember:
    """One packet riding an express train, with its frozen schedule:
    ``acq[j]`` / ``free[j]`` reproduce exactly when the slow path would
    acquire and release link ``j`` for this packet."""

    __slots__ = ("pkt", "nbytes", "acq", "free")

    def __init__(self, pkt: Packet, nbytes: int,
                 acq: list[int], free: list[int]):
        self.pkt = pkt
        self.nbytes = nbytes
        self.acq = acq
        self.free = free


class _ExpressTrain:
    """A committed express delivery *train*: one or more same-route
    packets sharing a single pending pooled callback.

    The leader's schedule is the uncontended wormhole timeline; each
    follower acquires link ``j`` at ``max(prev hop + hop_ns,
    predecessor frees j)`` — the FIFO handoff the slow path would
    produce for back-to-back packets on an otherwise idle route.  Only
    one delivery callback is pending at a time: firing member k re-arms
    it for member k+1.  :meth:`Network._revoke` uses the per-member
    schedules to reconstruct mid-flight wormhole state on demotion.
    """

    __slots__ = ("route", "hop_ns", "members", "next_up", "entry")

    def __init__(self, route: list[DirectedLink], hop_ns: int):
        self.route = route
        self.hop_ns = hop_ns
        self.members: list[_TrainMember] = []
        #: index of the next member to deliver
        self.next_up = 0
        #: the one pending delivery heap entry (cancelable)
        self.entry: Optional[list] = None

    def append(self, pkt: Packet, nbytes: int, now: int) -> _TrainMember:
        route, hop = self.route, self.hop_ns
        last = len(route) - 1
        acq = [0] * (last + 1)
        free = [0] * (last + 1)
        prev = self.members[-1] if self.members else None
        if prev is None:
            acq[0] = now
            for j in range(1, last + 1):
                acq[j] = acq[j - 1] + hop
        else:
            acq[0] = max(now, prev.free[0])
            for j in range(1, last + 1):
                acq[j] = max(acq[j - 1] + hop, prev.free[j])
        free[last] = acq[last] + route[last].wire_ns(nbytes)
        for j in range(last - 1, -1, -1):
            free[j] = max(acq[j + 1], acq[j] + route[j].wire_ns(nbytes))
        m = _TrainMember(pkt, nbytes, acq, free)
        self.members.append(m)
        return m


class _McastFlight:
    """A committed express *multicast*: one precomputed wormhole fan-out.

    The head wave crosses one tree level per hop time, so a link at level
    ``j`` is acquired at ``t0 + j*hop_ns`` — exactly the unicast timing to
    each destination.  Deliveries are grouped into **pooled callback
    batches**, one per distinct terminal tail time (same-leaf terminals
    land one batch earlier than remote ones); :meth:`Network._revoke_mcast`
    reconstructs mid-fan-out wormhole state when the flight is demoted.
    """

    __slots__ = ("tree", "pkts", "nbytes", "t0", "hop_ns", "batches",
                 "entries")

    def __init__(self, tree: McastTree, pkts: dict, nbytes: int,
                 t0: int, hop_ns: int):
        self.tree = tree
        self.pkts = pkts  # local dst -> Packet
        self.nbytes = nbytes
        self.t0 = t0
        self.hop_ns = hop_ns
        tails: dict[int, list] = {}
        for dst, lvl, link in tree.terminals:
            tail = t0 + lvl * hop_ns + link.wire_ns(nbytes)
            tails.setdefault(tail, []).append((dst, lvl, link))
        self.batches: list[tuple[int, list]] = sorted(tails.items())
        #: pending delivery heap entries, one per batch (None = fired or
        #: canceled)
        self.entries: list[Optional[list]] = [None] * len(self.batches)

    def acquire_at(self, lvl: int) -> int:
        return self.t0 + lvl * self.hop_ns

    def free_at(self, lvl: int, link: DirectedLink) -> int:
        if link in self.tree.terminal_links:
            return self.acquire_at(lvl) + link.wire_ns(self.nbytes)
        return max(self.acquire_at(lvl + 1),
                   self.acquire_at(lvl) + link.wire_ns(self.nbytes))


class Network:
    """Connects NICs through a :class:`FatTreeTopology`."""

    def __init__(self, sim: Simulator, cfg: ClusterConfig, rngs: Optional[RngStreams] = None):
        self.sim = sim
        self.cfg = cfg
        self.topology = FatTreeTopology(sim, cfg)
        self.rng = (rngs or RngStreams(cfg.seed)).stream("network.fault")
        #: flattened rx dispatch: slot per NIC id (None = not attached)
        self._rx: list[Optional[Callable[[Packet], None]]] = [None] * cfg.num_hosts
        self._dead_nics: set[int] = set()
        self.stats = NetworkStats()
        self.express = ExpressStats()
        #: installed by the sharded kernel; None on a monolithic fabric
        self.boundary = None
        #: loopback delivery cost (NI-internal, no wire)
        self.loopback_ns = cfg.lanai_ns(40)
        #: per-hop head advance: cut-through + cable + header serialization
        self._hop_ns = (cfg.switch_latency_ns + cfg.cable_latency_ns
                        + round(cfg.packet_header_bytes * cfg.link_byte_ns))
        #: express engages while armed; faults disarm it (and, with a
        #: nonzero quiet window, a healthy fabric re-arms it later)
        self._express_configured = bool(cfg.express_path)
        self._express_enabled = self._express_configured
        self._reenable_ns = round(cfg.express_reenable_quiet_us * 1_000.0)
        #: earliest time the path may re-arm (None = nothing pending)
        self._rearm_at: Optional[int] = None
        #: id()s of links/switches currently administratively down
        self._down: set[int] = set()
        self._flights: list = []
        #: slow sends spawned but not yet attributed to their route's
        #: links (the window between send() and the process's first step)
        self._slow_pending = 0
        # Observe every administrative state flip, however it happens.
        for sw in self.topology.switches:
            sw.on_state_change = self._fabric_changed
        for link in self.topology.all_links:
            link.on_state_change = self._fabric_changed

    # ------------------------------------------------------------ wiring
    def attach(self, nic_id: int, rx_handler: Callable[[Packet], None]) -> None:
        """Register the receive handler for a NIC (called on tail arrival)."""
        if not (0 <= nic_id < self.cfg.num_hosts):
            raise ValueError(f"NIC id {nic_id} out of range")
        if self._rx[nic_id] is not None:
            raise ValueError(f"NIC {nic_id} already attached")
        self._rx[nic_id] = rx_handler

    def detach(self, nic_id: int) -> None:
        """Unregister a NIC's receive handler (inverse of :meth:`attach`).

        Crash/reboot cycles and session teardown use this so handlers
        are never leaked and a rebooted NIC can re-attach.  Packets in
        flight to a detached NIC are dropped at delivery exactly like
        packets to a dead NIC.
        """
        if not (0 <= nic_id < self.cfg.num_hosts):
            raise ValueError(f"NIC id {nic_id} out of range")
        if self._rx[nic_id] is None:
            raise ValueError(f"NIC {nic_id} not attached")
        self._rx[nic_id] = None

    def attached(self, nic_id: int) -> bool:
        return 0 <= nic_id < self.cfg.num_hosts and self._rx[nic_id] is not None

    def set_nic_dead(self, nic_id: int, dead: bool = True) -> None:
        """Mark a NIC crashed: packets addressed to it vanish."""
        if dead:
            self._dead_nics.add(nic_id)
        else:
            self._dead_nics.discard(nic_id)

    # ----------------------------------------------------- express control
    @property
    def express_active(self) -> bool:
        """True while the express path may still commit flights."""
        return self._express_enabled

    def on_fault(self) -> None:
        """Any fault injection disarms the express path and demotes
        committed flights to wormhole processes (conservative: the
        equivalence argument then holds trivially for everything after
        the injection).  With ``cfg.express_reenable_quiet_us`` > 0 the
        disarm is hysteretic rather than sticky: a quiet period after
        the *latest* fault, with every link and switch back up, re-arms
        the path on the next send — so one transient flap no longer
        demotes the remainder of a long run."""
        if self._express_configured and self._reenable_ns > 0:
            self._rearm_at = self.sim.now + self._reenable_ns
        if self._express_enabled:
            self._express_enabled = False
            while self._flights:
                self._revoke_any(self._flights[0])

    def _fabric_changed(self, obj) -> None:
        # A switch or link flipped state (fault injector or a test poking
        # ``.up`` directly): cached routes are stale and every committed
        # flight's timeline is suspect.
        self.topology.mark_dirty()
        if obj.up:
            self._down.discard(id(obj))
        else:
            self._down.add(id(obj))
        self.on_fault()

    # ------------------------------------------------------------- sending
    def install_boundary(self, boundary) -> None:
        """Attach a :class:`~repro.myrinet.shardlink.ShardBoundary`.

        With a boundary installed, packets enter :meth:`send` carrying
        *global* NIC ids; local traffic is translated to fabric-local
        ids here, cross-shard traffic is handed to the trunk before any
        stats or RNG state is touched.
        """
        self.boundary = boundary

    def send(self, pkt: Packet) -> None:
        """Inject a packet; returns immediately (transit is asynchronous)."""
        b = self.boundary
        if b is not None:
            if not b.is_local(pkt.dst_nic):
                # Cross-shard: a cached express route cannot span
                # fabrics, so the would-be single-callback commit is
                # demoted to the wormhole-style trunk handoff.  This
                # precedes the loss/corrupt draws deliberately — the
                # local RNG stream must not see remote traffic.
                if self._express_enabled and not self.sim.trace.enabled:
                    self.express.boundary_demotions += 1
                b.handoff(pkt, self.sim.now)
                return
            pkt.src_nic = b.to_local(pkt.src_nic)
            pkt.dst_nic = b.to_local(pkt.dst_nic)
        self.stats.sent += 1
        if self.cfg.packet_loss_prob and self.rng.random() < self.cfg.packet_loss_prob:
            self.stats.dropped_loss += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("net.drop", pkt.src_nic, msg=pkt.msg_id,
                                    dst=pkt.dst_nic, reason="loss")
            return
        if self.cfg.packet_corrupt_prob and self.rng.random() < self.cfg.packet_corrupt_prob:
            pkt.corrupted = True
        if (not self._express_enabled and self._rearm_at is not None
                and not self._down and self.sim.now >= self._rearm_at):
            self._express_enabled = True
            self._rearm_at = None
            self.express.reenabled += 1
        if self._express_enabled and not self.sim.trace.enabled and self._try_express(pkt):
            return
        self._dispatch_slow(pkt)

    def _dispatch_slow(self, pkt: Packet) -> None:
        if pkt.src_nic == pkt.dst_nic:
            self.sim.spawn(self._traverse_loopback(pkt), name=f"pkt{pkt.xmit_id}")
            return
        # Counted *before* the process first runs so a same-tick express
        # attempt cannot miss it; the process converts the pending count
        # into per-link slow_refs once it knows its route.
        self._slow_pending += 1
        self.sim.spawn(self._traverse(pkt), name=f"pkt{pkt.xmit_id}")

    def send_multicast(self, src: int, dsts, make_pkt: Callable[[int], Packet],
                       channel: int = 0) -> None:
        """Inject one fan-out from ``src`` to every destination in ``dsts``.

        ``make_pkt(dst)`` constructs the per-destination packet; all
        packets of one fan-out must have the same wire size (collective
        descriptors do).  When a spanning tree exists the whole fan-out
        traverses shared links once — and, on an idle fabric with the
        express path armed, delivers as pooled callback batches (one per
        distinct terminal tail time).  Per-destination delivery timing is
        identical to unicast either way.  With a shard boundary
        installed, cross-shard destinations are demoted to the trunk
        packet-by-packet before any stats or RNG state is touched.
        """
        b = self.boundary
        if b is not None:
            remote = [d for d in dsts if not b.is_local(d)]
            if remote:
                if self._express_enabled and not self.sim.trace.enabled:
                    self.express.boundary_demotions += len(remote)
                for d in remote:
                    b.handoff(make_pkt(d), self.sim.now)
                dsts = [d for d in dsts if b.is_local(d)]
        loop = [d for d in dsts if d == src]
        dsts = [d for d in dsts if d != src]
        for d in loop:
            self.send(make_pkt(d))
        if not dsts:
            return
        pkts: dict[int, Packet] = {}
        for d in dsts:
            pkt = make_pkt(d)
            if b is not None:
                pkt.src_nic = b.to_local(pkt.src_nic)
                pkt.dst_nic = b.to_local(pkt.dst_nic)
            pkts[pkt.dst_nic] = pkt
        src_l = b.to_local(src) if b is not None else src
        self.stats.sent += len(pkts)
        # One loss draw and one corruption draw for the whole fan-out:
        # the tree is a single worm, so it is lost or corrupted as a unit
        # (and the RNG stream stays mode- and strategy-invariant).
        if self.cfg.packet_loss_prob and self.rng.random() < self.cfg.packet_loss_prob:
            self.stats.dropped_loss += len(pkts)
            if self.sim.trace.enabled:
                for pkt in pkts.values():
                    self.sim.trace.emit("net.drop", pkt.src_nic, msg=pkt.msg_id,
                                        dst=pkt.dst_nic, reason="loss")
            return
        if self.cfg.packet_corrupt_prob and self.rng.random() < self.cfg.packet_corrupt_prob:
            for pkt in pkts.values():
                pkt.corrupted = True
        if (not self._express_enabled and self._rearm_at is not None
                and not self._down and self.sim.now >= self._rearm_at):
            self._express_enabled = True
            self._rearm_at = None
            self.express.reenabled += 1
        tree = self.topology.multicast_tree(src_l, list(pkts), channel)
        if tree is None:
            # No single spanning tree covers the set (a needed link or
            # spine is down): degrade to independent unicasts, each with
            # its own express attempt and noroute/linkdown accounting.
            for dst in sorted(pkts):
                pkt = pkts[dst]
                if (self._express_enabled and not self.sim.trace.enabled
                        and self._try_express(pkt)):
                    continue
                self._dispatch_slow(pkt)
            return
        nbytes = next(iter(pkts.values())).wire_bytes(self.cfg.packet_header_bytes)
        if (self._express_enabled and not self.sim.trace.enabled
                and self._try_express_mcast(tree, pkts, nbytes)):
            return
        for link in tree.all_links:
            link.slow_refs += 1
        self.sim.spawn(self._traverse_mcast(tree, pkts, nbytes),
                       name=f"mcast{next(iter(pkts.values())).xmit_id}")

    # ------------------------------------------------------- express path
    def _try_express(self, pkt: Packet) -> bool:
        sim = self.sim
        if pkt.src_nic == pkt.dst_nic:
            sim.call_after(self.loopback_ns, self._express_loopback, pkt)
            self.express.loopback += 1
            return True
        route = self.topology.cached_route(pkt.src_nic, pkt.dst_nic, pkt.channel)
        if route is None:
            return False  # slow path owns the noroute drop accounting
        # A back-to-back send down the *same* route joins the committed
        # train instead of revoking it: the follower's schedule is the
        # FIFO handoff the slow path would produce, and the train still
        # keeps only one pending callback (re-armed member-to-member).
        head = route[0].express_flight
        if (head is not None and self.cfg.express_trains
                and not self._slow_pending
                and isinstance(head, _ExpressTrain) and head.route == route
                and all(link.express_flight is head and not link.slow_refs
                        for link in route)):
            nbytes = pkt.wire_bytes(self.cfg.packet_header_bytes)
            m = head.append(pkt, nbytes, sim.now)
            for j, link in enumerate(route):
                link.busy_until = m.free[j]
            self.express.train_joins += 1
            return True
        # A committed flight claiming any link on this route must be
        # demoted first: the new packet may contend, which its frozen
        # timeline cannot absorb.  Revoking *before* this packet touches
        # any port preserves FIFO acquisition order.
        for link in route:
            if link.express_flight is not None:
                self._revoke_any(link.express_flight)
        if self._slow_pending:
            # A slow send was just spawned and has not yet published its
            # route; it could be headed for any link, so be conservative.
            self.express.fallback_active += 1
            return False
        now = sim.now
        for link in route:
            if link.slow_refs:
                self.express.fallback_active += 1
                return False
            if not link._port.idle or link.busy_until > now:
                self.express.fallback_busy += 1
                return False
        nbytes = pkt.wire_bytes(self.cfg.packet_header_bytes)
        tr = _ExpressTrain(route, self._hop_ns)
        m = tr.append(pkt, nbytes, now)
        for j, link in enumerate(route):
            link.express_flight = tr
            link.busy_until = m.free[j]
        tr.entry = sim.call_after(m.free[-1] - now, self._express_fire, tr)
        self._flights.append(tr)
        self.express.commits += 1
        return True

    def _express_loopback(self, pkt: Packet) -> None:
        # A blocked receive FIFO has no upstream link to backpressure on
        # loopback, so a pending waitable is simply not waited on — the
        # slow path's waiting process has no further effects either.
        self._deliver(pkt)

    def _express_fire(self, tr: _ExpressTrain) -> None:
        """The train's pooled delivery callback: delivers one member,
        then re-arms itself for the next member (if any)."""
        sim = self.sim
        route = tr.route
        m = tr.members[tr.next_up]
        tr.next_up += 1
        last_j = len(route) - 1
        done = tr.next_up == len(tr.members)
        if done:
            self._flights.remove(tr)
            tr.entry = None
            for link in route:
                link.express_flight = None
                link.busy_until = 0
        # Per-link accounting in exactly the slow path's amounts.
        for j in range(last_j):
            route[j].account(m.nbytes, m.free[j] - m.acq[j])
        pending = self._deliver(m.pkt)
        last = route[last_j]
        if pending is None:
            last.account(m.nbytes, sim.now - m.acq[last_j])
            if not done:
                nxt = tr.members[tr.next_up]
                tr.entry = sim.call_after(nxt.free[last_j] - sim.now,
                                          self._express_fire, tr)
        else:
            # Receive FIFO full: hold the last link for real until the
            # NIC drains, so congestion backs into the fabric exactly
            # like the wormhole path ("congestion rapidly spreads").
            # Followers' frozen schedules assumed the link frees on
            # time, so they demote to wormhole processes queueing
            # behind the drain in FIFO order.
            if not last.try_acquire():
                raise SimError(f"express flight lost its tail link {last.name}")
            sim.spawn(self._express_drain(m, last, pending),
                      name=f"pkt{m.pkt.xmit_id}")
            if not done:
                self._flights.remove(tr)
                tr.entry = None
                for link in route:
                    link.express_flight = None
                    link.busy_until = 0
                self._demote_members(tr)
        self.express.delivered += 1

    def _express_drain(self, m: _TrainMember, last: DirectedLink, pending):
        yield pending
        last.account(m.nbytes, self.sim.now - m.acq[-1])
        last.release()

    def _revoke(self, tr: _ExpressTrain) -> None:
        """Demote a committed train to wormhole processes, reconstructing
        exactly the state the slow path would be in right now for every
        undelivered member: links a virtual head has exited are accounted
        (and, while still inside their occupancy window, re-held with
        their release pre-scheduled); the link each head currently
        occupies is re-acquired and a continuation process resumes the
        traversal mid-hop.  Members not yet on the wire re-enter as
        ordinary slow sends, behind their predecessors in FIFO order."""
        if tr.entry is not None:
            tr.entry[3] = None  # cancel the pending delivery callback
            tr.entry = None
        self._flights.remove(tr)
        for link in tr.route:
            link.express_flight = None
            link.busy_until = 0
        self._demote_members(tr)

    def _demote_members(self, tr: _ExpressTrain) -> None:
        sim = self.sim
        route = tr.route
        now = sim.now
        for m in tr.members[tr.next_up:]:
            # Head index: a grant strictly before `now` is certainly
            # real; a grant scheduled at exactly `now` is real only if
            # the link is actually free right now (a blocked delivery
            # or a just-demoted predecessor can hold a link past the
            # frozen schedule) — ``try_acquire`` is the probe *and* the
            # re-hold.
            mi = len(route) - 1
            while mi >= 0 and m.acq[mi] > now:
                mi -= 1
            while mi >= 0 and not route[mi].try_acquire():
                if m.acq[mi] != now:
                    raise SimError(
                        f"express train lost head link {route[mi].name}")
                mi -= 1
            if mi < 0:
                # Not on the wire yet: the slow path's process would be
                # queued on the first link; re-inject it whole.  Counted
                # pending until the process publishes its slow_refs,
                # like _dispatch_slow.
                self._slow_pending += 1
                self.express.revoked += 1
                sim.spawn(self._restart_member(tr, m),
                          name=f"pkt{m.pkt.xmit_id}")
                continue
            for j in range(mi):
                fa = m.free[j]
                route[j].account(m.nbytes, fa - m.acq[j])
                if fa > now:
                    if not route[j].try_acquire():
                        raise SimError(
                            f"express flight lost held link {route[j].name}")
                    sim.call_after(fa - now, route[j].release)
            # The resumed wormhole can still contend on the links it has
            # not exited yet; links already fully freed stay unmarked.
            for link in route[mi:]:
                link.slow_refs += 1
            self.express.revoked += 1
            sim.spawn(self._resume_traverse(tr, m, mi),
                      name=f"pkt{m.pkt.xmit_id}")

    def _restart_member(self, tr: _ExpressTrain, m: _TrainMember):
        route = tr.route
        for link in route:
            link.slow_refs += 1
        self._slow_pending -= 1
        try:
            yield from self._run_route(m.pkt, route, m.nbytes, 0, [], [])
        finally:
            for link in route:
                link.slow_refs -= 1

    def _resume_traverse(self, tr: _ExpressTrain, m: _TrainMember, mi: int):
        route = tr.route
        held = [route[mi]]
        try:
            if mi < len(route) - 1:
                # The wormhole would be mid-hop: inside the timeout begun
                # when link mi was acquired.
                wake = m.acq[mi] + tr.hop_ns
                if wake > self.sim.now:
                    yield self.sim.timeout(wake - self.sim.now)
            yield from self._run_route(m.pkt, route, m.nbytes, mi + 1,
                                       m.acq[:mi + 1], held)
        finally:
            for link in route[mi:]:
                link.slow_refs -= 1

    def _revoke_any(self, fl) -> None:
        if isinstance(fl, _McastFlight):
            self._revoke_mcast(fl)
        else:
            self._revoke(fl)

    # -------------------------------------------------- express multicast
    def _try_express_mcast(self, tree: McastTree, pkts: dict, nbytes: int) -> bool:
        sim = self.sim
        for link in tree.all_links:
            if link.express_flight is not None:
                self._revoke_any(link.express_flight)
        if self._slow_pending:
            self.express.mcast_fallbacks += 1
            return False
        now = sim.now
        for link in tree.all_links:
            if link.slow_refs or not link._port.idle or link.busy_until > now:
                self.express.mcast_fallbacks += 1
                return False
        fl = _McastFlight(tree, pkts, nbytes, now, self._hop_ns)
        for lvl, links in enumerate(tree.levels):
            for link in links:
                link.express_flight = fl
                link.busy_until = fl.free_at(lvl, link)
        for i, (tail, _terms) in enumerate(fl.batches):
            fl.entries[i] = sim.call_after(tail - now, self._express_fire_mcast, fl, i)
        self._flights.append(fl)
        self.express.mcast_commits += 1
        return True

    def _express_fire_mcast(self, fl: _McastFlight, i: int) -> None:
        """One pooled callback batch: every terminal with this tail time."""
        sim = self.sim
        _tail, terms = fl.batches[i]
        fl.entries[i] = None
        self.express.mcast_batches += 1
        for dst, lvl, link in terms:
            link.express_flight = None
            link.busy_until = 0
            pending = self._deliver(fl.pkts[dst])
            if pending is None:
                link.account(fl.nbytes, sim.now - fl.acquire_at(lvl))
            else:
                # Receive FIFO full: hold this terminal link for real
                # until the NIC drains, like the unicast express path.
                if not link.try_acquire():
                    raise SimError(f"express mcast lost terminal link {link.name}")
                sim.spawn(self._express_mcast_drain(fl, lvl, link, pending),
                          name=f"mc{fl.pkts[dst].xmit_id}")
        if all(e is None for e in fl.entries):
            self._flights.remove(fl)
            term = fl.tree.terminal_links
            for lvl, links in enumerate(fl.tree.levels):
                for link in links:
                    if link in term:
                        continue
                    link.express_flight = None
                    link.busy_until = 0
                    link.account(fl.nbytes, fl.free_at(lvl, link) - fl.acquire_at(lvl))
            self.express.mcast_delivered += 1

    def _express_mcast_drain(self, fl: _McastFlight, lvl: int,
                             link: DirectedLink, pending):
        yield pending
        link.account(fl.nbytes, self.sim.now - fl.acquire_at(lvl))
        link.release()

    def _revoke_mcast(self, fl: _McastFlight) -> None:
        """Demote a committed multicast flight to the wormhole fan-out,
        reconstructing the level-synchronous wave state the slow path
        would be in right now: levels the wave has exited are accounted
        (non-terminals re-held with releases pre-scheduled, unfired
        terminals handed to per-terminal finishers), the current wave
        level is re-acquired, and a continuation resumes mid-hop."""
        sim = self.sim
        pending_terms: list[tuple[int, int, DirectedLink]] = []
        for i, e in enumerate(fl.entries):
            if e is not None:
                e[3] = None  # cancel the pending batch callback
                fl.entries[i] = None
                pending_terms.extend(fl.batches[i][1])
        self._flights.remove(fl)
        tree, nbytes = fl.tree, fl.nbytes
        term = tree.terminal_links
        pending_links = {link for _d, _l, link in pending_terms}
        for link in tree.all_links:
            if link.express_flight is fl:
                link.express_flight = None
                link.busy_until = 0
        now = sim.now
        m = min((now - fl.t0) // fl.hop_ns, tree.num_levels - 1)
        acq: dict[DirectedLink, int] = {}
        for lvl in range(m):
            for link in tree.levels[lvl]:
                if link in term:
                    if link not in pending_links:
                        continue  # its batch already fired and cleaned up
                    if not link.try_acquire():
                        raise SimError(f"express mcast lost terminal {link.name}")
                    dst = tree.downstream[link][0]
                    sim.spawn(self._mcast_finish(link, fl.pkts[dst], nbytes,
                                                 fl.acquire_at(lvl)),
                              name=f"mc{fl.pkts[dst].xmit_id}")
                else:
                    fa = fl.free_at(lvl, link)
                    link.account(nbytes, fa - fl.acquire_at(lvl))
                    if fa > now:
                        if not link.try_acquire():
                            raise SimError(f"express mcast lost held link {link.name}")
                        sim.call_after(fa - now, link.release)
        for link in tree.levels[m]:
            if link in term and link not in pending_links:
                continue
            if not link.try_acquire():
                raise SimError(f"express mcast lost head link {link.name}")
            acq[link] = fl.acquire_at(m)
        for link in [lk for lvl in tree.levels[m:] for lk in lvl]:
            link.slow_refs += 1
        self.express.mcast_revoked += 1
        sim.spawn(self._resume_mcast(fl, m, acq, pending_terms),
                  name=f"mcast{next(iter(fl.pkts.values())).xmit_id}")

    def _resume_mcast(self, fl: _McastFlight, m: int,
                      acq: dict, pending_terms: list):
        sim = self.sim
        tree, nbytes = fl.tree, fl.nbytes
        marked = [lk for lvl in tree.levels[m:] for lk in lvl]
        try:
            # Terminals on the current wave level serialize on their own
            # clock; deeper terminals are reached by the resumed wave.
            for dst, lvl, link in pending_terms:
                if lvl == m:
                    sim.spawn(self._mcast_finish(link, fl.pkts[dst], nbytes,
                                                 fl.acquire_at(m)),
                              name=f"mc{fl.pkts[dst].xmit_id}")
            if m < tree.num_levels - 1:
                wake = fl.acquire_at(m) + fl.hop_ns
                if wake > sim.now:
                    yield sim.timeout(wake - sim.now)
                yield from self._run_mcast(tree, fl.pkts, nbytes, m + 1, acq)
        finally:
            for link in marked:
                link.slow_refs -= 1

    # ---------------------------------------------------- wormhole mcast
    def _traverse_mcast(self, tree: McastTree, pkts: dict, nbytes: int):
        try:
            yield from self._run_mcast(tree, pkts, nbytes, 0, {})
        finally:
            for link in tree.all_links:
                link.slow_refs -= 1

    def _run_mcast(self, tree: McastTree, pkts: dict, nbytes: int,
                   start: int, acq: dict):
        """The level-synchronous wormhole fan-out from tree level
        ``start``; ``acq`` carries acquired-at times of already-held
        upstream links so a revoked flight can resume mid-wave."""
        sim = self.sim
        hop_ns = self._hop_ns
        term = tree.terminal_links
        dead: set = set()
        for j in range(start, tree.num_levels):
            for link in tree.levels[j]:
                parent = tree.parent.get(link)
                if parent is not None and parent in dead:
                    dead.add(link)
                    continue
                yield link.acquire()
                if not link.up:
                    link.release()
                    dead.add(link)
                    self.stats.dropped_linkdown += len(tree.downstream[link])
                    if sim.trace.enabled:
                        for d in tree.downstream[link]:
                            sim.trace.emit("net.drop", d, msg=pkts[d].msg_id,
                                           src=pkts[d].src_nic, reason="linkdown")
                    continue
                acq[link] = sim.now
            if j > 0:
                # Children acquired: the previous level's interior links
                # free once their serialization completes (terminals are
                # owned by their finishers instead).
                for plink in tree.levels[j - 1]:
                    if plink in term or plink in dead or plink not in acq:
                        continue
                    free_at = max(sim.now, acq[plink] + plink.wire_ns(nbytes))
                    plink.account(nbytes, free_at - acq[plink])
                    sim.schedule(free_at - sim.now, plink.release)
            for dst, lvl, tlink in tree.terminals:
                if lvl != j or tlink in dead:
                    continue
                sim.spawn(self._mcast_finish(tlink, pkts[dst], nbytes, acq[tlink]),
                          name=f"mc{pkts[dst].xmit_id}")
            if j < tree.num_levels - 1:
                yield sim.timeout(hop_ns)

    def _mcast_finish(self, link: DirectedLink, pkt: Packet, nbytes: int,
                      t_acq: int):
        """Finish one terminal hop: wait out serialization, deliver (with
        FIFO-full backpressure holding the link), account, release."""
        sim = self.sim
        tail = t_acq + link.wire_ns(nbytes)
        if tail > sim.now:
            yield sim.timeout(tail - sim.now)
        if not link.up:
            self.stats.dropped_linkdown += 1
            if sim.trace.enabled:
                sim.trace.emit("net.drop", pkt.dst_nic, msg=pkt.msg_id,
                               src=pkt.src_nic, reason="linkdown")
            link.release()
            return
        pending = self._deliver(pkt)
        if pending is not None:
            yield pending
        link.account(nbytes, sim.now - t_acq)
        link.release()

    # ----------------------------------------------------------- delivery
    def _deliver(self, pkt: Packet):
        """Hand a packet to the destination NIC.

        Returns None when accepted immediately, or a waitable the caller
        must wait on while the NIC's receive FIFO is full — with the
        upstream link still held, so congestion backs up into the fabric
        (Section 2's "congestion rapidly spreads").
        """
        if pkt.dst_nic in self._dead_nics:
            self.stats.dropped_dead_nic += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("net.drop", pkt.dst_nic, msg=pkt.msg_id,
                                    src=pkt.src_nic, reason="dead_nic")
            return None
        handler = self._rx[pkt.dst_nic]
        if handler is None:
            self.stats.dropped_dead_nic += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("net.drop", pkt.dst_nic, msg=pkt.msg_id,
                                    src=pkt.src_nic, reason="dead_nic")
            return None
        self.stats.delivered += 1
        self.stats.bytes_delivered += pkt.payload_bytes
        if self.sim.trace.enabled:
            self.sim.trace.emit("net.deliver", pkt.dst_nic, msg=pkt.msg_id,
                                src=pkt.src_nic, pkt=pkt.kind.name,
                                nbytes=pkt.payload_bytes)
        return handler(pkt)

    # ------------------------------------------------------ wormhole path
    def _traverse_loopback(self, pkt: Packet):
        yield self.sim.timeout(self.loopback_ns)
        pending = self._deliver(pkt)
        if pending is not None:
            yield pending

    def _traverse(self, pkt: Packet):
        route = self.topology.cached_route(pkt.src_nic, pkt.dst_nic, pkt.channel)
        if route is not None:
            for link in route:
                link.slow_refs += 1
        # Route published (or there is none): stop being "pending".
        self._slow_pending -= 1
        try:
            if route is None:
                self.stats.dropped_noroute += 1
                if self.sim.trace.enabled:
                    self.sim.trace.emit("net.drop", pkt.dst_nic, msg=pkt.msg_id,
                                        src=pkt.src_nic, reason="noroute")
                return
            nbytes = pkt.wire_bytes(self.cfg.packet_header_bytes)
            yield from self._run_route(pkt, route, nbytes, 0, [], [])
        finally:
            if route is not None:
                for link in route:
                    link.slow_refs -= 1

    def _run_route(self, pkt: Packet, route: list[DirectedLink], nbytes: int,
                   start: int, acquired_at: list[int], held: list[DirectedLink]):
        """The wormhole traversal loop from hop ``start`` onward.

        ``acquired_at``/``held`` carry prior-hop state so a revoked
        express flight can resume mid-route with identical behaviour.
        """
        sim = self.sim
        hop_ns = self._hop_ns

        def fail_cleanup() -> None:
            for link in held:
                link.release()
            self.stats.dropped_linkdown += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit("net.drop", pkt.dst_nic, msg=pkt.msg_id,
                                    src=pkt.src_nic, reason="linkdown")

        for i in range(start, len(route)):
            link = route[i]
            yield link.acquire()
            if not link.up:
                link.release()
                fail_cleanup()
                return
            held.append(link)
            acquired_at.append(sim.now)
            if i > 0:
                # The head has moved downstream: the upstream link frees
                # once its serialization completes (backpressure already
                # happened implicitly while we waited to acquire).
                prev = route[i - 1]
                prev_busy = prev.wire_ns(nbytes)
                free_at = max(sim.now, acquired_at[i - 1] + prev_busy)
                prev.account(nbytes, free_at - acquired_at[i - 1])
                sim.schedule(free_at - sim.now, prev.release)
                held.remove(prev)
            if i < len(route) - 1:
                yield sim.timeout(hop_ns)

        last = route[-1]
        tail_at = acquired_at[-1] + last.wire_ns(nbytes)
        if tail_at > sim.now:
            yield sim.timeout(tail_at - sim.now)
        if not last.up:
            fail_cleanup()
            return
        # Deliver before releasing: a full receive FIFO keeps the final
        # link occupied, backpressuring the whole path (Section 2).
        pending = self._deliver(pkt)
        if pending is not None:
            yield pending
        last.account(nbytes, sim.now - acquired_at[-1])
        last.release()
        held.remove(last)

    # ------------------------------------------------------------- queries
    def min_latency_ns(self, src: int, dst: int, nbytes_on_wire: int) -> int:
        """Uncongested head-to-tail transit time (for calibration tests)."""
        if src == dst:
            return self.loopback_ns
        route = self.topology.route(src, dst, 0)
        if route is None:
            raise ValueError("no route")
        return (len(route) - 1) * self._hop_ns + route[-1].wire_ns(nbytes_on_wire)
