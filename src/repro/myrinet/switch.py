"""Switch inventory objects.

Contention and latency are modelled at the links (see
:mod:`repro.myrinet.network`); the :class:`Switch` object carries identity,
level, and administrative state so topology reconfiguration (hot-swap,
Section 3.2) has something to operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Switch"]


@dataclass
class Switch:
    """One crossbar switch in the fabric."""

    switch_id: int
    level: str  # "leaf" or "spine"
    up: bool = True
    #: ids of hosts attached (leaf switches only)
    hosts: list[int] = field(default_factory=list)

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"<Switch {self.level}{self.switch_id} {state}>"
