"""Switch inventory objects.

Contention and latency are modelled at the links (see
:mod:`repro.myrinet.network`); the :class:`Switch` object carries identity,
level, and administrative state so topology reconfiguration (hot-swap,
Section 3.2) has something to operate on.

``up`` is a property so the fabric can observe administrative flips (the
express path must invalidate its route cache when a switch changes state,
even when a test toggles the attribute directly rather than going through
the fault injector).
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["Switch"]


class Switch:
    """One crossbar switch in the fabric."""

    __slots__ = ("switch_id", "level", "_up", "hosts", "on_state_change")

    def __init__(self, switch_id: int, level: str, up: bool = True,
                 hosts: Optional[list[int]] = None):
        self.switch_id = switch_id
        self.level = level  # "leaf" or "spine"
        self._up = up
        #: ids of hosts attached (leaf switches only)
        self.hosts: list[int] = hosts if hosts is not None else []
        #: fabric hook fired on every administrative up/down flip
        self.on_state_change: Optional[Callable[["Switch"], None]] = None

    @property
    def up(self) -> bool:
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        changed = value != self._up
        self._up = value
        if changed and self.on_state_change is not None:
            self.on_state_change(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Switch):
            return NotImplemented
        return (self.switch_id, self.level, self.up, self.hosts) == \
               (other.switch_id, other.level, other.up, other.hosts)

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"<Switch {self.level}{self.switch_id} {state}>"
