"""Link-level packets.

Every packet carries the fields Section 5.1 describes: a source route, a
packet type, the logical flow-control channel id, a sequence bit, the
sender's channel epoch (for self-resynchronization after reboots), a
32-bit timestamp stamped by the sending interface and reflected in
acknowledgments, and the destination endpoint id plus protection key.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

__all__ = ["PacketType", "NackReason", "Packet", "pool_stats",
           "reset_pool_stats"]

_packet_ids = itertools.count(1)

#: recycled Packet shells (see Packet.alloc/recycle); bounded so a burst
#: can't pin memory forever
_pool: list["Packet"] = []
_POOL_MAX = 512

#: allocation accounting: hits (shell reused), misses (fresh construction
#: through alloc), recycled (shells returned).  Observability only — the
#: regression test pins a steady-state protocol burst at zero misses.
_pool_stats = {"hits": 0, "misses": 0, "recycled": 0}


def pool_stats() -> dict:
    """A snapshot of the shell pool's hit/miss/recycle counters."""
    return dict(_pool_stats)


def reset_pool_stats() -> None:
    for k in _pool_stats:
        _pool_stats[k] = 0


class PacketType(Enum):
    DATA = "data"
    ACK = "ack"
    NACK = "nack"
    SYNC = "sync"  # channel re-initialization handshake
    COLL = "coll"  # firmware collective (barrier/broadcast/reduce) step


class NackReason(Enum):
    #: destination endpoint not bound to an NI frame; triggers a driver
    #: make-resident request at the receiver and a later retransmission
    NOT_RESIDENT = "not_resident"
    #: destination receive queue full (Figure 6's 3-client drop)
    RECV_OVERRUN = "recv_overrun"
    #: protection key mismatch -> message is returned to its sender
    BAD_KEY = "bad_key"
    #: no such endpoint -> returned to sender
    NO_ENDPOINT = "no_endpoint"
    #: receiver channel state out of sync (peer rebooted)
    OUT_OF_SYNC = "out_of_sync"


@dataclass
class Packet:
    """One Myrinet packet (data or protocol)."""

    src_nic: int
    dst_nic: int
    kind: PacketType
    #: logical flow-control channel index within the (src, dst) pair
    channel: int = 0
    #: stop-and-wait alternating sequence bit
    seq: int = 0
    #: sender channel epoch for self-synchronization (Section 5.1)
    epoch: int = 0
    #: 32-bit timestamp from the sending NI; ACKs reflect it (Section 5.1)
    timestamp: int = 0
    #: payload length in bytes (data packets)
    payload_bytes: int = 0
    #: destination endpoint id on the receiving node (data packets)
    dst_endpoint: int = -1
    #: source endpoint id (so replies and returns can be routed back)
    src_endpoint: int = -1
    #: True when the message is an AM reply (separate receive queue)
    is_reply: bool = False
    #: True when the payload moves via SBus DMA to a host memory region
    is_bulk: bool = False
    #: protection key stamped by the sending NI (Section 3.1)
    key: int = 0
    #: globally unique id of the *message* this packet carries; constant
    #: across retransmissions so receivers can suppress duplicates
    msg_id: int = 0
    #: NACK reason (nack packets)
    nack_reason: Optional[NackReason] = None
    #: piggybacked acknowledgment riding on a data packet (extension from
    #: the paper's conclusions): (channel, seq, epoch, msg_id, timestamp)
    piggyback_ack: Optional[tuple] = None
    #: opaque upper-layer message payload (descriptor, handler args, ...)
    body: Any = None
    #: set by fault injection when the packet was corrupted in flight
    corrupted: bool = False
    #: unique per-transmission id (differs across retransmissions)
    xmit_id: int = field(default_factory=lambda: next(_packet_ids))

    def wire_bytes(self, header_bytes: int) -> int:
        """Total bytes this packet occupies on a link."""
        return header_bytes + max(0, self.payload_bytes)

    # ---------------------------------------------------------- pooling
    @classmethod
    def alloc(cls, src_nic: int, dst_nic: int, kind: "PacketType", **kw) -> "Packet":
        """A packet from the free list, observationally fresh.

        Every field is reset to its dataclass default and ``xmit_id`` is
        drawn from the same counter the constructor uses, so a recycled
        packet is indistinguishable from a newly constructed one —
        pooling is purely an allocation-rate optimization.  Callers that
        recycle must guarantee the receiver does not retain the object
        (the ACK/NACK protocol paths in :mod:`repro.nic.firmware` do).
        """
        if _pool:
            _pool_stats["hits"] += 1
            p = _pool.pop()
            p.src_nic = src_nic
            p.dst_nic = dst_nic
            p.kind = kind
            p.channel = 0
            p.seq = 0
            p.epoch = 0
            p.timestamp = 0
            p.payload_bytes = 0
            p.dst_endpoint = -1
            p.src_endpoint = -1
            p.is_reply = False
            p.is_bulk = False
            p.key = 0
            p.msg_id = 0
            p.nack_reason = None
            p.piggyback_ack = None
            p.body = None
            p.corrupted = False
            p.xmit_id = next(_packet_ids)
            for k, v in kw.items():
                setattr(p, k, v)
            return p
        _pool_stats["misses"] += 1
        return cls(src_nic, dst_nic, kind, **kw)

    def recycle(self) -> None:
        """Return a dead packet to the free list (owner's responsibility)."""
        if len(_pool) < _POOL_MAX:
            _pool_stats["recycled"] += 1
            _pool.append(self)

    def __repr__(self) -> str:  # compact for traces
        extra = f" nack={self.nack_reason.value}" if self.nack_reason else ""
        return (
            f"<Pkt {self.kind.value} {self.src_nic}->{self.dst_nic}"
            f" ch{self.channel} seq{self.seq} ep{self.dst_endpoint}"
            f" {self.payload_bytes}B msg{self.msg_id}{extra}>"
        )
