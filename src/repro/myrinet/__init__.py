"""Myrinet fabric model: packets, links, switches, topology, fault injection."""

from .fault import FaultInjector
from .link import DirectedLink
from .network import Network, NetworkStats
from .packet import NackReason, Packet, PacketType
from .switch import Switch
from .topology import FatTreeTopology

__all__ = [
    "DirectedLink",
    "FatTreeTopology",
    "FaultInjector",
    "NackReason",
    "Network",
    "NetworkStats",
    "Packet",
    "PacketType",
    "Switch",
]
