"""Virtual network construction.

A virtual network is "a collection of endpoints that refer to one
another, constructed by configuring the individual endpoints, rather than
through some specific group membership interface" (Section 3.1).  These
helpers do that configuration: allocate endpoints through the segment
driver and install the cross-referencing translations — the all-pairs
pattern for parallel programs (traditional virtual node numbers) and the
star pattern for client/server use.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Generator, Optional, Sequence

from ..sim.rng import RngStreams
from .bundle import Bundle
from .endpoint import Endpoint

if TYPE_CHECKING:
    from ..cluster.builder import Cluster, Node

__all__ = [
    "new_endpoint",
    "parallel_vnet",
    "star_vnet",
    "VirtualNetwork",
    # deprecated spellings, kept as warning shims
    "create_endpoint",
    "build_parallel_vnet",
    "build_star_vnet",
]


def new_endpoint(node: "Node", tag: Optional[int] = None, rngs: Optional[RngStreams] = None) -> Generator:
    """Allocate an endpoint on ``node`` (generator; returns Endpoint).

    A random 64-bit protection key is chosen when ``tag`` is None.
    """
    if tag is None:
        rng = (rngs or RngStreams(node.cfg.seed)).stream(f"tags.node{node.node_id}")
        tag = rng.getrandbits(63) | 1
    state = yield from node.driver.alloc_endpoint(tag=tag)
    return Endpoint(node, state)


class VirtualNetwork:
    """A configured collection of endpoints."""

    def __init__(self, endpoints: Sequence[Endpoint]):
        self.endpoints = list(endpoints)

    def __len__(self) -> int:
        return len(self.endpoints)

    def __getitem__(self, i: int) -> Endpoint:
        return self.endpoints[i]

    def bundle(self) -> Bundle:
        return Bundle(self.endpoints)


def parallel_vnet(cluster: "Cluster", nodes: Sequence[int]) -> Generator:
    """All-pairs virtual network over one endpoint per listed node.

    Translation index j on every endpoint names rank j's endpoint, so
    traditional virtual-node-number addressing falls out (Section 3.1).
    Generator; returns :class:`VirtualNetwork`.
    """
    endpoints: list[Endpoint] = []
    for rank, node_id in enumerate(nodes):
        ep = yield from new_endpoint(cluster.node(node_id), rngs=cluster.rngs)
        endpoints.append(ep)
    for ep in endpoints:
        for rank, peer in enumerate(endpoints):
            ep.map(rank, peer.name, peer.tag)
    return VirtualNetwork(endpoints)


def star_vnet(cluster: "Cluster", server_node: int, client_nodes: Sequence[int], shared_server_ep: bool = True) -> Generator:
    """Client/server virtual networks (the Section 6.4 workload shapes).

    With ``shared_server_ep`` (the OneVN configuration) every client maps
    index 0 to one shared server endpoint; otherwise each client gets its
    own dedicated server endpoint (one virtual network per client).
    Generator; returns ``(server_endpoints, client_endpoints)``.
    """
    server = cluster.node(server_node)
    clients: list[Endpoint] = []
    servers: list[Endpoint] = []
    if shared_server_ep:
        sep = yield from new_endpoint(server, rngs=cluster.rngs)
        servers.append(sep)
    for i, cn in enumerate(client_nodes):
        cep = yield from new_endpoint(cluster.node(cn), rngs=cluster.rngs)
        if not shared_server_ep:
            sep = yield from new_endpoint(server, rngs=cluster.rngs)
            servers.append(sep)
        else:
            sep = servers[0]
        cep.map(0, sep.name, sep.tag)
        sep.map(len(clients), cep.name, cep.tag)
        clients.append(cep)
    return servers, clients


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old}() is deprecated; use repro.api or repro.am.{new}()",
        DeprecationWarning,
        stacklevel=3,
    )


# The shims are plain functions (not generators) so the warning fires at
# call time, before the first yield; they return the canonical generator,
# so old and new call paths execute identically from the kernel's view.
def create_endpoint(node: "Node", tag: Optional[int] = None, rngs: Optional[RngStreams] = None) -> Generator:
    """Deprecated spelling of :func:`new_endpoint`."""
    _deprecated("create_endpoint", "new_endpoint")
    return new_endpoint(node, tag=tag, rngs=rngs)


def build_parallel_vnet(cluster: "Cluster", nodes: Sequence[int]) -> Generator:
    """Deprecated spelling of :func:`parallel_vnet`."""
    _deprecated("build_parallel_vnet", "parallel_vnet")
    return parallel_vnet(cluster, nodes)


def build_star_vnet(cluster: "Cluster", server_node: int, client_nodes: Sequence[int], shared_server_ep: bool = True) -> Generator:
    """Deprecated spelling of :func:`star_vnet`."""
    _deprecated("build_star_vnet", "star_vnet")
    return star_vnet(cluster, server_node, client_nodes, shared_server_ep=shared_server_ep)
