"""GAM: the first-generation Active Messages baseline (Sections 2, 6.1).

"GAM refers to a single-endpoint interface with none of the necessary
enhancements of Section 3" (Figure 3's caption): one communication port
per node, usable by exactly one prearranged parallel program, no
protection keys, no endpoint paging, and no transport protocol — the
interconnect is assumed perfectly reliable, so there are no
acknowledgments, timers, or retransmissions.  Its firmware is also
simpler: fewer instructions per message (smaller descriptors), but bulk
transfers fragment at 4 KB and the firmware does *not* pipeline descriptor
processing with the store-and-forward staging DMAs, which is why it
delivers only ~38 MB/s where AM-II reaches ~44 (Figure 4).

Flow control is the classic request/reply window: every request handler
replies (the library replies when it does not), and at most ``window``
requests per destination are outstanding.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Optional

from ..cluster.config import ClusterConfig
from ..hw.host import Cpu
from ..hw.lanai import LanaiMeter
from ..hw.sbus import SbusDma
from ..myrinet.fault import FaultInjector
from ..myrinet.network import Network
from ..myrinet.packet import Packet, PacketType
from ..osim.threads import Thread
from ..sim.core import Simulator
from ..sim.resources import Gate
from ..sim.rng import RngStreams

__all__ = ["GamNic", "GamEndpoint", "GamNode", "GamCluster"]

#: outstanding requests per destination (GAM's fixed window)
GAM_WINDOW = 16


@dataclass
class GamStats:
    requests_sent: int = 0
    replies_sent: int = 0
    requests_handled: int = 0
    replies_handled: int = 0
    bulk_bytes_sent: int = 0
    window_stalls: int = 0


class _GamMsg:
    __slots__ = ("dst", "is_reply", "nbytes", "is_bulk", "body")

    def __init__(self, dst: int, is_reply: bool, nbytes: int, is_bulk: bool, body: Any):
        self.dst = dst
        self.is_reply = is_reply
        self.nbytes = nbytes
        self.is_bulk = is_bulk
        self.body = body


class GamNic:
    """Single-endpoint NI firmware: no protocol, no virtualization."""

    def __init__(self, sim: Simulator, cfg: ClusterConfig, nic_id: int, network: Network):
        self.sim = sim
        self.cfg = cfg
        self.nic_id = nic_id
        self.network = network
        network.attach(nic_id, self._on_wire_rx)
        self.sbus = SbusDma(sim, cfg, name=f"gam{nic_id}.sbus")
        self.meter = LanaiMeter(cfg)
        self._rx_q: Deque[Packet] = deque()
        self._tx_q: Deque[_GamMsg] = deque()
        #: delivered messages awaiting host consumption
        self.recv_q: Deque[_GamMsg] = deque()
        self._work = Gate(sim, name=f"gam{nic_id}.work")
        self.sim.spawn(self._loop(), name=f"gam{nic_id}.fw")

    def host_enqueue_send(self, msg: _GamMsg) -> bool:
        if len(self._tx_q) >= self.cfg.send_ring_depth:
            return False
        self._tx_q.append(msg)
        self._work.set()
        return True

    def host_poll_recv(self) -> Optional[_GamMsg]:
        if self.recv_q:
            return self.recv_q.popleft()
        return None

    def _on_wire_rx(self, pkt: Packet) -> None:
        self._rx_q.append(pkt)
        self._work.set()

    def _loop(self):
        cfg = self.cfg
        while True:
            self._work.clear()
            if self._rx_q:
                pkt = self._rx_q.popleft()
                yield from self._recv(pkt)
            elif self._tx_q:
                msg = self._tx_q.popleft()
                yield from self._send(msg)
            else:
                yield self._work.wait()

    def _send(self, msg: _GamMsg):
        cfg = self.cfg
        yield self.sim.timeout(self.meter.cost_ns("send", cfg.gam_ni_send_instr))
        if msg.is_bulk and msg.nbytes > 0:
            # No pipelining: the dispatch loop blocks on the staging DMA.
            yield from self.sbus.transfer(msg.nbytes, SbusDma.READ)
        pkt = Packet(
            src_nic=self.nic_id,
            dst_nic=msg.dst,
            kind=PacketType.DATA,
            payload_bytes=msg.nbytes,
            is_reply=msg.is_reply,
            is_bulk=msg.is_bulk,
            body=msg.body,
        )
        self.network.send(pkt)
        yield self.sim.timeout(self.meter.cost_ns("send_post", cfg.gam_ni_send_post_instr))

    def _recv(self, pkt: Packet):
        cfg = self.cfg
        yield self.sim.timeout(self.meter.cost_ns("recv", cfg.gam_ni_recv_instr))
        if pkt.is_bulk and pkt.payload_bytes > 0:
            # Store-and-forward penalty + blocking DMA to host memory.
            yield self.sim.timeout(round(cfg.gam_bulk_extra_us * 1_000))
            yield from self.sbus.transfer(pkt.payload_bytes, SbusDma.WRITE)
        self.recv_q.append(
            _GamMsg(pkt.src_nic, pkt.is_reply, pkt.payload_bytes, pkt.is_bulk, pkt.body)
        )
        yield self.sim.timeout(self.meter.cost_ns("recv_post", cfg.gam_ni_recv_post_instr))


class GamEndpoint:
    """Host-side GAM interface: request/reply with a fixed window."""

    def __init__(self, node: "GamNode"):
        self.node = node
        self.cfg = node.cfg
        self.nic = node.nic
        self.stats = GamStats()
        self._window: dict[int, int] = {}
        self._reassembly: dict[int, list] = {}
        self._next_tid = 0

    # ----------------------------------------------------------------- send
    def request(self, thr: Thread, dst: int, handler: Optional[Callable], *args: Any, nbytes: int = 0):
        """Generator: issue a request (fragmenting bulk at 4 KB)."""
        cfg = self.cfg
        is_bulk = nbytes > cfg.small_payload_max_bytes
        mtu = cfg.gam_mtu_bytes
        nfrags = max(1, -(-nbytes // mtu)) if is_bulk else 1
        self._next_tid += 1
        tid = self._next_tid
        sent = 0
        for frag in range(nfrags):
            frag_bytes = min(mtu, nbytes - sent) if is_bulk else nbytes
            sent += frag_bytes
            while self._window.get(dst, 0) >= GAM_WINDOW:
                self.stats.window_stalls += 1
                processed = yield from self.poll(thr, limit=4)
                if processed == 0:
                    yield from thr.compute(self.cfg.poll_host_ns)
            self._window[dst] = self._window.get(dst, 0) + 1
            meta = {"frag": (tid, frag, nfrags) if is_bulk else None, "auto": False}
            msg = _GamMsg(dst, False, frag_bytes, is_bulk, (handler, args, meta))
            yield from self._enqueue(thr, msg)
            self.stats.requests_sent += 1
            if is_bulk:
                self.stats.bulk_bytes_sent += frag_bytes

    def _enqueue(self, thr: Thread, msg: _GamMsg):
        while True:
            yield from thr.compute(self.cfg.gam_host_send_overhead_ns)
            if self.nic.host_enqueue_send(msg):
                return
            yield from self.poll(thr, limit=4)

    # -------------------------------------------------------------- receive
    def poll(self, thr: Thread, limit: int = 8):
        """Generator: consume arrived messages; returns count processed."""
        yield from thr.compute(self.cfg.poll_resident_ns)
        processed = 0
        while processed < limit:
            msg = self.nic.host_poll_recv()
            if msg is None:
                break
            yield from thr.compute(self.cfg.gam_host_recv_overhead_ns)
            handler, args, meta = msg.body
            if msg.is_reply:
                self.stats.replies_handled += 1
                src = meta.get("reply_src")
                if src is not None and self._window.get(src, 0) > 0:
                    self._window[src] -= 1
                if handler is not None:
                    handler(_GamToken(self, src, 0), *args)
            else:
                self.stats.requests_handled += 1
                frag = meta.get("frag")
                run_handler = True
                nbytes = msg.nbytes
                if frag is not None:
                    tid, _i, n = frag
                    slot = self._reassembly.setdefault((msg.dst, tid), [0, 0])
                    slot[0] += 1
                    slot[1] += msg.nbytes
                    if slot[0] < n:
                        run_handler = False
                    else:
                        nbytes = slot[1]
                        del self._reassembly[(msg.dst, tid)]
                token = _GamToken(self, msg.dst, nbytes)
                if run_handler and handler is not None:
                    cost = handler(token, *args)
                    if isinstance(cost, int) and cost:
                        yield from thr.compute(cost)
                # reply (explicit or library credit reply)
                if token._reply_spec is not None:
                    rhandler, rargs, rnbytes = token._reply_spec
                else:
                    rhandler, rargs, rnbytes = None, (), 0
                rmeta = {"reply_src": self.node.node_id, "auto": token._reply_spec is None}
                rmsg = _GamMsg(msg.dst, True, rnbytes, rnbytes > self.cfg.small_payload_max_bytes, (rhandler, rargs, rmeta))
                self.stats.replies_sent += 1
                yield from self._enqueue(thr, rmsg)
            processed += 1
        return processed


class _GamToken:
    __slots__ = ("endpoint", "src", "nbytes", "_reply_spec")

    def __init__(self, endpoint: GamEndpoint, src: int, nbytes: int):
        self.endpoint = endpoint
        self.src = src
        self.nbytes = nbytes
        self._reply_spec: Optional[tuple] = None

    def reply(self, handler: Optional[Callable], *args: Any, nbytes: int = 0) -> None:
        self._reply_spec = (handler, args, nbytes)


class GamNode:
    """One workstation in a GAM-era cluster (no OS endpoint management)."""

    def __init__(self, sim: Simulator, cfg: ClusterConfig, node_id: int, network: Network):
        self.sim = sim
        self.cfg = cfg
        self.node_id = node_id
        self.cpu = Cpu(sim, cfg.cpu_quantum_ns, cfg.context_switch_ns, name=f"gcpu{node_id}")
        self.nic = GamNic(sim, cfg, node_id, network)
        self.endpoint = GamEndpoint(self)

    def spawn_thread(self, body, name: str = "") -> Thread:
        return Thread(self.sim, self.cpu, body, name=name or f"gam{self.node_id}")


class GamCluster:
    """A cluster running the first-generation layer (Figure 3's 'GAM')."""

    def __init__(self, cfg: Optional[ClusterConfig] = None, **overrides):
        if cfg is None:
            cfg = ClusterConfig()
        if overrides:
            cfg = cfg.with_(**overrides)
        cfg.validate()
        self.cfg = cfg
        self.sim = Simulator()
        self.rngs = RngStreams(cfg.seed)
        self.network = Network(self.sim, cfg, self.rngs)
        self.nodes = [GamNode(self.sim, cfg, i, self.network) for i in range(cfg.num_hosts)]
        self.faults = FaultInjector(self.sim, self.network)

    def node(self, i: int) -> GamNode:
        return self.nodes[i]

    def run(self, until: Optional[int] = None) -> int:
        return self.sim.run(until=until)
