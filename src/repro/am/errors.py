"""Error model of the virtual network interface (Section 3.2).

The interface specifies exactly-once delivery barring unrecoverable
transport conditions; undeliverable messages are *returned to their
sender*, where they invoke an undeliverable-message handler, so
applications choose whether to abort or re-issue without pessimistic
time-outs in the common case.
"""

from __future__ import annotations

__all__ = ["AmError", "BadTranslationError", "EndpointFreedError"]


class AmError(Exception):
    """Base class for Active Message library errors."""


class BadTranslationError(AmError):
    """Communication attempted through an unmapped translation index."""


class EndpointFreedError(AmError):
    """Operation on an endpoint that has been freed."""
