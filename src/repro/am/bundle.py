"""Endpoint bundles: a process's collection of endpoints.

The AM-II interface groups a process's endpoints into bundles so a thread
can service all of them with one call — the single-threaded server of
Section 6.4 is exactly a loop over ``bundle.poll_all``.  Bundles also
support waiting for activity on *any* member endpoint.
"""

from __future__ import annotations

import warnings
from typing import Generator, Optional

from ..osim.threads import CondVar, Thread
from ..sim.core import AnyOf
from .endpoint import Endpoint

__all__ = ["Bundle"]


class Bundle:
    """An ordered collection of endpoints owned by one process."""

    def __init__(self, endpoints: Optional[list[Endpoint]] = None):
        self.endpoints: list[Endpoint] = list(endpoints or [])
        self._next = 0

    def add(self, ep: Endpoint) -> None:
        self.endpoints.append(ep)

    def remove(self, ep: Endpoint) -> None:
        self.endpoints.remove(ep)
        self._next = 0

    def __len__(self) -> int:
        return len(self.endpoints)

    def __iter__(self):
        return iter(self.endpoints)

    def poll_all(self, thr: Thread, limit: int = 8, limit_per_ep: Optional[int] = None) -> Generator:
        """Poll every endpoint once, round-robin; returns total processed.

        Each poll touches the endpoint (uncacheable when resident), so a
        large bundle of resident endpoints is expensive to sweep — the
        ST-96 effect of Section 6.4.  The sweep's touch costs are charged
        as one lump-sum computation up front (one kernel event instead of
        one per endpoint), then each endpoint is drained in rotation
        order.

        ``limit_per_ep`` is the deprecated spelling of ``limit``.
        """
        if limit_per_ep is not None:
            warnings.warn(
                "Bundle.poll_all(limit_per_ep=...) is deprecated; use limit=...",
                DeprecationWarning,
                stacklevel=2,
            )
            limit = limit_per_ep
        n = len(self.endpoints)
        if n == 0:
            return 0
        touch = 0
        for ep in self.endpoints:
            ep._check_alive()
            ep.stats.polls += 1
            touch += ep._poll_touch_ns() + ep._lock_cost()
        yield from thr.compute(touch)
        total = 0
        for k in range(n):
            ep = self.endpoints[(self._next + k) % n]
            total += yield from ep._drain(thr, limit)
        self._next = (self._next + 1) % n
        return total

    def has_pending(self) -> bool:
        return any(ep.has_pending() for ep in self.endpoints)

    def wait_any(self, thr: Thread, timeout_ns: Optional[int] = None) -> Generator:
        """Block until any member endpoint has work (or timeout).

        Returns True when work is pending.  Uses each endpoint's event
        mask; the caller then runs :meth:`poll_all`.
        """
        if not self.endpoints:
            raise ValueError("wait on an empty bundle")
        sim = self.endpoints[0].node.sim
        spin_ns = round(self.endpoints[0].cfg.spin_before_block_us * 1_000)
        spin_end = sim.now + spin_ns
        while sim.now < spin_end:
            if self.has_pending():
                return True
            # Pending work is checked once per sweep, so charging the
            # sweep as one computation is exactly equivalent to the
            # per-endpoint charges it replaces.
            yield from thr.compute(sum(ep._poll_touch_ns() for ep in self.endpoints))
        if self.has_pending():
            return True
        waits = []
        for ep in self.endpoints:
            if not ep.state.event_mask:
                ep.set_event_mask({"recv"})
            waits.append(ep._event_cv.wait())
        if timeout_ns is not None:
            waits.append(sim.timeout(timeout_ns, "timeout"))
        yield from thr.block(AnyOf(sim, waits))
        return self.has_pending()
