"""Endpoint naming and rendezvous (Section 3.1).

Endpoint names are opaque — here, ``(node_id, endpoint_id)`` tuples with no
structure the library interprets — and can be obtained through *any*
rendezvous mechanism.  :class:`NameService` is one such mechanism: a
simple global registry mapping human-readable strings to (name, key)
pairs, standing in for the cluster's directory service.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["NameService"]


class NameService:
    """String -> (endpoint name, protection key) rendezvous registry."""

    def __init__(self) -> None:
        self._registry: dict[str, tuple[tuple[int, int], int]] = {}

    def register(self, label: str, name: tuple[int, int], key: int) -> None:
        if label in self._registry:
            raise ValueError(f"label {label!r} already registered")
        self._registry[label] = (name, key)

    def unregister(self, label: str) -> None:
        self._registry.pop(label, None)

    def lookup(self, label: str) -> Optional[tuple[tuple[int, int], int]]:
        """Returns ((node, ep_id), key) or None."""
        return self._registry.get(label)

    def labels(self) -> list[str]:
        return sorted(self._registry)
