"""The Active Messages II programming interface over virtual networks.

This is the paper's core contribution seen from the application (Section
3): communication is cast as split-phase remote procedure calls between
*endpoints*.  A process may hold many endpoints; addressability and access
rights among a collection of endpoints form a *virtual network*.

The user-level :class:`Endpoint` wraps the shared
:class:`~repro.nic.endpoint_state.EndpointState` with:

* translation-table addressing: operations name destinations by small
  integers; the protected NI stamps the key and the receiver verifies it;
* the request/reply paradigm with **user-level credits** — at most
  ``user_credits`` outstanding requests per translation entry, a credit
  returning with each reply (every request handler replies; the library
  issues a credit-only reply when the handler does not) — the lightweight
  mechanism that normally prevents receive-queue overrun (Section 6.4);
* bulk transfers fragmented at the MTU, reassembled at the receiver;
* polling (:meth:`poll`) and event-driven (:meth:`wait`) reception with
  endpoint event masks projected onto thread synchronization (§3.3);
* the return-to-sender error model: undeliverable messages come back and
  invoke the endpoint's undeliverable handler (§3.2).

All blocking operations are generators executed inside a
:class:`~repro.osim.threads.Thread` body; host CPU costs (send overhead
Os, receive overhead Or, polling cost by residency) are charged here,
which is where the LogP overheads of Figure 3 come from.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..nic.endpoint_state import EndpointState, Residency
from ..nic.message import Message, MsgKind
from ..osim.threads import CondVar, Thread
from ..sim.core import AnyOf, Event
from .errors import AmError, BadTranslationError, EndpointFreedError

if TYPE_CHECKING:
    from ..cluster.builder import Node

__all__ = ["Endpoint", "Token", "AmStats"]

_transfer_ids = itertools.count(1)

#: handler signature: handler(token, *args) -> Optional[int]
#: (an int return value is charged to the polling thread as handler ns)
Handler = Callable[..., Optional[int]]


@dataclass
class AmStats:
    requests_sent: int = 0
    replies_sent: int = 0
    auto_replies: int = 0
    requests_handled: int = 0
    replies_handled: int = 0
    bulk_bytes_sent: int = 0
    bulk_bytes_received: int = 0
    undeliverable: int = 0
    credit_stalls: int = 0
    ring_stalls: int = 0
    polls: int = 0
    wakeups: int = 0


class Token:
    """Receive-side handle passed to handlers; carries the reply path."""

    __slots__ = ("endpoint", "src_node", "src_ep", "reply_key", "request_id", "nbytes", "replied", "_reply_spec")

    def __init__(self, endpoint: "Endpoint", src_node: int, src_ep: int, reply_key: int, request_id: int, nbytes: int):
        self.endpoint = endpoint
        self.src_node = src_node
        self.src_ep = src_ep
        self.reply_key = reply_key
        self.request_id = request_id
        self.nbytes = nbytes
        self.replied = False
        self._reply_spec: Optional[tuple] = None

    def reply(self, handler: Optional[Handler], *args: Any, nbytes: int = 0) -> None:
        """Request handlers call this (at most once) to send the reply."""
        if self.replied:
            raise AmError("handler replied twice")
        self.replied = True
        self._reply_spec = (handler, args, nbytes)


class Endpoint:
    """User-level endpoint: the unit of network virtualization."""

    def __init__(self, node: "Node", state: EndpointState):
        self.node = node
        self.state = state
        self.cfg = node.cfg
        self.nic = node.nic
        self.driver = node.driver
        self.stats = AmStats()

        #: credits available per translation index (Section 6.4)
        self._credits: dict[int, int] = {}
        #: outstanding request id -> translation index (credit owner)
        self._outstanding: dict[int, int] = {}
        #: reassembly buffers: transfer_id -> [count, total, token parts]
        self._reassembly: dict[int, list] = {}
        self._event_cv = CondVar(node.sim, name=f"ep{state.ep_id}.ev")
        state.event_callback = self._on_event
        #: fn(msg, reason) invoked when a message is returned (§3.2)
        self.undeliverable_handler: Optional[Callable[[Message, Any], None]] = None
        #: default ns charged per handled message when a handler returns None
        self.handler_cost_ns = 0

    # ------------------------------------------------------------- identity
    @property
    def name(self) -> tuple[int, int]:
        return self.state.name

    @property
    def tag(self) -> int:
        return self.state.tag

    def set_tag(self, key: int) -> None:
        self.state.tag = key

    def set_shared(self, shared: bool = True) -> None:
        """Shared endpoints pay a lock cost per operation (Section 3.3)."""
        self.state.shared = shared

    def map(self, index: int, name: tuple[int, int], key: int) -> None:
        """Install a translation: small integer -> (endpoint name, key)."""
        node_id, ep_id = name
        self.state.map_translation(index, node_id, ep_id, key)
        self._credits.setdefault(index, self.cfg.user_credits)

    def unmap(self, index: int) -> None:
        self.state.unmap_translation(index)
        self._credits.pop(index, None)

    def credits_available(self, index: int) -> int:
        return self._credits.get(index, 0)

    # ----------------------------------------------------------- cost model
    def _check_alive(self) -> None:
        if self.state.residency is Residency.FREED:
            raise EndpointFreedError(f"endpoint {self.name} freed")

    def _lock_cost(self) -> int:
        return self.cfg.shared_ep_lock_ns if self.state.shared else 0

    def _poll_touch_ns(self) -> int:
        """Cost of inspecting the endpoint: uncacheable NI SRAM when
        resident, cacheable host memory otherwise (drives Figure 6 ST-96)."""
        if self.state.resident:
            return self.cfg.poll_resident_ns
        return self.cfg.poll_host_ns

    def _send_overhead_ns(self) -> int:
        """LogP Os: descriptor write via PIO (resident) or a cacheable
        store into the on-host image (non-resident)."""
        if self.state.resident:
            return self.cfg.host_send_overhead_ns
        return self.cfg.host_write_nonresident_ns

    # ================================================================= send
    def request(
        self,
        thr: Thread,
        index: int,
        handler: Optional[Handler],
        *args: Any,
        nbytes: int = 0,
    ) -> Generator:
        """Issue an AM request (generator; blocks for credits/ring space).

        Payloads above ``small_payload_max_bytes`` take the bulk path and
        are fragmented at the MTU; every fragment consumes one credit.
        """
        self._check_alive()
        entry = self.state.translation.get(index)
        if entry is None:
            raise BadTranslationError(f"no translation at index {index} on {self.name}")
        mtu = self.cfg.mtu_bytes
        is_bulk = nbytes > self.cfg.small_payload_max_bytes
        if is_bulk:
            nfrags = max(1, -(-nbytes // mtu))
            tid = next(_transfer_ids)
        else:
            nfrags = 1
            tid = None
        sent = 0
        for frag in range(nfrags):
            frag_bytes = min(mtu, nbytes - sent) if is_bulk else nbytes
            sent += frag_bytes
            meta = {
                "reply_key": self.state.tag,
                "frag": (tid, frag, nfrags) if is_bulk else None,
                "auto": False,
            }
            body = (handler, args, meta)
            msg = Message(
                src_node=self.state.node,
                src_ep=self.state.ep_id,
                dst_node=entry.dst_node,
                dst_ep=entry.dst_ep,
                key=entry.key,
                kind=MsgKind.REQUEST,
                payload_bytes=frag_bytes,
                is_bulk=is_bulk,
                body=body,
            )
            msg.on_resolved = self._request_resolved
            yield from self._acquire_credit(thr, index)
            self._outstanding[msg.msg_id] = index
            self._credits[index] -= 1
            yield from self._enqueue(thr, msg)
            self.stats.requests_sent += 1
            tr = self.node.sim.trace
            if tr.enabled:
                tr.emit("am.request", self.state.node, msg=msg.msg_id, ep=self.state.ep_id,
                        index=index, nbytes=frag_bytes, bulk=is_bulk)
            if is_bulk:
                self.stats.bulk_bytes_sent += frag_bytes
        return None

    def _acquire_credit(self, thr: Thread, index: int) -> Generator:
        """Spin (polling to drain replies) until a credit is available."""
        while self._credits.get(index, 0) <= 0:
            self.stats.credit_stalls += 1
            processed = yield from self.poll(thr, limit=4)
            if processed == 0:
                yield from thr.compute(self.cfg.poll_host_ns)

    def _enqueue(self, thr: Thread, msg: Message) -> Generator:
        """Charge Os, write the descriptor, fault if non-resident."""
        while True:
            cost = self._send_overhead_ns() + self._lock_cost()
            yield from thr.compute(cost)
            if self.nic.host_enqueue_send(self.state, msg):
                break
            # Send ring full: drain some receive work and retry.
            self.stats.ring_stalls += 1
            processed = yield from self.poll(thr, limit=4)
            if processed == 0:
                yield from thr.compute(1_000)  # brief spin between polls
        if not self.state.resident:
            # Write fault path: on-host r/o -> r/w + schedule re-mapping
            # (Figure 2); blocks here only under the §6.4.1 ablation.
            yield from self.driver.write_fault(self.state, owner=thr)

    def _request_resolved(self, msg: Message, delivered: bool) -> None:
        """Transport resolution: on return-to-sender, refund the credit.

        (Delivered requests refund their credit when the reply arrives.)
        """
        if not delivered:
            index = self._outstanding.pop(msg.msg_id, None)
            if index is not None and index in self._credits:
                self._credits[index] += 1

    def _send_reply(self, token: Token, handler: Optional[Handler], args: tuple, nbytes: int, auto: bool) -> Message:
        meta = {
            "reply_key": self.state.tag,
            "frag": None,
            "auto": auto,
            "ack_for": token.request_id,
        }
        msg = Message(
            src_node=self.state.node,
            src_ep=self.state.ep_id,
            dst_node=token.src_node,
            dst_ep=token.src_ep,
            key=token.reply_key,
            kind=MsgKind.REPLY,
            payload_bytes=nbytes,
            is_bulk=nbytes > self.cfg.small_payload_max_bytes,
            body=(handler, args, meta),
        )
        return msg

    # ================================================================ receive
    def poll(self, thr: Thread, limit: int = 8) -> Generator:
        """Service arrived messages; returns how many were processed.

        Charges the endpoint-touch cost even when nothing is pending —
        polling many resident endpoints in uncacheable NI memory is
        expensive (Section 6.4's ST-96 observation).
        """
        # _check_alive/_poll_touch_ns/_lock_cost inlined: poll is the
        # hottest endpoint entry point and the helpers cost more than the
        # arithmetic (costs charged are identical)
        st = self.state
        cfg = self.cfg
        residency = st.residency
        if residency is Residency.FREED:
            raise EndpointFreedError(f"endpoint {self.name} freed")
        self.stats.polls += 1
        cost = (cfg.poll_resident_ns if residency is Residency.ONNIC_RW
                else cfg.poll_host_ns)
        if st.shared:
            cost += cfg.shared_ep_lock_ns
        t = thr._slice_begin(cost)
        if t is not None:
            yield t
            thr._slice_end(cost)
        else:
            yield from thr.compute(cost)
        if not (st.recv_requests or st.recv_replies or st.returned):
            return 0  # empty poll (the common case): skip the drain machinery
        return (yield from self._drain(thr, limit))

    def _drain(self, thr: Thread, limit: int) -> Generator:
        """Service up to ``limit`` pending messages; touch cost already paid.

        Split from :meth:`poll` so :meth:`Bundle.poll_all` can charge one
        lump-sum touch sweep for the whole bundle and then drain each
        endpoint without re-touching it.
        """
        processed = 0
        while processed < limit:
            msg = self.nic.host_poll_returned(self.state)
            if msg is not None:
                self._handle_returned(msg)
                processed += 1
                continue
            msg = self.nic.host_poll_recv(self.state, replies=True)
            if msg is not None:
                yield from self._consume(thr, msg)
                processed += 1
                continue
            msg = self.nic.host_poll_recv(self.state, replies=False)
            if msg is not None:
                yield from self._consume(thr, msg)
                processed += 1
                continue
            break
        return processed

    def _consume(self, thr: Thread, msg: Message) -> Generator:
        """Charge Or, run the handler, auto-reply if needed."""
        yield from thr.compute(self.cfg.host_recv_overhead_ns)
        handler, args, meta = msg.body if msg.body else (None, (), {})
        if msg.kind is MsgKind.REPLY:
            self.stats.replies_handled += 1
            # Return the credit for the acknowledged request (§6.4).
            index = self._outstanding.pop(meta.get("ack_for"), None)
            if index is not None and index in self._credits:
                self._credits[index] += 1
            if handler is not None:
                token = Token(self, msg.src_node, msg.src_ep, meta.get("reply_key", 0), msg.msg_id, msg.payload_bytes)
                cost = handler(token, *args)
                yield from self._charge_handler(thr, cost)
            return
        # --- request path ---
        self.stats.requests_handled += 1
        if msg.is_bulk:
            self.stats.bulk_bytes_received += msg.payload_bytes
        frag = meta.get("frag")
        if frag is not None:
            tid, i, n = frag
            slot = self._reassembly.setdefault(tid, [0, n, 0])
            slot[0] += 1
            slot[2] += msg.payload_bytes
            token = Token(self, msg.src_node, msg.src_ep, meta.get("reply_key", 0), msg.msg_id, msg.payload_bytes)
            if slot[0] < n:
                # Credit-only reply per fragment keeps the window moving.
                yield from self._emit_reply(thr, token, None, (), 0, auto=True)
                return
            total_bytes = slot[2]
            del self._reassembly[tid]
            token.nbytes = total_bytes
        else:
            token = Token(self, msg.src_node, msg.src_ep, meta.get("reply_key", 0), msg.msg_id, msg.payload_bytes)
        if handler is not None:
            cost = handler(token, *args)
            yield from self._charge_handler(thr, cost)
        if token.replied and token._reply_spec is not None:
            rhandler, rargs, rnbytes = token._reply_spec
            yield from self._emit_reply(thr, token, rhandler, rargs, rnbytes, auto=False)
        else:
            # Library-issued credit reply (request handlers must reply).
            yield from self._emit_reply(thr, token, None, (), 0, auto=True)

    def _charge_handler(self, thr: Thread, cost: Optional[int]) -> Generator:
        ns = cost if isinstance(cost, int) else self.handler_cost_ns
        if ns:
            yield from thr.compute(ns)

    def _emit_reply(self, thr: Thread, token: Token, handler, args, nbytes: int, auto: bool) -> Generator:
        msg = self._send_reply(token, handler, args, nbytes, auto)
        if auto:
            self.stats.auto_replies += 1
        else:
            self.stats.replies_sent += 1
        tr = self.node.sim.trace
        if tr.enabled:
            tr.emit("am.reply", self.state.node, msg=msg.msg_id, ep=self.state.ep_id,
                    auto=auto, req=token.request_id)
        yield from thr.compute(self._send_overhead_ns())
        while not self.nic.host_enqueue_send(self.state, msg):
            # The send ring is a fixed 64 descriptors (Section 5.2): when
            # it is full the handler's reply spins, which stops this
            # thread from draining further requests -- the coupling
            # through which a saturated reply path backs pressure into the
            # receive queue (and, past the credit window, into overrun
            # NACKs: Figure 6b).
            self._check_alive()
            self.stats.ring_stalls += 1
            yield from thr.compute(1_000)
        if not self.state.resident:
            yield from self.driver.write_fault(self.state, owner=thr)

    def _handle_returned(self, msg: Message) -> None:
        """An undeliverable message came back (Section 3.2)."""
        self.stats.undeliverable += 1
        tr = self.node.sim.trace
        if tr.enabled:
            tr.emit("am.undeliverable", self.state.node, msg=msg.msg_id,
                    ep=self.state.ep_id, reason=getattr(msg.return_reason, "name", str(msg.return_reason)))
        if self.undeliverable_handler is not None:
            self.undeliverable_handler(msg, msg.return_reason)

    # ================================================================ events
    def has_pending(self) -> bool:
        st = self.state
        return bool(st.recv_requests or st.recv_replies or st.returned)

    def set_event_mask(self, kinds: set[str]) -> None:
        """Sensitize the endpoint's synchronization variable (§3.3)."""
        self.state.event_mask = set(kinds)

    def _on_event(self, detail: Any) -> None:
        self.stats.wakeups += 1
        self._event_cv.broadcast(detail)

    def wait(self, thr: Thread, timeout_ns: Optional[int] = None) -> Generator:
        """Block until a masked event fires (two-phase: spin, then sleep).

        Returns True if work is pending, False on timeout.  The spin phase
        implements the implicit co-scheduling behaviour of Section 6.3.
        """
        self._check_alive()
        if not self.state.event_mask:
            self.set_event_mask({"recv"})
        spin_ns = round(self.cfg.spin_before_block_us * 1_000)
        spin_end = self.node.sim.now + spin_ns
        while self.node.sim.now < spin_end:
            if self.has_pending():
                return True
            yield from thr.compute(self._poll_touch_ns())
        if self.has_pending():
            return True
        waits = [self._event_cv.wait()]
        if timeout_ns is not None:
            waits.append(self.node.sim.timeout(timeout_ns, "timeout"))
        idx, _ = yield from thr.block(AnyOf(self.node.sim, waits))
        return self.has_pending() or idx == 0

    # ============================================================ collectives
    def collective(
        self,
        thr: Thread,
        op: str,
        coll_id: int,
        members,
        root: int,
        value: Any = None,
        op_name: str = "sum",
        nbytes: int = 8,
        strategy: Optional[str] = None,
    ) -> Generator:
        """Initiate a firmware collective and block for its completion.

        ``op`` is ``"barrier"``, ``"bcast"`` or ``"reduce"``; ``members``
        are the participating node ids (this node included) and ``root``
        the tree root.  ``coll_id`` must be agreed across members *by
        program order* (the ``lib.mpi`` communicator derives it from its
        synchronized collective sequence number) so every NI folds
        contributions of the same logical operation together.  The host
        charges one descriptor write (Os); the NI firmware does
        everything else.  Completion follows the same spin-then-block
        discipline as :meth:`wait`.  Raises
        :class:`~repro.nic.collective.CollectiveTimeout` after
        ``cfg.coll_timeout_ms`` or when the local NI resets mid-flight.
        """
        self._check_alive()
        sim = self.node.sim
        members = tuple(sorted(members))
        if strategy is None:
            strategy = self.cfg.collective_strategy
            if strategy == "host":
                strategy = "firmware"
        if len(members) < 2:
            # Degenerate single-member vnet: nothing to synchronize.
            return value if op in ("bcast", "reduce") else None
        yield from thr.compute(self._send_overhead_ns() + self._lock_cost())
        handle = self.nic.coll.host_initiate(
            op, coll_id, members, root, value=value, op_name=op_name,
            payload_bytes=nbytes, strategy=strategy)
        deadline = sim.now + round(self.cfg.coll_timeout_ms * 1_000_000)
        spin_end = sim.now + round(self.cfg.spin_before_block_us * 1_000)
        while sim.now < spin_end:
            if handle.done or handle.failed:
                break
            yield from thr.compute(self._poll_touch_ns())
        while not (handle.done or handle.failed):
            remaining = deadline - sim.now
            if remaining <= 0:
                break
            waits = [handle.cv.wait(), sim.timeout(remaining, "timeout")]
            yield from thr.block(AnyOf(sim, waits))
        if handle.done:
            return handle.value
        from ..nic.collective import CollectiveTimeout
        if handle.failed:
            raise CollectiveTimeout(
                f"{op} id={coll_id} aborted: NI {self.state.node} reset")
        raise CollectiveTimeout(
            f"{op} id={coll_id} timed out on node {self.state.node} "
            f"after {self.cfg.coll_timeout_ms}ms")
