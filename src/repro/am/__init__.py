"""Active Messages II over virtual networks: the paper's core contribution."""

from .bundle import Bundle
from .endpoint import AmStats, Endpoint, Token
from .errors import AmError, BadTranslationError, EndpointFreedError
from .names import NameService
from .vnet import (
    VirtualNetwork,
    build_parallel_vnet,
    build_star_vnet,
    create_endpoint,
    new_endpoint,
    parallel_vnet,
    star_vnet,
)

__all__ = [
    "AmError",
    "AmStats",
    "BadTranslationError",
    "Bundle",
    "Endpoint",
    "EndpointFreedError",
    "NameService",
    "Token",
    "VirtualNetwork",
    "new_endpoint",
    "parallel_vnet",
    "star_vnet",
    # deprecated spellings (warning shims)
    "build_parallel_vnet",
    "build_star_vnet",
    "create_endpoint",
]
