"""The (topology × node-pair × message-size × pattern) calibration sweep.

Every cell builds a fresh cluster on one of the canonical topologies,
drives one traffic pattern between one node pair with the trace bus
attached, and reduces the observed spans to plain
:class:`~repro.calib.fitter.Observation` rows:

* **pingpong** cells measure the host overheads (o_s, o_r) directly —
  the Figure 3 methodology — and contribute one ``oneway`` row per
  steady request span (enqueue → endpoint delivery at the cell's route
  length and payload size), sampling the latency surface;
* **flood** cells flood 16-byte requests through the full credit window
  and contribute the steady-state delivery spacing as the ``gap`` row;
* **bulk** cells flood single-fragment bulk payloads (SBus-DMA path)
  and contribute the spacing as a ``bulk_gap`` row — the per-byte slope
  across bulk sizes is G.

One *global* least-squares fit consumes every cell's rows (the route-
length diversity across topologies is what makes the per-link latency
term identifiable), and :func:`~repro.calib.model.round_trip` compares
the fit against the closed-form configured model — on every canonical
cell for L, and globally for the scalar constants.  Divergence beyond
tolerance is a hard failure (exit 1 from the CLI).

Determinism: each cell rewinds the global id counters, uses a fixed
seed, and digests only integer observables, so the ``--smoke`` double
run must be bit-identical (the repro.scale digest-gate pattern).

Run as a module::

    PYTHONPATH=src python -m repro.calib --smoke     # CI gate
    PYTHONPATH=src python -m repro.calib             # full sweep
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..am.vnet import parallel_vnet
from ..bench.reporting import print_table
from ..chaos.runner import reset_global_ids
from ..cluster.builder import Cluster
from ..cluster.config import ClusterConfig
from ..obs import message_spans
from ..sim.core import Simulator, ms
from .fitter import LogPFit, Observation, fit_constants
from .model import ConfiguredLogP, configured_model, round_trip

__all__ = ["TOPOLOGIES", "CalibCell", "CalibCellResult", "CalibReport",
           "route_links", "default_cells", "run_cell", "run_calibration",
           "main"]

#: canonical topologies: name -> hosts (switch_radix 8 => 4 hosts/leaf;
#: leaf4 is a single leaf, the larger ones are two-level Clos fabrics)
TOPOLOGIES = {"leaf4": 4, "clos16": 16, "clos64": 64}


def route_links(cfg: ClusterConfig, a: int, b: int) -> int:
    """Route length in links between hosts ``a`` and ``b``.

    Same-leaf pairs traverse host→leaf→host (2 links); cross-leaf pairs
    add the leaf→spine→leaf stage (4 links).
    """
    per_leaf = max(1, cfg.switch_radix // 2)
    return 2 if a // per_leaf == b // per_leaf else 4


@dataclass(frozen=True)
class CalibCell:
    """One sweep cell."""

    topology: str
    pair: tuple[int, int]
    pattern: str  # "pingpong" | "flood" | "bulk"
    nbytes: int
    rounds: int

    @property
    def label(self) -> str:
        a, b = self.pair
        return f"{self.topology}/{a}-{b}/{self.pattern}/{self.nbytes}B"


@dataclass
class CalibCellResult:
    """One executed cell: observation rows + the determinism digest."""

    cell: CalibCell
    links: int
    observations: list[Observation] = field(default_factory=list)
    #: headline number for the report table (oneway mean / gap / bulk gap)
    headline_ns: float = 0.0
    os_ns: int = 0
    or_ns: int = 0
    samples: int = 0
    sim_ns: int = 0
    events: int = 0
    digest: str = ""
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "cell": self.cell.label,
            "links": self.links,
            "pattern": self.cell.pattern,
            "nbytes": self.cell.nbytes,
            "headline_ns": round(self.headline_ns, 3),
            "os_ns": self.os_ns,
            "or_ns": self.or_ns,
            "samples": self.samples,
            "sim_ns": self.sim_ns,
            "events": self.events,
            "digest": self.digest,
        }


def _digest(parts) -> str:
    h = hashlib.sha256()
    h.update(repr(parts).encode())
    return h.hexdigest()


def default_cells(smoke: bool) -> list[CalibCell]:
    """The canonical cell matrix (reduced under ``--smoke``)."""
    cells: list[CalibCell] = []
    pp_pairs = [("leaf4", (0, 1)), ("clos16", (0, 1)), ("clos16", (0, 5))]
    pp_sizes: Sequence[int] = (16, 128) if smoke else (16, 64, 128)
    pp_rounds = 12 if smoke else 24
    if not smoke:
        pp_pairs += [("clos16", (2, 3)), ("clos64", (0, 33))]
    for topo, pair in pp_pairs:
        for size in pp_sizes:
            cells.append(CalibCell(topo, pair, "pingpong", size, pp_rounds))
    flood_pairs = [("leaf4", (0, 1)), ("clos16", (0, 5))]
    if not smoke:
        flood_pairs.append(("clos64", (0, 33)))
    for topo, pair in flood_pairs:
        cells.append(CalibCell(topo, pair, "flood", 16,
                               160 if smoke else 360))
    # bulk sizes start at 4096: below that the sender's SBus read rate
    # is close enough to the receiver's write rate that the pipeline
    # phase-couples and the spacing no longer isolates the write DMA
    bulk_sizes: Sequence[int] = (4096, 8192) if smoke else (4096, 6144, 8192)
    bulk_rounds = 14 if smoke else 24
    for size in bulk_sizes:
        cells.append(CalibCell("clos16", (0, 5), "bulk", size, bulk_rounds))
    if not smoke:
        for size in (4096, 8192):
            cells.append(CalibCell("leaf4", (0, 1), "bulk", size, bulk_rounds))
    return cells


def run_cell(cell: CalibCell, *, seed: int = 1999, engine=None,
             sim_factory: Callable = Simulator) -> CalibCellResult:
    """Execute one cell deterministically and reduce it to observations."""
    if engine is not None:
        from ..api.engine import resolve_kernel

        sim_factory = resolve_kernel(engine)
    reset_global_ids()
    cfg = ClusterConfig(num_hosts=TOPOLOGIES[cell.topology], seed=seed)
    cluster = Cluster(cfg, sim_factory=sim_factory)
    sim = cluster.sim
    a, b = cell.pair
    res = CalibCellResult(cell=cell, links=route_links(cfg, a, b))
    vnet = cluster.run_process(parallel_vnet(cluster, [a, b]), "calib.setup")
    ep0, ep1 = vnet[0], vnet[1]

    # warm both endpoints resident so the cell measures the steady state
    cluster.run_process(cluster.node(a).driver.write_fault(ep0.state), "calib.w0")
    cluster.run_process(cluster.node(b).driver.write_fault(ep1.state), "calib.w1")
    cluster.run(until=sim.now + ms(10))
    # tracing attached post-warmup: spans reflect only the measurement
    # (tracing also pins the express path off — full wormhole fidelity)
    bus = cluster.enable_tracing()

    marks: dict[str, int] = {}
    done: list[int] = []

    def receiver(thr):
        while not done:
            yield from ep1.poll(thr, limit=8)

    def drain_replies(thr):
        for _ in range(100_000):
            got = yield from ep0.poll(thr, limit=8)
            if not got and not ep0._outstanding:
                return
        raise RuntimeError(f"{cell.label}: sender could not drain")

    def sender(thr):
        # one warm round absorbs the cold start
        yield from ep0.request(thr, 1, None, nbytes=16)
        yield from drain_replies(thr)
        if cell.pattern == "pingpong":
            # Os: time inside the send call (Figure 3 methodology)
            t0 = sim.now
            yield from ep0.request(thr, 1, None, nbytes=16)
            marks["os"] = sim.now - t0
            yield from drain_replies(thr)
            # Or: poll with one pending reply minus the empty poll
            t0 = sim.now
            yield from ep0.poll(thr, limit=4)
            empty_ns = sim.now - t0
            yield from ep0.request(thr, 1, None, nbytes=16)
            while not ep0.state.recv_replies:
                yield from thr.compute(200)
            t0 = sim.now
            yield from ep0.poll(thr, limit=1)
            marks["or"] = (sim.now - t0) - empty_ns
            marks["t_meas"] = sim.now
            for _ in range(cell.rounds):
                yield from ep0.request(thr, 1, None, nbytes=cell.nbytes)
                yield from drain_replies(thr)
        else:
            # flood / bulk: keep the credit window full; spacing at the
            # receiver NI is the steady-state per-message occupancy
            marks["t_meas"] = sim.now
            for _ in range(cell.rounds):
                yield from ep0.request(thr, 1, None, nbytes=cell.nbytes)
                yield from ep0.poll(thr, limit=2)
            yield from drain_replies(thr)
        done.append(1)

    cluster.node(b).start_process("calib.r").spawn_thread(receiver, "recv")
    cluster.node(a).start_process("calib.s").spawn_thread(sender, "send")
    t0_wall = time.perf_counter()
    sim.run(until=sim.now + ms(4_000), stop=lambda: bool(done))
    res.wall_s = time.perf_counter() - t0_wall
    if not done:
        raise RuntimeError(f"calibration cell {cell.label} did not converge")

    spans = [sp for sp in message_spans(bus, complete_only=True)
             if sp.src == a and sp.nbytes == cell.nbytes
             and sp.enq_ts is not None and sp.enq_ts >= marks["t_meas"]]
    bus.detach()
    res.samples = len(spans)
    res.sim_ns = sim.now
    res.events = sim.events_dispatched

    if cell.pattern == "pingpong":
        if len(spans) != cell.rounds:
            raise RuntimeError(
                f"{cell.label}: expected {cell.rounds} request spans, "
                f"saw {len(spans)}")
        res.os_ns = marks["os"]
        res.or_ns = marks["or"]
        res.observations.append(Observation("os", float(marks["os"])))
        res.observations.append(Observation("or", float(marks["or"])))
        oneways = [sp.oneway_ns for sp in spans]
        for ow in oneways:
            res.observations.append(Observation(
                "oneway", float(ow), nbytes=cell.nbytes, links=res.links))
        res.headline_ns = sum(oneways) / len(oneways)
        raw = [(sp.enq_ts, sp.tx_ts, sp.net_ts, sp.deliver_ts, sp.ack_ts)
               for sp in spans]
        material = (cell.label, marks["os"], marks["or"], raw)
    else:
        delivers = sorted(sp.deliver_ts for sp in spans)
        if len(delivers) < cell.rounds:
            raise RuntimeError(
                f"{cell.label}: expected {cell.rounds} deliveries, "
                f"saw {len(delivers)}")
        # steady-state spacing over the middle half (skips the window
        # ramp-up and the drain tail)
        lo, hi = len(delivers) // 4, 3 * len(delivers) // 4
        spacing = (delivers[hi] - delivers[lo]) / (hi - lo)
        kind = "gap" if cell.pattern == "flood" else "bulk_gap"
        res.observations.append(Observation(kind, spacing, nbytes=cell.nbytes))
        res.headline_ns = spacing
        material = (cell.label, delivers)
    res.digest = _digest((material, res.sim_ns, res.events))
    return res


@dataclass
class CalibReport:
    """One calibration run: cells, fit, round trip, workload bench."""

    seed: int
    smoke: bool
    tolerance: float
    cells: list[CalibCellResult] = field(default_factory=list)
    fit: Optional[LogPFit] = None
    configured: Optional[ConfiguredLogP] = None
    comparisons: list[dict] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)
    nondeterministic: list[str] = field(default_factory=list)
    workloads: list = field(default_factory=list)  # WorkloadBenchResult
    contended: list = field(default_factory=list)  # ContendedCellResult

    @property
    def digest(self) -> str:
        h = hashlib.sha256()
        for c in self.cells:
            h.update(c.digest.encode())
        for w in self.workloads:
            h.update(w.digest.encode())
        for c in self.contended:
            h.update(c.digest.encode())
        return h.hexdigest()

    def _idle_headline(self, pattern: str, nbytes: int) -> Optional[float]:
        """The matching idle leaf4/(0,1) cell's headline, if it ran."""
        for c in self.cells:
            if (c.cell.topology == "leaf4" and c.cell.pair == (0, 1)
                    and c.cell.pattern == pattern
                    and c.cell.nbytes == nbytes):
                return c.headline_ns
        return None

    def contended_rows(self) -> list[dict]:
        """Contended L/g next to the idle baseline, with inflation."""
        rows = []
        for c in self.contended:
            idle = self._idle_headline(c.pattern, c.nbytes)
            row = c.to_dict()
            row["idle_ns"] = round(idle, 3) if idle is not None else None
            row["inflation"] = (round(c.headline_ns / idle, 3)
                                if idle else None)
            rows.append(row)
        return rows

    @property
    def ok(self) -> bool:
        return not self.failures and not self.nondeterministic

    def to_json(self) -> dict:
        return {
            "schema": 1,
            "seed": self.seed,
            "smoke": self.smoke,
            "tolerance": self.tolerance,
            "digest": self.digest,
            "fitted": self.fit.to_json() if self.fit else None,
            "configured": self.configured.to_json() if self.configured else None,
            "comparisons": self.comparisons,
            "failures": self.failures,
            "nondeterministic": self.nondeterministic,
            "cells": [c.to_dict() for c in self.cells],
            "workloads": [w.to_dict() for w in self.workloads],
            "contended": self.contended_rows(),
        }


def run_calibration(smoke: bool = False, *, seed: int = 1999,
                    tolerance: float = 0.10,
                    cells: Optional[Sequence[CalibCell]] = None,
                    verify_determinism: bool = False,
                    include_workloads: bool = True,
                    include_contended: bool = True,
                    engine=None,
                    sim_factory: Callable = Simulator,
                    progress=None) -> CalibReport:
    """Run the sweep, fit, round-trip, and (optionally) the bench table.

    ``verify_determinism`` runs every cell — and every workload bench
    shape, express on and off — twice and records digest mismatches
    (the ``--smoke`` gate).  Round-trip failures land in
    ``report.failures``.
    """
    if engine is not None:
        from ..api.engine import resolve_kernel

        sim_factory = resolve_kernel(engine)
    report = CalibReport(seed=seed, smoke=smoke, tolerance=tolerance)
    for cell in (list(cells) if cells is not None else default_cells(smoke)):
        res = run_cell(cell, seed=seed, sim_factory=sim_factory)
        if verify_determinism:
            res2 = run_cell(cell, seed=seed, sim_factory=sim_factory)
            if res2.digest != res.digest:
                report.nondeterministic.append(
                    f"{cell.label}: digests differ: "
                    f"{res.digest[:12]} vs {res2.digest[:12]}")
        report.cells.append(res)
        if progress is not None:
            progress(f"  {cell.label:>30}  {res.headline_ns / 1e3:8.2f} us  "
                     f"({res.samples} samples, {res.wall_s:.2f}s wall)")

    observations = [ob for c in report.cells for ob in c.observations]
    report.fit = fit_constants(observations)
    report.configured = configured_model(
        ClusterConfig(num_hosts=TOPOLOGIES["clos16"], seed=seed))
    geometry = [(c.cell.label, c.links, c.cell.nbytes)
                for c in report.cells if c.cell.pattern == "pingpong"]
    report.comparisons, report.failures = round_trip(
        report.fit, report.configured, geometry, tolerance=tolerance)

    if include_workloads:
        from .workloads import WORKLOAD_BENCH, run_workload_bench

        for name in WORKLOAD_BENCH:
            on = run_workload_bench(name, express=True, seed=seed % 1009,
                                    sim_factory=sim_factory)
            off = run_workload_bench(name, express=False, seed=seed % 1009,
                                     sim_factory=sim_factory)
            if on.digest != off.digest:
                report.failures.append(
                    f"workload {name}: express on/off observables diverged "
                    f"({on.digest[:12]} vs {off.digest[:12]})")
            if verify_determinism:
                again = run_workload_bench(name, express=True,
                                           seed=seed % 1009,
                                           sim_factory=sim_factory)
                if again.digest != on.digest:
                    report.nondeterministic.append(
                        f"workload {name}: digests differ across runs")
            report.workloads.append(on)
            report.workloads.append(off)
            if progress is not None:
                progress(f"  workload {name:>12}  "
                         f"{on.goodput_msgs_s / 1e3:7.1f} K msg/s  "
                         f"p50 {on.p50_us:8.1f} us  p99 {on.p99_us:8.1f} us  "
                         f"express on/off match")

    if include_contended:
        from .contended import run_contended_cell, run_contended_cells

        report.contended = run_contended_cells(smoke=smoke, seed=seed)
        if verify_determinism:
            for c in report.contended:
                again = run_contended_cell(
                    c.pattern, variant=c.variant, nbytes=c.nbytes,
                    rounds=c.samples, seed=seed)
                if again.digest != c.digest:
                    report.nondeterministic.append(
                        f"{c.label}: digests differ across runs")
        if progress is not None:
            for row in report.contended_rows():
                infl = (f"{row['inflation']:.2f}x idle"
                        if row["inflation"] else "no idle baseline")
                progress(f"  {row['cell']:>34}  "
                         f"{row['headline_ns'] / 1e3:8.2f} us  ({infl}, "
                         f"bulk {row['bulk_serviced']} msgs)")
    return report


# --------------------------------------------------------------------- CLI
def _cell_rows(report: CalibReport) -> list[list]:
    return [[c.cell.topology, f"{c.cell.pair[0]}-{c.cell.pair[1]}", c.links,
             c.cell.pattern, c.cell.nbytes, c.samples,
             f"{c.headline_ns / 1e3:.2f}", c.digest[:12]]
            for c in report.cells]


def _comparison_rows(report: CalibReport) -> list[list]:
    return [[r["constant"], f"{r['fitted_ns']:.2f}", f"{r['configured_ns']:.2f}",
             f"{r['rel_err'] * 100.0:.2f}%", "ok" if r["ok"] else "FAIL"]
            for r in report.comparisons]


def _workload_rows(report: CalibReport) -> list[list]:
    return [[w.name, "on" if w.express else "off", w.sent, w.handled, w.ops,
             f"{w.p50_us:.1f}", f"{w.p99_us:.1f}",
             f"{w.goodput_msgs_s / 1e3:.1f}", w.digest[:12]]
            for w in report.workloads]


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true",
                    help="reduced CI matrix; every cell and workload run "
                         "twice with digests compared")
    ap.add_argument("--seed", type=int, default=1999)
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="round-trip tolerance (fraction; default 0.10)")
    ap.add_argument("--skip-workloads", action="store_true",
                    help="sweep + fit only, no diversity bench table")
    ap.add_argument("--verify-determinism", action="store_true",
                    help="double-run every cell (implied by --smoke)")
    ap.add_argument("--out", default="BENCH_CALIB.json",
                    help="write the full report here as JSON")
    args = ap.parse_args(argv)

    verify = args.verify_determinism or args.smoke
    print(f"calibration sweep: seed={args.seed}, "
          f"tolerance={args.tolerance * 100.0:.0f}%"
          + (" [smoke: every cell run twice]" if args.smoke else ""))
    report = run_calibration(
        smoke=args.smoke, seed=args.seed, tolerance=args.tolerance,
        verify_determinism=verify,
        include_workloads=not args.skip_workloads, progress=print)

    print_table(
        ["topology", "pair", "links", "pattern", "bytes", "samples",
         "headline us", "digest"],
        _cell_rows(report),
        title=f"calibration cells (seed {args.seed}, "
              f"digest {report.digest[:16]})")
    print_table(
        ["constant", "fitted ns", "configured ns", "rel err", "status"],
        _comparison_rows(report),
        title="fitted vs configured LogP constants (round trip)")
    if report.workloads:
        print_table(
            ["workload", "express", "sent", "handled", "ops", "p50 us",
             "p99 us", "good K/s", "digest"],
            _workload_rows(report),
            title="workload-diversity bench (incast / fan-out / streaming)")
    if report.contended:
        print_table(
            ["pattern", "variant", "contended us", "idle us", "inflation",
             "bulk msgs", "throttled", "digest"],
            [[r["pattern"], r["variant"], f"{r['headline_ns'] / 1e3:.2f}",
              (f"{r['idle_ns'] / 1e3:.2f}" if r["idle_ns"] else "-"),
              (f"{r['inflation']:.2f}x" if r["inflation"] else "-"),
              r["bulk_serviced"], r["bulk_throttled"], r["digest"][:12]]
             for r in report.contended_rows()],
            title="contended L and g under a background bulk tenant")

    if args.out:
        with open(args.out, "w") as f:
            json.dump(report.to_json(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")

    status = 0
    if report.nondeterministic:
        print("DETERMINISM FAILURE: digests differed between runs:",
              file=sys.stderr)
        for line in report.nondeterministic:
            print(f"  {line}", file=sys.stderr)
        status = 1
    if report.failures:
        print("CALIBRATION FAILURE: fitted constants diverged from the "
              "configured cost model:", file=sys.stderr)
        for line in report.failures:
            print(f"  {line}", file=sys.stderr)
        status = 1
    if status == 0:
        worst = max(report.comparisons, key=lambda r: r["rel_err"])
        print(f"calibration ok: {len(report.cells)} cells, worst constant "
              f"{worst['constant']} off by {worst['rel_err'] * 100.0:.2f}%"
              + (" — determinism verified (double runs matched)"
                 if verify else ""))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
