"""Datacenter workload-diversity family: incast, RPC fan-out, streaming.

Three traffic shapes the classic suite (pairwise / bulk / client-server)
lacks, modeled on the modern patterns of "Fast Userspace Networking for
the Rest of Us" and the huge-tenant-count stress shapes of NetKernel
(PAPERS.md):

* **incast** — N senders fire synchronized bursts at one server
  endpoint (the N→1 storage/shuffle pattern); the interesting
  observable is per-burst fan-in completion latency, which amplifies as
  the server NI serializes the converged arrivals;
* **rpc_fanout** — a root scatters a request to N workers and gathers
  all replies before the next round (the partition/aggregate RPC
  pattern); round latency is gated by the *slowest* worker, so small
  per-worker jitter amplifies into the tail;
* **streaming** — a linear pipeline: a source pushes messages through
  forwarding stages to a sink; steady-state throughput is set by the
  slowest stage and the credit windows between stages.

All three subclass :class:`~repro.chaos.workloads.ChaosWorkload`, so
they run unmodified under the chaos adversary (kills, pauses, crashes,
evictions — the delivery contract is audited from the trace), and they
register themselves into the chaos workload registry on import.

:func:`run_workload_bench` runs one shape standalone — *untraced*, so
the express path may engage — and reduces it to express-invariant
integer observables (counts, simulated latencies) plus a digest;
running it with ``express`` on and off must produce bit-identical
digests, which the perf harness's ``calib_workloads`` scenario and
``tests/test_calib_workloads.py`` enforce.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Generator

from ..am.errors import EndpointFreedError
from ..am.vnet import parallel_vnet, star_vnet
from ..chaos.runner import reset_global_ids
from ..chaos.workloads import _IDLE_NS, WORKLOADS, ChaosWorkload
from ..cluster.builder import Cluster
from ..cluster.config import ClusterConfig
from ..sim.core import AllOf, Simulator, ms

__all__ = ["IncastWorkload", "FanoutWorkload", "StreamingWorkload",
           "WORKLOAD_BENCH", "WorkloadBenchResult", "run_workload_bench",
           "percentile_ns"]

#: the bench table's shapes, in report order
WORKLOAD_BENCH = ("incast", "rpc_fanout", "streaming")


class IncastWorkload(ChaosWorkload):
    """N→1 synchronized bursts into one shared server endpoint."""

    name = "incast"

    def __init__(self, senders: int = 6, rounds: int = 6, burst: int = 4,
                 payload: int = 16, period_us: float = 600.0):
        super().__init__(requests=rounds * burst, payload=payload)
        self.senders = senders
        self.rounds = rounds
        self.burst = burst
        self.period_ns = round(period_us * 1_000)
        #: per (sender, round) fan-in completion latency
        self.round_latencies_ns: list[int] = []
        self.server_eps = []
        self.client_eps = []
        self._t0 = 0

    @property
    def num_hosts_needed(self) -> int:
        return self.senders + 1

    def build(self, cluster: "Cluster") -> Generator:
        self.cluster = cluster
        nodes = [1 + i for i in range(self.senders)]
        servers, clients = yield from star_vnet(cluster, 0, nodes,
                                                shared_server_ep=True)
        self.server_eps, self.client_eps = servers, clients
        sproc = cluster.node(0).start_process(name="incast.server")
        sproc.adopt_endpoint(servers[0].state)
        self.procs.append(sproc)
        self.eviction_targets.append((cluster.node(0), servers[0].state))
        for i, cep in enumerate(clients):
            node = cluster.node(nodes[i])
            proc = node.start_process(name=f"incast{i}")
            proc.adopt_endpoint(cep.state)
            self.procs.append(proc)
            self.eviction_targets.append((node, cep.state))

    def start(self) -> None:
        self._t0 = self.cluster.sim.now
        sproc = self.procs[0]
        if not sproc.terminated:
            self.receiver_threads.append(sproc.spawn_thread(
                self._receiver_body(self.server_eps[0]), name="incast.server"))
        for i, cep in enumerate(self.client_eps):
            proc = self.procs[1 + i]
            if proc.terminated:
                continue
            self.sender_threads.append(proc.spawn_thread(
                self._burst_body(cep), name=f"incast{i}.send"))

    def _burst_body(self, ep):
        def body(thr):
            sim = ep.node.sim
            ep.undeliverable_handler = self._on_returned
            try:
                try:
                    for r in range(self.rounds):
                        # all senders aim at the same absolute round start
                        target = self._t0 + r * self.period_ns
                        if sim.now < target:
                            yield from thr.sleep(target - sim.now)
                        t_start = sim.now
                        base = ep.stats.replies_handled + ep.stats.undeliverable
                        fired = 0
                        for _ in range(self.burst):
                            ok = yield from self._guarded_request(
                                thr, ep, 0, nbytes=self.payload)
                            if not ok:
                                break
                            fired += 1
                        # fan-in: wait until every fired request resolved
                        # (reply or return), or the give-up deadline
                        deadline = sim.now + self.give_up_ns
                        while (ep.stats.replies_handled
                               + ep.stats.undeliverable) < base + fired:
                            if sim.now >= deadline:
                                break
                            processed = yield from ep.poll(thr, limit=8)
                            if processed == 0:
                                yield from thr.sleep(_IDLE_NS)
                        self.round_latencies_ns.append(sim.now - t_start)
                    yield from self._settle(thr, ep, [0])
                except EndpointFreedError:
                    return
            finally:
                self._mark_sender_done()
            try:
                yield from self._drain_loop(thr, ep)
            except EndpointFreedError:
                return
        return body

    def bench_latencies_ns(self) -> list[int]:
        return sorted(self.round_latencies_ns)


class FanoutWorkload(ChaosWorkload):
    """RPC fan-out/fan-in: the root scatters to N workers and gathers
    every reply before the next round — tail-latency amplification."""

    name = "rpc_fanout"

    def __init__(self, workers: int = 6, rounds: int = 10, payload: int = 16):
        super().__init__(requests=rounds * workers, payload=payload)
        self.workers = workers
        self.rounds = rounds
        #: per-round scatter→last-reply latency (gated by the slowest worker)
        self.round_latencies_ns: list[int] = []
        self.server_eps = []
        self.client_eps = []

    @property
    def num_hosts_needed(self) -> int:
        return self.workers + 1

    def build(self, cluster: "Cluster") -> Generator:
        self.cluster = cluster
        nodes = [1 + i for i in range(self.workers)]
        # the star's "server" endpoint is our root: its translation i
        # names worker i, and every worker maps index 0 back to the root
        servers, clients = yield from star_vnet(cluster, 0, nodes,
                                                shared_server_ep=True)
        self.server_eps, self.client_eps = servers, clients
        rproc = cluster.node(0).start_process(name="fanout.root")
        rproc.adopt_endpoint(servers[0].state)
        self.procs.append(rproc)
        self.eviction_targets.append((cluster.node(0), servers[0].state))
        for i, cep in enumerate(clients):
            node = cluster.node(nodes[i])
            proc = node.start_process(name=f"fanout.w{i}")
            proc.adopt_endpoint(cep.state)
            self.procs.append(proc)
            self.eviction_targets.append((node, cep.state))

    def start(self) -> None:
        rproc = self.procs[0]
        if not rproc.terminated:
            self.sender_threads.append(rproc.spawn_thread(
                self._root_body(self.server_eps[0]), name="fanout.root"))
        for i, cep in enumerate(self.client_eps):
            proc = self.procs[1 + i]
            if proc.terminated:
                continue
            self.receiver_threads.append(proc.spawn_thread(
                self._receiver_body(cep), name=f"fanout.w{i}"))

    def _root_body(self, ep):
        def body(thr):
            sim = ep.node.sim
            ep.undeliverable_handler = self._on_returned
            try:
                try:
                    for _ in range(self.rounds):
                        t_start = sim.now
                        base = ep.stats.replies_handled + ep.stats.undeliverable
                        fired = 0
                        for w in range(self.workers):
                            ok = yield from self._guarded_request(
                                thr, ep, w, nbytes=self.payload)
                            if ok:
                                fired += 1
                        deadline = sim.now + self.give_up_ns
                        while (ep.stats.replies_handled
                               + ep.stats.undeliverable) < base + fired:
                            if sim.now >= deadline:
                                break
                            processed = yield from ep.poll(thr, limit=8)
                            if processed == 0:
                                yield from thr.sleep(_IDLE_NS)
                        self.round_latencies_ns.append(sim.now - t_start)
                    yield from self._settle(thr, ep, list(range(self.workers)))
                except EndpointFreedError:
                    return
            finally:
                self._mark_sender_done()
            try:
                yield from self._drain_loop(thr, ep)
            except EndpointFreedError:
                return
        return body

    def bench_latencies_ns(self) -> list[int]:
        return sorted(self.round_latencies_ns)


class StreamingWorkload(ChaosWorkload):
    """Linear pipeline: source → forwarding stages → sink.

    Ranks are numbered so the *sink* is rank 0 (``procs[0]``, the
    observer side generated chaos schedules never kill) and the source
    is the highest rank; each forwarder relays one message downstream
    per arrival.
    """

    name = "streaming"

    def __init__(self, stages: int = 4, messages: int = 30, payload: int = 16):
        if stages < 2:
            raise ValueError("streaming needs at least source + sink")
        super().__init__(requests=messages, payload=payload)
        self.stages = stages
        self.messages = messages
        #: sink arrival timestamps (end-to-end deliveries)
        self.sink_arrivals_ns: list[int] = []
        self.vnet = None

    @property
    def num_hosts_needed(self) -> int:
        return self.stages

    def build(self, cluster: "Cluster") -> Generator:
        self.cluster = cluster
        self.vnet = yield from parallel_vnet(cluster,
                                             list(range(self.stages)))
        for rank in range(self.stages):
            ep = self.vnet[rank]
            node = cluster.node(rank)
            proc = node.start_process(name=f"stream{rank}")
            proc.adopt_endpoint(ep.state)
            self.procs.append(proc)
            self.eviction_targets.append((node, ep.state))

    def _hop_handler(self, dest_rank: int) -> Callable:
        if dest_rank == 0:
            def handler(token, *args):
                self.handled += 1
                self.sink_arrivals_ns.append(self.cluster.sim.now)
        else:
            def handler(token, *args):
                self.handled += 1
        return handler

    def start(self) -> None:
        sink_proc = self.procs[0]
        if not sink_proc.terminated:
            self.receiver_threads.append(sink_proc.spawn_thread(
                self._receiver_body(self.vnet[0]), name="stream.sink"))
        for rank in range(1, self.stages - 1):
            proc = self.procs[rank]
            if proc.terminated:
                continue
            self.sender_threads.append(proc.spawn_thread(
                self._forward_body(self.vnet[rank], rank),
                name=f"stream{rank}.fwd"))
        src = self.stages - 1
        if not self.procs[src].terminated:
            self.sender_threads.append(self.procs[src].spawn_thread(
                self._source_body(self.vnet[src], src), name="stream.src"))

    def _source_body(self, ep, rank: int):
        def body(thr):
            ep.undeliverable_handler = self._on_returned
            handler = self._hop_handler(rank - 1)
            try:
                try:
                    for _ in range(self.messages):
                        ok = yield from self._guarded_request(
                            thr, ep, rank - 1, nbytes=self.payload,
                            handler=handler)
                        if not ok:
                            break
                    yield from self._settle(thr, ep, [rank - 1])
                except EndpointFreedError:
                    return
            finally:
                self._mark_sender_done()
            try:
                yield from self._drain_loop(thr, ep)
            except EndpointFreedError:
                return
        return body

    def _forward_body(self, ep, rank: int):
        def body(thr):
            sim = ep.node.sim
            ep.undeliverable_handler = self._on_returned
            handler = self._hop_handler(rank - 1)
            forwarded = 0
            last_progress = sim.now
            try:
                try:
                    while forwarded < self.messages:
                        if ep.stats.requests_handled > forwarded:
                            ok = yield from self._guarded_request(
                                thr, ep, rank - 1, nbytes=self.payload,
                                handler=handler)
                            if not ok:
                                break
                            forwarded += 1
                            last_progress = sim.now
                            continue
                        processed = yield from ep.poll(thr, limit=8)
                        if processed:
                            last_progress = sim.now
                            continue
                        # no arrivals, nothing forwarded: the upstream may
                        # be dead — give up after a quiet give-up window
                        if self._stop["flag"] \
                                or sim.now - last_progress >= self.give_up_ns:
                            break
                        yield from thr.sleep(_IDLE_NS)
                    yield from self._settle(thr, ep, [rank - 1])
                except EndpointFreedError:
                    return
            finally:
                self._mark_sender_done()
            try:
                yield from self._drain_loop(thr, ep)
            except EndpointFreedError:
                return
        return body

    def bench_latencies_ns(self) -> list[int]:
        """Sink inter-arrival gaps — the pipeline's steady-state period."""
        arr = self.sink_arrivals_ns
        return sorted(b - a for a, b in zip(arr, arr[1:]))


WORKLOADS.update({
    IncastWorkload.name: IncastWorkload,
    FanoutWorkload.name: FanoutWorkload,
    StreamingWorkload.name: StreamingWorkload,
})


# ----------------------------------------------------------- standalone bench
def percentile_ns(sorted_values: list[int], pct: float) -> int:
    """Nearest-rank percentile of an already-sorted integer list."""
    if not sorted_values:
        return 0
    rank = math.ceil(pct / 100.0 * len(sorted_values))
    return sorted_values[max(0, min(len(sorted_values), rank) - 1)]


@dataclass
class WorkloadBenchResult:
    """One standalone (untraced) run, reduced to express-invariant ints."""

    name: str
    express: bool
    sent: int = 0
    handled: int = 0
    returned: int = 0
    ops: int = 0
    sim_ns: int = 0
    wall_s: float = 0.0
    p50_us: float = 0.0
    p99_us: float = 0.0
    goodput_msgs_s: float = 0.0
    digest: str = ""
    latencies_ns: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "express": self.express,
            "sent": self.sent,
            "handled": self.handled,
            "returned": self.returned,
            "ops": self.ops,
            "sim_ns": self.sim_ns,
            "wall_s": round(self.wall_s, 4),
            "p50_us": round(self.p50_us, 3),
            "p99_us": round(self.p99_us, 3),
            "goodput_msgs_s": round(self.goodput_msgs_s, 1),
            "digest": self.digest,
        }


def _bench_workload(name: str, **kwargs) -> ChaosWorkload:
    cls = WORKLOADS[name]
    return cls(**kwargs)


def run_workload_bench(name: str, *, express: bool = True, seed: int = 7,
                       engine=None,
                       sim_factory: Callable = Simulator,
                       **kwargs) -> WorkloadBenchResult:
    """Run one diversity shape standalone and reduce it to observables.

    Untraced (so the express path may engage when ``express`` is on) and
    fault-free; the digest covers only express-invariant integers —
    counts and simulated-time latencies, never kernel event counts — so
    express-on and express-off runs of the same seed must match bit for
    bit.
    """
    if engine is not None:
        from ..api.engine import resolve_kernel

        sim_factory = resolve_kernel(engine)
    reset_global_ids()
    wl = _bench_workload(name, **kwargs)
    cfg = ClusterConfig(
        num_hosts=max(4, wl.num_hosts_needed),
        seed=seed,
        express_path=express,
        dead_timeout_ms=8.0,
    )
    cluster = Cluster(cfg, sim_factory=sim_factory)
    sim = cluster.sim
    sim.run_process(wl.build(cluster), name="calib.wl.setup")
    wl.give_up_ns = 3 * cfg.dead_timeout_ns
    wl.start()

    def supervise() -> Generator:
        yield wl.quota_done()
        yield sim.timeout(500_000)
        wl.stop_receivers()
        pending = [t.done for t in wl.all_threads]
        if pending:
            yield AllOf(sim, pending)
        yield sim.timeout(200_000)

    t0 = time.perf_counter()
    sim.run_process(supervise(), name="calib.wl.supervisor",
                    until=sim.now + ms(10_000))
    wall = time.perf_counter() - t0

    lats = getattr(wl, "bench_latencies_ns", lambda: [])()
    res = WorkloadBenchResult(name=name, express=express, sent=wl.sent,
                              handled=wl.handled, returned=wl.returned_seen,
                              ops=len(lats), sim_ns=sim.now, wall_s=wall,
                              latencies_ns=lats)
    res.p50_us = percentile_ns(lats, 50) / 1e3
    res.p99_us = percentile_ns(lats, 99) / 1e3
    res.goodput_msgs_s = wl.handled * 1e9 / max(1, sim.now)
    h = hashlib.sha256()
    h.update(repr((name, seed, wl.sent, wl.handled, wl.returned_seen,
                   tuple(lats), sim.now)).encode())
    res.digest = h.hexdigest()
    return res
