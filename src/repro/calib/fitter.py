"""Least-squares fitting of LogP constants from sweep observations.

The calibration sweep (:mod:`repro.calib.sweep`) reduces every measured
cell to plain :class:`Observation` rows; this module turns a bag of rows
into one :class:`LogPFit` by solving small independent least-squares
problems:

* ``os`` / ``or`` rows — scalar means (a 1-parameter fit);
* ``oneway`` rows — the latency surface ``D(links, s) = ν + τ·links +
  β·s`` fitted over route lengths and payload sizes.  ν absorbs the
  fixed NI send/receive service, τ is the per-link fabric cost (switch
  cut-through + cable + per-hop header time), β the per-payload-byte
  wire time;
* ``gap`` rows — the small-message steady-state gap g (scalar mean);
* ``bulk_gap`` rows — the bulk pipeline ``T(s) = c + G·s`` fitted over
  single-fragment bulk sizes: G is the per-byte cost of the rate-
  limiting stage (the receiver's SBus write DMA), c its fixed per-
  message cost (DMA startup + completion handling).

The solver is plain normal equations + Gaussian elimination with
partial pivoting — the systems are at most 3×3, so no numerics library
is needed (and none may be assumed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Observation", "LogPFit", "lstsq", "fit_constants"]


@dataclass(frozen=True)
class Observation:
    """One reduced measurement.

    ``kind`` selects the model the row feeds: ``os``, ``or``, ``oneway``
    (uses ``links`` and ``nbytes``), ``gap``, or ``bulk_gap`` (uses
    ``nbytes``).  ``value_ns`` is the measured duration.
    """

    kind: str
    value_ns: float
    nbytes: int = 0
    #: route length in links (host→leaf…→host); 0 for host-side rows
    links: int = 0


@dataclass
class LogPFit:
    """Fitted LogP constants (all nanoseconds; G per byte)."""

    os_ns: float
    or_ns: float
    #: latency surface D(links, s) = lat_fixed + lat_per_link·links +
    #: lat_per_byte·s   (enqueue → endpoint delivery, idle network)
    lat_fixed_ns: float
    lat_per_link_ns: float
    lat_per_byte_ns: float
    g_ns: float
    G_ns_per_byte: float
    bulk_fixed_ns: float
    #: observation rows consumed per kind
    counts: dict

    def L_ns(self, links: int, nbytes: int = 16) -> float:
        """The latency surface evaluated at one cell's geometry."""
        return (self.lat_fixed_ns + self.lat_per_link_ns * links
                + self.lat_per_byte_ns * nbytes)

    def to_json(self) -> dict:
        return {
            "os_ns": round(self.os_ns, 3),
            "or_ns": round(self.or_ns, 3),
            "lat_fixed_ns": round(self.lat_fixed_ns, 3),
            "lat_per_link_ns": round(self.lat_per_link_ns, 3),
            "lat_per_byte_ns": round(self.lat_per_byte_ns, 5),
            "g_ns": round(self.g_ns, 3),
            "G_ns_per_byte": round(self.G_ns_per_byte, 5),
            "bulk_fixed_ns": round(self.bulk_fixed_ns, 3),
            "counts": dict(self.counts),
        }


def lstsq(rows: Sequence[tuple[Sequence[float], float]]) -> list[float]:
    """Solve ``min ||Ax - b||`` for small dense systems.

    ``rows`` is ``[(coefficients, value), ...]``.  Normal equations
    (AᵀA x = Aᵀb) with Gaussian elimination + partial pivoting; raises
    ``ValueError`` when the system is singular (a degenerate sweep, e.g.
    every route the same length).
    """
    if not rows:
        raise ValueError("lstsq: no rows")
    n = len(rows[0][0])
    ata = [[0.0] * n for _ in range(n)]
    atb = [0.0] * n
    for coeffs, value in rows:
        if len(coeffs) != n:
            raise ValueError("lstsq: ragged coefficient rows")
        for i in range(n):
            ci = coeffs[i]
            atb[i] += ci * value
            for j in range(n):
                ata[i][j] += ci * coeffs[j]
    # Gaussian elimination with partial pivoting on the augmented system.
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(ata[r][col]))
        if abs(ata[pivot][col]) < 1e-9:
            raise ValueError(
                "lstsq: singular system — the sweep lacks diversity in "
                f"column {col} (e.g. a single route length or payload size)")
        if pivot != col:
            ata[col], ata[pivot] = ata[pivot], ata[col]
            atb[col], atb[pivot] = atb[pivot], atb[col]
        inv = 1.0 / ata[col][col]
        for r in range(col + 1, n):
            f = ata[r][col] * inv
            if f == 0.0:
                continue
            for c in range(col, n):
                ata[r][c] -= f * ata[col][c]
            atb[r] -= f * atb[col]
    x = [0.0] * n
    for r in range(n - 1, -1, -1):
        acc = atb[r]
        for c in range(r + 1, n):
            acc -= ata[r][c] * x[c]
        x[r] = acc / ata[r][r]
    return x


def _mean(values: list[float], what: str) -> float:
    if not values:
        raise ValueError(f"fit_constants: no {what!r} observations")
    return sum(values) / len(values)


def fit_constants(observations: Iterable[Observation]) -> LogPFit:
    """Fit one :class:`LogPFit` from the whole sweep's observation bag."""
    by_kind: dict[str, list[Observation]] = {}
    for ob in observations:
        by_kind.setdefault(ob.kind, []).append(ob)

    os_ns = _mean([ob.value_ns for ob in by_kind.get("os", [])], "os")
    or_ns = _mean([ob.value_ns for ob in by_kind.get("or", [])], "or")
    g_ns = _mean([ob.value_ns for ob in by_kind.get("gap", [])], "gap")

    oneway = by_kind.get("oneway", [])
    if len(oneway) < 3:
        raise ValueError("fit_constants: need >= 3 'oneway' observations")
    nu, tau, beta = lstsq(
        [((1.0, float(ob.links), float(ob.nbytes)), ob.value_ns)
         for ob in oneway])

    bulk = by_kind.get("bulk_gap", [])
    if len(bulk) < 2:
        raise ValueError("fit_constants: need >= 2 'bulk_gap' observations")
    bulk_fixed, big_g = lstsq(
        [((1.0, float(ob.nbytes)), ob.value_ns) for ob in bulk])

    return LogPFit(
        os_ns=os_ns,
        or_ns=or_ns,
        lat_fixed_ns=nu,
        lat_per_link_ns=tau,
        lat_per_byte_ns=beta,
        g_ns=g_ns,
        G_ns_per_byte=big_g,
        bulk_fixed_ns=bulk_fixed,
        counts={k: len(v) for k, v in sorted(by_kind.items())},
    )
