"""repro.calib — in-sim LogP calibration + workload-diversity suite.

The calibration harness closes the loop the paper's cost accounting
opens: the simulator is *configured* with LogP-grade constants
(overheads, NI service budgets, link rates), and this package
re-*measures* them from observed behaviour — span traces of sweeps over
(node-pair × message-size × pattern) cells on the canonical topologies —
fits the constants by least squares, and round-trips the fit against the
closed-form configured model.  Divergence beyond tolerance is a hard
failure, which turns the entire stack's timing model (sim kernel, NI
firmware, SBus DMA engine, fat-tree fabric, express path) into a
CI-gated correctness property.

Quickstart::

    PYTHONPATH=src python -m repro.calib --smoke    # CI gate
    PYTHONPATH=src python -m repro.calib            # full sweep

Alongside the sweep, :mod:`repro.calib.workloads` adds the datacenter
traffic shapes the chaos suite lacked — incast (N→1 synchronized
bursts), RPC fan-out/fan-in with tail-latency amplification, and
streaming pipelines — all deterministic, chaos-compatible and runnable
with the express path on or off (bit-identical observables either way).
"""

from .fitter import LogPFit, Observation, fit_constants
from .model import ConfiguredLogP, configured_model
from .sweep import CalibCell, CalibReport, run_calibration, run_cell

__all__ = [
    "Observation",
    "LogPFit",
    "fit_constants",
    "ConfiguredLogP",
    "configured_model",
    "CalibCell",
    "CalibReport",
    "run_cell",
    "run_calibration",
]
