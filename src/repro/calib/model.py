"""Closed-form LogP constants implied by a :class:`ClusterConfig`.

This is the *other* side of the calibration round trip: the same
constants the sweep measures from spans, derived analytically from the
configured cost model.  Every term references the mechanism that pays
it, so a divergence in the round trip points at the exact code path
whose timing leaked:

* ``os`` / ``or`` — the host overheads, paid verbatim by
  :meth:`Endpoint.request` / :meth:`Endpoint.poll` on the resident
  small-message path;
* the latency surface ``D(links, s) = ν + τ·links + β·s`` — ν is NI
  send service (``ni_send_instr``) + NI receive service
  (``ni_recv_instr`` + the defensive ``ni_errcheck_instr``) plus the
  header's wire time minus one hop (the surface is parameterized on
  *links*, and a route of ``n`` links pays ``n−1`` cut-through hops);
  τ is the per-hop cost (switch cut-through + cable + per-hop header
  serialization, :class:`~repro.myrinet.network.Network`'s ``_hop_ns``);
  β is the per-byte link serialization time;
* ``g`` — the small-message steady-state gap: the full per-message NI
  occupancy of one direction of a request/reply pair (send + post-send
  + receive + errcheck + ack generation + ack processing), the §6.1
  12.8 µs budget;
* ``G`` / ``bulk_fixed`` — the bulk pipeline's rate-limiting stage, the
  receiver's SBus write DMA: G is the per-byte DMA rate, and the fixed
  term is everything charged while the engine is still held — DMA
  startup, the completion handling (``ni_bulk_complete_instr``), and
  the delivery's ack generation (``ni_ack_gen_instr``), since
  ``_bulk_recv`` only releases the engine after ``_finish_delivery``
  returns (the real LANai programs the next transfer only after
  handling the previous one's completion).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.config import ClusterConfig
from .fitter import LogPFit

__all__ = ["ConfiguredLogP", "configured_model", "round_trip"]


@dataclass(frozen=True)
class ConfiguredLogP:
    """The configured cost model in the fitter's coordinates (ns)."""

    os_ns: float
    or_ns: float
    lat_fixed_ns: float
    lat_per_link_ns: float
    lat_per_byte_ns: float
    g_ns: float
    G_ns_per_byte: float
    bulk_fixed_ns: float

    def L_ns(self, links: int, nbytes: int = 16) -> float:
        return (self.lat_fixed_ns + self.lat_per_link_ns * links
                + self.lat_per_byte_ns * nbytes)

    def to_json(self) -> dict:
        return {
            "os_ns": round(self.os_ns, 3),
            "or_ns": round(self.or_ns, 3),
            "lat_fixed_ns": round(self.lat_fixed_ns, 3),
            "lat_per_link_ns": round(self.lat_per_link_ns, 3),
            "lat_per_byte_ns": round(self.lat_per_byte_ns, 5),
            "g_ns": round(self.g_ns, 3),
            "G_ns_per_byte": round(self.G_ns_per_byte, 5),
            "bulk_fixed_ns": round(self.bulk_fixed_ns, 3),
        }


def configured_model(cfg: ClusterConfig) -> ConfiguredLogP:
    """Derive the closed-form constants from ``cfg`` (see module doc)."""
    hop_ns = (cfg.switch_latency_ns + cfg.cable_latency_ns
              + round(cfg.packet_header_bytes * cfg.link_byte_ns))
    send_svc = cfg.lanai_ns(cfg.ni_send_instr)
    recv_svc = cfg.lanai_ns(cfg.ni_recv_instr) + cfg.lanai_ns(cfg.ni_errcheck_instr)
    gap = (send_svc
           + cfg.lanai_ns(cfg.ni_send_post_instr)
           + recv_svc
           + cfg.lanai_ns(cfg.ni_ack_gen_instr)
           + cfg.lanai_ns(cfg.ni_ack_proc_instr))
    return ConfiguredLogP(
        os_ns=float(cfg.host_send_overhead_ns),
        or_ns=float(cfg.host_recv_overhead_ns),
        # D(links, s): a route of n links costs (n-1) cut-through hops
        # plus full-packet serialization on the last link, so shifting to
        # a per-link slope leaves ν = services + header wire time − hop.
        lat_fixed_ns=(send_svc + recv_svc
                      + cfg.wire_ns(cfg.packet_header_bytes) - hop_ns),
        lat_per_link_ns=float(hop_ns),
        lat_per_byte_ns=cfg.link_byte_ns,
        g_ns=float(gap),
        G_ns_per_byte=1_000.0 / cfg.sbus_write_mb_s,
        bulk_fixed_ns=float(cfg.sbus_dma_startup_ns
                            + cfg.lanai_ns(cfg.ni_bulk_complete_instr)
                            + cfg.lanai_ns(cfg.ni_ack_gen_instr)),
    )


#: constants compared by :func:`round_trip` (name, human label)
_CONSTANTS = (
    ("os_ns", "o_s"),
    ("or_ns", "o_r"),
    ("g_ns", "g"),
    ("G_ns_per_byte", "G"),
    ("bulk_fixed_ns", "bulk fixed"),
)


def round_trip(fit: LogPFit, model: ConfiguredLogP,
               cells: list[tuple[str, int, int]],
               tolerance: float = 0.10) -> tuple[list[dict], list[str]]:
    """Compare fitted vs configured constants; L is compared per cell.

    ``cells`` lists ``(label, links, nbytes)`` geometries at which the
    two latency surfaces are evaluated (comparing the surfaces where
    they were actually sampled, rather than their raw coefficients,
    keeps the check meaningful when ν and τ trade off slightly).
    Returns ``(comparison rows, failure strings)``.
    """
    rows: list[dict] = []
    failures: list[str] = []

    def compare(label: str, fitted: float, configured: float) -> None:
        rel = abs(fitted - configured) / abs(configured) if configured else 0.0
        ok = rel <= tolerance
        rows.append({
            "constant": label,
            "fitted_ns": round(fitted, 3),
            "configured_ns": round(configured, 3),
            "rel_err": round(rel, 5),
            "ok": ok,
        })
        if not ok:
            failures.append(
                f"{label}: fitted {fitted:.1f} ns vs configured "
                f"{configured:.1f} ns ({rel * 100.0:.1f}% > "
                f"{tolerance * 100.0:.0f}%)")

    for attr, label in _CONSTANTS:
        compare(label, getattr(fit, attr), getattr(model, attr))
    for label, links, nbytes in cells:
        compare(f"L@{label}", fit.L_ns(links, nbytes),
                model.L_ns(links, nbytes))
    return rows, failures
