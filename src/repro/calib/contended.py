"""Noisy-neighbor calibration: L and g under a background bulk tenant.

The main sweep (:mod:`repro.calib.sweep`) measures the LogP constants
on an otherwise idle fabric.  These cells re-measure the two constants
a co-tenant can actually perturb — the one-way latency surface sample L
(pingpong) and the small-message steady-state gap g (flood) — while a
**background bulk tenant** blasts continuous single-fragment transfers
from the other two leaf4 hosts into a sink *co-located on the probe's
peer node*: the same shared-NI coupling as
:class:`repro.tenant.interference.InterferenceWorkload`, so the probe's
messages compete with the bulk tenant for node 1's NI service rotation
and host link.

Each pattern runs under two background variants — the bulk tenant
unlimited, and rate-capped by its token bucket — so the report shows
both the raw contention penalty and how much of it the tenant layer's
rate knob claws back.  Contended values are reported *alongside* the
idle fit (never fed into it: the global least-squares surface must stay
an idle-fabric property), as ``contended`` rows in ``BENCH_CALIB.json``
with the inflation ratio over the matching idle cell.

Determinism follows the sweep pattern: fixed seed, global id counters
rewound per cell, digest over the probe's raw span timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..am.vnet import parallel_vnet
from ..chaos.runner import reset_global_ids
from ..cluster.builder import Cluster
from ..cluster.config import ClusterConfig
from ..obs import message_spans
from ..sim.core import ms
from ..tenant.core import TenantRegistry

__all__ = ["ContendedCellResult", "CONTENDED_VARIANTS", "run_contended_cell",
           "run_contended_cells"]

#: background-tenant variants: label -> rate cap (msgs/s; None = unlimited)
CONTENDED_VARIANTS: dict[str, Optional[float]] = {
    "unlimited": None,
    "rate2k": 2_000.0,
}

_BULK_NBYTES = 4_096  # single fragment: continuous pressure, no credit games


@dataclass
class ContendedCellResult:
    """One contended measurement, reduced like a sweep cell."""

    pattern: str  # "pingpong" | "flood"
    nbytes: int
    variant: str
    headline_ns: float = 0.0
    samples: int = 0
    #: background-tenant activity during the cell (sanity: contention real)
    bulk_serviced: int = 0
    bulk_throttled: int = 0
    sim_ns: int = 0
    events: int = 0
    digest: str = ""
    wall_s: float = 0.0

    @property
    def label(self) -> str:
        return f"contended/{self.pattern}/{self.nbytes}B/{self.variant}"

    def to_dict(self) -> dict:
        return {
            "cell": self.label,
            "pattern": self.pattern,
            "nbytes": self.nbytes,
            "variant": self.variant,
            "headline_ns": round(self.headline_ns, 3),
            "samples": self.samples,
            "bulk_serviced": self.bulk_serviced,
            "bulk_throttled": self.bulk_throttled,
            "sim_ns": self.sim_ns,
            "events": self.events,
            "digest": self.digest,
        }


def run_contended_cell(pattern: str, *, variant: str = "unlimited",
                       nbytes: int = 16, rounds: int = 24,
                       seed: int = 1999) -> ContendedCellResult:
    """Measure one probe pattern on leaf4 under the background tenant.

    Probe: node 0 -> node 1 (the sweep's leaf4 geometry).  Background:
    sources on nodes 2 and 3 stream bulk requests into a sink endpoint
    on node 1 for the whole measurement window.
    """
    import hashlib
    import time

    rate = CONTENDED_VARIANTS[variant]
    reset_global_ids()
    cfg = ClusterConfig(num_hosts=4, seed=seed)
    cluster = Cluster(cfg)
    sim = cluster.sim
    res = ContendedCellResult(pattern=pattern, nbytes=nbytes, variant=variant)

    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "cont.setup")
    ep0, ep1 = vnet[0], vnet[1]
    # rank 0 = sink on node 1 (shares the probe peer's NI), 1/2 = sources
    bnet = cluster.run_process(parallel_vnet(cluster, [1, 2, 3]), "cont.bg")
    sink, src2, src3 = bnet[0], bnet[1], bnet[2]

    registry = TenantRegistry()
    probe_t = registry.create("probe", weight=4, frame_reservation=1)
    bulk_t = registry.create("bulk", rate_msgs_per_s=rate)
    probe_t.adopt(ep0, ep1)
    bulk_t.adopt(sink, src2, src3)
    registry.validate_against(cfg.endpoint_frames)

    # warm everything resident: the cell measures the steady state
    for node_id, ep in ((0, ep0), (1, ep1), (1, sink), (2, src2), (3, src3)):
        cluster.run_process(cluster.node(node_id).driver.write_fault(ep.state),
                            f"cont.w{node_id}")
    cluster.run(until=sim.now + ms(10))
    bus = cluster.enable_tracing()

    marks: dict[str, int] = {}
    done: list[int] = []

    def bg_sender(ep):
        def body(thr):
            while not done:
                if ep.credits_available(0) >= 1:
                    yield from ep.request(thr, 0, None, nbytes=_BULK_NBYTES)
                else:
                    got = yield from ep.poll(thr, limit=4)
                    if not got:
                        yield from thr.compute(2_000)
        return body

    def bg_sink(thr):
        while not done:
            got = yield from sink.poll(thr, limit=8)
            if not got:
                yield from thr.compute(2_000)

    def receiver(thr):
        while not done:
            yield from ep1.poll(thr, limit=8)

    def drain_replies(thr):
        for _ in range(100_000):
            got = yield from ep0.poll(thr, limit=8)
            if not got and not ep0._outstanding:
                return
        raise RuntimeError(f"{res.label}: probe could not drain")

    def sender(thr):
        # let the background ramp to steady state before measuring
        yield from thr.compute(200_000)
        yield from ep0.request(thr, 1, None, nbytes=16)
        yield from drain_replies(thr)
        marks["t_meas"] = sim.now
        if pattern == "pingpong":
            for _ in range(rounds):
                yield from ep0.request(thr, 1, None, nbytes=nbytes)
                yield from drain_replies(thr)
        elif pattern == "flood":
            for _ in range(rounds):
                yield from ep0.request(thr, 1, None, nbytes=nbytes)
                yield from ep0.poll(thr, limit=2)
            yield from drain_replies(thr)
        else:
            raise ValueError(f"unknown contended pattern {pattern!r}")
        done.append(1)

    cluster.node(1).start_process("cont.sink").spawn_thread(bg_sink, "sink")
    cluster.node(2).start_process("cont.b2").spawn_thread(bg_sender(src2), "b2")
    cluster.node(3).start_process("cont.b3").spawn_thread(bg_sender(src3), "b3")
    cluster.node(1).start_process("cont.r").spawn_thread(receiver, "recv")
    cluster.node(0).start_process("cont.s").spawn_thread(sender, "send")

    t0_wall = time.perf_counter()
    sim.run(until=sim.now + ms(4_000), stop=lambda: bool(done))
    res.wall_s = time.perf_counter() - t0_wall
    if not done:
        raise RuntimeError(f"contended cell {res.label} did not converge")

    spans = [sp for sp in message_spans(bus, complete_only=True)
             if sp.src == 0 and sp.nbytes == nbytes
             and sp.enq_ts is not None and sp.enq_ts >= marks["t_meas"]]
    bus.detach()
    res.samples = len(spans)
    res.sim_ns = sim.now
    res.events = sim.events_dispatched
    res.bulk_serviced = bulk_t.stats.msgs_serviced
    res.bulk_throttled = bulk_t.stats.throttled

    if pattern == "pingpong":
        if len(spans) != rounds:
            raise RuntimeError(f"{res.label}: expected {rounds} spans, "
                               f"saw {len(spans)}")
        oneways = [sp.oneway_ns for sp in spans]
        res.headline_ns = sum(oneways) / len(oneways)
        material = (res.label,
                    [(sp.enq_ts, sp.deliver_ts) for sp in spans])
    else:
        delivers = sorted(sp.deliver_ts for sp in spans)
        if len(delivers) < rounds:
            raise RuntimeError(f"{res.label}: expected {rounds} deliveries, "
                               f"saw {len(delivers)}")
        lo, hi = len(delivers) // 4, 3 * len(delivers) // 4
        res.headline_ns = (delivers[hi] - delivers[lo]) / (hi - lo)
        material = (res.label, delivers)

    h = hashlib.sha256()
    h.update(repr((material, res.sim_ns, res.events,
                   res.bulk_serviced, res.bulk_throttled)).encode())
    res.digest = h.hexdigest()
    return res


def run_contended_cells(*, smoke: bool = False,
                        seed: int = 1999) -> list[ContendedCellResult]:
    """The contended matrix: (pingpong, flood) x background variants."""
    results = []
    pp_rounds = 12 if smoke else 24
    flood_rounds = 120 if smoke else 240
    for variant in CONTENDED_VARIANTS:
        results.append(run_contended_cell(
            "pingpong", variant=variant, nbytes=16, rounds=pp_rounds,
            seed=seed))
        results.append(run_contended_cell(
            "flood", variant=variant, nbytes=16, rounds=flood_rounds,
            seed=seed))
    return results
