"""``python -m repro.calib`` — run the calibration sweep CLI."""

from .sweep import main

raise SystemExit(main())
