"""The tenant interference matrix: isolation SLOs audited under storms.

Runs :class:`repro.tenant.interference.InterferenceWorkload` across a
(policy x chaos-profile x seed) matrix and gates the tenant layer's
whole promise:

* **determinism** — every traced cell runs twice and the two timeline
  digests must be bit-identical (a failing cell replays exactly);
* **contract** — every cell satisfies the delivery contract (I1-I3,
  drop accounting, quiescence);
* **isolation** — for every storm cell, :func:`repro.chaos.check_isolation`
  audits the quiet tenant against an :class:`~repro.chaos.IsolationSLO`
  whose baseline p99 comes from the *same policy's fault-free cell*: the
  storm scoped to the noisy tenant may not leak faults onto quiet nodes,
  may not surface contract violations in the quiet tenant's partition,
  and may not inflate the quiet p99 beyond the SLO bound;
* **goodput floor** — the quiet tenant's answered-probe count never hits
  zero in any cell (graceful degradation, never starvation);
* **express parity** — untraced fault-free runs of each policy with the
  express path on vs off reduce to bit-identical observable digests
  (counts, RTT samples, tenant counters — never kernel internals).

Policies range from no isolation at all (``baseline``) through weighted
NI service (``weighted``) to weighted service plus a noisy-tenant send
rate limit (``rate5k``/``rate2k``).  Rates below ~2k msgs/s are
deliberately not benched: at a bucket interval of 0.5 ms and up, the
noisy tenant's own drain (bulk fragments plus sink replies share one
bucket) outlasts the chaos harness's hard quiescence deadline, so the
supervisor kills the run mid-flight — a harness artifact, not an
isolation result.

Run as a module::

    PYTHONPATH=src python -m repro.tenant.bench --smoke
    PYTHONPATH=src python -m repro.tenant.bench --out BENCH_TENANT.json

Exit status is non-zero if any gate fails.  The JSON artifact contains
no wall-clock times, so re-running on the same tree reproduces it byte
for byte.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Optional, Sequence

from ..chaos.invariants import IsolationSLO, check_isolation
from ..chaos.runner import chaos_config, reset_global_ids, run_chaos
from ..chaos.schedule import Scenario, ScheduleGenerator
from ..cluster.builder import Cluster
from ..cluster.config import ClusterConfig
from ..sim.core import AllOf
from .interference import InterferenceWorkload

__all__ = ["POLICIES", "run_interference_bench", "main"]

#: tenant-mix policies: kwargs layered onto InterferenceWorkload
POLICIES: dict[str, dict] = {
    # no isolation: equal weight, no reservation, unlimited noisy tenant
    "baseline": dict(quiet_weight=1, quiet_reservation=0),
    # weighted NI service + one reserved frame for the quiet tenant
    "weighted": dict(quiet_weight=4, quiet_reservation=1),
    # weighted service + noisy send-rate cap (token bucket)
    "rate5k": dict(quiet_weight=4, quiet_reservation=1,
                   noisy_rate_msgs_s=5_000.0),
    "rate2k": dict(quiet_weight=4, quiet_reservation=1,
                   noisy_rate_msgs_s=2_000.0),
}

_DURATION_NS = 20_000_000
_NUM_HOSTS = 4


def _calm_scenario(seed: int) -> Scenario:
    """A fault-free scenario: same supervisor/deadline, zero injections."""
    return Scenario(name="calm", seed=seed, profile="none",
                    duration_ns=_DURATION_NS, actions=[])


def _storm_scenario(seed: int, wl: InterferenceWorkload,
                    profile: str) -> Scenario:
    """A tenant_storm scoped to the noisy tenant's fault domain."""
    gen = ScheduleGenerator(
        seed,
        num_hosts=_NUM_HOSTS,
        num_spines=1,
        num_procs=len(wl.noisy_proc_pool) + 3,
        num_eps=5,
        duration_ns=_DURATION_NS,
        profile=profile,
        host_pool=wl.noisy_host_pool,
        proc_pool=wl.noisy_proc_pool,
        ep_pool=wl.noisy_ep_pool,
    )
    return gen.generate("tenant_storm")


def _traced_cell(policy: str, seed: int, storm: bool, profile: str,
                 engine=None):
    """One traced chaos run; returns (report, workload)."""
    wl = InterferenceWorkload(**POLICIES[policy])
    scenario = _storm_scenario(seed, wl, profile) if storm \
        else _calm_scenario(seed)
    report = run_chaos(scenario, wl, num_hosts=_NUM_HOSTS, keep=True,
                       engine=engine)
    return report, wl


def _quiet_percentiles(wl: InterferenceWorkload) -> tuple[int, int]:
    from ..calib.workloads import percentile_ns

    lats = wl.bench_latencies_ns()
    return percentile_ns(lats, 50), percentile_ns(lats, 99)


def _untraced_digest(policy: str, seed: int, express: bool,
                     engine=None) -> str:
    """Fault-free untraced run reduced to express-invariant observables.

    Untraced so the express path may engage; the digest covers counts,
    RTT samples and tenant counters only — integers that must be
    bit-identical whether packets took the express or the full-fidelity
    path (mirrors :func:`repro.calib.workloads.run_workload_bench`).
    """
    reset_global_ids()
    wl = InterferenceWorkload(**POLICIES[policy])
    cfg = ClusterConfig(
        num_hosts=_NUM_HOSTS,
        seed=seed,
        express_path=express,
        dead_timeout_ms=6.0,
    )
    cluster = Cluster(cfg, engine=engine)
    sim = cluster.sim
    sim.run_process(wl.build(cluster), name="tenant.bench.setup")
    wl.give_up_ns = 3 * cfg.dead_timeout_ns
    wl.start()

    def supervise():
        yield wl.quota_done()
        yield sim.timeout(500_000)
        wl.stop_receivers()
        pending = [t.done for t in wl.all_threads]
        if pending:
            yield AllOf(sim, pending)
        yield sim.timeout(200_000)

    sim.run_process(supervise(), name="tenant.bench.supervisor",
                    until=sim.now + 10_000_000_000)

    h = hashlib.sha256()
    h.update(repr((policy, seed, wl.sent, wl.handled, wl.returned_seen,
                   wl.quiet_answered, wl.quiet_returned,
                   tuple(wl.bench_latencies_ns()), sim.now,
                   sorted(wl.registry.snapshot().items()))).encode())
    return h.hexdigest()


def run_interference_bench(
    seeds: Sequence[int] = (11, 23),
    policies: Sequence[str] = tuple(POLICIES),
    profile: str = "brutal",
    engine=None,
    max_p99_inflation: float = 3.0,
    min_goodput_frac: float = 0.5,
) -> dict:
    """Run the full matrix; returns the gated result document.

    For each (policy, seed): a fault-free *calm* cell establishes the
    admitted-contention baseline, a *storm* cell runs a ``tenant_storm``
    scoped to the noisy tenant's fault domain, and both are run twice
    for the digest gate.  One express-parity check per (policy, seed)
    rides along.  ``result["ok"]`` aggregates every gate.
    """
    cells = []
    express_checks = []
    gates = {"determinism": True, "contract": True, "isolation": True,
             "goodput_floor": True, "express_parity": True}

    for policy in policies:
        for seed in seeds:
            baseline_p99 = None
            for kind in ("calm", "storm"):
                storm = kind == "storm"
                report, wl = _traced_cell(policy, seed, storm, profile,
                                          engine=engine)
                repeat, _ = _traced_cell(policy, seed, storm, profile,
                                         engine=engine)
                p50, p99 = _quiet_percentiles(wl)
                report.bus.publish_tenants(wl.registry)

                cell = {
                    "policy": policy,
                    "profile": report.profile if storm else "none",
                    "kind": kind,
                    "seed": seed,
                    "ok": report.ok,
                    "digest": report.digest,
                    "digest_repeat_ok": report.digest == repeat.digest,
                    "sim_ms": round(report.sim_ns / 1e6, 3),
                    "faults_injected": report.faults_injected,
                    "accepted": report.accepted,
                    "delivered": report.delivered,
                    "returned": report.returned,
                    "quiet": {
                        "answered": wl.quiet_answered,
                        "returned": wl.quiet_returned,
                        "pings": wl.pings,
                        "p50_us": round(p50 / 1e3, 1),
                        "p99_us": round(p99 / 1e3, 1),
                    },
                    "tenants": wl.registry.snapshot(),
                    "violations": [str(v) for v in report.violations],
                }

                if not cell["digest_repeat_ok"]:
                    gates["determinism"] = False
                if not report.ok:
                    gates["contract"] = False
                if wl.quiet_answered == 0:
                    gates["goodput_floor"] = False

                if not storm:
                    baseline_p99 = p99
                else:
                    slo = IsolationSLO(
                        baseline_p99_ns=max(1, baseline_p99),
                        max_p99_inflation=max_p99_inflation,
                        min_goodput_frac=min_goodput_frac,
                    )
                    iso = check_isolation(report.bus.events, wl, slo)
                    bound = round(baseline_p99 * max_p99_inflation)
                    cell["slo"] = {
                        "baseline_p99_us": round(baseline_p99 / 1e3, 1),
                        "p99_bound_us": round(bound / 1e3, 1),
                        "p99_margin_us": round((bound - p99) / 1e3, 1),
                        "violations": [str(v) for v in iso],
                    }
                    report.bus.metrics.gauge(
                        "tenant.slo.p99_margin_ns", tenant="quiet").set(
                            bound - p99)
                    if iso:
                        gates["isolation"] = False
                cells.append(cell)

            on = _untraced_digest(policy, seed, express=True, engine=engine)
            off = _untraced_digest(policy, seed, express=False, engine=engine)
            express_checks.append({
                "policy": policy, "seed": seed,
                "digest_on": on, "digest_off": off, "ok": on == off,
            })
            if on != off:
                gates["express_parity"] = False

    return {
        "generated_by": "repro.tenant.bench",
        "config": {
            "seeds": list(seeds),
            "policies": list(policies),
            "profile": profile,
            "duration_ms": _DURATION_NS / 1e6,
            "num_hosts": _NUM_HOSTS,
            "slo": {"max_p99_inflation": max_p99_inflation,
                    "min_goodput_frac": min_goodput_frac},
        },
        "gates": gates,
        "ok": all(gates.values()),
        "cells": cells,
        "express_checks": express_checks,
    }


def _print_summary(result: dict) -> None:
    from ..bench.reporting import print_table

    rows = []
    for c in result["cells"]:
        slo = c.get("slo")
        rows.append([
            c["policy"], c["kind"], c["seed"], c["faults_injected"],
            f"{c['quiet']['answered']}/{c['quiet']['pings']}",
            c["quiet"]["p50_us"], c["quiet"]["p99_us"],
            (f"+{slo['p99_margin_us']}" if slo else "-"),
            "ok" if c["ok"] and c["digest_repeat_ok"]
            and not (slo and slo["violations"]) else "FAIL",
        ])
    print_table(
        ["policy", "cell", "seed", "faults", "answered", "p50 us",
         "p99 us", "SLO margin", "status"],
        rows,
        title="tenant interference matrix (quiet-tenant view)",
    )
    xp = result["express_checks"]
    good = sum(1 for x in xp if x["ok"])
    print(f"express parity: {good}/{len(xp)} policy/seed pairs bit-equal")
    print("gates: " + ", ".join(
        f"{k}={'ok' if v else 'FAIL'}" for k, v in result["gates"].items()))


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--seeds", type=int, nargs="+", default=[11, 23])
    ap.add_argument("--policies", nargs="+", default=list(POLICIES),
                    choices=list(POLICIES), metavar="POLICY")
    ap.add_argument("--profile", choices=("mild", "rough", "brutal"),
                    default="brutal", help="storm intensity")
    ap.add_argument("--max-p99-inflation", type=float, default=3.0)
    ap.add_argument("--min-goodput-frac", type=float, default=0.5)
    ap.add_argument("--out", default=None,
                    help="write the JSON artifact here")
    ap.add_argument("--smoke", action="store_true",
                    help="small fixed matrix for CI: 1 seed, 2 policies")
    args = ap.parse_args(argv)

    if args.smoke:
        args.seeds = [11]
        args.policies = ["baseline", "rate2k"]

    result = run_interference_bench(
        seeds=args.seeds,
        policies=args.policies,
        profile=args.profile,
        max_p99_inflation=args.max_p99_inflation,
        min_goodput_frac=args.min_goodput_frac,
    )
    _print_summary(result)

    if args.out:
        with open(args.out, "w") as f:
            json.dump(result, f, indent=1, sort_keys=False)
            f.write("\n")
        print(f"wrote {args.out}")

    if not result["ok"]:
        bad = [c for c in result["cells"]
               if not c["ok"] or not c["digest_repeat_ok"]
               or c.get("slo", {}).get("violations")]
        for c in bad:
            print(f"FAIL {c['policy']}/{c['kind']} seed={c['seed']}: "
                  f"{c['violations'] or c.get('slo', {}).get('violations')}",
                  file=sys.stderr)
        return 1
    print("all tenant isolation gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
