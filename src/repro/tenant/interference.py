"""The noisy-neighbor workload: two tenants, one fabric, one shared NI.

A latency-sensitive **quiet** tenant runs a LogP-style ping-pong between
nodes 0 and 1 (one small request per probe period, RTT recorded), while
a **noisy** tenant blasts bulk transfers from sources on nodes 2 and 3
into a sink endpoint *co-located on quiet node 1*.  That co-location is
the point: node 1's NI serves both the quiet pong replies and the noisy
sink's bulk replies from one send rotation, and its host link carries
both ping arrivals and converging bulk fragments — the classic shared-NI
noisy-neighbor coupling the tenant layer's weighted service exists to
bound.

Process index 0 is the quiet pinger (the observer generated schedules
never kill).  The noisy tenant's *fault domain* — the processes, hosts
and eviction targets a scoped storm may hit — is exposed as
``noisy_proc_pool`` / ``noisy_host_pool`` / ``noisy_ep_pool``, and
deliberately contains only the source side (nodes 2-3): faulting the
co-located sink would land ``fault.inject`` events on a quiet node and
muddy the attribution :func:`repro.chaos.invariants.check_isolation`
audits.
"""

from __future__ import annotations

from typing import Generator

from ..am.errors import EndpointFreedError
from ..am.vnet import parallel_vnet
from ..chaos.workloads import _IDLE_NS, WORKLOADS, ChaosWorkload
from .core import Tenant, TenantRegistry

__all__ = ["InterferenceWorkload"]


class InterferenceWorkload(ChaosWorkload):
    """Quiet ping-pong (nodes 0-1) vs noisy bulk fan-in (2,3 -> sink on 1)."""

    name = "interference"

    def __init__(
        self,
        pings: int = 120,
        ping_period_us: float = 150.0,
        transfers: int = 30,
        bulk_payload: int = 24_576,
        noisy_duration_us: float = 18_000.0,
        quiet_weight: int = 4,
        quiet_reservation: int = 1,
        noisy_rate_msgs_s: float | None = None,
        noisy_frame_quota: int | None = None,
    ):
        super().__init__(requests=pings, payload=16)
        self.pings = pings
        self.ping_period_ns = round(ping_period_us * 1_000)
        self.transfers = transfers
        self.bulk_payload = bulk_payload
        self.noisy_deadline_ns = round(noisy_duration_us * 1_000)
        self.registry = TenantRegistry()
        self.quiet: Tenant = self.registry.create(
            "quiet", weight=quiet_weight, frame_reservation=quiet_reservation)
        self.noisy: Tenant = self.registry.create(
            "noisy", rate_msgs_per_s=noisy_rate_msgs_s,
            frame_quota=noisy_frame_quota)
        #: per-probe round-trip times on the quiet tenant (simulated ns)
        self.rtt_ns: list[int] = []
        #: quiet probes answered / returned undeliverable
        self.quiet_answered = 0
        self.quiet_returned = 0
        self.quiet_vnet = None
        self.noisy_vnet = None

    # fixed roles on four fixed nodes; the noisy sink lives on quiet
    # node 1 (shared NI) but belongs to the noisy tenant
    num_hosts_needed = 4
    quiet_nodes = frozenset((0, 1))
    noisy_nodes = frozenset((2, 3))

    @property
    def noisy_host_pool(self) -> list[int]:
        return sorted(self.noisy_nodes)

    @property
    def noisy_proc_pool(self) -> list[int]:
        # procs: 0=ping, 1=pong, 2=src@2, 3=src@3, 4=sink@1 (not poolable:
        # killing it would inject faults on a quiet node)
        return [2, 3]

    @property
    def noisy_ep_pool(self) -> list[int]:
        return [2, 3]  # eviction_targets indices of the noisy source eps

    def build(self, cluster) -> Generator:
        self.cluster = cluster
        self.quiet_vnet = yield from parallel_vnet(cluster, [0, 1])
        # rank 0 = sink on node 1, ranks 1/2 = sources on nodes 2/3
        self.noisy_vnet = yield from parallel_vnet(cluster, [1, 2, 3])
        roles = (
            ("ping", 0, self.quiet_vnet[0], self.quiet),
            ("pong", 1, self.quiet_vnet[1], self.quiet),
            ("src2", 2, self.noisy_vnet[1], self.noisy),
            ("src3", 3, self.noisy_vnet[2], self.noisy),
            ("sink", 1, self.noisy_vnet[0], self.noisy),
        )
        for role, node_id, ep, tenant in roles:
            node = cluster.node(node_id)
            proc = node.start_process(name=f"tenant.{role}")
            proc.adopt_endpoint(ep.state)
            tenant.adopt(ep)
            self.procs.append(proc)
            self.eviction_targets.append((node, ep.state))
        self.registry.validate_against(cluster.cfg.endpoint_frames)

    def start(self) -> None:
        ping_p, pong_p, src2_p, src3_p, sink_p = self.procs
        if not ping_p.terminated:
            self.sender_threads.append(ping_p.spawn_thread(
                self._ping_body(self.quiet_vnet[0]), name="tenant.ping"))
        if not pong_p.terminated:
            self.receiver_threads.append(pong_p.spawn_thread(
                self._receiver_body(self.quiet_vnet[1]), name="tenant.pong"))
        for proc, rank in ((src2_p, 1), (src3_p, 2)):
            if proc.terminated:
                continue
            self.sender_threads.append(proc.spawn_thread(
                self._bulk_body(self.noisy_vnet[rank]),
                name=f"tenant.src{rank + 1}"))
        if not sink_p.terminated:
            self.receiver_threads.append(sink_p.spawn_thread(
                self._receiver_body(self.noisy_vnet[0]), name="tenant.sink"))

    def _bulk_body(self, ep):
        """Noisy source: blast transfers for a *time budget*, not a quota.

        A rate-limited tenant pushes its quota arbitrarily slowly, so a
        fixed count would stretch the run past the chaos hard deadline;
        a real noisy neighbor blasts for the duration of the scenario
        and then stops.  ``transfers`` still caps the total.
        """
        def body(thr):
            sim = ep.node.sim
            ep.undeliverable_handler = self._on_returned
            t_deadline = sim.now + self.noisy_deadline_ns
            fired = 0
            try:
                try:
                    for _ in range(self.transfers):
                        if sim.now >= t_deadline:
                            break
                        ok = yield from self._guarded_request(
                            thr, ep, 0, nbytes=self.bulk_payload)
                        if not ok:
                            break
                        fired += 1
                    yield from self._settle(thr, ep, [0])
                except EndpointFreedError:
                    return
            finally:
                self._mark_sender_done()
            try:
                # Unlike the generic drain loop, keep polling after the
                # stop flag until every fired transfer resolved AND the
                # endpoint has been quiet for a linger window: a
                # rate-limited sink trickles its last (possibly
                # duplicate) replies out one bucket interval at a time
                # long after traffic stopped, and exiting between two
                # trickles would leave them undrained (a Q violation).
                bucket = self.noisy.bucket
                linger = max(1_000_000,
                             3 * bucket.interval_ns if bucket else 0)
                deadline = None
                last_arrival = sim.now
                while True:
                    processed = yield from ep.poll(thr, limit=16)
                    if processed:
                        last_arrival = sim.now
                    if self._stop["flag"]:
                        if deadline is None:
                            deadline = sim.now + self.give_up_ns
                        resolved = (ep.stats.replies_handled
                                    + ep.stats.undeliverable) >= fired
                        if (resolved and not ep.has_pending()
                                and ep.state.inflight == 0
                                and not ep.state.send_ring
                                and sim.now - last_arrival >= linger) \
                                or sim.now >= deadline:
                            return
                    if processed == 0:
                        yield from thr.sleep(_IDLE_NS)
            except EndpointFreedError:
                return
        return body

    def _ping_body(self, ep):
        def body(thr):
            sim = ep.node.sim
            ep.undeliverable_handler = self._on_returned
            t_start = sim.now
            try:
                try:
                    for i in range(self.pings):
                        # fixed probe cadence: one RTT sample per period
                        target = t_start + i * self.ping_period_ns
                        if sim.now < target:
                            yield from thr.sleep(target - sim.now)
                        t0 = sim.now
                        base_rep = ep.stats.replies_handled
                        base_ret = ep.stats.undeliverable
                        ok = yield from self._guarded_request(
                            thr, ep, 1, nbytes=self.payload)
                        if not ok:
                            continue
                        deadline = sim.now + self.give_up_ns
                        while (ep.stats.replies_handled == base_rep
                               and ep.stats.undeliverable == base_ret):
                            if sim.now >= deadline:
                                break
                            processed = yield from ep.poll(thr, limit=8)
                            if processed == 0:
                                yield from thr.sleep(_IDLE_NS)
                        if ep.stats.replies_handled > base_rep:
                            self.quiet_answered += 1
                            self.rtt_ns.append(sim.now - t0)
                        elif ep.stats.undeliverable > base_ret:
                            self.quiet_returned += 1
                    yield from self._settle(thr, ep, [1])
                except EndpointFreedError:
                    return
            finally:
                self._mark_sender_done()
            try:
                yield from self._drain_loop(thr, ep)
            except EndpointFreedError:
                return
        return body

    def bench_latencies_ns(self) -> list[int]:
        return sorted(self.rtt_ns)


WORKLOADS[InterferenceWorkload.name] = InterferenceWorkload
