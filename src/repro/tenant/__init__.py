"""Multi-tenant isolation layer over the virtual-network fabric."""

from .core import (Tenant, TenantRegistry, TenantSpec, TenantStats,
                   TokenBucket)

__all__ = ["TenantSpec", "TenantStats", "TokenBucket", "Tenant",
           "TenantRegistry"]
