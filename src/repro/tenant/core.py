"""Tenants: named groups of endpoints with isolation guarantees.

The paper virtualizes *endpoints* so mutually distrusting processes can
share one NI; this module virtualizes the next level up — the fabric
hosts many independent virtual networks ("tenants"), each a named group
of endpoints/vnets with:

* a **service weight** — the NI's endpoint rotation becomes a weighted
  deficit round-robin (:meth:`repro.nic.firmware.Nic._next_service_ep`):
  each visit grants ``weight × wrr_max_msgs`` messages, and service cut
  short by rate limiting carries over as a bounded deficit;
* a **send-rate limit** — a deterministic integer token bucket charged
  one token per serviced send; an empty bucket defers the endpoint
  (messages wait in the send ring, so exhaustion surfaces to the host
  as ring backpressure, never as drops);
* a **frame reservation** — :class:`repro.osim.segdriver.SegmentDriver`
  victim selection never lets one tenant evict another below its
  reserved resident-frame count;
* a **frame quota** — a tenant at its quota must victimize its own
  endpoints to load new ones (self-paging, in the osim spirit).

Untenanted endpoints (``EndpointState.tenant is None``) behave exactly
as before: weight 1, no limits, no reservation — the tenant layer is
pay-as-you-go.  All bookkeeping is plain integer counters updated on
both the traced and untraced paths, so tenant accounting never perturbs
timing and digests stay mode-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["TenantSpec", "TenantStats", "TokenBucket", "Tenant",
           "TenantRegistry"]


@dataclass(frozen=True)
class TenantSpec:
    """Static per-tenant policy knobs."""

    name: str
    #: NI service weight: a tenant's endpoints get ``weight`` times the
    #: base WRR loiter budget per rotation visit
    weight: int = 1
    #: resident frames (per NIC) other tenants may never evict this
    #: tenant below
    frame_reservation: int = 0
    #: max resident frames (per NIC) this tenant may occupy; at the
    #: quota it must evict its own endpoints (None = unlimited)
    frame_quota: Optional[int] = None
    #: send-service rate limit in messages/s (None = unlimited)
    rate_msgs_per_s: Optional[float] = None
    #: token-bucket depth in messages
    burst_msgs: int = 8

    def validate(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a name")
        if self.weight < 1:
            raise ValueError(f"tenant {self.name}: weight must be >= 1")
        if self.frame_reservation < 0:
            raise ValueError(f"tenant {self.name}: frame_reservation < 0")
        if self.frame_quota is not None:
            if self.frame_quota < 1:
                raise ValueError(f"tenant {self.name}: frame_quota must be >= 1")
            if self.frame_quota < self.frame_reservation:
                raise ValueError(
                    f"tenant {self.name}: frame_quota below frame_reservation")
        if self.rate_msgs_per_s is not None and self.rate_msgs_per_s <= 0:
            raise ValueError(f"tenant {self.name}: rate must be positive")
        if self.burst_msgs < 1:
            raise ValueError(f"tenant {self.name}: burst_msgs must be >= 1")


@dataclass
class TenantStats:
    """Plain-integer counters (digest-safe, mode-invariant)."""

    #: messages serviced by the NI for this tenant's endpoints
    msgs_serviced: int = 0
    #: service attempts deferred because the token bucket was empty
    throttled: int = 0
    #: evictions of this tenant's endpoints caused by *another* tenant
    evictions_suffered: int = 0
    #: evictions of other tenants' endpoints this tenant's loads caused
    evictions_caused: int = 0
    #: cross-tenant victim candidacies vetoed by this tenant's reservation
    reservation_vetoes: int = 0
    #: evictions where this tenant victimized one of its own endpoints
    #: (self-paging — the only choice left at the frame quota)
    quota_self_evictions: int = 0

    def snapshot(self) -> dict:
        return {
            "msgs_serviced": self.msgs_serviced,
            "throttled": self.throttled,
            "evictions_suffered": self.evictions_suffered,
            "evictions_caused": self.evictions_caused,
            "reservation_vetoes": self.reservation_vetoes,
            "quota_self_evictions": self.quota_self_evictions,
        }


class TokenBucket:
    """Deterministic integer token bucket, denominated in nanoseconds.

    One "token" is ``interval_ns`` of accumulated credit (the message
    inter-arrival time at the configured rate); the bucket holds up to
    ``burst`` tokens.  Pure integer arithmetic keyed on the simulated
    clock, so refills are exactly reproducible.
    """

    __slots__ = ("interval_ns", "cap_ns", "level_ns", "last_ns")

    def __init__(self, rate_msgs_per_s: float, burst_msgs: int):
        self.interval_ns = max(1, round(1e9 / rate_msgs_per_s))
        self.cap_ns = burst_msgs * self.interval_ns
        self.level_ns = self.cap_ns  # starts full
        self.last_ns = 0

    def _refill(self, now_ns: int) -> None:
        if now_ns > self.last_ns:
            self.level_ns = min(self.cap_ns,
                                self.level_ns + (now_ns - self.last_ns))
            self.last_ns = now_ns

    def try_take(self, now_ns: int) -> bool:
        self._refill(now_ns)
        if self.level_ns >= self.interval_ns:
            self.level_ns -= self.interval_ns
            return True
        return False

    def ready_at(self, now_ns: int) -> int:
        """Earliest time a token will be available (== now if one is)."""
        self._refill(now_ns)
        if self.level_ns >= self.interval_ns:
            return now_ns
        return now_ns + (self.interval_ns - self.level_ns)


class Tenant:
    """Runtime state of one tenant: spec, members, bucket, counters."""

    def __init__(self, spec: TenantSpec):
        spec.validate()
        self.spec = spec
        self.stats = TenantStats()
        self.bucket: Optional[TokenBucket] = (
            TokenBucket(spec.rate_msgs_per_s, spec.burst_msgs)
            if spec.rate_msgs_per_s is not None else None)
        #: adopted EndpointState objects, in adoption order
        self.endpoints: list = []

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def weight(self) -> int:
        return self.spec.weight

    def adopt(self, *endpoints) -> None:
        """Tag endpoints (``am.Endpoint`` or ``EndpointState``) as ours."""
        for ep in endpoints:
            st = getattr(ep, "state", ep)
            if st.tenant is not None and st.tenant is not self:
                raise ValueError(
                    f"endpoint {st.name} already belongs to tenant "
                    f"{st.tenant.name!r}")
            st.tenant = self
            if st not in self.endpoints:
                self.endpoints.append(st)

    def nodes(self) -> set:
        return {st.node for st in self.endpoints}

    def frames_held(self, node: Optional[int] = None) -> int:
        """Resident frames this tenant currently occupies (on one NIC)."""
        return sum(1 for st in self.endpoints
                   if st.resident and (node is None or st.node == node))

    def snapshot(self) -> dict:
        s = self.stats.snapshot()
        s["frames_held"] = self.frames_held()
        s["endpoints"] = len(self.endpoints)
        return s

    def __repr__(self) -> str:
        return (f"<Tenant {self.name} w={self.weight} "
                f"eps={len(self.endpoints)}>")


class TenantRegistry:
    """The set of tenants sharing one cluster."""

    def __init__(self):
        self.tenants: dict[str, Tenant] = {}

    def create(self, name: str, **spec_kwargs) -> Tenant:
        if name in self.tenants:
            raise ValueError(f"tenant {name!r} already exists")
        t = Tenant(TenantSpec(name=name, **spec_kwargs))
        self.tenants[name] = t
        return t

    def get(self, name: str) -> Tenant:
        return self.tenants[name]

    def __iter__(self) -> Iterable[Tenant]:
        return iter(self.tenants.values())

    def __len__(self) -> int:
        return len(self.tenants)

    def validate_against(self, endpoint_frames: int) -> None:
        """Reservations must be co-satisfiable on one NIC, or victim
        selection could deadlock with every frame reserved."""
        total = sum(t.spec.frame_reservation for t in self)
        if total > endpoint_frames:
            raise ValueError(
                f"tenant frame reservations total {total} but the NI has "
                f"only {endpoint_frames} frames")

    def snapshot(self) -> dict:
        """Deterministic per-tenant counter snapshot (bench digests)."""
        return {name: t.snapshot() for name, t in sorted(self.tenants.items())}
