"""The stable public facade: sessions over virtual networks.

This package is the documented entry point for programs built on the
reproduction — the analog of AM-II's ``AM_Init``/``AM_Terminate`` pair.
A :class:`Session` owns the whole lifecycle in one context manager:
build the cluster, allocate the endpoints, wire them into a virtual
network, hand the application its endpoints/bundle, and tear everything
down (each endpoint freed exactly once through the segment driver) on
exit:

>>> from repro.api import Session
>>> with Session(nodes=[0, 1], num_hosts=4) as s:
...     ep0, ep1 = s.endpoints
...     # spawn threads, exchange messages, s.run(...)

How simulated time executes is an *engine* (:mod:`repro.api.engine`):
``Session(engine="reference")`` replays on the pre-optimization
ordering oracle, ``engine="sharded"`` selects the conservative-window
PDES kernel of :mod:`repro.sim.sharded` (shard-partitionable workloads;
a monolithic Session accepts it only at ``num_shards == 1``).  The same
spec threads through every harness via :func:`run_bench`, which fronts
the perf/calib/scale/tenant suites under one name registry — also
reachable as ``python -m repro bench|calib|scale|tenant``.

:class:`Cluster` here is the builder's cluster plus context management,
for callers that want the machine without a pre-built virtual network.
The stable types — :class:`Endpoint`, :class:`Bundle`,
:class:`VirtualNetwork`, :class:`NameService`, the error hierarchy under
:class:`AmError`/:class:`SimError` — are re-exported so applications
import only :mod:`repro.api`.

The pre-engine entrypoints (``run_calibration``, ``run_interference_bench``,
``replacement_policies``) survive as :class:`DeprecationWarning` shims
delegating to :func:`run_bench`/:func:`describe`.
"""

from __future__ import annotations

import warnings
from typing import Generator, Optional, Sequence, Union

from ..am.bundle import Bundle
from ..am.endpoint import AmStats, Endpoint, Token
from ..am.errors import AmError, BadTranslationError, EndpointFreedError
from ..am.names import NameService
from ..am.vnet import VirtualNetwork, new_endpoint, parallel_vnet, star_vnet
from ..cluster.builder import Cluster as _BuilderCluster
from ..cluster.builder import Node
from ..cluster.config import ClusterConfig
from ..osim.segdriver import REPLACEMENT_POLICIES, ResidencyScoreboard
from ..sim.core import Interrupted, SimError
from ..tenant import Tenant, TenantRegistry, TenantSpec
from .engine import (ENGINE_NAMES, Engine, EngineError, ReferenceEngine,
                     SequentialEngine, ShardedEngine, resolve_engine,
                     resolve_kernel)

__all__ = [
    "Cluster",
    "Session",
    # engine surface
    "ENGINE_NAMES",
    "Engine",
    "EngineError",
    "ReferenceEngine",
    "SequentialEngine",
    "ShardedEngine",
    "resolve_engine",
    "run_bench",
    "describe",
    # stable re-exports
    "AmError",
    "AmStats",
    "BadTranslationError",
    "Bundle",
    "ClusterConfig",
    "Endpoint",
    "EndpointFreedError",
    "Interrupted",
    "NameService",
    "Node",
    "ResidencyScoreboard",
    "SimError",
    "Tenant",
    "TenantRegistry",
    "TenantSpec",
    "Token",
    "VirtualNetwork",
    "new_endpoint",
    "parallel_vnet",
    "replacement_policies",
    "run_calibration",
    "run_interference_bench",
    "star_vnet",
]


# --------------------------------------------------------------------------
# the bench registry behind Session.run_bench / `python -m repro`
# --------------------------------------------------------------------------
def _bench_perf(engine, **opts):
    from ..bench.perf import run_suite

    return run_suite(reference=(getattr(engine, "name", None) == "reference"),
                     **opts)


def _bench_calib(engine, **opts):
    from ..calib.sweep import run_calibration as _run

    smoke = opts.pop("smoke", False)
    return _run(smoke, engine=engine, **opts)


def _bench_tenant(engine, **opts):
    from ..tenant.bench import run_interference_bench as _run

    return _run(engine=engine, **opts)


def _bench_scale(engine, **opts):
    from ..scale.sweep import run_sweep as _run

    return _run(engine=engine, **opts)


def _bench_fleet(engine, **opts):
    from ..scale.fleet import run_fleet_sweep as _run

    # The fleet macro-model is engine-independent (it runs the residency
    # components directly, not the event kernel), so the engine spec is
    # accepted and ignored for signature parity with the other benches.
    return _run(**opts)


def _bench_shard_scaling(engine, **opts):
    from ..bench.perf import run_shard_scaling

    if engine is not None and getattr(engine, "name", None) != "sharded":
        raise EngineError("shard_scaling only runs on the sharded engine")
    return run_shard_scaling(**opts)


def _bench_collectives(engine, **opts):
    from ..bench.collectives import run_collectives

    return run_collectives(engine=engine, **opts)


BENCHES = {
    "perf": _bench_perf,
    "calib": _bench_calib,
    "scale": _bench_scale,
    "fleet": _bench_fleet,
    "tenant": _bench_tenant,
    "shard_scaling": _bench_shard_scaling,
    "collectives": _bench_collectives,
}


def run_bench(name: str, *, engine: Union[None, str, Engine] = None,
              **opts):
    """Run a registered benchmark/harness under one roof.

    ``name`` is one of :data:`BENCHES` (``perf``, ``calib``, ``scale``,
    ``fleet``, ``tenant``, ``shard_scaling``); ``engine`` is any
    :func:`resolve_engine` spec.  Keyword options pass straight through
    to the underlying suite (each of which documents its own knobs).
    """
    fn = BENCHES.get(name)
    if fn is None:
        raise AmError(
            f"unknown bench {name!r}; registered: {sorted(BENCHES)}")
    eng = None if engine is None else resolve_engine(engine)
    return fn(eng, **opts)


def describe() -> dict:
    """One queryable map of the public surface: engines, benches, and
    endpoint-frame replacement policies."""
    return {
        "engines": list(ENGINE_NAMES),
        "benches": sorted(BENCHES),
        "replacement_policies": sorted(REPLACEMENT_POLICIES),
    }


# --------------------------------------------------------------------------
# deprecated pre-engine entrypoints (PR 3 shim pattern)
# --------------------------------------------------------------------------
def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.api.{old} is deprecated; use {new}",
        DeprecationWarning, stacklevel=3)


def run_calibration(smoke: bool = False, **kwargs):
    """Deprecated: use ``run_bench('calib', smoke=...)``."""
    _deprecated("run_calibration(...)", "repro.api.run_bench('calib', ...)")
    return run_bench("calib", smoke=smoke, **kwargs)


def run_interference_bench(**kwargs):
    """Deprecated: use ``run_bench('tenant', ...)``."""
    _deprecated("run_interference_bench(...)",
                "repro.api.run_bench('tenant', ...)")
    return run_bench("tenant", **kwargs)


def replacement_policies() -> list[str]:
    """Deprecated: use ``describe()['replacement_policies']``."""
    _deprecated("replacement_policies()",
                "repro.api.describe()['replacement_policies']")
    return sorted(REPLACEMENT_POLICIES)


class Cluster(_BuilderCluster):
    """A context-managed cluster of simulated workstations.

    Identical to :class:`repro.cluster.builder.Cluster` plus ``with``
    support: on exit, every endpoint still registered with a live node's
    segment driver is freed (idempotently — endpoints already freed by a
    session or by hand are skipped by the driver).
    """

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    def shutdown(self) -> None:
        """Free every still-registered endpoint on live nodes, then unplug
        every NIC from the fabric so no rx handler outlives the cluster."""

        def teardown() -> Generator:
            for node in self.nodes:
                if not node.nic.alive:
                    continue
                for ep_state in list(node.driver.endpoints.values()):
                    yield from node.driver.free_endpoint(ep_state)

        self.sim.run_process(teardown(), name="api.shutdown")
        for node in self.nodes:
            if self.network.attached(node.nic.nic_id):
                self.network.detach(node.nic.nic_id)


class Session:
    """One communication session: build, wire, use, tear down.

    Exactly one topology argument must be given:

    ``nodes=[...]``
        an all-pairs parallel virtual network, one endpoint per listed
        node (:func:`parallel_vnet`); endpoints appear in ``.endpoints``
        in rank order and ``.vnet`` is the :class:`VirtualNetwork`.
    ``star=(server_node, [client_nodes...])``
        the client/server shapes of Section 6.4 (:func:`star_vnet`);
        ``.servers`` and ``.clients`` hold the two sides and
        ``.endpoints`` is their concatenation.  ``shared_server_ep``
        selects the OneVN (shared) vs per-client configuration.

    ``engine=`` selects the event kernel (any :func:`resolve_engine`
    spec); the resolved :class:`Engine` is exposed as ``.engine``.

    Pass ``cluster=`` to join an existing machine (the session then
    frees only its own endpoints on close and leaves the cluster up);
    otherwise a cluster is built from ``cfg``/``**overrides`` and torn
    down with the session.  Closing is idempotent: each endpoint is
    freed exactly once no matter how often ``close()`` runs.
    """

    def __init__(
        self,
        nodes: Optional[Sequence[int]] = None,
        star: Optional[tuple[int, Sequence[int]]] = None,
        *,
        cluster: Optional[_BuilderCluster] = None,
        cfg: Optional[ClusterConfig] = None,
        engine: Union[None, str, Engine] = None,
        shared_server_ep: bool = True,
        name: str = "session",
        **overrides,
    ):
        if (nodes is None) == (star is None):
            raise AmError("Session needs exactly one of nodes=... or star=(server, clients)")
        self.name = name
        self._owns_cluster = cluster is None
        if cluster is not None:
            self.cluster = cluster
            self.engine = resolve_engine(engine, cluster.cfg)
        else:
            self.cluster = _BuilderCluster(cfg, engine=engine, **overrides)
            self.engine = self.cluster.engine
        self.sim = self.cluster.sim
        self.cfg = self.cluster.cfg
        self.vnet: Optional[VirtualNetwork] = None
        self.servers: list[Endpoint] = []
        self.clients: list[Endpoint] = []
        self._bundle: Optional[Bundle] = None
        self._closed = False
        if nodes is not None:
            self.vnet = self.cluster.run_process(
                parallel_vnet(self.cluster, nodes), name=f"{name}.setup"
            )
            self.endpoints: list[Endpoint] = list(self.vnet.endpoints)
        else:
            server_node, client_nodes = star
            self.servers, self.clients = self.cluster.run_process(
                star_vnet(self.cluster, server_node, client_nodes,
                          shared_server_ep=shared_server_ep),
                name=f"{name}.setup",
            )
            self.endpoints = self.servers + self.clients

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Free this session's endpoints (once); tear down an owned cluster."""
        if self._closed:
            return
        self._closed = True

        def teardown() -> Generator:
            for ep in self.endpoints:
                if ep.node.nic.alive:
                    yield from ep.node.driver.free_endpoint(ep.state)

        self.sim.run_process(teardown(), name=f"{self.name}.teardown")
        if self._owns_cluster:
            # Freeing the remaining (non-session) endpoints matches
            # Cluster.shutdown(); the driver skips already-freed ones.
            Cluster.shutdown(self.cluster)  # type: ignore[arg-type]

    # ------------------------------------------------------------ conveniences
    def bundle(self) -> Bundle:
        """The session's endpoints as one pollable bundle (cached)."""
        if self._bundle is None:
            self._bundle = Bundle(self.endpoints)
        return self._bundle

    def node(self, i: int) -> Node:
        return self.cluster.node(i)

    def run(self, until: Optional[int] = None) -> int:
        return self.cluster.run(until=until)

    def run_process(self, gen: Generator, name: str = "", until: Optional[int] = None):
        return self.cluster.run_process(gen, name=name, until=until)

    def run_bench(self, name: str, **opts):
        """Run a registered bench under this session's engine."""
        return run_bench(name, engine=self.engine, **opts)
