"""Engine abstraction: callers never construct kernels by hand.

Every harness in the tree (Session/Cluster, chaos, scale, calib,
tenant, the perf suite) used to take a raw ``sim_factory=`` callable;
this module replaces that with a single resolvable notion of *engine*:

``"sequential"``
    the optimized pooled-entry kernel (:class:`repro.sim.core.Simulator`)
    — the default;
``"reference"``
    the pre-optimization kernel kept as an executable ordering oracle
    (:class:`repro.sim.reference.ReferenceSimulator`);
``"sharded"``
    the conservative-window PDES kernel (:mod:`repro.sim.sharded`) —
    shard-partitionable scenarios only; with ``num_shards == 1`` it
    degrades to the sequential kernel so any harness can be pointed at
    it without code changes.

Resolution accepts a name, an :class:`Engine` instance, a raw kernel
callable (legacy ``sim_factory``), or ``None`` (fall back to
``cfg.engine``).  Harnesses call :func:`resolve_kernel` to turn
whatever they were given into the kernel-factory callable they always
wanted; anything needing the full sharded runner goes through
:meth:`ShardedEngine.simulator`.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

__all__ = [
    "ENGINE_NAMES",
    "Engine",
    "EngineError",
    "ReferenceEngine",
    "SequentialEngine",
    "ShardedEngine",
    "resolve_engine",
    "resolve_kernel",
]

ENGINE_NAMES = ("sequential", "reference", "sharded")


class EngineError(RuntimeError):
    """An engine cannot serve the requested role (e.g. the sharded
    engine asked to drive a monolithic, non-partitionable harness)."""


class Engine:
    """How simulated time is executed.  Subclasses are stateless and
    cheap; resolve one per run."""

    name: str = "?"

    def kernel_factory(self) -> Callable:
        """A zero-arg callable building the event kernel for harnesses
        that drive one monolithic simulation."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class SequentialEngine(Engine):
    name = "sequential"

    def kernel_factory(self) -> Callable:
        from ..sim.core import Simulator

        return Simulator


class ReferenceEngine(Engine):
    name = "reference"

    def kernel_factory(self) -> Callable:
        from ..sim.reference import ReferenceSimulator

        return ReferenceSimulator


class ShardedEngine(Engine):
    """The PDES kernel.  Monolithic harnesses (the full AM stack under
    a Session) are not shard-partitionable — those get a clear error
    unless ``num_shards == 1``, where sharding is a no-op by
    construction and the plain kernel is the honest answer."""

    name = "sharded"

    def __init__(self, num_shards: int = 1, workers: str = "inprocess",
                 lookahead_us: float = 0.0, trunk_latency_us: float = 25.0):
        self.num_shards = num_shards
        self.workers = workers
        self.lookahead_us = lookahead_us
        self.trunk_latency_us = trunk_latency_us

    @classmethod
    def from_config(cls, cfg) -> "ShardedEngine":
        return cls(num_shards=cfg.num_shards, workers=cfg.shard_workers,
                   lookahead_us=cfg.shard_lookahead_us,
                   trunk_latency_us=cfg.shard_trunk_latency_us)

    def describe(self) -> str:
        return (f"sharded x{self.num_shards} ({self.workers}, "
                f"trunk {self.trunk_latency_us}us)")

    def kernel_factory(self) -> Callable:
        if self.num_shards == 1:
            from ..sim.core import Simulator

            return Simulator
        raise EngineError(
            f"engine {self.describe()!r} cannot drive a monolithic "
            "harness: this workload builds one shared cluster, which "
            "is not shard-partitionable. Use engine='sequential' (or "
            "num_shards=1), or run a shard-partitioned scenario via "
            "repro.sim.sharded / run_bench('shard_scaling').")

    def simulator(self, cfg, scenario: str = "uniform",
                  params: Optional[dict] = None):
        """The full sharded runner for shard-partitioned scenarios."""
        from ..sim.sharded import ShardedSimulator

        cfg = cfg.with_(engine="sharded", num_shards=self.num_shards,
                        shard_workers=self.workers,
                        shard_lookahead_us=self.lookahead_us,
                        shard_trunk_latency_us=self.trunk_latency_us)
        return ShardedSimulator(cfg, scenario=scenario, params=params)


_BY_NAME = {
    "sequential": SequentialEngine,
    "reference": ReferenceEngine,
    "sharded": ShardedEngine,
}


def resolve_engine(spec: Union[None, str, Engine], cfg=None) -> Engine:
    """Turn a user-facing engine spec into an :class:`Engine`.

    ``None`` consults ``cfg.engine`` (default sequential); a name
    builds the registered engine (the sharded one picking up its knobs
    from ``cfg``); an :class:`Engine` passes through.
    """
    if isinstance(spec, Engine):
        return spec
    if spec is None:
        spec = getattr(cfg, "engine", None) or "sequential"
    if not isinstance(spec, str):
        raise EngineError(f"not an engine spec: {spec!r}")
    cls = _BY_NAME.get(spec)
    if cls is None:
        raise EngineError(
            f"unknown engine {spec!r}; registered: {sorted(_BY_NAME)}")
    if cls is ShardedEngine and cfg is not None:
        return ShardedEngine.from_config(cfg)
    return cls()


def resolve_kernel(engine: Union[None, str, Engine], cfg=None,
                   sim_factory: Optional[Callable] = None) -> Callable:
    """The harness-side shim: honor an explicit legacy ``sim_factory``
    when no engine was named, otherwise resolve the engine and hand
    back its kernel factory."""
    if engine is None and sim_factory is not None:
        return sim_factory
    return resolve_engine(engine, cfg).kernel_factory()
