"""Exporters: Chrome ``trace_event`` JSON and flat metrics snapshots.

``to_chrome_trace`` produces the JSON object format understood by
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev): each node
becomes a *process*, each emitting subsystem a *thread*, instantaneous
events render as instants and events carrying a ``dur_ns`` argument as
complete ("X") slices.  Timestamps are microseconds as the format
requires; sub-microsecond resolution survives as fractional ``ts``.

``metrics_snapshot`` flattens the bus's aggregated metrics (plus event
totals) into the plain dict shape :mod:`repro.bench.reporting` tables
consume.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from .bus import TraceBus

__all__ = ["to_chrome_trace", "write_chrome_trace", "metrics_snapshot"]

#: stable thread ids per component so Perfetto rows don't reorder run-to-run
_COMPONENT_TIDS = {
    "sim": 1, "am": 2, "thr": 3, "drv": 4, "ep": 5,
    "pkt": 6, "msg": 7, "chan": 8, "timer": 9, "net": 10, "fault": 11,
}


#: pid for cluster-scoped events (node == -1); keeps them off node 0's row
_CLUSTER_PID = 1 << 20


def _tid(component: str) -> int:
    return _COMPONENT_TIDS.get(component, 12)


def to_chrome_trace(bus: TraceBus, label: str = "repro") -> dict[str, Any]:
    """Render the bus's events as a Chrome trace_event JSON object."""
    trace_events: list[dict[str, Any]] = []
    seen_procs: set[int] = set()
    seen_threads: set[tuple[int, int]] = set()
    for ev in bus.events:
        pid = ev.node if ev.node >= 0 else _CLUSTER_PID
        comp = ev.component
        tid = _tid(comp)
        if pid not in seen_procs:
            seen_procs.add(pid)
            name = f"node{ev.node}" if ev.node >= 0 else "cluster"
            trace_events.append(
                {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                 "args": {"name": name}}
            )
        if (pid, tid) not in seen_threads:
            seen_threads.add((pid, tid))
            trace_events.append(
                {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                 "args": {"name": comp}}
            )
        ts_us = ev.ts / 1_000.0
        args = dict(ev.args) if ev.args else {}
        dur_ns = args.pop("dur_ns", None)
        record: dict[str, Any] = {
            "name": ev.kind,
            "cat": comp,
            "pid": pid,
            "tid": tid,
            "ts": ts_us,
            "args": args,
        }
        if dur_ns is not None:
            record["ph"] = "X"
            record["dur"] = dur_ns / 1_000.0
            record["ts"] = (ev.ts - dur_ns) / 1_000.0
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        trace_events.append(record)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"source": label, "sim_now_ns": bus.sim.now,
                      "dropped_events": bus.dropped},
    }


def write_chrome_trace(bus: TraceBus, path: str, label: str = "repro") -> str:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(bus, label=label), fh)
    return path


def metrics_snapshot(bus: TraceBus, node: Optional[int] = None) -> dict[str, float]:
    """Flat metrics dict (reporting-friendly), optionally one node's slice."""
    flat = bus.metrics.flat()
    if node is None:
        return flat
    tag = f"node={node}"
    return {k: v for k, v in flat.items() if tag in k}
