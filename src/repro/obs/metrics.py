"""Metric primitives aggregated from trace events (or updated directly).

Three shapes, mirroring what a production metrics pipeline exports:

* :class:`Counter` — monotonically increasing count (packets sent, ...);
* :class:`Gauge` — instantaneous level (resident endpoints, queue depth);
* :class:`Histogram` — distribution summarized with power-of-two buckets
  plus count/sum/min/max, cheap enough for hot-path observation.

A :class:`MetricRegistry` keys instruments by name plus a frozen label
set (typically ``node=...``/``ep=...``) and flattens to a plain dict for
:mod:`repro.bench.reporting`.  Like the trace bus, updating a metric
never touches simulated time, RNG streams, or the event heap.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry",
           "merge_counter_snapshots"]


def merge_counter_snapshots(snapshots) -> dict[str, float]:
    """Merge per-shard :meth:`MetricRegistry.flat` snapshots deterministically.

    Values are summed per key and the result is built in sorted key
    order, so the merged dict — and anything digested from it — is
    independent of shard count, executor, and arrival order of the
    snapshots.  Used by :mod:`repro.sim.sharded` to fold worker-local
    counters into one mode-invariant view.
    """
    total: dict[str, float] = {}
    for snap in snapshots:
        for key, value in snap.items():
            total[key] = total.get(key, 0) + value
    return {k: total[k] for k in sorted(total)}


class Counter:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    __slots__ = ("value", "max_value")

    def __init__(self) -> None:
        self.value = 0
        self.max_value = 0

    def set(self, v: float) -> None:
        self.value = v
        if v > self.max_value:
            self.max_value = v

    def inc(self, n: float = 1) -> None:
        self.set(self.value + n)

    def dec(self, n: float = 1) -> None:
        self.value -= n


class Histogram:
    """Power-of-two bucketed distribution (bucket i counts values < 2**i)."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: dict[int, int] = {}

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        b = max(0, int(v).bit_length()) if v > 0 else 0
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket boundaries."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen >= target:
                return float(2 ** b)
        return float(self.max or 0)

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min or 0,
            "max": self.max or 0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


def _label_key(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={labels[k]}" for k in sorted(labels)) + "}"


class MetricRegistry:
    """Instruments keyed by name + labels; flattens for reporting."""

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}

    def _get(self, cls, name: str, labels: dict[str, Any]):
        key = name + _label_key(labels)
        m = self._metrics.get(key)
        if m is None:
            m = self._metrics[key] = cls()
        return m

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(sorted(self._metrics.items()))

    def flat(self) -> dict[str, float]:
        """One flat dict: counters/gauges to values, histograms expanded."""
        out: dict[str, float] = {}
        for key, m in self:
            if isinstance(m, Counter):
                out[key] = m.value
            elif isinstance(m, Gauge):
                out[key] = m.value
                out[key + ".max"] = m.max_value
            else:
                for stat, v in m.summary().items():
                    out[f"{key}.{stat}"] = v
        return out
