"""LogP phase attribution from trace spans (Figure 3 companion).

The LogP harness measures *totals* (Os, Or, L, g) from the outside; this
module answers "where did the microseconds go" by stitching each small
message's trace events into a span and attributing the elapsed time to
four phases:

* **send** — sender enqueues the descriptor until the packet's first
  transmission leaves the NI (host Os + ring wait + NI send service);
* **wire** — first transmission until the fabric delivers the tail to
  the destination NI (L's wire component, including any link stalls);
* **recv** — wire delivery until the message is written into the
  destination endpoint (NI receive service, defensive error checking,
  delivery);
* **ack** — endpoint delivery until the sender processes the positive
  acknowledgment and retires the channel (the hidden half of the gap).

Only messages whose whole event chain was captured are attributed, so a
bus attached mid-run simply skips the partially-observed prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bus import TraceBus

__all__ = ["PhaseStats", "phase_breakdown", "breakdown_rows"]

PHASES = ("send", "wire", "recv", "ack", "total")


@dataclass
class PhaseStats:
    count: int = 0
    total_ns: int = 0
    max_ns: int = 0

    def add(self, ns: int) -> None:
        self.count += 1
        self.total_ns += ns
        if ns > self.max_ns:
            self.max_ns = ns

    @property
    def mean_us(self) -> float:
        return self.total_ns / self.count / 1_000.0 if self.count else 0.0

    @property
    def max_us(self) -> float:
        return self.max_ns / 1_000.0


def phase_breakdown(bus: TraceBus) -> dict[str, PhaseStats]:
    """Attribute per-message time to phases; keyed by phase name."""
    # First relevant event per msg_id per stage (retransmissions of the
    # same message keep the first tx; duplicate deliveries cannot happen).
    first_tx: dict[int, tuple[int, int]] = {}  # msg -> (ts, enqueue_ts)
    wire_at: dict[int, int] = {}
    deliver_at: dict[int, int] = {}
    acked_at: dict[int, int] = {}
    for ev in bus.events:
        kind = ev.kind
        if kind == "pkt.tx":
            msg = ev.get("msg")
            if msg is not None and msg not in first_tx:
                first_tx[msg] = (ev.ts, ev.get("enq", ev.ts))
        elif kind == "net.deliver":
            msg = ev.get("msg")
            if msg is not None and msg not in wire_at:
                wire_at[msg] = ev.ts
        elif kind == "msg.deliver":
            msg = ev.get("msg")
            if msg is not None and msg not in deliver_at:
                deliver_at[msg] = ev.ts
        elif kind == "ack.rx":
            msg = ev.get("msg")
            if msg is not None and msg not in acked_at:
                acked_at[msg] = ev.ts
    stats = {phase: PhaseStats() for phase in PHASES}
    for msg, (tx_ts, enq_ts) in first_tx.items():
        w, d, a = wire_at.get(msg), deliver_at.get(msg), acked_at.get(msg)
        if w is None or d is None or a is None:
            continue  # chain incomplete (still in flight, or returned)
        stats["send"].add(tx_ts - enq_ts)
        stats["wire"].add(max(0, w - tx_ts))
        stats["recv"].add(max(0, d - w))
        stats["ack"].add(max(0, a - d))
        stats["total"].add(a - enq_ts)
    return stats


def breakdown_rows(bus: TraceBus) -> list[list]:
    """Table rows (phase, messages, mean us, max us) for reporting."""
    rows = []
    for phase, st in phase_breakdown(bus).items():
        rows.append([phase, st.count, st.mean_us, st.max_us])
    return rows
