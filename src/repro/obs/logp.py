"""LogP phase attribution from trace spans (Figure 3 companion).

The LogP harness measures *totals* (Os, Or, L, g) from the outside; this
module answers "where did the microseconds go" by stitching each small
message's trace events into a span and attributing the elapsed time to
four phases:

* **send** — sender enqueues the descriptor until the packet's first
  transmission leaves the NI (host Os + ring wait + NI send service);
* **wire** — first transmission until the fabric delivers the tail to
  the destination NI (L's wire component, including any link stalls);
* **recv** — wire delivery until the message is written into the
  destination endpoint (NI receive service, defensive error checking,
  delivery);
* **ack** — endpoint delivery until the sender processes the positive
  acknowledgment and retires the channel (the hidden half of the gap).

Only messages whose whole event chain was captured are attributed, so a
bus attached mid-run simply skips the partially-observed prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .bus import TraceBus

__all__ = ["MessageSpan", "message_spans", "PhaseStats", "phase_breakdown",
           "breakdown_rows"]

PHASES = ("send", "wire", "recv", "ack", "total")


@dataclass
class MessageSpan:
    """One message's life as timestamps stitched from the trace.

    All times are integer simulated nanoseconds; ``None`` marks a stage
    that was never observed (message still in flight when the bus
    detached, or returned to its sender).  The phase properties mirror
    :func:`phase_breakdown`'s attribution and are only meaningful on
    :meth:`complete` spans.
    """

    msg_id: int
    #: sending NI (node of the first ``pkt.tx``)
    src: int = -1
    #: receiving NI (node of ``msg.deliver``)
    dst: int = -1
    #: payload bytes as reported at first transmission
    nbytes: int = 0
    #: destination endpoint id (from ``msg.deliver``)
    ep: int = -1
    #: host wrote the send descriptor (``enq`` arg of ``pkt.tx``)
    enq_ts: Optional[int] = None
    #: first transmission left the NI (``pkt.tx``)
    tx_ts: Optional[int] = None
    #: fabric delivered the tail to the destination NI (``net.deliver``)
    net_ts: Optional[int] = None
    #: written into the destination endpoint (``msg.deliver``)
    deliver_ts: Optional[int] = None
    #: sender processed the positive acknowledgment (``ack.rx``)
    ack_ts: Optional[int] = None

    def complete(self) -> bool:
        return None not in (self.enq_ts, self.tx_ts, self.net_ts,
                            self.deliver_ts, self.ack_ts)

    # phase widths (complete spans only)
    @property
    def send_ns(self) -> int:
        return self.tx_ts - self.enq_ts

    @property
    def wire_ns(self) -> int:
        return max(0, self.net_ts - self.tx_ts)

    @property
    def recv_ns(self) -> int:
        return max(0, self.deliver_ts - self.net_ts)

    @property
    def ack_ns(self) -> int:
        return max(0, self.ack_ts - self.deliver_ts)

    @property
    def total_ns(self) -> int:
        return self.ack_ts - self.enq_ts

    @property
    def oneway_ns(self) -> int:
        """Enqueue to endpoint delivery — the calibration harness's L
        observable (send + wire + recv, without the ack half)."""
        return self.deliver_ts - self.enq_ts


def message_spans(bus: TraceBus, complete_only: bool = False) -> list[MessageSpan]:
    """Stitch per-message spans from the bus, in first-tx order.

    Retransmissions keep the first transmission's timestamps (matching
    :func:`phase_breakdown`); with ``complete_only`` spans missing any
    stage (in flight, returned, or captured mid-run) are dropped.
    """
    spans: dict[int, MessageSpan] = {}

    def span(msg: int) -> MessageSpan:
        sp = spans.get(msg)
        if sp is None:
            sp = spans[msg] = MessageSpan(msg)
        return sp

    for ev in bus.events:
        kind = ev.kind
        msg = ev.get("msg")
        if msg is None:
            continue
        if kind == "pkt.tx":
            sp = span(msg)
            if sp.tx_ts is None:
                sp.tx_ts = ev.ts
                sp.enq_ts = ev.get("enq", ev.ts)
                sp.src = ev.node
                sp.nbytes = ev.get("nbytes", 0)
        elif kind == "net.deliver":
            sp = span(msg)
            if sp.net_ts is None:
                sp.net_ts = ev.ts
        elif kind == "msg.deliver":
            sp = span(msg)
            if sp.deliver_ts is None:
                sp.deliver_ts = ev.ts
                sp.dst = ev.node
                sp.ep = ev.get("ep", -1)
        elif kind == "ack.rx":
            sp = span(msg)
            if sp.ack_ts is None:
                sp.ack_ts = ev.ts
    out = [sp for sp in spans.values() if sp.tx_ts is not None]
    if complete_only:
        out = [sp for sp in out if sp.complete()]
    out.sort(key=lambda sp: (sp.tx_ts, sp.msg_id))
    return out


@dataclass
class PhaseStats:
    count: int = 0
    total_ns: int = 0
    max_ns: int = 0

    def add(self, ns: int) -> None:
        self.count += 1
        self.total_ns += ns
        if ns > self.max_ns:
            self.max_ns = ns

    @property
    def mean_us(self) -> float:
        return self.total_ns / self.count / 1_000.0 if self.count else 0.0

    @property
    def max_us(self) -> float:
        return self.max_ns / 1_000.0


def phase_breakdown(bus: TraceBus) -> dict[str, PhaseStats]:
    """Attribute per-message time to phases; keyed by phase name."""
    stats = {phase: PhaseStats() for phase in PHASES}
    for sp in message_spans(bus, complete_only=True):
        stats["send"].add(sp.send_ns)
        stats["wire"].add(sp.wire_ns)
        stats["recv"].add(sp.recv_ns)
        stats["ack"].add(sp.ack_ns)
        stats["total"].add(sp.total_ns)
    return stats


def breakdown_rows(bus: TraceBus) -> list[list]:
    """Table rows (phase, messages, mean us, max us) for reporting."""
    rows = []
    for phase, st in phase_breakdown(bus).items():
        rows.append([phase, st.count, st.mean_us, st.max_us])
    return rows
