"""Typed trace events carried by the :class:`~repro.obs.bus.TraceBus`.

Every event is a timestamped record of something the simulated system
*did*: a packet hit the wire, an endpoint frame was evicted, a thread
blocked.  Event kinds are dotted strings whose first component names the
emitting subsystem; the exporter maps that component to a Chrome trace
"thread" so related events line up on one row:

    ``sim.*``    simulation kernel (process spawn/exit)
    ``pkt.*``    NI transport (tx/rx/ack/nack/retransmit/drop)
    ``msg.*``    message resolution (deliver / return-to-sender)
    ``chan.*``   flow-control channels (stall/unbind/rebind)
    ``timer.*``  retransmission timers (arm/fire)
    ``ep.*``     endpoint residency (load/unload/evict/writefault)
    ``drv.*``    segment driver operations
    ``am.*``     Active Message API operations
    ``net.*``    wire fabric (deliver/drop)
    ``thr.*``    host threads (block/wake)
    ``fault.*``  injected faults

Emitting an event never consumes simulated time, never touches an RNG
stream, and never schedules anything — observer-only by construction
(see DESIGN.md, "The observer-only invariant").
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["TraceEvent", "KINDS"]

#: the canonical event vocabulary (instrumentation may extend it; the
#: exporter treats unknown kinds uniformly)
KINDS = (
    "sim.spawn", "sim.exit",
    "pkt.tx", "pkt.retransmit", "pkt.rx", "pkt.crc_drop",
    "ack.tx", "ack.rx", "nack.tx", "nack.rx",
    "msg.deliver", "msg.return",
    "chan.stall", "chan.unbind", "chan.rebind",
    "timer.arm", "timer.fire",
    "ep.load", "ep.unload", "ep.evict", "ep.writefault",
    "ep.pagein", "ep.pageout",
    "drv.op", "drv.proxy_fault", "drv.remap", "drv.thrash",
    "am.request", "am.reply", "am.undeliverable",
    "net.deliver", "net.drop",
    "thr.block", "thr.wake",
    "fault.inject",
)


class TraceEvent:
    """One timestamped, typed observation.

    ``ts`` is integer simulated nanoseconds; ``node`` is the host the
    event happened on (``-1`` when not node-attributable); ``args`` is a
    small dict of event-specific fields (msg ids, reasons, durations).
    """

    __slots__ = ("ts", "kind", "node", "args")

    def __init__(self, ts: int, kind: str, node: int, args: Optional[dict]):
        self.ts = ts
        self.kind = kind
        self.node = node
        self.args = args

    @property
    def component(self) -> str:
        """Subsystem prefix of the kind (``pkt``, ``ep``, ``net``, ...)."""
        head, _, _ = self.kind.partition(".")
        return head

    def get(self, key: str, default: Any = None) -> Any:
        return self.args.get(key, default) if self.args else default

    def __repr__(self) -> str:
        return f"<TraceEvent {self.ts}ns {self.kind} node={self.node} {self.args or {}}>"
