"""repro.obs — unified structured tracing + metrics for the simulator.

Quickstart::

    from repro.cluster import Cluster, ClusterConfig
    from repro.obs import TraceBus, write_chrome_trace, metrics_snapshot

    cluster = Cluster(ClusterConfig(num_hosts=4))
    bus = cluster.enable_tracing()          # or TraceBus.attach(cluster.sim)
    ... run a workload ...
    write_chrome_trace(bus, "run.trace.json")   # open in chrome://tracing
    print(metrics_snapshot(bus))                # flat dict for reporting

Tracing is off by default (a nil sink on every Simulator) and costs one
attribute check per instrumentation site; enabling it never changes
simulated time or event order — the observer-only invariant (DESIGN.md).
"""

from .bus import TraceBus
from .events import KINDS, TraceEvent
from .export import metrics_snapshot, to_chrome_trace, write_chrome_trace
from .logp import (MessageSpan, PhaseStats, breakdown_rows, message_spans,
                   phase_breakdown)
from .metrics import (Counter, Gauge, Histogram, MetricRegistry,
                      merge_counter_snapshots)

__all__ = [
    "TraceBus",
    "TraceEvent",
    "KINDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "merge_counter_snapshots",
    "to_chrome_trace",
    "write_chrome_trace",
    "metrics_snapshot",
    "phase_breakdown",
    "breakdown_rows",
    "PhaseStats",
    "MessageSpan",
    "message_spans",
]
