"""The simulator-wide trace bus.

One :class:`TraceBus` attaches to a :class:`~repro.sim.core.Simulator`
(``TraceBus.attach(sim)`` replaces the nil sink installed by the kernel)
and from then on every instrumented subsystem on that simulator reports
typed, timestamped :class:`~repro.obs.events.TraceEvent`\\ s through it.

The zero-perturbation contract
------------------------------

Instrumentation sites are written as::

    tr = self.sim.trace
    if tr.enabled:
        tr.emit("pkt.tx", node, msg=msg.msg_id)

so with tracing off (the default nil sink) the cost is one attribute
load and a falsy check, and with tracing on the only work is appending a
record and bumping counters — :meth:`emit` never advances simulated
time, never reads an RNG stream, and never schedules a callback.
Enabling tracing therefore cannot change simulated time or event order;
``tests/test_obs_determinism.py`` locks this in.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim.core import Simulator
from .events import TraceEvent
from .metrics import MetricRegistry

__all__ = ["TraceBus"]


class TraceBus:
    """Collects trace events and aggregates per-kind/per-node metrics."""

    enabled = True

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        self.sim = sim
        #: drop-oldest ring bound; None keeps everything
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self.metrics = MetricRegistry()
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def attach(cls, sim: Simulator, capacity: Optional[int] = None) -> "TraceBus":
        """Install a bus on ``sim``, replacing the nil sink (or a prior bus)."""
        bus = cls(sim, capacity=capacity)
        sim.trace = bus
        return bus

    def detach(self) -> None:
        """Restore the nil sink; the collected events remain readable."""
        from ..sim.core import NULL_TRACE

        if self.sim.trace is self:
            self.sim.trace = NULL_TRACE

    # ----------------------------------------------------------------- emit
    def emit(self, kind: str, node: int = -1, **args: Any) -> None:
        """Record one event at the current simulated time (observer-only)."""
        ev = TraceEvent(self.sim.now, kind, node, args or None)
        self.events.append(ev)
        if self.capacity is not None and len(self.events) > self.capacity:
            del self.events[0 : len(self.events) - self.capacity]
            self.dropped += 1
        self.metrics.counter("events." + kind, node=node).inc()
        if kind == "net.drop":
            # Per-reason visibility (net.drop.loss/linkdown/noroute/
            # dead_nic) so fabric drops are distinguishable without
            # re-scanning the event list.
            reason = args.get("reason")
            if reason is not None:
                self.metrics.counter(f"net.drop.{reason}", node=node).inc()
        for fn in self._subscribers:
            fn(ev)

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> Callable[[], None]:
        """Live-stream events to ``fn``; returns an unsubscribe callable."""
        self._subscribers.append(fn)

        def cancel() -> None:
            try:
                self._subscribers.remove(fn)
            except ValueError:
                pass

        return cancel

    def publish_network(self, network) -> None:
        """Snapshot fabric counters into the metric registry.

        Publishes the per-reason drop totals from ``network.stats`` and
        the express-path hit/fallback counters from ``network.express``
        (which are kept out of ``NetworkStats`` so that structure stays
        identical across express/full-fidelity modes).  Call after a run;
        reading counters perturbs nothing.
        """
        m = self.metrics
        s = network.stats
        for reason in ("loss", "linkdown", "noroute", "dead_nic"):
            c = m.counter(f"net.drop.{reason}.total")
            c.value = getattr(s, f"dropped_{reason}")
        x = network.express
        m.counter("net.express.hits").value = x.hits()
        m.counter("net.express.commits").value = x.commits
        m.counter("net.express.loopback").value = x.loopback
        m.counter("net.express.delivered").value = x.delivered
        m.counter("net.express.revoked").value = x.revoked
        m.counter("net.express.fallback.busy").value = x.fallback_busy
        m.counter("net.express.fallback.active").value = x.fallback_active

    def publish_tenants(self, registry) -> None:
        """Snapshot per-tenant isolation counters into the metric registry.

        ``registry`` is a :class:`repro.tenant.TenantRegistry`.  Publishes
        each tenant's service/throttle/eviction counters plus two gauges:
        resident frames currently held and the total send-service deficit
        carried by its endpoints (rate-limit debt the weighted rotation
        still owes).  Call after a run; like :meth:`publish_network`, the
        counters are plain integers kept on both traced and untraced
        paths, so reading them perturbs nothing.
        """
        m = self.metrics
        for tenant in registry:
            labels = {"tenant": tenant.name}
            s = tenant.stats
            m.counter("tenant.msgs_serviced", **labels).value = s.msgs_serviced
            m.counter("tenant.throttled", **labels).value = s.throttled
            m.counter("tenant.evictions.suffered", **labels).value = s.evictions_suffered
            m.counter("tenant.evictions.caused", **labels).value = s.evictions_caused
            m.counter("tenant.reservation_vetoes", **labels).value = s.reservation_vetoes
            m.counter("tenant.quota_self_evictions", **labels).value = s.quota_self_evictions
            m.gauge("tenant.frames_held", **labels).set(tenant.frames_held())
            m.gauge("tenant.service_deficit", **labels).set(
                sum(ep.service_deficit for ep in tenant.endpoints))

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.events)

    def select(self, kind: Optional[str] = None, node: Optional[int] = None) -> list[TraceEvent]:
        """Events filtered by exact kind (or ``"pkt."`` prefix) and node."""
        prefix = kind.endswith(".") if kind else False
        out = []
        for ev in self.events:
            if kind is not None:
                if prefix:
                    if not ev.kind.startswith(kind):
                        continue
                elif ev.kind != kind:
                    continue
            if node is not None and ev.node != node:
                continue
            out.append(ev)
        return out

    def counts(self) -> dict[str, int]:
        """Total events per kind (all nodes)."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out
