"""Fleet-scale overcommit: hundreds of hosts, 10^5–10^6 endpoints.

The Section 6.4 cell (:mod:`repro.scale.loadgen`) proves graceful
degradation at *one* server NI with full packet-level fidelity.  The
ROADMAP's north star ("millions of users") needs the same claim at fleet
shape — hundreds of hosts × several server NIs × 10^5–10^6 endpoints —
where simulating every packet is neither possible nor necessary: what is
under test is the *residency machinery* (tables, policies, the
rate-limited remap engine), not the wire protocol already gated by the
packet-level suites.

So the fleet sweep is a deterministic tick-based macro-model built
directly on the production residency components:

* every NI's endpoint population is a real
  :class:`repro.nic.endpoint_state.EndpointTable` — the same
  struct-of-arrays store the firmware and segment driver use, which is
  what makes 10^5 endpoints fit in tens of MB (DESIGN.md §15);
* victim selection runs the *registered* policies
  (:data:`repro.osim.segdriver.REPLACEMENT_POLICIES`) through the same
  integer-row ``choose_row`` interface the segment driver calls — the
  fleet differentiates `lru`/`clock`/`active-preference` with the exact
  production code, no re-implementation;
* the remap engine is serial and rate-limited to the paper's measured
  200–300 re-mappings/s per NI (§6.4.1), so overcommit pressure shows up
  as deferred work, exactly as on the real driver;
* arrival shapes come from :data:`repro.scale.loadgen.ARRIVAL_MODELS`
  (`uniform` / `diurnal` / `bursty`) with per-host phase spreading, and
  each NI's active ("hot") endpoint set churns every tick so policies
  face a moving working set.

Each (hosts × ratio × policy) cell costs O(arrivals + remaps + frames)
per tick — independent of the endpoint count — and digests its integer
observables; ``--smoke`` runs every cell twice and fails on any digest
mismatch, any zero-goodput cell, or a tracemalloc peak above the
documented budget at the 10^5-endpoint cell.

Run as a module::

    PYTHONPATH=src python -m repro.scale --fleet --smoke
    PYTHONPATH=src python -m repro.scale --fleet --hosts 64 256 \\
        --ratios 16 98 --out BENCH_FLEET.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..bench.reporting import print_table
from ..nic.endpoint_state import (
    F_MR_REQUESTED,
    F_REFERENCED,
    RES_ONHOST_RO,
    RES_ONNIC_RW,
    EndpointTable,
)
from ..osim.segdriver import REPLACEMENT_POLICIES
from .loadgen import ARRIVAL_MODELS

__all__ = [
    "DEFAULT_FLEET_POLICIES",
    "DEFAULT_FLEET_RATIOS",
    "FleetCellConfig",
    "FleetCellResult",
    "FleetReport",
    "run_fleet_cell",
    "run_fleet_sweep",
    "main",
]

DEFAULT_FLEET_POLICIES = ("random", "lru", "clock", "active-preference")
DEFAULT_FLEET_RATIOS = (4, 16, 64)
#: hosts × nis × frames × ratio = 64 × 2 × 8 × 98 = 100 352 endpoints:
#: the acceptance cell (10^5 endpoints across ≥ 64 hosts)
MEMCHECK_CELL = dict(hosts=64, nis_per_host=2, endpoint_frames=8, ratio=98)
#: documented peak-memory budget for the 10^5-endpoint cell (all
#: endpoint/channel state, tracemalloc-measured; see EXPERIMENTS.md)
MEMCHECK_BUDGET_MB = 100.0


@dataclass
class FleetCellConfig:
    """One (hosts, ratio, policy, arrival) point of the fleet sweep."""

    policy: str = "lru"
    hosts: int = 64
    #: server NIs per host (a fleet host fronts several boards)
    nis_per_host: int = 2
    endpoint_frames: int = 8
    #: endpoints per NI frame (1 = no overcommit)
    ratio: int = 16
    arrival: str = "diurnal"
    #: macro-model ticks (one tick ≈ ``tick_us`` of fleet time)
    ticks: int = 192
    #: ticks excluded from the goodput-floor tracking while residency
    #: warms up from the all-cold start (None = ticks // 4)
    warmup_ticks: Optional[int] = None
    tick_us: float = 1000.0
    #: serial remap-engine capacity per NI (§6.4.1 measured 200-300/s)
    remaps_per_s: float = 285.0
    #: peak message arrivals per NI per tick
    msgs_per_ni_tick: int = 48
    #: fraction of a NI's endpoints in the active set at any moment
    hot_fraction: float = 0.3
    #: active-set members replaced per tick, as a fraction of the set
    churn_fraction: float = 0.02
    #: an eviction bounces if its victim is re-touched within this window
    bounce_us: float = 4000.0
    seed: int = 1999

    @property
    def endpoints_per_ni(self) -> int:
        return self.ratio * self.endpoint_frames

    @property
    def n_nis(self) -> int:
        return self.hosts * self.nis_per_host

    @property
    def total_endpoints(self) -> int:
        return self.n_nis * self.endpoints_per_ni

    def key(self) -> tuple:
        return (self.policy, self.hosts, self.nis_per_host,
                self.endpoint_frames, self.ratio, self.arrival,
                self.ticks, self.seed)


@dataclass
class FleetCellResult:
    """Integer observables of one fleet cell (all digest inputs)."""

    policy: str
    hosts: int
    nis_per_host: int
    frames: int
    ratio: int
    arrival: str
    total_endpoints: int
    seed: int
    # goodput
    completed: int = 0
    deferred: int = 0
    goodput_msgs_s: float = 0.0
    #: minimum fleet-wide goodput over any single tick (the floor the
    #: graceful-degradation gate cares about at the diurnal trough)
    tick_goodput_min: int = 0
    # residency machinery (fleet totals)
    remaps: int = 0
    evictions: int = 0
    bounced_evictions: int = 0
    thrash_score: float = 0.0
    #: peak backlog of pending make-resident requests across the fleet
    remap_backlog_peak: int = 0
    # memory
    table_bytes: int = 0
    bytes_per_endpoint: float = 0.0
    tracemalloc_peak_bytes: int = 0
    # bookkeeping
    wall_s: float = 0.0
    digest: str = ""

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class _NiSim:
    """Macro-model of one server NI: a real EndpointTable + policy under
    a rate-limited serial remap engine."""

    __slots__ = ("table", "policy", "rng", "phase", "remap_q", "hot",
                 "credit", "credit_per_tick", "bounce_ns", "tick_ns",
                 "goodput", "deferred", "remaps", "evictions", "bounces")

    def __init__(self, fcfg: FleetCellConfig, ni_id: int):
        n = fcfg.endpoints_per_ni
        self.table = EndpointTable(node=ni_id, frames=fcfg.endpoint_frames)
        for i in range(n):
            self.table.add_row(i)
        self.rng = random.Random((fcfg.seed << 20) ^ (ni_id * 2654435761))
        self.policy = REPLACEMENT_POLICIES[fcfg.policy](self.table, self.rng)
        host = ni_id // fcfg.nis_per_host
        # golden-ratio phase spreading: hosts desynchronize evenly
        self.phase = (host * 0.6180339887498949) % 1.0
        self.remap_q: list[int] = []
        hot_size = max(1, min(n, round(n * fcfg.hot_fraction)))
        self.hot = [self.rng.randrange(n) for _ in range(hot_size)]
        self.credit = 0.0
        self.credit_per_tick = fcfg.remaps_per_s * fcfg.tick_us / 1e6
        self.tick_ns = int(fcfg.tick_us * 1000)
        self.bounce_ns = int(fcfg.bounce_us * 1000)
        self.goodput = 0
        self.deferred = 0
        self.remaps = 0
        self.evictions = 0
        self.bounces = 0

    def tick(self, tick_idx: int, arrivals: int, churn: int) -> int:
        """One macro tick; returns messages served this tick."""
        t = self.table
        res, flags, ring = t.res, t.flags, t.ring_used
        la, loaded, evicted = t.last_active, t.loaded_at, t.evicted_at
        now = tick_idx * self.tick_ns
        rng = self.rng
        hot = self.hot
        served = 0

        # -- message arrivals against the hot set --------------------
        for _ in range(arrivals):
            r = hot[rng.randrange(len(hot))]
            la[r] = now
            if res[r] == RES_ONNIC_RW:
                served += 1
                flags[r] |= F_REFERENCED
            else:
                self.deferred += 1
                ring[r] += 1  # backlog waiting for residency
                if evicted[r] >= 0:
                    if now - evicted[r] <= self.bounce_ns:
                        self.bounces += 1
                    evicted[r] = -1
                if not flags[r] & F_MR_REQUESTED:
                    flags[r] |= F_MR_REQUESTED
                    self.remap_q.append(r)

        # -- hot-set churn: the working set drifts under the policies -
        n = len(res)
        for _ in range(churn):
            hot[rng.randrange(len(hot))] = rng.randrange(n)

        # -- serial remap engine (rate-limited, §6.4.1) ---------------
        self.credit += self.credit_per_tick
        q = self.remap_q
        frame_rows = t.frame_rows
        while self.credit >= 1.0 and q:
            self.credit -= 1.0
            r = q.pop(0)
            flags[r] &= ~F_MR_REQUESTED
            if res[r] == RES_ONNIC_RW:
                continue
            frame = -1
            for f, occ in enumerate(frame_rows):
                if occ < 0:
                    frame = f
                    break
            if frame < 0:
                candidates = [occ for occ in frame_rows if occ >= 0]
                victim = self.policy.choose_row(candidates)
                frame = t.frame[victim]
                frame_rows[frame] = -1
                t.frame[victim] = -1
                res[victim] = RES_ONHOST_RO
                evicted[victim] = now
                self.evictions += 1
                # a victim unloaded with backlog faults straight back in
                if ring[victim] and not flags[victim] & F_MR_REQUESTED:
                    flags[victim] |= F_MR_REQUESTED
                    q.append(victim)
            frame_rows[frame] = r
            t.frame[r] = frame
            res[r] = RES_ONNIC_RW
            loaded[r] = now
            flags[r] |= F_REFERENCED
            self.remaps += 1
            # the backlog drains as soon as residency lands
            served += ring[r]
            ring[r] = 0

        self.goodput += served
        return served


def _digest(parts) -> str:
    h = hashlib.sha256()
    for p in parts:
        h.update(repr(p).encode())
        h.update(b"\n")
    return h.hexdigest()


def run_fleet_cell(fcfg: FleetCellConfig, *,
                   measure_memory: bool = False) -> FleetCellResult:
    """Run one fleet cell; returns its :class:`FleetCellResult`.

    ``measure_memory=True`` wraps the build + run in tracemalloc and
    records the peak (slower; used by the budget gate, not the sweep).
    """
    try:
        model = ARRIVAL_MODELS[fcfg.arrival]()
    except KeyError:
        raise ValueError(
            f"unknown arrival model {fcfg.arrival!r}; "
            f"registered: {sorted(ARRIVAL_MODELS)}"
        ) from None
    if fcfg.policy not in REPLACEMENT_POLICIES:
        raise ValueError(
            f"unknown replacement policy {fcfg.policy!r}; "
            f"registered: {sorted(REPLACEMENT_POLICIES)}"
        )
    wall0 = time.perf_counter()
    if measure_memory:
        tracemalloc.start()
    nis = [_NiSim(fcfg, ni_id) for ni_id in range(fcfg.n_nis)]

    peak_msgs = fcfg.msgs_per_ni_tick
    churn = max(1, round(len(nis[0].hot) * fcfg.churn_fraction))
    warmup = fcfg.warmup_ticks if fcfg.warmup_ticks is not None \
        else fcfg.ticks // 4
    tick_goodput_min = None
    backlog_peak = 0
    for tick_idx in range(fcfg.ticks):
        tick_served = 0
        backlog = 0
        for ni in nis:
            arrivals = int(peak_msgs * model.intensity(tick_idx, ni.phase))
            tick_served += ni.tick(tick_idx, arrivals, churn)
            backlog += len(ni.remap_q)
        if tick_idx >= warmup and (
                tick_goodput_min is None or tick_served < tick_goodput_min):
            tick_goodput_min = tick_served
        if backlog > backlog_peak:
            backlog_peak = backlog

    if measure_memory:
        _, mem_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    else:
        mem_peak = 0

    res = FleetCellResult(
        policy=fcfg.policy,
        hosts=fcfg.hosts,
        nis_per_host=fcfg.nis_per_host,
        frames=fcfg.endpoint_frames,
        ratio=fcfg.ratio,
        arrival=fcfg.arrival,
        total_endpoints=fcfg.total_endpoints,
        seed=fcfg.seed,
    )
    res.completed = sum(ni.goodput for ni in nis)
    res.deferred = sum(ni.deferred for ni in nis)
    res.remaps = sum(ni.remaps for ni in nis)
    res.evictions = sum(ni.evictions for ni in nis)
    res.bounced_evictions = sum(ni.bounces for ni in nis)
    res.thrash_score = res.bounced_evictions / max(1, res.remaps)
    res.tick_goodput_min = tick_goodput_min or 0
    res.remap_backlog_peak = backlog_peak
    elapsed_s = fcfg.ticks * fcfg.tick_us / 1e6
    res.goodput_msgs_s = res.completed / elapsed_s
    res.table_bytes = sum(ni.table.nbytes() for ni in nis)
    res.bytes_per_endpoint = res.table_bytes / max(1, fcfg.total_endpoints)
    res.tracemalloc_peak_bytes = mem_peak
    res.digest = _digest([
        ("fleet", *fcfg.key()),
        ("per_ni", [(ni.goodput, ni.deferred, ni.remaps, ni.evictions,
                     ni.bounces) for ni in nis]),
        ("floor", res.tick_goodput_min, backlog_peak),
    ])
    res.wall_s = time.perf_counter() - wall0
    return res


@dataclass
class FleetReport:
    """One fleet sweep: the (hosts × ratio × policy) grid + aggregate digest."""

    arrival: str
    seed: int
    cells: list[FleetCellResult] = field(default_factory=list)
    #: digest mismatches found by --smoke's double runs
    nondeterministic: list[str] = field(default_factory=list)
    #: failures of the tracemalloc budget gate at the 10^5 cell
    memory_violations: list[str] = field(default_factory=list)

    @property
    def digest(self) -> str:
        h = hashlib.sha256()
        for c in self.cells:
            h.update(c.digest.encode())
        return h.hexdigest()

    def collapsed_cells(self) -> list[FleetCellResult]:
        """Cells that violate graceful degradation (zero goodput)."""
        return [c for c in self.cells if c.completed == 0]

    def to_json(self) -> dict:
        return {
            "arrival": self.arrival,
            "seed": self.seed,
            "digest": self.digest,
            "nondeterministic": self.nondeterministic,
            "memory_violations": self.memory_violations,
            "cells": [c.to_dict() for c in self.cells],
        }


def run_fleet_sweep(
    policies: Sequence[str] = DEFAULT_FLEET_POLICIES,
    ratios: Sequence[int] = DEFAULT_FLEET_RATIOS,
    hosts_list: Sequence[int] = (64,),
    *,
    nis_per_host: int = 2,
    frames: int = 8,
    arrival: str = "diurnal",
    ticks: int = 192,
    seed: int = 1999,
    verify_determinism: bool = False,
    progress=None,
) -> FleetReport:
    """Run the grid; one :class:`FleetCellResult` per (hosts, ratio, policy).

    ``verify_determinism`` re-runs every cell and records digest
    mismatches in ``report.nondeterministic`` (the ``--smoke`` gate).
    """
    report = FleetReport(arrival=arrival, seed=seed)
    for hosts in hosts_list:
        for policy in policies:
            for ratio in ratios:
                fcfg = FleetCellConfig(
                    policy=policy, hosts=hosts, nis_per_host=nis_per_host,
                    endpoint_frames=frames, ratio=ratio, arrival=arrival,
                    ticks=ticks, seed=seed,
                )
                res = run_fleet_cell(fcfg)
                if verify_determinism:
                    res2 = run_fleet_cell(fcfg)
                    if res2.digest != res.digest:
                        report.nondeterministic.append(
                            f"{policy}@{hosts}h/{ratio}:1 digests differ: "
                            f"{res.digest[:12]} vs {res2.digest[:12]}"
                        )
                report.cells.append(res)
                if progress is not None:
                    progress(
                        f"  {policy:>18} {hosts:>4}h {ratio:>3}:1  "
                        f"{res.total_endpoints:>7} eps  "
                        f"{res.goodput_msgs_s / 1e3:9.1f} K msg/s  "
                        f"floor {res.tick_goodput_min:>5}/tick  "
                        f"thrash {res.thrash_score:.2f}  "
                        f"{res.table_bytes / 1e6:6.1f} MB  "
                        f"[{res.wall_s:.1f}s wall]"
                    )
    return report


def run_memcheck(report: FleetReport, *, policy: str = "lru",
                 arrival: str = "diurnal", ticks: int = 24,
                 seed: int = 1999, budget_mb: float = MEMCHECK_BUDGET_MB,
                 progress=None) -> FleetCellResult:
    """The 10^5-endpoint acceptance cell under the tracemalloc budget.

    Appends the cell to ``report`` and records a violation if the
    measured peak exceeds ``budget_mb``.
    """
    fcfg = FleetCellConfig(policy=policy, arrival=arrival, ticks=ticks,
                           seed=seed, **MEMCHECK_CELL)
    res = run_fleet_cell(fcfg, measure_memory=True)
    report.cells.append(res)
    peak_mb = res.tracemalloc_peak_bytes / 1e6
    if peak_mb > budget_mb:
        report.memory_violations.append(
            f"{fcfg.total_endpoints} endpoints peaked at {peak_mb:.1f} MB "
            f"(budget {budget_mb:.0f} MB)"
        )
    if progress is not None:
        progress(
            f"  memcheck: {res.total_endpoints} endpoints over "
            f"{fcfg.hosts} hosts -> tracemalloc peak {peak_mb:.1f} MB "
            f"(budget {budget_mb:.0f} MB), tables {res.table_bytes / 1e6:.1f} MB "
            f"({res.bytes_per_endpoint:.0f} B/endpoint), "
            f"goodput {res.completed} msgs"
        )
    return res


def _report_rows(report: FleetReport) -> list[list]:
    rows = []
    for c in report.cells:
        rows.append([
            c.policy, c.hosts, f"{c.ratio}:1", c.total_endpoints,
            f"{c.goodput_msgs_s / 1e3:.1f}",
            c.tick_goodput_min,
            f"{c.remaps}", f"{c.thrash_score:.2f}",
            f"{c.table_bytes / 1e6:.1f}",
            f"{c.bytes_per_endpoint:.0f}",
        ])
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        description="fleet-scale overcommit sweep (hosts x ratio x policy)")
    ap.add_argument("--policies", nargs="+",
                    default=list(DEFAULT_FLEET_POLICIES), metavar="POLICY")
    ap.add_argument("--ratios", type=int, nargs="+",
                    default=list(DEFAULT_FLEET_RATIOS), metavar="R",
                    help="endpoints-per-frame overcommit ratios")
    ap.add_argument("--hosts", type=int, nargs="+", default=[64],
                    metavar="H", help="fleet sizes to sweep")
    ap.add_argument("--nis-per-host", type=int, default=2)
    ap.add_argument("--frames", type=int, default=8,
                    help="endpoint frames per server NI (8 = LANai 4.3)")
    ap.add_argument("--arrival", default="diurnal",
                    choices=sorted(ARRIVAL_MODELS))
    ap.add_argument("--ticks", type=int, default=192)
    ap.add_argument("--seed", type=int, default=1999)
    ap.add_argument("--out", default="BENCH_FLEET.json",
                    help="write the full report here as JSON")
    ap.add_argument("--verify-determinism", action="store_true",
                    help="run every cell twice and require identical digests")
    ap.add_argument("--budget-mb", type=float, default=MEMCHECK_BUDGET_MB,
                    help="tracemalloc budget for the 10^5-endpoint cell")
    ap.add_argument("--no-memcheck", action="store_true",
                    help="skip the 10^5-endpoint memory gate cell")
    ap.add_argument("--smoke", action="store_true",
                    help="reduced CI matrix: 8 hosts x 1 NI x 4 frames, "
                         "ratios 4/16, every cell run twice, plus the "
                         "10^5-endpoint tracemalloc budget cell")
    args = ap.parse_args(argv)

    nis_per_host = args.nis_per_host
    frames = args.frames
    if args.smoke:
        args.hosts = [8]
        nis_per_host = 1
        frames = 4
        args.ratios = [4, 16]
        args.ticks = 96
        args.verify_determinism = True

    print(f"fleet sweep: hosts={args.hosts}, nis/host={nis_per_host}, "
          f"frames={frames}, policies={args.policies}, ratios={args.ratios}, "
          f"arrival={args.arrival}, seed={args.seed}"
          + (" [smoke: every cell run twice]" if args.smoke else ""))
    report = run_fleet_sweep(
        args.policies,
        args.ratios,
        args.hosts,
        nis_per_host=nis_per_host,
        frames=frames,
        arrival=args.arrival,
        ticks=args.ticks,
        seed=args.seed,
        verify_determinism=args.verify_determinism,
        progress=print,
    )
    if not args.no_memcheck:
        run_memcheck(report, arrival=args.arrival, seed=args.seed,
                     budget_mb=args.budget_mb, progress=print)

    print_table(
        ["policy", "hosts", "ratio", "endpoints", "good K/s", "floor/tick",
         "remaps", "thrash", "table MB", "B/ep"],
        _report_rows(report),
        title=f"fleet overcommit sweep: arrival={args.arrival}, "
              f"seed {args.seed}, digest {report.digest[:16]}",
    )

    if args.out:
        with open(args.out, "w") as f:
            json.dump(report.to_json(), f, indent=2, sort_keys=True)
        print(f"wrote {args.out}")

    status = 0
    if report.nondeterministic:
        print("DETERMINISM FAILURE: cell digests differed between runs:",
              file=sys.stderr)
        for line in report.nondeterministic:
            print(f"  {line}", file=sys.stderr)
        status = 1
    if report.memory_violations:
        print("MEMORY-BUDGET FAILURE:", file=sys.stderr)
        for line in report.memory_violations:
            print(f"  {line}", file=sys.stderr)
        status = 1
    collapsed = report.collapsed_cells()
    if collapsed:
        print("GRACEFUL-DEGRADATION FAILURE: cells with zero goodput:",
              file=sys.stderr)
        for c in collapsed:
            print(f"  {c.policy}@{c.hosts}h/{c.ratio}:1", file=sys.stderr)
        status = 1
    if status == 0:
        worst = min(report.cells, key=lambda c: c.completed)
        print(f"all {len(report.cells)} cells serviceable; worst cell "
              f"{worst.policy}@{worst.hosts}h/{worst.ratio}:1 still "
              f"delivered {worst.completed} msgs "
              f"(floor {worst.tick_goodput_min}/tick)"
              + (" — determinism verified (double runs matched)"
                 if args.verify_determinism else ""))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
