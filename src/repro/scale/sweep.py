"""The (replacement policy × overcommit ratio) sweep and its CLI.

Regenerates the Section 6.4 scaling relationship: goodput per cell as
the server NI's eight endpoint frames are overcommitted 1:1 → 64:1,
for every registered replacement policy.  The paper's claim — and this
harness's acceptance bar — is *graceful* degradation: past 8:1 goodput
falls, but no policy collapses to zero while the re-mapping machinery
(200-300 remaps/s) migrates endpoints under the load.

Run as a module::

    PYTHONPATH=src python -m repro.scale --smoke          # CI gate
    PYTHONPATH=src python -m repro.scale                  # full sweep
    PYTHONPATH=src python -m repro.scale --policies random active-preference \\
        --ratios 1 8 32 --duration-ms 40 --out BENCH_SCALE.json

``--smoke`` runs a reduced matrix with every cell executed **twice**,
failing (exit 1) unless both runs produce bit-identical digests — the
determinism gate — and no cell's goodput is zero — the graceful-
degradation gate.  The full sweep applies the same zero-goodput check.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..bench.reporting import print_table
from .loadgen import ScaleCellConfig, ScaleCellResult, run_cell

__all__ = ["DEFAULT_POLICIES", "DEFAULT_RATIOS", "ScaleReport", "run_sweep", "main"]

DEFAULT_POLICIES = ("random", "lru", "clock", "active-preference")
DEFAULT_RATIOS = (1, 2, 4, 8, 16, 32, 64)


@dataclass
class ScaleReport:
    """One sweep: a grid of cells plus the aggregate digest."""

    frames: int
    seed: int
    cells: list[ScaleCellResult] = field(default_factory=list)
    #: digest mismatches found by --smoke's double runs
    nondeterministic: list[str] = field(default_factory=list)

    @property
    def digest(self) -> str:
        import hashlib

        h = hashlib.sha256()
        for c in self.cells:
            h.update(c.digest.encode())
        return h.hexdigest()

    def cell(self, policy: str, ratio: int) -> Optional[ScaleCellResult]:
        for c in self.cells:
            if c.policy == policy and c.ratio == ratio:
                return c
        return None

    def collapsed_cells(self) -> list[ScaleCellResult]:
        """Cells that violate graceful degradation (zero goodput)."""
        return [c for c in self.cells if c.completed == 0]

    def to_json(self) -> dict:
        return {
            "frames": self.frames,
            "seed": self.seed,
            "digest": self.digest,
            "nondeterministic": self.nondeterministic,
            "cells": [c.to_dict() for c in self.cells],
        }


def run_sweep(
    policies: Sequence[str] = DEFAULT_POLICIES,
    ratios: Sequence[int] = DEFAULT_RATIOS,
    *,
    frames: int = 8,
    duration_ms: float = 60.0,
    warmup_ms: float = 30.0,
    seed: int = 1999,
    client_nodes: int = 8,
    eviction_hysteresis_us: float = 0.0,
    engine=None,
    verify_determinism: bool = False,
    progress=None,
) -> ScaleReport:
    """Run the grid; one :class:`ScaleCellResult` per (policy, ratio).

    ``verify_determinism`` re-runs every cell and records digest
    mismatches in ``report.nondeterministic`` (the ``--smoke`` gate).
    """
    report = ScaleReport(frames=frames, seed=seed)
    for policy in policies:
        for ratio in ratios:
            ccfg = ScaleCellConfig(
                policy=policy,
                ratio=ratio,
                endpoint_frames=frames,
                client_nodes=client_nodes,
                duration_ms=duration_ms,
                warmup_ms=warmup_ms,
                seed=seed,
                eviction_hysteresis_us=eviction_hysteresis_us,
            )
            res = run_cell(ccfg, engine=engine)
            if verify_determinism:
                res2 = run_cell(ccfg, engine=engine)
                if res2.digest != res.digest:
                    report.nondeterministic.append(
                        f"{policy}@{ratio}:1 digests differ: "
                        f"{res.digest[:12]} vs {res2.digest[:12]}"
                    )
            report.cells.append(res)
            if progress is not None:
                progress(
                    f"  {policy:>18} {ratio:>3}:1  "
                    f"{res.goodput_msgs_s / 1e3:7.1f} K msg/s  "
                    f"p50 {res.p50_us:8.1f} us  "
                    f"{res.remaps_per_s:6.1f} remaps/s  "
                    f"thrash {res.thrash_score:.2f}  "
                    f"[{res.wall_s:.1f}s wall]"
                )
    return report


def _report_rows(report: ScaleReport) -> list[list]:
    rows = []
    for c in report.cells:
        rows.append([
            c.policy, f"{c.ratio}:1", c.nclients,
            f"{c.goodput_msgs_s / 1e3:.1f}",
            f"{c.failed_msgs_s / 1e3:.1f}",
            f"{c.p50_us:.0f}", f"{c.p99_us:.0f}",
            f"{c.remaps_per_s:.0f}",
            f"{c.eviction_remap_ratio:.2f}",
            f"{c.thrash_score:.2f}",
            c.not_resident_nacks,
        ])
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--policies", nargs="+", default=list(DEFAULT_POLICIES),
                    metavar="POLICY",
                    help=f"replacement policies to sweep (default: {' '.join(DEFAULT_POLICIES)})")
    ap.add_argument("--ratios", type=int, nargs="+", default=list(DEFAULT_RATIOS),
                    metavar="R", help="endpoints-per-frame overcommit ratios")
    ap.add_argument("--frames", type=int, default=8,
                    help="endpoint frames on every server NI (8 = LANai 4.3)")
    ap.add_argument("--duration-ms", type=float, default=60.0,
                    help="measured window per cell (simulated ms)")
    ap.add_argument("--warmup-ms", type=float, default=30.0)
    ap.add_argument("--seed", type=int, default=1999)
    ap.add_argument("--client-nodes", type=int, default=8,
                    help="client endpoints are spread over this many nodes")
    ap.add_argument("--hysteresis-us", type=float, default=0.0,
                    help="eviction hysteresis window (0 = paper behaviour)")
    ap.add_argument("--out", default="BENCH_SCALE.json",
                    help="write the full report here as JSON")
    ap.add_argument("--verify-determinism", action="store_true",
                    help="run every cell twice and require identical digests")
    ap.add_argument("--smoke", action="store_true",
                    help="reduced CI matrix: frames=2, ratios 2/8/16, every "
                         "cell run twice with digests compared")
    args = ap.parse_args(argv)

    if args.smoke:
        args.frames = 2
        args.ratios = [2, 8, 16]
        args.duration_ms = 25.0
        args.warmup_ms = 15.0
        args.client_nodes = 4
        args.verify_determinism = True

    print(f"scale sweep: frames={args.frames}, policies={args.policies}, "
          f"ratios={args.ratios}, seed={args.seed}"
          + (" [smoke: every cell run twice]" if args.smoke else ""))
    report = run_sweep(
        args.policies,
        args.ratios,
        frames=args.frames,
        duration_ms=args.duration_ms,
        warmup_ms=args.warmup_ms,
        seed=args.seed,
        client_nodes=args.client_nodes,
        eviction_hysteresis_us=args.hysteresis_us,
        verify_determinism=args.verify_determinism,
        progress=print,
    )

    print_table(
        ["policy", "ratio", "clients", "good K/s", "fail K/s", "p50 us",
         "p99 us", "remap/s", "evict/remap", "thrash", "NR nacks"],
        _report_rows(report),
        title=f"overcommit sweep: {args.frames} frames, seed {args.seed}, "
              f"digest {report.digest[:16]}",
    )

    if args.out:
        with open(args.out, "w") as f:
            json.dump(report.to_json(), f, indent=2, sort_keys=True)
        print(f"wrote {args.out}")

    status = 0
    if report.nondeterministic:
        print("DETERMINISM FAILURE: cell digests differed between runs:",
              file=sys.stderr)
        for line in report.nondeterministic:
            print(f"  {line}", file=sys.stderr)
        status = 1
    collapsed = report.collapsed_cells()
    if collapsed:
        print("GRACEFUL-DEGRADATION FAILURE: cells with zero goodput:",
              file=sys.stderr)
        for c in collapsed:
            print(f"  {c.policy}@{c.ratio}:1", file=sys.stderr)
        status = 1
    if status == 0:
        worst = min(report.cells, key=lambda c: c.goodput_msgs_s)
        print(f"all {len(report.cells)} cells serviceable; worst cell "
              f"{worst.policy}@{worst.ratio}:1 still delivered "
              f"{worst.goodput_msgs_s / 1e3:.1f} K msg/s"
              + (" — determinism verified (double runs matched)"
                 if args.verify_determinism else ""))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
