"""``repro.scale`` — endpoint-overcommit load generator and sweep harness.

The paper's central scaling claim (Section 6.4) is that a virtual
network stays serviceable when applications overcommit the NI's eight
endpoint frames by well past 8:1 — the re-mapping machinery degrades
goodput gracefully instead of collapsing.  This package regenerates that
relationship:

* :mod:`repro.scale.loadgen` — a batched closed-loop load generator:
  ``ratio × endpoint_frames`` client endpoints (spread over a fixed pool
  of client nodes, hundreds of client threads at the high ratios) each
  stream request bursts at a dedicated server endpoint, client/server
  style (:mod:`repro.apps.clientserver`), so the server NI is the only
  node under residency pressure;
* :mod:`repro.scale.sweep` — the (policy × overcommit-ratio) sweep:
  goodput, p50/p99 request latency, remap rate and the residency
  scoreboard's thrash score per cell, JSON output (``BENCH_SCALE.json``)
  and a ``--smoke`` CI mode that runs every cell twice and insists on
  bit-identical digests.

Run as a module::

    PYTHONPATH=src python -m repro.scale --smoke
    PYTHONPATH=src python -m repro.scale --policies random active-preference \\
        --ratios 1 8 32 --out BENCH_SCALE.json

Every run is deterministic: the same ``(policy, ratio, seed)`` cell
produces a bit-identical result digest (and, with tracing on, a
bit-identical timeline digest) on every run.
"""

from .loadgen import ScaleCellConfig, ScaleCellResult, run_cell
from .sweep import (
    DEFAULT_POLICIES,
    DEFAULT_RATIOS,
    ScaleReport,
    main,
    run_sweep,
)

__all__ = [
    "DEFAULT_POLICIES",
    "DEFAULT_RATIOS",
    "ScaleCellConfig",
    "ScaleCellResult",
    "ScaleReport",
    "main",
    "run_cell",
    "run_sweep",
]
