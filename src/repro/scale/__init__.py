"""``repro.scale`` — endpoint-overcommit load generator and sweep harness.

The paper's central scaling claim (Section 6.4) is that a virtual
network stays serviceable when applications overcommit the NI's eight
endpoint frames by well past 8:1 — the re-mapping machinery degrades
goodput gracefully instead of collapsing.  This package regenerates that
relationship:

* :mod:`repro.scale.loadgen` — a batched closed-loop load generator:
  ``ratio × endpoint_frames`` client endpoints (spread over a fixed pool
  of client nodes, hundreds of client threads at the high ratios) each
  stream request bursts at a dedicated server endpoint, client/server
  style (:mod:`repro.apps.clientserver`), so the server NI is the only
  node under residency pressure;
* :mod:`repro.scale.sweep` — the (policy × overcommit-ratio) sweep:
  goodput, p50/p99 request latency, remap rate and the residency
  scoreboard's thrash score per cell, JSON output (``BENCH_SCALE.json``)
  and a ``--smoke`` CI mode that runs every cell twice and insists on
  bit-identical digests;
* :mod:`repro.scale.fleet` — the fleet-scale macro-model: hundreds of
  hosts × several server NIs × 10^5–10^6 endpoints on struct-of-arrays
  endpoint tables, driven by diurnal/bursty arrival models against the
  *production* replacement policies, with a tracemalloc peak-memory
  budget gate (``BENCH_FLEET.json``).

Run as a module::

    PYTHONPATH=src python -m repro.scale --smoke
    PYTHONPATH=src python -m repro.scale --policies random active-preference \\
        --ratios 1 8 32 --out BENCH_SCALE.json
    PYTHONPATH=src python -m repro.scale --fleet --smoke

Every run is deterministic: the same ``(policy, ratio, seed)`` cell
produces a bit-identical result digest (and, with tracing on, a
bit-identical timeline digest) on every run.
"""

from .fleet import (
    DEFAULT_FLEET_POLICIES,
    DEFAULT_FLEET_RATIOS,
    FleetCellConfig,
    FleetCellResult,
    FleetReport,
    run_fleet_cell,
    run_fleet_sweep,
)
from .loadgen import ARRIVAL_MODELS, ArrivalModel, ScaleCellConfig, ScaleCellResult, run_cell
from .sweep import (
    DEFAULT_POLICIES,
    DEFAULT_RATIOS,
    ScaleReport,
    main,
    run_sweep,
)

__all__ = [
    "ARRIVAL_MODELS",
    "ArrivalModel",
    "DEFAULT_FLEET_POLICIES",
    "DEFAULT_FLEET_RATIOS",
    "DEFAULT_POLICIES",
    "DEFAULT_RATIOS",
    "FleetCellConfig",
    "FleetCellResult",
    "FleetReport",
    "ScaleCellConfig",
    "ScaleCellResult",
    "ScaleReport",
    "main",
    "run_cell",
    "run_fleet_cell",
    "run_fleet_sweep",
    "run_sweep",
]
