"""Batched closed-loop load generator for endpoint-overcommit studies.

One *cell* is a complete client/server experiment at a fixed
``(replacement policy, overcommit ratio)`` point: ``ratio ×
endpoint_frames`` client endpoints, each wired to its own dedicated
server endpoint (the ST shape of Section 6.4 — one server thread
polling every endpoint), all clients streaming request bursts
closed-loop with think time between bursts.

Two deliberate asymmetries keep the measurement honest:

* client NIs get their frame arrays widened to fit every local endpoint,
  so the *only* node under residency pressure is the server — the cell
  measures the server's replacement policy, not incidental client-side
  thrash;
* transport dead time is compressed (20 ms) so requests parked against a
  long-non-resident endpoint resolve as returned-to-sender within the
  cell instead of wedging a client for the default 50 ms.

Determinism: a cell is a pure function of its config.  The result digest
is a SHA-256 over the integer observables (per-client reply/undeliverable
counts, driver and scoreboard counters, NACK counts, latency samples in
ns) — two runs of the same cell must produce the same digest bit for
bit, which ``--smoke`` and ``tests/test_scale_policies.py`` enforce.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field
from typing import Optional

from ..am.bundle import Bundle
from ..am.vnet import new_endpoint
from ..chaos import reset_global_ids, timeline_digest
from ..cluster.builder import Cluster
from ..cluster.config import ClusterConfig
from ..myrinet.packet import NackReason
from ..sim.core import ms, us

__all__ = [
    "ScaleCellConfig",
    "ScaleCellResult",
    "run_cell",
    "ArrivalModel",
    "ARRIVAL_MODELS",
    "register_arrival",
]


# ======================================================== arrival models
#: registry of fleet arrival-shape models, keyed by name; filled by
#: :func:`register_arrival` and consumed by :mod:`repro.scale.fleet`.
ARRIVAL_MODELS: dict[str, type] = {}


def register_arrival(name: str):
    """Class decorator: register an :class:`ArrivalModel` under ``name``."""

    def deco(cls):
        cls.name = name
        ARRIVAL_MODELS[name] = cls
        return cls

    return deco


class ArrivalModel:
    """Per-tick arrival intensity in ``[0, 1]`` for one host.

    ``phase`` in ``[0, 1)`` desynchronizes hosts: real fleets are spread
    across timezones and load balancers, so the diurnal peak of one host
    lands in another's trough.  Implementations must be pure functions of
    ``(tick, phase)`` — the fleet digest gate depends on it.
    """

    name = "?"

    def intensity(self, tick: int, phase: float) -> float:
        raise NotImplementedError


@register_arrival("uniform")
class UniformArrival(ArrivalModel):
    """Flat load: every tick at peak intensity (the §6.4 cell shape)."""

    def intensity(self, tick: int, phase: float) -> float:
        return 1.0


@register_arrival("diurnal")
class DiurnalArrival(ArrivalModel):
    """Sinusoidal day/night cycle with a non-zero trough.

    One period is ``period_ticks``; the trough keeps a fleet-wide
    baseline of background traffic (monitoring, retries) so goodput must
    never reach zero even at night.
    """

    def __init__(self, period_ticks: int = 96, trough: float = 0.15):
        self.period_ticks = period_ticks
        self.trough = trough

    def intensity(self, tick: int, phase: float) -> float:
        x = math.sin(2.0 * math.pi * (tick / self.period_ticks + phase))
        return self.trough + (1.0 - self.trough) * 0.5 * (1.0 + x)


@register_arrival("bursty")
class BurstyArrival(ArrivalModel):
    """On-off square wave: short synchronized bursts over a quiet floor.

    The hard case for replacement: a burst re-touches a cold working set
    all at once, so a policy that evicted the wrong endpoints during the
    quiet phase pays the whole remap bill at the burst edge.
    """

    def __init__(self, period_ticks: int = 24, duty: float = 0.25,
                 idle: float = 0.05):
        self.period_ticks = period_ticks
        self.duty = duty
        self.idle = idle

    def intensity(self, tick: int, phase: float) -> float:
        pos = (tick + int(phase * self.period_ticks)) % self.period_ticks
        return 1.0 if pos < self.duty * self.period_ticks else self.idle


@dataclass
class ScaleCellConfig:
    """One (policy, ratio) cell of the overcommit sweep."""

    policy: str = "random"
    #: endpoints per NI frame at the server (1 = no overcommit)
    ratio: int = 8
    endpoint_frames: int = 8
    #: client endpoints are spread round-robin over this many nodes
    client_nodes: int = 8
    #: requests issued back-to-back per closed-loop cycle
    burst: int = 4
    #: idle time between bursts (duty cycle: idle endpoints exist, which
    #: is what distinguishes the replacement policies)
    think_us: float = 400.0
    #: eager-poll window after a burst before backing off to sleeps
    spin_us: float = 60.0
    #: sleep between polls once the spin window is spent
    poll_backoff_us: float = 150.0
    #: per-burst reply wait bound; must exceed the (compressed) transport
    #: dead time so abandoned requests resolve as returned first
    reply_wait_cap_us: float = 25_000.0
    msg_bytes: int = 0
    duration_ms: float = 60.0
    warmup_ms: float = 30.0
    #: server request-handler cost (the ~78K msg/s host ceiling)
    handler_ns: int = 8_600
    seed: int = 1999
    eviction_hysteresis_us: float = 0.0
    base: Optional[ClusterConfig] = None

    @property
    def nclients(self) -> int:
        return self.ratio * self.endpoint_frames

    def cluster_config(self) -> ClusterConfig:
        base = self.base or ClusterConfig()
        return base.with_(
            num_hosts=min(self.client_nodes, self.nclients) + 1,
            endpoint_frames=self.endpoint_frames,
            replacement_policy=self.policy,
            eviction_hysteresis_us=self.eviction_hysteresis_us,
            seed=self.seed,
            # setup + transport compression for fast, bounded cells
            ep_alloc_us=50.0,
            dead_timeout_ms=20.0,
            # cell digests include sim.events_dispatched, and the express
            # path exists precisely to elide events — pin it off so the
            # committed BENCH_SCALE digests stay comparable across runs
            express_path=False,
        )


@dataclass
class ScaleCellResult:
    """Everything one cell measured (over the post-warmup window)."""

    policy: str
    ratio: int
    frames: int
    nclients: int
    seed: int
    # goodput
    completed: int = 0
    failed: int = 0
    goodput_msgs_s: float = 0.0
    failed_msgs_s: float = 0.0
    # request latency over completed bursts, per request (µs)
    p50_us: float = 0.0
    p99_us: float = 0.0
    mean_us: float = 0.0
    # residency machinery
    remaps: int = 0
    remaps_per_s: float = 0.0
    evictions: int = 0
    bounced_evictions: int = 0
    forced_evictions: int = 0
    hysteresis_vetoes: int = 0
    eviction_remap_ratio: float = 0.0
    thrash_score: float = 0.0
    not_resident_nacks: int = 0
    overrun_nacks: int = 0
    server_cpu_util: float = 0.0
    # bookkeeping
    sim_ns: int = 0
    events_dispatched: int = 0
    wall_s: float = 0.0
    digest: str = ""
    #: SHA-256 over the trace timeline; only set when run with trace=True
    timeline_digest: str = ""
    latencies_ns: list[int] = field(default_factory=list, repr=False)

    def to_dict(self) -> dict:
        d = {k: v for k, v in self.__dict__.items() if k != "latencies_ns"}
        return d


def _digest(parts) -> str:
    h = hashlib.sha256()
    for p in parts:
        h.update(repr(p).encode())
        h.update(b"\n")
    return h.hexdigest()


def run_cell(ccfg: ScaleCellConfig, *, trace: bool = False,
             engine=None) -> ScaleCellResult:
    """Run one overcommit cell; returns its :class:`ScaleCellResult`.

    ``trace=True`` additionally attaches a :class:`repro.obs.TraceBus`
    and records the timeline digest (slower; meant for the determinism
    tests and post-mortems, not the full sweep).
    """
    reset_global_ids()
    wall0 = time.perf_counter()
    cluster = Cluster(ccfg.cluster_config(), engine=engine)
    bus = cluster.enable_tracing() if trace else None
    sim = cluster.sim
    cfg = cluster.cfg
    server_node = cluster.node(0)
    n_client_nodes = cfg.num_hosts - 1

    # Widen client NI frame arrays so every client endpoint fits: the
    # server NI is the only node under residency pressure (module doc).
    per_node = -(-ccfg.nclients // n_client_nodes)
    for node_id in range(1, cfg.num_hosts):
        nic = cluster.node(node_id).nic
        if per_node > len(nic.frames):
            nic.resize_frames(per_node)

    def setup():
        servers, clients = [], []
        for i in range(ccfg.nclients):
            node = cluster.node(1 + (i % n_client_nodes))
            cep = yield from new_endpoint(node, rngs=cluster.rngs)
            sep = yield from new_endpoint(server_node, rngs=cluster.rngs)
            cep.map(0, sep.name, sep.tag)
            sep.map(0, cep.name, cep.tag)
            sep.handler_cost_ns = ccfg.handler_ns
            clients.append(cep)
            servers.append(sep)
        return servers, clients

    servers, clients = cluster.run_process(setup(), "scale.setup")

    stop = {"flag": False}
    measuring = {"on": False}
    latencies: list[int] = []

    # ---- server: one thread sweeping all endpoints (ST, Section 6.4) ----
    bundle = Bundle(servers)
    sproc = server_node.start_process("scale.server")

    def server_body(thr):
        while not stop["flag"]:
            n = yield from bundle.poll_all(thr, limit=8)
            if n == 0:
                yield from thr.compute(200)

    sproc.spawn_thread(server_body, name="scale.server")

    # ---- clients: batched closed loop with think time ------------------
    spin_step_ns = 2_000
    cap_ns = us(ccfg.reply_wait_cap_us)
    think_ns = us(ccfg.think_us)
    spin_ns = us(ccfg.spin_us)
    backoff_ns = us(ccfg.poll_backoff_us)
    procs = [cluster.node(1 + k).start_process(f"scale.c{k}") for k in range(n_client_nodes)]

    def make_client(cep, idx):
        def client_body(thr):
            stats = cep.stats
            while not stop["flag"]:
                t0 = sim.now
                base_r = stats.replies_handled
                base_u = stats.undeliverable
                sent = 0
                for _ in range(ccfg.burst):
                    if stop["flag"]:
                        break
                    yield from cep.request(thr, 0, None, nbytes=ccfg.msg_bytes)
                    sent += 1
                deadline = sim.now + cap_ns
                spin_until = sim.now + spin_ns
                while (stats.replies_handled - base_r) + (stats.undeliverable - base_u) < sent:
                    if stop["flag"] or sim.now >= deadline:
                        break
                    n = yield from cep.poll(thr, limit=8)
                    if n:
                        continue
                    if sim.now < spin_until:
                        yield from thr.compute(spin_step_ns)
                    else:
                        yield from thr.sleep(backoff_ns)
                if measuring["on"] and sent and stats.replies_handled - base_r == sent:
                    latencies.append((sim.now - t0) // sent)
                yield from thr.sleep(think_ns)

        return client_body

    for i, cep in enumerate(clients):
        procs[i % n_client_nodes].spawn_thread(make_client(cep, i), name=f"scale.client{i}")

    # ---- warmup, then the measured window ------------------------------
    cluster.run(until=sim.now + ms(ccfg.warmup_ms))
    snap_r = [c.stats.replies_handled for c in clients]
    snap_u = [c.stats.undeliverable for c in clients]
    sb0 = server_node.driver.scoreboard.snapshot()
    snap_remaps = server_node.driver.stats.remaps
    snap_cpu = server_node.cpu.busy_ns
    nic = server_node.nic
    snap_notres = nic.stats.nacks_sent.get(NackReason.NOT_RESIDENT, 0)
    snap_over = nic.stats.nacks_sent.get(NackReason.RECV_OVERRUN, 0)
    measuring["on"] = True
    t0 = sim.now
    cluster.run(until=t0 + ms(ccfg.duration_ms))
    stop["flag"] = True
    measuring["on"] = False
    elapsed_ns = sim.now - t0
    elapsed_s = elapsed_ns / 1e9

    replies = [c.stats.replies_handled - snap_r[i] for i, c in enumerate(clients)]
    undeliv = [c.stats.undeliverable - snap_u[i] for i, c in enumerate(clients)]
    sb1 = server_node.driver.scoreboard.snapshot()
    remaps_d = int(sb1["remaps"] - sb0["remaps"])
    evictions_d = int(sb1["evictions"] - sb0["evictions"])
    bounced_d = int(sb1["bounced_evictions"] - sb0["bounced_evictions"])
    forced_d = int(sb1["forced_evictions"] - sb0["forced_evictions"])
    vetoes_d = int(sb1["hysteresis_vetoes"] - sb0["hysteresis_vetoes"])
    notres_d = nic.stats.nacks_sent.get(NackReason.NOT_RESIDENT, 0) - snap_notres
    over_d = nic.stats.nacks_sent.get(NackReason.RECV_OVERRUN, 0) - snap_over

    res = ScaleCellResult(
        policy=ccfg.policy,
        ratio=ccfg.ratio,
        frames=ccfg.endpoint_frames,
        nclients=ccfg.nclients,
        seed=ccfg.seed,
    )
    res.completed = sum(replies)
    res.failed = sum(undeliv)
    res.goodput_msgs_s = res.completed / elapsed_s
    res.failed_msgs_s = res.failed / elapsed_s
    lat = sorted(latencies)
    if lat:
        res.p50_us = lat[len(lat) // 2] / 1e3
        res.p99_us = lat[min(len(lat) - 1, (len(lat) * 99) // 100)] / 1e3
        res.mean_us = sum(lat) / len(lat) / 1e3
    res.remaps = remaps_d
    res.remaps_per_s = remaps_d / elapsed_s
    res.evictions = evictions_d
    res.bounced_evictions = bounced_d
    res.forced_evictions = forced_d
    res.hysteresis_vetoes = vetoes_d
    res.eviction_remap_ratio = evictions_d / max(1, remaps_d)
    res.thrash_score = bounced_d / max(1, remaps_d)
    res.not_resident_nacks = notres_d
    res.overrun_nacks = over_d
    res.server_cpu_util = (server_node.cpu.busy_ns - snap_cpu) / elapsed_ns
    res.sim_ns = sim.now
    res.events_dispatched = sim.events_dispatched
    res.latencies_ns = lat
    res.digest = _digest([
        ("cell", ccfg.policy, ccfg.ratio, ccfg.endpoint_frames, ccfg.seed),
        ("replies", replies),
        ("undeliverable", undeliv),
        ("scoreboard", remaps_d, evictions_d, bounced_d, forced_d, vetoes_d),
        ("nacks", notres_d, over_d),
        ("sim", sim.now, sim.events_dispatched),
        ("latencies", lat),
    ])
    if bus is not None:
        res.timeline_digest = timeline_digest(bus.events)
        bus.detach()
    res.wall_s = time.perf_counter() - wall0
    return res
