"""Entry point: ``python -m repro.scale`` runs the overcommit sweep."""

from .sweep import main

raise SystemExit(main())
