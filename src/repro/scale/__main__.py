"""Entry point: ``python -m repro.scale`` runs the overcommit sweep.

``python -m repro.scale --fleet ...`` dispatches to the fleet-scale
sweep (:mod:`repro.scale.fleet`) instead of the single-NI cell sweep.
"""

import sys

argv = sys.argv[1:]
if "--fleet" in argv:
    from .fleet import main

    argv.remove("--fleet")
else:
    from .sweep import main

raise SystemExit(main(argv))
