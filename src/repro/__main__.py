"""``python -m repro`` — the umbrella CLI over every suite.

One front door instead of four ``python -m repro.<pkg>`` spellings:

    python -m repro bench [perf-args...]     # perf regression harness
    python -m repro chaos [chaos-args...]    # chaos smoke matrix
    python -m repro calib [calib-args...]    # LogP calibration sweep
    python -m repro scale [scale-args...]    # overcommit sweep
    python -m repro tenant [tenant-args...]  # tenant interference matrix

Each subcommand delegates to the existing suite ``main(argv)`` with the
remaining arguments, so every per-suite flag keeps working unchanged.
The old per-package entrypoints remain functional.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence


def _cmd_bench(argv):
    # `bench collectives ...` routes to the collective-strategy suite;
    # everything else stays with the perf regression harness.
    if argv and argv[0] == "collectives":
        from .bench.collectives import main as coll_main

        return coll_main(argv[1:])
    from .bench.perf import main

    return main(argv)


def _cmd_chaos(argv):
    from .bench.chaos import main

    return main(argv)


def _cmd_calib(argv):
    from .calib.sweep import main

    return main(argv)


def _cmd_scale(argv):
    from .scale.sweep import main

    return main(argv)


def _cmd_tenant(argv):
    from .tenant.bench import main

    return main(argv)


COMMANDS = {
    "bench": _cmd_bench,
    "chaos": _cmd_chaos,
    "calib": _cmd_calib,
    "scale": _cmd_scale,
    "tenant": _cmd_tenant,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    cmd = argv[0]
    fn = COMMANDS.get(cmd)
    if fn is None:
        print(f"unknown command {cmd!r}; choose from: "
              f"{' '.join(sorted(COMMANDS))}", file=sys.stderr)
        return 2
    return int(fn(argv[1:]) or 0)


if __name__ == "__main__":
    raise SystemExit(main())
