"""Reproduction of Mainwaring & Culler, "Design Challenges of Virtual
Networks: Fast, General-Purpose Communication" (PPoPP 1999).

A deterministic discrete-event simulation of the Berkeley NOW virtual
network system: the Myrinet fabric, the LANai NI firmware with its
endpoint frames and transport protocol, the Solaris endpoint segment
driver (the four-state residency protocol), and the Active Messages II
programming interface on top — plus the paper's workloads and a benchmark
harness regenerating every figure.

Entry points — the stable facade is :mod:`repro.api`:

>>> from repro.api import Session
>>> with Session(nodes=[0, 1], num_hosts=4) as s:
...     ep0, ep1 = s.endpoints

See README.md for the full tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for paper-vs-measured results.
"""

from .cluster import Cluster, ClusterConfig
from .obs import TraceBus
from .am import (
    Bundle,
    Endpoint,
    NameService,
    VirtualNetwork,
    build_parallel_vnet,
    build_star_vnet,
    create_endpoint,
    new_endpoint,
    parallel_vnet,
    star_vnet,
)

__version__ = "1.0.0"

__all__ = [
    "Bundle",
    "Cluster",
    "ClusterConfig",
    "Endpoint",
    "NameService",
    "TraceBus",
    "VirtualNetwork",
    "new_endpoint",
    "parallel_vnet",
    "star_vnet",
    # deprecated spellings (warning shims)
    "build_parallel_vnet",
    "build_star_vnet",
    "create_endpoint",
    "__version__",
]
