"""Unit tests for the NI firmware transport protocol (Section 5.1).

These drive the NIC directly (no OS, no AM library): endpoints are
registered and loaded through raw driver ops, messages through
``host_enqueue_send``.
"""

import pytest

from repro.cluster import ClusterConfig
from repro.myrinet import NackReason, Network
from repro.nic import DriverOp, EndpointState, Message, MessageState, MsgKind, Nic
from repro.sim import Event, Simulator, ms, us


def build(n=4, **kw):
    cfg = ClusterConfig(num_hosts=n, **kw)
    sim = Simulator()
    net = Network(sim, cfg)
    nics = [Nic(sim, cfg, i, net) for i in range(n)]
    return sim, cfg, net, nics


def add_ep(sim, nic, cfg, ep_id, tag, load=True, frame=None):
    ep = EndpointState(
        nic.nic_id,
        ep_id,
        send_ring_depth=cfg.send_ring_depth,
        recv_queue_depth=cfg.recv_queue_depth,
        tag=tag,
    )
    nic.driver_request(DriverOp("alloc", ep, Event(sim)))
    if load:
        # Frames must be chosen at op-execution time in real code (the
        # segment driver's remap thread is serial); tests loading several
        # endpoints up front pass explicit frame indices instead.
        if frame is None:
            frame = nic.free_frame_index()
        nic.driver_request(DriverOp("load", ep, Event(sim), frame=frame))
    return ep


def mk_msg(src, dst, key, nbytes=16, bulk=False, kind=MsgKind.REQUEST):
    return Message(
        src_node=src[0], src_ep=src[1], dst_node=dst[0], dst_ep=dst[1],
        key=key, kind=kind, payload_bytes=nbytes, is_bulk=bulk,
    )


def test_small_message_delivered_exactly_once():
    sim, cfg, net, nics = build()
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    b = add_ep(sim, nics[1], cfg, 1, tag=20)
    sim.run(until=ms(1))
    msg = mk_msg((0, 1), (1, 1), key=20)
    outcomes = []
    msg.on_resolved = lambda m, ok: outcomes.append(ok)
    assert nics[0].host_enqueue_send(a, msg)
    sim.run(until=ms(5))
    assert outcomes == [True]
    assert len(b.recv_requests) == 1
    assert msg.state is MessageState.DELIVERED
    assert nics[1].stats.deliveries == 1


def test_reply_goes_to_reply_queue():
    sim, cfg, net, nics = build()
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    b = add_ep(sim, nics[1], cfg, 1, tag=20)
    sim.run(until=ms(1))
    nics[0].host_enqueue_send(a, mk_msg((0, 1), (1, 1), key=20, kind=MsgKind.REPLY))
    sim.run(until=ms(5))
    assert len(b.recv_replies) == 1
    assert len(b.recv_requests) == 0


def test_bad_key_returned_to_sender():
    sim, cfg, net, nics = build()
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    b = add_ep(sim, nics[1], cfg, 1, tag=20)
    sim.run(until=ms(1))
    msg = mk_msg((0, 1), (1, 1), key=999)
    nics[0].host_enqueue_send(a, msg)
    sim.run(until=ms(5))
    assert msg.state is MessageState.RETURNED
    assert msg.return_reason is NackReason.BAD_KEY
    assert len(a.returned) == 1
    assert len(b.recv_requests) == 0


def test_nonexistent_endpoint_returned_to_sender():
    sim, cfg, net, nics = build()
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    sim.run(until=ms(1))
    msg = mk_msg((0, 1), (1, 7), key=20)
    nics[0].host_enqueue_send(a, msg)
    sim.run(until=ms(5))
    assert msg.state is MessageState.RETURNED
    assert msg.return_reason is NackReason.NO_ENDPOINT


def test_not_resident_nack_then_delivery_after_load():
    sim, cfg, net, nics = build()
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    b = add_ep(sim, nics[1], cfg, 1, tag=20, load=False)
    sim.run(until=ms(1))
    msg = mk_msg((0, 1), (1, 1), key=20)
    nics[0].host_enqueue_send(a, msg)
    sim.run(until=ms(2))
    assert msg.state is not MessageState.DELIVERED
    assert nics[1].stats.nacks_sent.get(NackReason.NOT_RESIDENT, 0) >= 1
    # The NI asked its driver to make the endpoint resident (§4.2).
    assert nics[1].stats.make_resident_notifies == 1
    # Simulate the driver loading it; retransmission then succeeds.
    nics[1].driver_request(DriverOp("load", b, Event(sim), frame=nics[1].free_frame_index()))
    sim.run(until=ms(20))
    assert msg.state is MessageState.DELIVERED
    assert len(b.recv_requests) == 1


def test_receive_queue_overrun_nacks_and_recovers():
    sim, cfg, net, nics = build()
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    b = add_ep(sim, nics[1], cfg, 1, tag=20)
    sim.run(until=ms(1))
    msgs = [mk_msg((0, 1), (1, 1), key=20) for _ in range(cfg.recv_queue_depth + 8)]
    for m in msgs:
        assert nics[0].host_enqueue_send(a, m)
    sim.run(until=ms(3))
    assert len(b.recv_requests) == cfg.recv_queue_depth
    assert nics[1].stats.nacks_sent.get(NackReason.RECV_OVERRUN, 0) >= 1
    # Drain the queue; the NACKed messages retry and land exactly once.
    for _ in range(10):
        nics[1].host_poll_recv(b)
    sim.run(until=ms(40))
    assert sum(1 for m in msgs if m.state is MessageState.DELIVERED) == len(msgs)
    assert len(b.recv_requests) + 10 == len(msgs)


def test_exactly_once_under_heavy_loss():
    sim, cfg, net, nics = build(packet_loss_prob=0.3, dead_timeout_ms=400.0)
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    b = add_ep(sim, nics[1], cfg, 1, tag=20)
    sim.run(until=ms(1))
    msgs = [mk_msg((0, 1), (1, 1), key=20) for _ in range(20)]
    results = []
    for m in msgs:
        m.on_resolved = lambda mm, ok: results.append(ok)
        nics[0].host_enqueue_send(a, m)
    sim.run(until=ms(300))
    delivered = [m for m in msgs if m.state is MessageState.DELIVERED]
    assert len(delivered) == 20, f"only {len(delivered)} delivered"
    # every message landed in the queue exactly once
    assert len(b.recv_requests) == 20
    assert nics[0].stats.retransmissions > 0


def test_exactly_once_under_corruption():
    sim, cfg, net, nics = build(packet_corrupt_prob=0.3, dead_timeout_ms=400.0)
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    b = add_ep(sim, nics[1], cfg, 1, tag=20)
    sim.run(until=ms(1))
    msgs = [mk_msg((0, 1), (1, 1), key=20) for _ in range(10)]
    for m in msgs:
        nics[0].host_enqueue_send(a, m)
    sim.run(until=ms(300))
    assert all(m.state is MessageState.DELIVERED for m in msgs)
    assert len(b.recv_requests) == 10


def test_dead_receiver_returns_to_sender_after_timeout():
    sim, cfg, net, nics = build(dead_timeout_ms=20.0)
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    b = add_ep(sim, nics[1], cfg, 1, tag=20)
    sim.run(until=ms(1))
    nics[1].crash()
    msg = mk_msg((0, 1), (1, 1), key=20)
    nics[0].host_enqueue_send(a, msg)
    sim.run(until=ms(120))
    assert msg.state is MessageState.RETURNED
    assert msg.return_reason == "timeout"
    assert len(a.returned) == 1


def test_channel_unbind_after_bounded_retransmissions():
    """A message must not hog its channel forever (Section 5.1)."""
    sim, cfg, net, nics = build(dead_timeout_ms=500.0, max_consecutive_retrans=3)
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    b = add_ep(sim, nics[1], cfg, 1, tag=20, load=False)  # stays non-resident
    sim.run(until=ms(1))
    msg = mk_msg((0, 1), (1, 1), key=20)
    nics[0].host_enqueue_send(a, msg)
    sim.run(until=ms(100))
    assert nics[0].stats.unbinds >= 1
    assert nics[0].stats.rebinds >= 1
    # channel must be reusable meanwhile: send another message to node 2
    c = add_ep(sim, nics[2], cfg, 1, tag=30)
    m2 = mk_msg((0, 1), (2, 1), key=30)
    nics[0].host_enqueue_send(a, m2)
    sim.run(until=ms(140))
    assert m2.state is MessageState.DELIVERED


def test_bulk_delivery_and_sbus_accounting():
    sim, cfg, net, nics = build()
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    b = add_ep(sim, nics[1], cfg, 1, tag=20)
    sim.run(until=ms(1))
    msg = mk_msg((0, 1), (1, 1), key=20, nbytes=8192, bulk=True)
    nics[0].host_enqueue_send(a, msg)
    sim.run(until=ms(10))
    assert msg.state is MessageState.DELIVERED
    assert nics[0].sbus.bytes_read >= 8192     # staged from host
    assert nics[1].sbus.bytes_written >= 8192  # written to host


def test_quiesce_unload_waits_for_inflight():
    sim, cfg, net, nics = build(dead_timeout_ms=200.0)
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    b = add_ep(sim, nics[1], cfg, 1, tag=20, load=False)
    sim.run(until=ms(1))
    msg = mk_msg((0, 1), (1, 1), key=20)  # will be NACKed (not resident)
    nics[0].host_enqueue_send(a, msg)
    sim.run(until=ms(2))
    assert a.inflight == 1
    done = Event(sim, "unload")
    nics[0].driver_request(DriverOp("unload", a, done))
    sim.run(until=ms(10))
    # still quiescing: the in-flight message is unresolved
    assert not done.triggered
    assert a.quiescing
    # let the receiver become resident -> ack -> quiescent -> unload
    nics[1].driver_request(DriverOp("load", b, Event(sim), frame=nics[1].free_frame_index()))
    sim.run(until=ms(200))
    assert done.triggered
    assert a.frame is None
    assert not a.resident
    assert msg.state is MessageState.DELIVERED


def test_free_endpoint_then_traffic_returns():
    sim, cfg, net, nics = build()
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    b = add_ep(sim, nics[1], cfg, 1, tag=20)
    sim.run(until=ms(1))
    # unload+free b
    nics[1].driver_request(DriverOp("unload", b, Event(sim)))
    sim.run(until=ms(5))
    nics[1].driver_request(DriverOp("free", b, Event(sim)))
    sim.run(until=ms(6))
    msg = mk_msg((0, 1), (1, 1), key=20)
    nics[0].host_enqueue_send(a, msg)
    sim.run(until=ms(20))
    assert msg.state is MessageState.RETURNED
    assert msg.return_reason is NackReason.NO_ENDPOINT


def test_wrr_fairness_two_endpoints():
    """Two endpoints flooding one destination share the NI fairly (§5.2).

    The loiter budget bounds the burst one endpoint can monopolize: with a
    budget of 8, deliveries must alternate in runs of at most ~8.
    """
    sim, cfg, net, nics = build(wrr_max_msgs=8)
    a1 = add_ep(sim, nics[0], cfg, 1, tag=10, frame=0)
    a2 = add_ep(sim, nics[0], cfg, 2, tag=11, frame=1)
    b1 = add_ep(sim, nics[1], cfg, 1, tag=20, frame=0)
    b2 = add_ep(sim, nics[1], cfg, 2, tag=21, frame=1)
    sim.run(until=ms(1))
    n = 60
    m1 = [mk_msg((0, 1), (1, 1), key=20) for _ in range(n)]
    m2 = [mk_msg((0, 2), (1, 2), key=21) for _ in range(n)]
    for x, y in zip(m1, m2):
        nics[0].host_enqueue_send(a1, x)
        nics[0].host_enqueue_send(a2, y)

    # drain both receive queues continuously
    def drain():
        while True:
            nics[1].host_poll_recv(b1)
            nics[1].host_poll_recv(b2)
            yield sim.timeout(us(5))

    sim.spawn(drain())
    sim.run(until=ms(1) + us(400))
    d1 = sum(1 for m in m1 if m.state is MessageState.DELIVERED)
    d2 = sum(1 for m in m2 if m.state is MessageState.DELIVERED)
    assert d1 + d2 > 20
    assert abs(d1 - d2) <= 2 * cfg.wrr_max_msgs


def test_reboot_self_synchronizes_channels():
    sim, cfg, net, nics = build(dead_timeout_ms=100.0)
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    b = add_ep(sim, nics[1], cfg, 1, tag=20)
    sim.run(until=ms(1))
    m1 = mk_msg((0, 1), (1, 1), key=20)
    nics[0].host_enqueue_send(a, m1)
    sim.run(until=ms(5))
    assert m1.state is MessageState.DELIVERED
    # receiver reboots: sequencing state on both ends now disagrees
    nics[1].crash()
    nics[1].reboot()
    nics[1].driver_request(DriverOp("load", b, Event(sim), frame=nics[1].free_frame_index()))
    sim.run(until=ms(10))
    m2 = mk_msg((0, 1), (1, 1), key=20)
    nics[0].host_enqueue_send(a, m2)
    sim.run(until=ms(100))
    assert m2.state is MessageState.DELIVERED


def test_sender_reboot_returns_orphans():
    sim, cfg, net, nics = build(dead_timeout_ms=5_000.0)
    a = add_ep(sim, nics[0], cfg, 1, tag=10)
    b = add_ep(sim, nics[1], cfg, 1, tag=20, load=False)  # NACK forever
    sim.run(until=ms(1))
    msg = mk_msg((0, 1), (1, 1), key=20)
    nics[0].host_enqueue_send(a, msg)
    sim.run(until=ms(3))
    nics[0].crash()
    nics[0].reboot()
    sim.run(until=ms(10))
    assert msg.state is MessageState.RETURNED
    assert msg.return_reason == "reboot"


def test_lamport_clocks_advance_across_agents():
    sim, cfg, net, nics = build()
    t0 = nics[0].clock.time
    add_ep(sim, nics[0], cfg, 1, tag=10)
    sim.run(until=ms(1))
    assert nics[0].clock.time > t0
