"""Unit tests for the observability layer (repro.obs)."""

import json

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    KINDS,
    MetricRegistry,
    PhaseStats,
    TraceBus,
    metrics_snapshot,
    phase_breakdown,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.sim import Simulator
from repro.sim.core import NULL_TRACE


# ------------------------------------------------------------- nil sink
def test_simulator_defaults_to_nil_trace():
    sim = Simulator()
    assert sim.trace is NULL_TRACE
    assert sim.trace.enabled is False
    # emitting through the nil sink is a no-op, not an error
    sim.trace.emit("pkt.tx", 0, msg=1)


def test_attach_detach_cycle():
    sim = Simulator()
    bus = TraceBus.attach(sim)
    assert sim.trace is bus and bus.enabled
    bus.emit("pkt.tx", 0, msg=1)
    bus.detach()
    assert sim.trace is NULL_TRACE
    # events collected before detach stay readable
    assert len(bus) == 1
    # detaching twice (or detaching a superseded bus) is harmless
    bus2 = TraceBus.attach(sim)
    bus.detach()
    assert sim.trace is bus2


# ------------------------------------------------------------------ bus
def _scripted_bus():
    """A bus fed a hand-written event sequence at varying sim times."""
    sim = Simulator()
    bus = TraceBus.attach(sim)
    script = [
        (10, "pkt.tx", 0, dict(msg=1, enq=2)),
        (25, "net.deliver", 1, dict(msg=1)),
        (40, "msg.deliver", 1, dict(msg=1)),
        (55, "ack.rx", 0, dict(msg=1)),
        (60, "ep.load", 1, dict(ep=3, dur_ns=12)),
        (70, "pkt.tx", 0, dict(msg=2, enq=61)),
        (75, "net.drop", 0, dict(msg=2, reason="loss")),
    ]

    # scheduled callbacks rather than a process: keeps the event log free
    # of the kernel's own sim.spawn/sim.exit records
    for ts, kind, node, args in script:
        sim.schedule(ts, lambda k=kind, n=node, a=args: bus.emit(k, n, **a))
    sim.run()
    return sim, bus


def test_emit_records_sim_time_and_kind():
    sim, bus = _scripted_bus()
    assert [e.ts for e in bus.events] == [10, 25, 40, 55, 60, 70, 75]
    ev = bus.events[0]
    assert ev.kind == "pkt.tx" and ev.component == "pkt"
    assert ev.node == 0 and ev.get("msg") == 1 and ev.get("nope", 7) == 7
    assert ev.kind in KINDS


def test_select_by_kind_prefix_and_node():
    _, bus = _scripted_bus()
    assert len(bus.select("pkt.tx")) == 2
    assert len(bus.select("pkt.")) == 2  # trailing dot = component prefix
    assert len(bus.select("net.")) == 2
    assert len(bus.select(node=1)) == 3
    assert len(bus.select("pkt.tx", node=0)) == 2
    assert bus.select("nack.tx") == []
    assert bus.counts()["pkt.tx"] == 2


def test_capacity_ring_drops_oldest():
    sim = Simulator()
    bus = TraceBus.attach(sim, capacity=3)
    for i in range(10):
        bus.emit("pkt.tx", 0, msg=i)
    assert len(bus) == 3
    assert [e.get("msg") for e in bus.events] == [7, 8, 9]
    assert bus.dropped > 0
    # metrics keep counting past the ring bound
    assert bus.metrics.counter("events.pkt.tx", node=0).value == 10


def test_subscribe_streams_and_cancels():
    sim = Simulator()
    bus = TraceBus.attach(sim)
    seen = []
    cancel = bus.subscribe(lambda ev: seen.append(ev.kind))
    bus.emit("pkt.tx", 0)
    cancel()
    cancel()  # idempotent
    bus.emit("pkt.rx", 0)
    assert seen == ["pkt.tx"]


# -------------------------------------------------------------- metrics
def test_counter_and_gauge():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    g = Gauge()
    g.set(3)
    g.inc(2)
    g.dec(4)
    assert g.value == 1 and g.max_value == 5


def test_histogram_summary_and_quantiles():
    h = Histogram()
    for v in [1, 2, 3, 100, 1000]:
        h.observe(v)
    s = h.summary()
    assert s["count"] == 5 and s["sum"] == 1106
    assert s["min"] == 1 and s["max"] == 1000
    assert s["mean"] == 1106 / 5
    # power-of-two buckets: quantiles land on bucket boundaries
    assert s["p50"] <= s["p99"] <= 2 * 1000
    empty = Histogram()
    assert empty.summary()["p99"] == 0.0 and empty.mean == 0.0


def test_registry_keys_by_labels_and_flattens():
    reg = MetricRegistry()
    reg.counter("pkts", node=0).inc(3)
    reg.counter("pkts", node=1).inc()
    assert reg.counter("pkts", node=0) is reg.counter("pkts", node=0)
    assert reg.counter("pkts", node=0) is not reg.counter("pkts", node=1)
    reg.gauge("depth", node=0).set(4)
    reg.histogram("rtt", node=0).observe(8)
    flat = reg.flat()
    assert flat["pkts{node=0}"] == 3 and flat["pkts{node=1}"] == 1
    assert flat["depth{node=0}"] == 4 and flat["depth{node=0}.max"] == 4
    # quantiles report the power-of-two bucket upper bound (8 -> 16)
    assert flat["rtt{node=0}.count"] == 1 and flat["rtt{node=0}.p50"] == 16.0


def test_metrics_snapshot_node_filter():
    _, bus = _scripted_bus()
    snap_all = metrics_snapshot(bus)
    snap_n1 = metrics_snapshot(bus, node=1)
    assert snap_all["events.pkt.tx{node=0}"] == 2
    assert all("node=1" in k for k in snap_n1)
    assert snap_n1["events.msg.deliver{node=1}"] == 1
    assert "events.pkt.tx{node=0}" not in snap_n1


# --------------------------------------------------------------- export
def test_chrome_export_structure(tmp_path):
    _, bus = _scripted_bus()
    doc = to_chrome_trace(bus, label="unit")
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ns"
    assert doc["otherData"]["source"] == "unit"

    payload = [e for e in events if e["ph"] != "M"]
    assert len(payload) == len(bus)
    # the ep.load event carried dur_ns -> a complete slice, back-dated
    slices = [e for e in payload if e["ph"] == "X"]
    assert len(slices) == 1
    (sl,) = slices
    assert sl["name"] == "ep.load"
    assert sl["dur"] == 12 / 1000.0 and sl["ts"] == (60 - 12) / 1000.0
    assert "dur_ns" not in sl["args"]  # folded into the slice

    # both nodes named, one thread row per emitting component
    meta = [e for e in events if e["ph"] == "M"]
    procs = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    assert procs == {"node0", "node1"}
    threads = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert {"pkt", "net", "msg", "ack", "ep"} <= threads

    path = write_chrome_trace(bus, str(tmp_path / "t.json"), label="unit")
    with open(path) as fh:
        assert json.load(fh) == doc


# ------------------------------------------------------- phase spans
def test_phase_breakdown_attributes_spans():
    _, bus = _scripted_bus()
    phases = phase_breakdown(bus)
    # msg 1 has the full tx -> deliver -> ack chain; msg 2 was dropped
    assert phases["total"].count == 1
    assert phases["send"].total_ns == 10 - 2
    assert phases["wire"].total_ns == 25 - 10
    assert phases["recv"].total_ns == 40 - 25
    assert phases["ack"].total_ns == 55 - 40
    assert phases["total"].total_ns == 55 - 2
    assert phases["total"].mean_us == (55 - 2) / 1000.0


def test_phase_breakdown_ignores_retransmit_duplicates():
    sim = Simulator()
    bus = TraceBus.attach(sim)

    def driver():
        bus.emit("pkt.tx", 0, msg=9, enq=0)
        yield sim.timeout(100)
        bus.emit("pkt.tx", 0, msg=9, enq=0)  # retransmitted copy
        yield sim.timeout(10)
        bus.emit("net.deliver", 1, msg=9)
        bus.emit("msg.deliver", 1, msg=9)
        yield sim.timeout(10)
        bus.emit("ack.rx", 0, msg=9)

    sim.spawn(driver())
    sim.run()
    phases = phase_breakdown(bus)
    assert phases["send"].total_ns == 0  # first tx at ts 0, enq 0
    assert phases["wire"].total_ns == 110  # measured from the FIRST tx
    assert phases["total"].count == 1


def test_phase_stats_empty_means():
    st = PhaseStats()
    assert st.mean_us == 0.0 and st.max_us == 0.0
