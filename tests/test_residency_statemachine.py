"""Seeded random exerciser for the endpoint-residency state machine.

The residency protocol (Figure 2) is driven by three concurrent agents —
application threads, the segment driver's kernel threads, and the NI
firmware — so its failure modes are interleaving bugs: a victim chosen
while mid-transition, a ``wait_resident`` waiter never woken because the
endpoint was freed, a frame resurrected by a load that raced a free.
These tests drive random operation sequences (alloc / free / write
fault / force-evict / real cross-node traffic) against a 2-frame node
and check the invariants that every interleaving must preserve:

* resident endpoints never exceed ``endpoint_frames``, each occupying a
  distinct frame that maps back to it;
* replacement policies are only ever offered sane candidates — resident,
  not quiescing, not mid-transition, not freed;
* every ``wait_resident`` event is eventually triggered (no lost
  wakeups), including when the endpoint is freed instead of loaded;
* ``force_evict`` racing an in-flight ``_make_resident`` resolves — the
  system settles with no endpoint stuck in ``transition``;
* a free racing an in-flight load does not resurrect the endpoint into
  a frame (the frame is released and the NI forgets the endpoint).

Each case is deterministic per seed; failures reproduce exactly.
"""

import random

import pytest

from repro.am.vnet import new_endpoint
from repro.cluster import Cluster, ClusterConfig
from repro.nic import Residency
from repro.sim import ms, us

FRAMES = 2


def build(**kw):
    kw.setdefault("num_hosts", 2)
    kw.setdefault("endpoint_frames", FRAMES)
    kw.setdefault("ep_alloc_us", 50.0)
    kw.setdefault("dead_timeout_ms", 20.0)
    return Cluster(ClusterConfig(**kw))


def spy_on_victims(drv):
    """Wrap the driver's policy so every victim choice is sanity-checked.

    Policies see integer row ids; the spy materializes the flyweight view
    for each candidate to assert the same eligibility invariants as ever.
    """
    chosen = []
    orig = drv.policy.choose_row
    table = drv.policy.table

    def checked_choose(candidates):
        assert candidates, "policy must never see an empty candidate list"
        for r in candidates:
            c = table.views[r]
            assert c is not None, f"row {r} offered as victim without a view"
            assert c.resident, f"ep{c.ep_id} offered as victim but not resident"
            assert not c.transition, f"ep{c.ep_id} offered as victim mid-transition"
            assert not c.quiescing, f"ep{c.ep_id} offered as victim while quiescing"
            assert c.residency is not Residency.FREED
        victim = orig(candidates)
        assert victim in candidates
        chosen.append(table.ep_id[victim])
        return victim

    drv.policy.choose_row = checked_choose
    return chosen


def assert_frame_invariants(nic, frames=FRAMES):
    resident = [ep for ep in nic.endpoints.values() if ep.residency is Residency.ONNIC_RW]
    assert len(resident) <= frames
    for ep in resident:
        assert ep.frame is not None
        assert nic.frames[ep.frame] is ep
    occupied = [f for f in nic.frames if f is not None]
    assert len(set(id(f) for f in occupied)) == len(occupied)


class Exerciser:
    """One seeded random run against node 0's driver."""

    def __init__(self, seed, policy="random", nops=60):
        self.cluster = build(seed=seed, replacement_policy=policy)
        self.sim = self.cluster.sim
        self.node = self.cluster.node(0)
        self.drv = self.node.driver
        self.nic = self.node.nic
        self.rng = random.Random(seed)
        self.nops = nops
        self.victims = spy_on_victims(self.drv)
        self.live = []
        self.waiters = []  # (ep, wait_resident event)
        self.next_tag = 1
        # a client on node 1 generates real NACK->proxy-fault traffic
        self.cep = self.cluster.run_process(
            new_endpoint(self.cluster.node(1), tag=7), "sm.cep"
        )
        self.cproc = self.cluster.node(1).start_process("sm.client")

    # ------------------------------------------------------------------ ops
    def op_alloc(self):
        tag = self.next_tag
        self.next_tag += 1
        ep = self.cluster.run_process(self.drv.alloc_endpoint(tag=tag), "sm.alloc")
        self.live.append(ep)
        self.cep.map(ep.ep_id, (0, ep.ep_id), key=tag)

    def op_free(self):
        if not self.live:
            return
        ep = self.live.pop(self.rng.randrange(len(self.live)))
        self.cluster.run_process(self.drv.free_endpoint(ep), "sm.free")

    def op_fault(self):
        if not self.live:
            return
        ep = self.rng.choice(self.live)
        self.cluster.run_process(self.drv.write_fault(ep), "sm.fault")

    def op_force_evict(self):
        resident = [e for e in self.live if e.resident]
        if resident:
            self.drv.force_evict(self.rng.choice(resident))

    def op_traffic(self):
        if not self.live:
            return
        ep = self.rng.choice(self.live)
        cep = self.cep

        def body(thr):
            yield from cep.request(thr, ep.ep_id, None, nbytes=0)

        self.cproc.spawn_thread(body, name="sm.traffic")

    def op_wait_resident(self):
        if not self.live:
            return
        ep = self.rng.choice(self.live)
        self.waiters.append((ep, self.drv.wait_resident(ep)))

    # ------------------------------------------------------------------ run
    def run(self):
        # Deterministic prologue: overcommit the two frames so every seed
        # exercises the eviction path, not just the ones that happen to.
        for _ in range(FRAMES + 1):
            self.op_alloc()
        for ep in list(self.live):
            self.cluster.run_process(self.drv.write_fault(ep), "sm.fault")
            self.cluster.run(until=self.sim.now + ms(5))

        ops = [
            self.op_alloc,
            self.op_free,
            self.op_fault,
            self.op_fault,
            self.op_force_evict,
            self.op_traffic,
            self.op_traffic,
            self.op_wait_resident,
        ]
        for _ in range(self.nops):
            self.rng.choice(ops)()
            # interleave at sub-remap-latency granularity so ops land in
            # the middle of quiesce/unload/load windows
            self.cluster.run(until=self.sim.now + us(self.rng.choice([20, 100, 800])))
            assert_frame_invariants(self.nic)

        # Epilogue: free everything, settle, and audit the endgame.
        for ep in list(self.live):
            self.cluster.run_process(self.drv.free_endpoint(ep), "sm.free")
        self.live.clear()
        self.cluster.run(until=self.sim.now + ms(60))

        assert self.drv.stats.evictions >= 1, "run never exercised replacement"
        assert self.victims, "run never consulted the replacement policy"
        for ep, ev in self.waiters:
            assert ev.triggered, (
                f"lost wakeup: wait_resident(ep{ep.ep_id}) never triggered "
                f"(residency={ep.residency})"
            )
        for ep in self.nic.frames:
            assert ep is None or ep.residency is not Residency.FREED, (
                f"freed ep{ep.ep_id} resurrected into a frame"
            )
        for ep_id, ep in self.nic.endpoints.items():
            assert ep.residency is not Residency.FREED
        assert_frame_invariants(self.nic)


@pytest.mark.parametrize("seed", range(6))
def test_random_interleavings_preserve_invariants(seed):
    Exerciser(seed=seed).run()


@pytest.mark.parametrize("policy", ["lru", "clock", "active-preference"])
def test_random_interleavings_per_policy(policy):
    Exerciser(seed=1999, policy=policy).run()


# ------------------------------------------------- targeted race regressions
def test_force_evict_during_inflight_make_resident_resolves():
    """A forced eviction racing the remap thread's load must settle."""
    cluster = build()
    sim = cluster.sim
    drv = cluster.node(0).driver
    eps = [cluster.run_process(drv.alloc_endpoint(tag=i + 1), "a") for i in range(3)]
    for ep in eps[:2]:
        cluster.run_process(drv.write_fault(ep), "f")
        cluster.run(until=sim.now + ms(20))
    assert all(e.resident for e in eps[:2])

    # Fault the third endpoint, then keep force-evicting whatever is
    # resident while its make-resident is in flight.
    cluster.run_process(drv.write_fault(eps[2]), "f3")
    for _ in range(40):
        cluster.run(until=sim.now + us(100))
        for e in eps:
            if e.resident:
                drv.force_evict(e)
    cluster.run(until=sim.now + ms(100))

    assert all(not e.transition for e in eps), "endpoint stuck in transition"
    assert all(not e.quiescing for e in eps), "endpoint stuck quiescing"
    # The machine still works: a fresh fault makes the endpoint resident.
    cluster.run_process(drv.write_fault(eps[2]), "f4")
    drv.request_remap(eps[2])
    cluster.run(until=sim.now + ms(50))
    assert eps[2].resident


def test_free_during_inflight_load_does_not_resurrect():
    """Freeing an endpoint mid-load must release the reserved frame."""
    cluster = build()
    sim = cluster.sim
    drv = cluster.node(0).driver
    nic = cluster.node(0).nic
    ep = cluster.run_process(drv.alloc_endpoint(tag=1), "a")
    cluster.run_process(drv.write_fault(ep), "f")
    # Step in small increments until the load transition starts, then
    # free while the SBus DMA is in flight.
    for _ in range(500):
        if ep.transition:
            break
        cluster.run(until=sim.now + us(10))
    assert ep.transition, "load never started"
    cluster.run_process(drv.free_endpoint(ep), "free")
    cluster.run(until=sim.now + ms(50))

    assert ep.residency is Residency.FREED
    assert all(f is not ep for f in nic.frames), "freed endpoint occupies a frame"
    assert nic.free_frame_index() is not None
    assert ep.ep_id not in nic.endpoints


def test_wait_resident_triggers_on_free():
    """Waiters must be released when the endpoint is freed, not leaked."""
    cluster = build()
    drv = cluster.node(0).driver
    ep = cluster.run_process(drv.alloc_endpoint(tag=1), "a")
    ev = drv.wait_resident(ep)
    assert not ev.triggered
    cluster.run_process(drv.free_endpoint(ep), "free")
    cluster.run(until=cluster.sim.now + ms(5))
    assert ev.triggered


def test_wait_resident_on_freed_endpoint_triggers_immediately():
    cluster = build()
    drv = cluster.node(0).driver
    ep = cluster.run_process(drv.alloc_endpoint(tag=1), "a")
    cluster.run_process(drv.free_endpoint(ep), "free")
    ev = drv.wait_resident(ep)
    assert ev.triggered
