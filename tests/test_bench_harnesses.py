"""Smoke tests for the benchmark harnesses (fast, reduced configurations)."""

import numpy as np

from repro.bench.bandwidth import (
    BandwidthPoint,
    BandwidthResult,
    half_power_point,
    measure_am_bandwidth,
)
from repro.bench.logp import LogPResult, measure_am, measure_gam
from repro.bench.reporting import format_series, format_table
from repro.cluster import ClusterConfig


# ----------------------------------------------------------------- reporting
def test_format_table_alignment():
    out = format_table(["a", "bbb"], [[1, 2.5], [30, 4.0]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bbb" in lines[1]
    assert "2.50" in out  # floats at 2 decimals


def test_format_series():
    out = format_series("x", [1, 2], [3.0, 4.5], unit="MB/s")
    assert out == "x [MB/s]: 1:3.0, 2:4.5"


# ---------------------------------------------------------------------- LogP
def test_logp_am_fast():
    r = measure_am(pingpongs=30, flood_msgs=400)
    assert isinstance(r, LogPResult)
    assert 1.5 < r.os_us < 3.5
    assert 5.0 < r.g_us < 20.0
    assert r.rtt_us > 2 * (r.os_us + r.or_us)


def test_logp_gam_fast():
    r = measure_gam(pingpongs=30, flood_msgs=400)
    assert 1.0 < r.os_us < 2.5
    assert 3.0 < r.g_us < 10.0


def test_logp_gam_cheaper_than_am():
    am = measure_am(pingpongs=20, flood_msgs=300)
    gam = measure_gam(pingpongs=20, flood_msgs=300)
    assert am.g_us > gam.g_us
    assert am.rtt_us > gam.rtt_us


# ----------------------------------------------------------------- bandwidth
def test_bandwidth_small_sweep():
    r = measure_am_bandwidth(sizes=[1024, 8192], count=40)
    assert r.at(8192) > r.at(1024)
    assert 35.0 < r.at(8192) < 47.0


def test_half_power_point_interpolation():
    r = BandwidthResult("x", [BandwidthPoint(128, 10.0), BandwidthPoint(512, 20.0), BandwidthPoint(8192, 40.0)])
    n_half = half_power_point(r)
    assert 128 <= n_half <= 512  # crosses 20 (= 40/2) at 512


def test_bandwidth_result_at_missing_raises():
    import pytest

    r = BandwidthResult("x", [BandwidthPoint(128, 10.0)])
    with pytest.raises(KeyError):
        r.at(999)
