"""Unit tests for the endpoint segment driver: the Figure 2 protocol."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.nic import Residency
from repro.sim import ms, us


def build(n=2, **kw):
    return Cluster(ClusterConfig(num_hosts=n, **kw))


def alloc(cluster, node_id, tag=1):
    return cluster.run_process(cluster.node(node_id).driver.alloc_endpoint(tag=tag), "alloc")


def test_alloc_starts_onhost_ro():
    cluster = build()
    ep = alloc(cluster, 0)
    assert ep.residency is Residency.ONHOST_RO
    assert ep.ep_id in cluster.node(0).nic.endpoints
    assert cluster.node(0).driver.stats.allocs == 1


def test_write_fault_transitions_and_remaps():
    cluster = build()
    drv = cluster.node(0).driver
    ep = alloc(cluster, 0)
    cluster.run_process(drv.write_fault(ep), "fault")
    # immediately after the fault the endpoint is writable on the host
    assert drv.stats.write_faults == 1
    # the background thread eventually binds it to an NI frame
    cluster.run(until=cluster.sim.now + ms(20))
    assert ep.residency is Residency.ONNIC_RW
    assert drv.stats.remaps == 1


def test_second_write_fault_is_noop_when_resident():
    cluster = build()
    drv = cluster.node(0).driver
    ep = alloc(cluster, 0)
    cluster.run_process(drv.write_fault(ep), "f1")
    cluster.run(until=cluster.sim.now + ms(20))
    cluster.run_process(drv.write_fault(ep), "f2")
    assert drv.stats.write_faults == 1  # no second trap


def test_eviction_when_frames_full():
    cluster = build(endpoint_frames=2)
    drv = cluster.node(0).driver
    eps = [alloc(cluster, 0, tag=i + 1) for i in range(3)]
    for ep in eps[:2]:
        cluster.run_process(drv.write_fault(ep), "f")
        cluster.run(until=cluster.sim.now + ms(20))
    assert all(e.resident for e in eps[:2])
    cluster.run_process(drv.write_fault(eps[2]), "f3")
    cluster.run(until=cluster.sim.now + ms(40))
    assert eps[2].resident
    assert drv.stats.evictions == 1
    # exactly one of the first two was evicted back to on-host r/o
    evicted = [e for e in eps[:2] if e.residency is Residency.ONHOST_RO]
    assert len(evicted) == 1


def test_lru_replacement_policy_picks_oldest():
    cluster = build(endpoint_frames=2, replacement_policy="lru")
    drv = cluster.node(0).driver
    eps = [alloc(cluster, 0, tag=i + 1) for i in range(3)]
    for ep in eps[:2]:
        cluster.run_process(drv.write_fault(ep), "f")
        cluster.run(until=cluster.sim.now + ms(20))
    eps[0].last_active_ns = cluster.sim.now  # recently used
    eps[1].last_active_ns = 0                # stale -> LRU victim
    cluster.run_process(drv.write_fault(eps[2]), "f3")
    cluster.run(until=cluster.sim.now + ms(40))
    assert eps[1].residency is Residency.ONHOST_RO
    assert eps[0].resident


def test_pageout_and_pagein():
    cluster = build()
    drv = cluster.node(0).driver
    ep = alloc(cluster, 0)
    drv.pageout(ep)
    assert ep.residency is Residency.ONDISK
    assert drv.stats.pageouts == 1
    t0 = cluster.sim.now
    cluster.run_process(drv.write_fault(ep), "fault")
    assert drv.stats.pageins == 1
    # disk page-in took real time
    assert cluster.sim.now - t0 >= us(cluster.cfg.disk_pagein_us)


def test_pageout_only_from_onhost_ro():
    cluster = build()
    drv = cluster.node(0).driver
    ep = alloc(cluster, 0)
    # Only on-host r/o pages are reclaimable (Figure 2's 'vm pageout').
    ep.residency = Residency.ONHOST_RW
    drv.pageout(ep)
    assert ep.residency is Residency.ONHOST_RW
    ep.residency = Residency.ONNIC_RW
    drv.pageout(ep)
    assert ep.residency is Residency.ONNIC_RW


def test_free_endpoint_synchronizes_with_nic():
    cluster = build()
    drv = cluster.node(0).driver
    ep = alloc(cluster, 0)
    cluster.run_process(drv.write_fault(ep), "f")
    cluster.run(until=cluster.sim.now + ms(20))
    assert ep.resident
    cluster.run_process(drv.free_endpoint(ep), "free")
    assert ep.residency is Residency.FREED
    assert ep.ep_id not in cluster.node(0).nic.endpoints
    assert cluster.node(0).nic.free_frame_index() is not None


def test_free_is_idempotent():
    cluster = build()
    drv = cluster.node(0).driver
    ep = alloc(cluster, 0)
    cluster.run_process(drv.free_endpoint(ep), "free1")
    cluster.run_process(drv.free_endpoint(ep), "free2")
    assert drv.stats.frees == 1


def test_arrival_for_nonresident_triggers_proxy_fault():
    """Message arrival makes a non-resident endpoint resident (§4.2)."""
    from repro.nic import Message, MsgKind

    cluster = build()
    drv0, drv1 = cluster.node(0).driver, cluster.node(1).driver
    src = alloc(cluster, 0, tag=1)
    dst = alloc(cluster, 1, tag=2)
    cluster.run_process(drv0.write_fault(src), "f")
    cluster.run(until=cluster.sim.now + ms(20))
    msg = Message(src_node=0, src_ep=src.ep_id, dst_node=1, dst_ep=dst.ep_id,
                  key=2, kind=MsgKind.REQUEST, payload_bytes=16)
    cluster.node(0).nic.host_enqueue_send(src, msg)
    cluster.run(until=cluster.sim.now + ms(50))
    assert dst.resident                      # pulled in by the arrival
    assert drv1.stats.proxy_faults >= 1      # software-initiated fault
    assert len(dst.recv_requests) == 1       # and the retry delivered


def test_stale_notify_discarded_after_free():
    """The free-vs-make-resident race resolves by generation (§4.3)."""
    from repro.nic import Message, MsgKind

    cluster = build()
    drv1 = cluster.node(1).driver
    src = alloc(cluster, 0, tag=1)
    dst = alloc(cluster, 1, tag=2)
    cluster.run_process(cluster.node(0).driver.write_fault(src), "f")
    cluster.run(until=cluster.sim.now + ms(20))
    msg = Message(src_node=0, src_ep=src.ep_id, dst_node=1, dst_ep=dst.ep_id,
                  key=2, kind=MsgKind.REQUEST, payload_bytes=16)
    cluster.node(0).nic.host_enqueue_send(src, msg)

    # free the destination immediately, racing the make-resident notify
    def racer():
        yield from drv1.free_endpoint(dst)

    cluster.sim.spawn(racer(), "racer")
    cluster.run(until=cluster.sim.now + ms(60))
    assert dst.residency is Residency.FREED
    assert not dst.resident
    # the message was ultimately returned to its sender
    from repro.nic import MessageState
    assert msg.state is MessageState.RETURNED


def test_remap_rate_stat():
    cluster = build()
    drv = cluster.node(0).driver
    drv.stats.remaps = 250
    assert drv.stats.remap_rate(int(1e9)) == 250.0
    assert drv.stats.remap_rate(0) == 0.0


def test_sync_fault_ablation_blocks_until_resident():
    """enable_onhost_rw=False: the §6.4.1 pre-fix behaviour."""
    cluster = build(enable_onhost_rw=False)
    drv = cluster.node(0).driver
    ep = alloc(cluster, 0)
    t0 = cluster.sim.now
    cluster.run_process(drv.write_fault(ep), "fault")
    # the faulting "thread" only resumed once the endpoint was resident
    assert ep.resident
    assert cluster.sim.now - t0 >= us(500)  # paid the whole remap latency


# ===================================================== replacement policies
def resident_pair(cluster, drv):
    """Allocate three endpoints and make the first two resident."""
    eps = [alloc(cluster, 0, tag=i + 1) for i in range(3)]
    for ep in eps[:2]:
        cluster.run_process(drv.write_fault(ep), "f")
        cluster.run(until=cluster.sim.now + ms(20))
    assert all(e.resident for e in eps[:2])
    return eps


def test_policy_registry_exposes_all_policies():
    from repro.osim.segdriver import REPLACEMENT_POLICIES

    assert set(REPLACEMENT_POLICIES) >= {"random", "lru", "clock", "active-preference"}
    for name, cls in REPLACEMENT_POLICIES.items():
        assert cls.name == name


def test_unknown_policy_rejected():
    import pytest

    with pytest.raises(ValueError, match="unknown replacement policy"):
        build(replacement_policy="second-sight")


def test_lru_tie_break_is_deterministic_on_ep_id():
    """Equal last_active_ns must not leave the victim to dict order."""
    cluster = build(endpoint_frames=2, replacement_policy="lru")
    drv = cluster.node(0).driver
    eps = resident_pair(cluster, drv)
    eps[0].last_active_ns = 0
    eps[1].last_active_ns = 0  # tie -> lower ep_id loses
    cluster.run_process(drv.write_fault(eps[2]), "f3")
    cluster.run(until=cluster.sim.now + ms(40))
    assert eps[0].residency is Residency.ONHOST_RO
    assert eps[1].resident


def test_clock_policy_gives_second_chance():
    cluster = build(endpoint_frames=2, replacement_policy="clock")
    drv = cluster.node(0).driver
    eps = resident_pair(cluster, drv)
    eps[0].referenced = True   # recently touched: spared, bit cleared
    eps[1].referenced = False  # hand stops here
    cluster.run_process(drv.write_fault(eps[2]), "f3")
    cluster.run(until=cluster.sim.now + ms(40))
    assert eps[1].residency is Residency.ONHOST_RO
    assert eps[0].resident
    assert eps[0].referenced is False  # the sweep consumed its chance


def test_active_preference_spares_endpoint_with_queued_work():
    """LRU would evict eps[0]; active-preference sees its pending work."""
    cluster = build(endpoint_frames=2, replacement_policy="active-preference")
    drv = cluster.node(0).driver
    eps = resident_pair(cluster, drv)
    eps[0].last_active_ns = 0                     # the LRU victim...
    eps[0].mr_requested = True                    # ...but it has queued work
    eps[1].last_active_ns = cluster.sim.now       # recently active, yet idle
    cluster.run_process(drv.write_fault(eps[2]), "f3")
    cluster.run(until=cluster.sim.now + ms(40))
    assert eps[1].residency is Residency.ONHOST_RO
    assert eps[0].resident


def test_eviction_hysteresis_protects_fresh_endpoint():
    cluster = build(endpoint_frames=2, replacement_policy="lru",
                    eviction_hysteresis_us=50_000.0)
    drv = cluster.node(0).driver
    eps = [alloc(cluster, 0, tag=i + 1) for i in range(3)]
    # eps[0] loads now; eps[1] loads 60ms later, so at eviction time
    # eps[0] is seasoned and eps[1] is inside the protection window.
    cluster.run_process(drv.write_fault(eps[0]), "f0")
    cluster.run(until=cluster.sim.now + ms(60))
    cluster.run_process(drv.write_fault(eps[1]), "f1")
    cluster.run(until=cluster.sim.now + ms(5))
    assert all(e.resident for e in eps[:2])
    eps[1].last_active_ns = 0  # LRU would pick the fresh endpoint...
    eps[0].last_active_ns = cluster.sim.now
    cluster.run_process(drv.write_fault(eps[2]), "f2")
    cluster.run(until=cluster.sim.now + ms(40))
    # ...but hysteresis vetoes it and the seasoned one is evicted.
    assert eps[0].residency is Residency.ONHOST_RO
    assert eps[1].resident
    assert drv.scoreboard.hysteresis_vetoes >= 1


def test_hysteresis_yields_when_every_candidate_is_fresh():
    """All-fresh candidates: protection must yield, not deadlock."""
    cluster = build(endpoint_frames=2, replacement_policy="lru",
                    eviction_hysteresis_us=1_000_000.0)
    drv = cluster.node(0).driver
    eps = resident_pair(cluster, drv)
    cluster.run_process(drv.write_fault(eps[2]), "f3")
    cluster.run(until=cluster.sim.now + ms(40))
    assert eps[2].resident  # the remap still happened


# ======================================================= residency scoreboard
def test_scoreboard_counts_remaps_and_evictions():
    cluster = build(endpoint_frames=2)
    drv = cluster.node(0).driver
    eps = resident_pair(cluster, drv)
    cluster.run_process(drv.write_fault(eps[2]), "f3")
    cluster.run(until=cluster.sim.now + ms(40))
    sb = drv.scoreboard
    assert sb.remaps == drv.stats.remaps == 3
    assert sb.evictions == 1
    assert sb.eviction_remap_ratio == pytest.approx(1 / 3)
    snap = sb.snapshot()
    assert snap["remaps"] == 3 and snap["evictions"] == 1
    assert snap["max_ep_evictions"] == 1


def test_eviction_bounce_scored_on_prompt_refault():
    """An evict->refault inside thrash_bounce_us counts as thrash."""
    cluster = build(endpoint_frames=2, thrash_bounce_us=10_000.0)
    drv = cluster.node(0).driver
    ep = alloc(cluster, 0)
    cluster.run_process(drv.write_fault(ep), "f")
    cluster.run(until=cluster.sim.now + ms(20))
    assert ep.resident
    assert drv.force_evict(ep)
    cluster.run(until=cluster.sim.now + ms(5))
    assert not ep.resident
    drv.request_remap(ep)  # immediately re-requested: a bounce
    assert drv.scoreboard.bounced_evictions == 1
    cluster.run(until=cluster.sim.now + ms(40))
    assert ep.resident
    assert drv.scoreboard.thrash_score > 0.0


def test_slow_refault_is_not_a_bounce():
    cluster = build(endpoint_frames=2, thrash_bounce_us=1_000.0)
    drv = cluster.node(0).driver
    ep = alloc(cluster, 0)
    cluster.run_process(drv.write_fault(ep), "f")
    cluster.run(until=cluster.sim.now + ms(20))
    assert drv.force_evict(ep)
    cluster.run(until=cluster.sim.now + ms(30))  # well past the window
    drv.request_remap(ep)
    assert drv.scoreboard.bounced_evictions == 0


def test_new_residency_knobs_validate():
    import pytest

    with pytest.raises(ValueError, match="eviction_hysteresis_us"):
        ClusterConfig(eviction_hysteresis_us=-1.0).validate()
    with pytest.raises(ValueError, match="thrash_window"):
        ClusterConfig(thrash_window=0).validate()
    with pytest.raises(ValueError, match="thrash_bounce_us"):
        ClusterConfig(thrash_bounce_us=-0.5).validate()
    with pytest.raises(ValueError, match="unknown replacement policy"):
        ClusterConfig(replacement_policy="fifo").validate()


def test_api_facade_lists_policies():
    from repro.api import describe

    policies = describe()["replacement_policies"]
    assert policies == sorted(policies)
    assert {"random", "lru", "clock", "active-preference"} <= set(policies)
