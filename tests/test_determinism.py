"""End-to-end determinism: identical seeds give bit-identical runs."""

from repro.apps.clientserver import ContentionConfig, run_contention
from repro.apps.npb import run_npb
from repro.bench.logp import measure_am


def test_contention_run_is_reproducible():
    def once():
        r = run_contention(
            ContentionConfig(nclients=3, mode="one_vn", duration_ms=40, warmup_ms=30, seed=5)
        )
        return (r.per_client_msgs_s, r.aggregate_msgs_s, r.overrun_nacks)

    assert once() == once()


def test_contention_seed_changes_details_not_shape():
    a = run_contention(ContentionConfig(nclients=2, mode="one_vn", duration_ms=40, warmup_ms=30, seed=1))
    b = run_contention(ContentionConfig(nclients=2, mode="one_vn", duration_ms=40, warmup_ms=30, seed=2))
    # same physics: aggregates within a few percent of each other
    assert abs(a.aggregate_msgs_s - b.aggregate_msgs_s) / a.aggregate_msgs_s < 0.1


def test_npb_run_is_reproducible():
    r1 = run_npb("cg", 4)
    r2 = run_npb("cg", 4)
    assert r1.time_s == r2.time_s
    assert r1.comm_iter_s == r2.comm_iter_s


def test_logp_measurement_is_reproducible():
    a = measure_am(pingpongs=20, flood_msgs=200)
    b = measure_am(pingpongs=20, flood_msgs=200)
    assert (a.os_us, a.or_us, a.l_us, a.g_us) == (b.os_us, b.or_us, b.l_us, b.g_us)
