"""repro.scale: per-policy determinism + replacement-policy regressions.

Three properties pin the overcommit harness down:

* **Determinism** — the same ``(policy, ratio, seed)`` cell produces a
  bit-identical result digest (and, with tracing on, a bit-identical
  event-timeline digest) on every run.  Everything downstream — the
  committed ``BENCH_SCALE.json``, the CI smoke gate, regression
  bisection — leans on this.
* **Policy quality** — ``active-preference`` exists because evicting an
  endpoint that is about to be used again is wasted re-mapping work
  (Section 6.4's thrash).  At 16:1 overcommit it must beat the paper's
  ``random`` choice on the scoreboard's thrash score.
* **Hysteresis compatibility** — ``eviction_hysteresis_us=0`` (the
  default) must reproduce the unprotected paper behaviour exactly,
  digest included; a window on the frame-recycle timescale must engage
  (vetoes observed) and still make forward progress.

Cells here are deliberately tiny; the committed BENCH_SCALE.json holds
the full-size sweep.
"""

import pytest

from repro.scale import (
    DEFAULT_POLICIES,
    DEFAULT_RATIOS,
    ScaleCellConfig,
    run_cell,
    run_sweep,
)

#: small-but-real cell: 2 frames, 4:1 overcommit, 8 clients
TINY = dict(ratio=4, endpoint_frames=2, client_nodes=2,
            duration_ms=10.0, warmup_ms=5.0)


@pytest.mark.parametrize("policy", DEFAULT_POLICIES)
def test_cell_is_deterministic_per_policy(policy):
    cfg = ScaleCellConfig(policy=policy, **TINY)
    a = run_cell(cfg, trace=True)
    b = run_cell(cfg, trace=True)
    assert a.completed > 0, "tiny cell made no progress"
    assert a.digest == b.digest
    assert a.timeline_digest and a.timeline_digest == b.timeline_digest
    assert (a.completed, a.remaps, a.evictions) == (b.completed, b.remaps, b.evictions)


def test_different_seeds_diverge():
    a = run_cell(ScaleCellConfig(seed=1, **TINY))
    b = run_cell(ScaleCellConfig(seed=2, **TINY))
    assert a.digest != b.digest


def test_active_preference_beats_random_on_thrash_at_16x():
    """Deprioritizing endpoints with queued work must reduce bounced
    evictions relative to the paper's random choice (Section 6.4)."""
    shape = dict(ratio=16, endpoint_frames=4, client_nodes=4,
                 duration_ms=60.0, warmup_ms=20.0)
    rnd = run_cell(ScaleCellConfig(policy="random", **shape))
    ap = run_cell(ScaleCellConfig(policy="active-preference", **shape))
    assert rnd.completed > 0 and ap.completed > 0
    assert rnd.remaps > 0 and ap.remaps > 0
    assert ap.thrash_score < rnd.thrash_score, (
        f"active-preference thrash {ap.thrash_score:.3f} not better than "
        f"random {rnd.thrash_score:.3f}"
    )
    assert ap.bounced_evictions < rnd.bounced_evictions


def test_hysteresis_zero_reproduces_default_behaviour():
    base = run_cell(ScaleCellConfig(policy="lru", **TINY))
    h0 = run_cell(ScaleCellConfig(policy="lru", eviction_hysteresis_us=0.0, **TINY))
    assert h0.digest == base.digest
    assert h0.hysteresis_vetoes == 0


def test_hysteresis_window_engages():
    """A window on the frame-recycle timescale must veto fresh victims
    (changing the timeline) while the cell keeps making progress."""
    shape = dict(policy="lru", ratio=8, endpoint_frames=4, client_nodes=4,
                 duration_ms=40.0, warmup_ms=20.0)
    base = run_cell(ScaleCellConfig(**shape))
    hyst = run_cell(ScaleCellConfig(eviction_hysteresis_us=10_000.0, **shape))
    assert hyst.hysteresis_vetoes > 0
    assert hyst.digest != base.digest
    assert hyst.completed > 0


def test_sweep_grid_and_digest():
    report = run_sweep(
        ["random", "lru"], [1, 4],
        frames=2, duration_ms=8.0, warmup_ms=4.0, client_nodes=2,
        verify_determinism=True,
    )
    assert len(report.cells) == 4
    assert not report.nondeterministic
    assert not report.collapsed_cells()
    assert report.cell("lru", 4) is not None
    assert report.cell("lru", 64) is None
    j = report.to_json()
    assert j["digest"] == report.digest
    assert len(j["cells"]) == 4
    # at 1:1 nothing competes for frames: no evictions at all
    for policy in ("random", "lru"):
        assert report.cell(policy, 1).evictions == 0


def test_default_grid_covers_issue_matrix():
    assert DEFAULT_RATIOS[0] == 1 and DEFAULT_RATIOS[-1] == 64
    assert set(DEFAULT_POLICIES) == {"random", "lru", "clock", "active-preference"}


def test_cell_config_derives_cluster_config():
    ccfg = ScaleCellConfig(policy="clock", ratio=8, endpoint_frames=4,
                           client_nodes=4, eviction_hysteresis_us=123.0)
    assert ccfg.nclients == 32
    cfg = ccfg.cluster_config()
    assert cfg.replacement_policy == "clock"
    assert cfg.endpoint_frames == 4
    assert cfg.eviction_hysteresis_us == 123.0
    assert cfg.num_hosts == 5  # 4 client nodes + the server
