"""Unit tests for simulated threads, mutexes, and condition variables."""

import pytest

from repro.hw import Cpu
from repro.osim import CondVar, Mutex, Thread
from repro.sim import SimError, Simulator


def make():
    sim = Simulator()
    cpu = Cpu(sim, quantum_ns=1_000_000, context_switch_ns=0)
    return sim, cpu


def test_thread_runs_and_returns():
    sim, cpu = make()

    def body(thr):
        yield from thr.compute(5_000)
        return "done"

    t = Thread(sim, cpu, body)
    sim.run()
    assert t.finished and t.result == "done"
    assert sim.now == 5_000


def test_threads_share_cpu():
    sim, cpu = make()
    cpu.quantum_ns = 1_000
    ends = {}

    def body(thr):
        yield from thr.compute(5_000)
        ends[thr.name] = sim.now

    Thread(sim, cpu, body, name="a")
    Thread(sim, cpu, body, name="b")
    sim.run()
    assert min(ends.values()) >= 9_000  # interleaved, not sequential


def test_thread_sleep_releases_cpu():
    sim, cpu = make()
    log = []

    def sleeper(thr):
        yield from thr.sleep(10_000)
        log.append(("sleeper", sim.now))

    def worker(thr):
        yield from thr.compute(5_000)
        log.append(("worker", sim.now))

    Thread(sim, cpu, sleeper)
    Thread(sim, cpu, worker)
    sim.run()
    assert ("worker", 5_000) in log  # worker ran during the sleep


def test_mutex_mutual_exclusion():
    sim, cpu = make()
    holder = []

    def body(thr, mtx):
        yield mtx.acquire(thr)
        holder.append(thr.name)
        assert len(holder) == 1
        yield from thr.sleep(1_000)
        holder.remove(thr.name)
        mtx.release(thr)

    mtx = Mutex(sim)
    Thread(sim, cpu, lambda t: body(t, mtx), name="a")
    Thread(sim, cpu, lambda t: body(t, mtx), name="b")
    sim.run()
    assert holder == []


def test_mutex_release_by_non_owner_raises():
    sim, cpu = make()
    mtx = Mutex(sim)

    def a(thr):
        yield mtx.acquire(thr)

    def b(thr):
        yield from thr.sleep(10)
        mtx.release(thr)

    Thread(sim, cpu, a, name="a")
    Thread(sim, cpu, b, name="b")
    with pytest.raises(SimError):
        sim.run()


def test_condvar_signal_wakes_one_fifo():
    sim, cpu = make()
    woke = []

    def waiter(thr, cv):
        val = yield cv.wait()
        woke.append((thr.name, val))

    cv = CondVar(sim)
    Thread(sim, cpu, lambda t: waiter(t, cv), name="w1")
    Thread(sim, cpu, lambda t: waiter(t, cv), name="w2")

    def signaller(thr):
        yield from thr.sleep(100)
        cv.signal("x")
        yield from thr.sleep(100)
        cv.signal("y")

    Thread(sim, cpu, signaller, name="s")
    sim.run()
    assert woke == [("w1", "x"), ("w2", "y")]


def test_condvar_broadcast_wakes_all():
    sim, cpu = make()
    woke = []
    cv = CondVar(sim)

    def waiter(thr):
        yield cv.wait()
        woke.append(thr.name)

    for name in ("a", "b", "c"):
        Thread(sim, cpu, waiter, name=name)

    def caster(thr):
        yield from thr.sleep(50)
        cv.broadcast()

    Thread(sim, cpu, caster)
    sim.run()
    assert sorted(woke) == ["a", "b", "c"]


def test_condvar_wait_with_mutex_reacquires():
    sim, cpu = make()
    mtx = Mutex(sim)
    cv = CondVar(sim)
    log = []

    def consumer(thr):
        yield mtx.acquire(thr)
        yield from cv.wait_with(mtx, thr)
        log.append(("consumer-owns", mtx._owner is thr))
        mtx.release(thr)

    def producer(thr):
        yield from thr.sleep(10)
        yield mtx.acquire(thr)  # possible: consumer released it in wait
        log.append("producer-in")
        cv.signal()
        mtx.release(thr)

    Thread(sim, cpu, consumer, name="c")
    Thread(sim, cpu, producer, name="p")
    sim.run()
    assert "producer-in" in log
    assert ("consumer-owns", True) in log


def test_thread_interrupt():
    sim, cpu = make()

    def body(thr):
        try:
            yield from thr.sleep(1_000_000)
        except Exception:
            return "interrupted"
        return "slept"

    t = Thread(sim, cpu, body)

    def killer():
        yield sim.timeout(100)
        t.interrupt("stop")

    sim.spawn(killer())
    sim.run()
    assert t.result == "interrupted"
