"""Event-mask and bundle behaviours (Section 3.3) in more depth."""

import pytest

from repro.am import Bundle, parallel_vnet, new_endpoint
from repro.cluster import Cluster, ClusterConfig
from repro.sim import ms, us


def build(n=4, **kw):
    return Cluster(ClusterConfig(num_hosts=n, **kw))


def test_event_only_on_empty_to_nonempty_transition():
    """The NI notifies only when a message lands in an EMPTY queue, so a
    busy endpoint does not generate a wakeup per message."""
    cluster = build()
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "v")
    ep0, ep1 = vnet[0], vnet[1]
    ep1.set_event_mask({"recv"})
    got = []

    def handler(token, i):
        got.append(i)

    def sender(thr):
        for i in range(20):
            yield from ep0.request(thr, 1, handler, i)
        for _ in range(3000):
            yield from ep0.poll(thr)
            if ep0.credits_available(1) == cluster.cfg.user_credits:
                break
            yield from thr.compute(us(2))

    def receiver(thr):
        # deliberately slow consumer: the queue stays non-empty
        while len(got) < 20:
            yield from ep1.poll(thr, limit=4)
            yield from thr.compute(us(50))

    cluster.node(1).start_process().spawn_thread(receiver)
    cluster.node(0).start_process().spawn_thread(sender)
    cluster.run(until=cluster.sim.now + ms(500))
    assert len(got) == 20
    # far fewer notifications than messages
    assert cluster.node(1).driver.stats.events_delivered < 10


def test_returned_event_mask_wakes_waiter():
    """The 'returned' transition can also be sensitized (Section 3.3)."""
    cluster = build(dead_timeout_ms=10.0)
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "v")
    ep0 = vnet[0]
    ep0.map(5, (1, 99), key=1)  # nonexistent endpoint
    ep0.set_event_mask({"returned"})
    outcome = {}

    def body(thr):
        yield from ep0.request(thr, 5, None)
        woke = yield from ep0.wait(thr, timeout_ns=ms(400))
        outcome["woke"] = woke
        yield from ep0.poll(thr)
        outcome["undeliverable"] = ep0.stats.undeliverable

    t = cluster.node(0).start_process().spawn_thread(body)
    cluster.run(until=cluster.sim.now + ms(800))
    assert t.finished
    assert outcome["woke"] is True
    assert outcome["undeliverable"] == 1


def test_exclusive_endpoint_skips_lock_cost():
    cluster = build()
    ep = cluster.run_process(new_endpoint(cluster.node(0), rngs=cluster.rngs), "e")
    assert ep._lock_cost() == 0
    ep.set_shared(True)
    assert ep._lock_cost() == cluster.cfg.shared_ep_lock_ns
    ep.set_shared(False)
    assert ep._lock_cost() == 0


def test_bundle_wait_any_wakes_for_any_member():
    cluster = build()
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "v")
    sender_ep = vnet[1]
    ep_a = vnet[0]
    ep_b = cluster.run_process(new_endpoint(cluster.node(0), rngs=cluster.rngs), "b")
    sender_ep.map(7, ep_b.name, ep_b.tag)
    bundle = Bundle([ep_a, ep_b])
    got = []

    def handler(token, which):
        got.append(which)

    def service(thr):
        woke = yield from bundle.wait_any(thr, timeout_ns=ms(300))
        assert woke
        while not got:
            yield from bundle.poll_all(thr)
        return got[0]

    def sender(thr):
        yield from thr.sleep(ms(5))
        # send to the SECOND bundle member only
        yield from sender_ep.request(thr, 7, handler, "ep_b")
        for _ in range(2000):
            yield from sender_ep.poll(thr)
            if sender_ep.credits_available(7) == cluster.cfg.user_credits:
                break
            yield from thr.compute(us(2))

    t = cluster.node(0).start_process().spawn_thread(service)
    cluster.node(1).start_process().spawn_thread(sender)
    cluster.run(until=cluster.sim.now + ms(1_000))
    assert t.finished and t.result == "ep_b"


def test_bundle_remove_and_empty_wait_rejected():
    cluster = build()
    ep = cluster.run_process(new_endpoint(cluster.node(0), rngs=cluster.rngs), "e")
    bundle = Bundle([ep])
    bundle.remove(ep)
    assert len(bundle) == 0

    def body(thr):
        try:
            yield from bundle.wait_any(thr)
        except ValueError:
            return "rejected"

    t = cluster.node(0).start_process().spawn_thread(body)
    cluster.run(until=cluster.sim.now + ms(10))
    assert t.result == "rejected"
