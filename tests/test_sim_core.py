"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AnyOf,
    Interrupted,
    SimError,
    Simulator,
    Timeout,
    ms,
    seconds,
    us,
)


def test_time_helpers_round_to_ns():
    assert us(1) == 1_000
    assert us(0.5) == 500
    assert ms(4) == 4_000_000
    assert seconds(2) == 2_000_000_000
    assert us(0.0001) == 0  # sub-ns rounds down to zero


def test_schedule_orders_by_time_then_fifo():
    sim = Simulator()
    order = []
    sim.schedule(10, order.append, "b")
    sim.schedule(5, order.append, "a")
    sim.schedule(10, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 10


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.schedule(-1, lambda: None)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield Timeout(sim, 100)
        yield Timeout(sim, 250)
        return sim.now

    assert sim.run_process(proc()) == 350


def test_process_return_value_via_join():
    sim = Simulator()

    def child():
        yield sim.timeout(10)
        return 42

    def parent():
        result = yield sim.spawn(child())
        return result

    assert sim.run_process(parent()) == 42


def test_event_trigger_wakes_waiters_with_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        value = yield ev
        got.append((sim.now, value))

    def firer():
        yield sim.timeout(30)
        ev.trigger("hello")

    sim.spawn(waiter())
    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert got == [(30, "hello"), (30, "hello")]


def test_wait_on_already_triggered_event():
    sim = Simulator()
    ev = sim.event()
    ev.trigger(7)

    def proc():
        value = yield ev
        return (sim.now, value)

    assert sim.run_process(proc()) == (0, 7)


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.trigger(1)
    with pytest.raises(SimError):
        ev.trigger(2)


def test_event_fail_propagates_into_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as err:
            caught.append(str(err))

    def firer():
        yield sim.timeout(5)
        ev.fail(RuntimeError("boom"))

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert caught == ["boom"]


def test_uncaught_process_exception_aborts_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("broken")

    sim.spawn(bad())
    with pytest.raises(SimError) as excinfo:
        sim.run()
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_exception_propagates_to_joiner_not_abort():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("broken")

    def parent():
        try:
            yield sim.spawn(bad())
        except ValueError:
            return "handled"

    assert sim.run_process(parent()) == "handled"


def test_any_of_returns_first_index_and_value():
    sim = Simulator()

    def proc():
        result = yield AnyOf(sim, [sim.timeout(50, "slow"), sim.timeout(10, "fast")])
        return (sim.now, result)

    assert sim.run_process(proc()) == (10, (1, "fast"))


def test_any_of_cancels_losers():
    """The losing timeout of an AnyOf must not fire later."""
    sim = Simulator()
    fired = []

    def proc():
        ev = sim.event()
        yield AnyOf(sim, [ev, sim.timeout(10)])
        fired.append(sim.now)
        # Run well past 10 more ns; the canceled event must stay quiet.
        yield sim.timeout(100)

    sim.run_process(proc())
    assert fired == [10]


def test_all_of_waits_for_everything():
    sim = Simulator()

    def proc():
        values = yield sim.all_of([sim.timeout(5, "a"), sim.timeout(20, "b")])
        return (sim.now, values)

    assert sim.run_process(proc()) == (20, ["a", "b"])


def test_all_of_empty_completes_immediately():
    sim = Simulator()

    def proc():
        values = yield sim.all_of([])
        return values

    assert sim.run_process(proc()) == []


def test_interrupt_raises_inside_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1000)
        except Interrupted as intr:
            log.append((sim.now, intr.cause))

    def interrupter(proc):
        yield sim.timeout(40)
        proc.interrupt("wake up")

    p = sim.spawn(sleeper())
    sim.spawn(interrupter(p))
    sim.run()
    assert log == [(40, "wake up")]


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.spawn(quick())
    sim.run()
    p.interrupt("late")  # must not raise
    sim.run()


def test_run_until_stops_clock_exactly():
    sim = Simulator()

    def ticker():
        while True:
            yield sim.timeout(10)

    sim.spawn(ticker())
    assert sim.run(until=35) == 35
    assert sim.now == 35


def test_run_process_unfinished_raises():
    sim = Simulator()

    def forever():
        while True:
            yield sim.timeout(10)

    with pytest.raises(SimError):
        sim.run_process(forever(), until=100)


def test_yield_garbage_fails_process():
    sim = Simulator()

    def bad():
        yield 12345

    def parent():
        try:
            yield sim.spawn(bad())
        except SimError:
            return "caught"

    assert sim.run_process(parent()) == "caught"


def test_deterministic_two_runs_identical():
    def build():
        sim = Simulator()
        trace = []

        def node(i):
            for step in range(5):
                yield sim.timeout(7 * (i + 1))
                trace.append((sim.now, i, step))

        for i in range(4):
            sim.spawn(node(i))
        sim.run()
        return trace

    assert build() == build()
