"""Tests for the parallel I/O subsystem (Figure 1's River-style component)."""

import pytest

from repro.apps.pario import DiskModel, build_pario
from repro.cluster import Cluster, ClusterConfig
from repro.sim import ms


def build(n=6, **kw):
    return Cluster(ClusterConfig(num_hosts=n, **kw))


def test_write_read_roundtrip():
    cluster = build()
    sf, servers, stop = cluster.run_process(
        build_pario(cluster, 0, [1, 2, 3], stripe_bytes=4096), "pario"
    )
    payload = bytes(i % 250 for i in range(3 * 4096 + 777))

    def client(thr):
        yield from sf.write(thr, "f", payload)
        data = yield from sf.read(thr, "f", len(payload))
        stop["flag"] = True
        return data

    t = cluster.node(0).start_process().spawn_thread(client)
    cluster.run(until=cluster.sim.now + ms(5_000))
    assert t.finished
    assert t.result == payload


def test_stripes_spread_across_servers():
    cluster = build()
    sf, servers, stop = cluster.run_process(
        build_pario(cluster, 0, [1, 2, 3], stripe_bytes=1024), "pario"
    )
    payload = bytes(9 * 1024)  # 9 stripes over 3 servers

    def client(thr):
        yield from sf.write(thr, "f", payload)
        stop["flag"] = True

    t = cluster.node(0).start_process().spawn_thread(client)
    cluster.run(until=cluster.sim.now + ms(5_000))
    assert t.finished
    assert [s.writes for s in servers] == [3, 3, 3]  # round-robin striping


def test_parallel_reads_beat_single_server():
    """Aggregate read bandwidth scales with server count (the River point)."""

    def timed_read(nservers):
        cluster = build(n=nservers + 1)
        disk = DiskModel(seek_us=2_000.0, transfer_mb_s=12.0)
        sf, servers, stop = cluster.run_process(
            build_pario(cluster, 0, list(range(1, nservers + 1)),
                        stripe_bytes=65536, disk=disk),
            "pario",
        )
        payload = bytes(8 * 65536)  # 512 KB

        def client(thr):
            yield from sf.write(thr, "f", payload)
            t0 = cluster.sim.now
            yield from sf.read(thr, "f", len(payload))
            stop["flag"] = True
            return cluster.sim.now - t0

        t = cluster.node(0).start_process().spawn_thread(client)
        cluster.run(until=cluster.sim.now + ms(60_000))
        assert t.finished
        return t.result

    t1 = timed_read(1)
    t4 = timed_read(4)
    assert t4 < t1 / 2  # disks work in parallel


def test_read_missing_block_returns_empty():
    cluster = build()
    sf, servers, stop = cluster.run_process(
        build_pario(cluster, 0, [1], stripe_bytes=4096), "pario"
    )

    def client(thr):
        data = yield from sf.read(thr, "ghost", 100)
        stop["flag"] = True
        return data

    t = cluster.node(0).start_process().spawn_thread(client)
    cluster.run(until=cluster.sim.now + ms(2_000))
    assert t.result == b""


def test_disk_model_costs():
    disk = DiskModel(seek_us=8_000.0, transfer_mb_s=12.0)
    assert disk.access_ns(0) == 8_000_000
    # 12 MB/s => ~83.3 ns/byte
    assert abs(disk.access_ns(1_000_000) - (8_000_000 + 83_333_333)) < 10
