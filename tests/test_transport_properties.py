"""Transport delivery properties under loss (Section 4.3's guarantees).

The NI-to-NI transport promises that every accepted message is delivered
*exactly once* and *in order per channel*, for any packet loss rate — loss
only costs time (retransmission backoff), never correctness.  These tests
sweep loss probabilities {0, 0.01, 0.1, 0.5} across seeds and check the
end-to-end property at the AM layer: a sender streams numbered requests
over a single channel and the receiver must observe exactly
``0, 1, ..., N-1``.

Configuration notes (why these overrides):

* ``channels_per_pair=1`` — in-order holds *per channel*; with one channel
  the arrival order must equal the send order.
* ``max_consecutive_retrans=1000`` — an unbind would free the channel and
  let the next message overtake the unbound one, which is legal transport
  behaviour but breaks the single-channel ordering we assert here.
* ``dead_timeout_ms`` raised — at 50% loss the expected ack round trip is
  several 8-16 ms backoff periods, so the default 50 ms declare-dead
  timer would return messages to the sender instead of persisting.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.am import parallel_vnet
from repro.cluster import Cluster, ClusterConfig
from repro.sim import ms, us

LOSS_PROBS = [0.0, 0.01, 0.1, 0.5]
SEEDS = [3, 17]


def _stream(loss: float, seed: int, nmsgs: int, horizon_ms: int = 30_000):
    """Send ``nmsgs`` numbered requests 0->1; return the receive order."""
    cfg = ClusterConfig(
        num_hosts=2,
        seed=seed,
        packet_loss_prob=loss,
        channels_per_pair=1,
        max_consecutive_retrans=1000,
        dead_timeout_ms=60_000.0,
    )
    cluster = Cluster(cfg)
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    got: list[int] = []
    returned: list[object] = []
    ep0.undeliverable_handler = lambda msg, reason: returned.append(reason)

    def handler(token, i):
        got.append(i)

    def sender(thr):
        for i in range(nmsgs):
            yield from ep0.request(thr, 1, handler, i)
            # recycle credits / consume auto-replies as they come back
            yield from ep0.poll(thr, limit=4)
        while ep0._outstanding:
            yield from ep0.poll(thr, limit=8)
            yield from thr.compute(us(5))

    def receiver(thr):
        while len(got) < nmsgs:
            yield from ep1.poll(thr, limit=8)
            yield from thr.compute(us(5))

    cluster.node(1).start_process().spawn_thread(receiver)
    cluster.node(0).start_process().spawn_thread(sender)
    sim = cluster.sim
    sim.run(until=sim.now + ms(horizon_ms), stop=lambda: len(got) >= nmsgs)
    # let in-flight acks retire so a straggler duplicate would surface
    sim.run(until=sim.now + ms(200))
    return got, returned, cluster


@pytest.mark.parametrize("loss", LOSS_PROBS)
@pytest.mark.parametrize("seed", SEEDS)
def test_exactly_once_in_order_across_loss_sweep(loss, seed):
    nmsgs = 12 if loss >= 0.5 else 24
    got, returned, _ = _stream(loss, seed, nmsgs)
    assert returned == []  # loss must be masked, never surfaced
    assert got == list(range(nmsgs))  # exactly once AND in order


@given(
    loss=st.sampled_from([0.0, 0.01, 0.1]),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=8)
def test_exactly_once_in_order_hypothesis(loss, seed):
    got, returned, _ = _stream(loss, seed, nmsgs=10)
    assert returned == []
    assert got == list(range(10))


def test_high_loss_is_masked_by_retransmission_not_luck():
    """At 50% loss the machinery must actually fire: packets dropped,
    copies retransmitted, duplicates suppressed — and the application
    still sees a clean stream."""
    got, returned, cluster = _stream(0.5, seed=3, nmsgs=12)
    assert got == list(range(12))
    assert returned == []
    assert cluster.network.stats.dropped_loss > 0
    assert cluster.node(0).nic.stats.retransmissions > 0
