"""Smoke tests: the shipped examples import and the cheapest one runs."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    ["quickstart", "client_server", "parallel_stencil", "hotswap_failover", "parallel_io",
     "chaos_storm", "overcommit_sweep"],
)
def test_example_imports(name):
    module = load(name)
    assert callable(module.main)


def test_quickstart_runs(capsys):
    module = load("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "greetings delivered: ['hello, virtual networks']" in out
    assert "on-nic r/w" in out  # residency transition happened


def test_chaos_storm_runs(capsys):
    module = load("chaos_storm")
    module.main()  # raises SystemExit(1) if any invariant is violated
    out = capsys.readouterr().out
    assert "timeline digest:" in out
    assert "the delivery contract held" in out
